"""Ensure the in-tree package is importable without an installed wheel.

The execution environment has no network and no `wheel` package, so a
PEP-660 editable install is unavailable; a src-path insertion gives the
same developer experience.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "tests"))
