#!/usr/bin/env python3
"""Surviving a malicious thread: the DDT + recovery walkthrough (Figure 8).

A five-worker multithreaded process builds exactly the dependency graph
of the paper's Figure 8:

* W1 writes page p1 and later crashes (the malicious thread);
* W2 reads p1 (so it consumed W1's data) and writes p2;
* W3 reads p2 and writes p3;  W2 later reads p3;
* W4 and W5 only touch private pages.

Without DDT support the kernel's only safe option is the kill-all
policy.  With the DDT tracking page ownership and the Data Dependency
Matrix, recovery terminates exactly {W1, W2, W3}, rolls their page
updates back from SavePage checkpoints, and lets W4, W5 and the main
thread finish their work.

Run:  python examples/ddt_recovery.py
"""

import _bootstrap  # noqa: F401  (sys.path for repo checkouts)

from repro.kernel.kernel import KernelConfig
from repro.rse.check import MODULE_DDT
from repro.system import build_machine
from repro.workloads import figure8


def run(with_recovery):
    machine = build_machine(with_rse=True, modules=("ddt",),
                            kernel_config=KernelConfig(
                                quantum_cycles=200_000))
    machine.rse.enable_module(MODULE_DDT)
    if with_recovery:
        machine.enable_ddt_recovery()
    image, asm = figure8.program()
    machine.kernel.load_process(image)
    result = machine.kernel.run(max_cycles=30_000_000)
    return machine, asm, result


def main():
    print("== kill-all baseline (no recovery support) " + "=" * 20)
    machine, __, result = run(with_recovery=False)
    print("run ended: %s" % result.reason)
    alive = [t.tid for t in machine.kernel.threads.values() if t.alive]
    print("threads alive afterwards: %s" % (alive or "none"))
    print("-> one malicious thread took the whole process down.")

    print()
    print("== DDT-guided recovery " + "=" * 40)
    machine, asm, result = run(with_recovery=True)
    report = machine.kernel.recovery_reports[0]
    print("crash: thread %d (W1) faulted with %r"
          % (report.faulty_tid,
             machine.kernel.threads[report.faulty_tid].fault[1]))
    print("DDM transitive dependents of W1: %s"
          % sorted(report.kill_set - {report.faulty_tid}))
    print("kill set:            %s" % sorted(report.kill_set))
    print("pages rolled back:   %d" % len(report.pages_restored))
    print("survivors:           %s" % sorted(report.survivors))
    print("run ended:           %s" % result.reason)

    symbols = asm.symbols
    print()
    print("memory after recovery:")
    for page in ("p1", "p2", "p3"):
        print("  %s (contaminated chain): 0x%08x  <- rolled back to the"
              " pre-crash snapshot" % (page,
                                       machine.memory.load_word(
                                           symbols[page])))
    for page in ("p4", "p5"):
        print("  %s (healthy thread):     0x%08x  <- untouched"
              % (page, machine.memory.load_word(symbols[page])))

    assert result.reason == "halt"
    assert report.kill_set == {2, 3, 4}
    print()
    print("W4 and W5 were never data-dependent on the crashed thread, so")
    print("they — and the process — survived.  'The recovery line in this")
    print("case is only for the two surviving threads.'")


if __name__ == "__main__":
    main()
