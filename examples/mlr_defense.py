#!/usr/bin/env python3
"""Memory Layout Randomization vs real layout-dependent attacks.

Reproduces the security story of Section 4.1 on two concrete exploits
against a vulnerable network service:

* a **stack smash**: the attacker overflows a stack buffer, planting
  shellcode and overwriting the saved return address with the absolute
  buffer address the conventional layout predicts;
* a **GOT hijack**: an arbitrary-write bug redirects a GOT entry at its
  well-known address so the next PLT call lands in attacker code.

Each attack runs three times: undefended, under software TRR, and under
the hardware MLR module.  The undefended service is hijacked; the
randomized ones turn the attack into a crash (stack smash) or shrug it
off entirely (GOT hijack against a relocated GOT).

Run:  python examples/mlr_defense.py
"""

import _bootstrap  # noqa: F401  (sys.path for repo checkouts)

from repro.security.attacks import (
    AttackOutcome,
    run_got_hijack,
    run_stack_smash,
)


def banner(text):
    print()
    print("== %s %s" % (text, "=" * max(0, 60 - len(text))))


def describe(label, result):
    flair = {
        AttackOutcome.HIJACKED: "ATTACKER CODE EXECUTED",
        AttackOutcome.CRASHED: "attack converted into a crash",
        AttackOutcome.FOILED: "service completed unharmed",
    }[result.outcome]
    print("%-34s %-10s (%s; run ended: %s)"
          % (label, result.outcome.value.upper(), flair,
             result.result.reason))


def main():
    banner("stack smashing (jump-to-shellcode on the stack)")
    smash_plain = run_stack_smash(defense="none")
    describe("fixed layout:", smash_plain)
    smash_trr = run_stack_smash(defense="trr", seed=2026)
    describe("TRR (software randomization):", smash_trr)
    smash_mlr = run_stack_smash(defense="mlr")
    describe("MLR (hardware module):", smash_mlr)

    assert smash_plain.outcome is AttackOutcome.HIJACKED
    assert smash_trr.outcome is AttackOutcome.CRASHED
    assert smash_mlr.outcome is AttackOutcome.CRASHED

    banner("GOT hijack (arbitrary write to a well-known GOT slot)")
    got_plain = run_got_hijack(defense="none")
    describe("fixed layout:", got_plain)
    got_mlr = run_got_hijack(defense="mlr")
    describe("MLR (GOT relocated + PLT rewritten):", got_mlr)

    assert got_plain.outcome is AttackOutcome.HIJACKED
    assert got_mlr.outcome is AttackOutcome.FOILED

    banner("summary")
    print("The fixed-layout service is fully hijackable.  Randomizing the")
    print("layout (software TRR or the RSE's MLR module) breaks every")
    print("hardcoded address the exploits rely on: the stack smash becomes")
    print("a crash — 'essentially converts a security attack into a")
    print("program crash' — and the GOT hijack writes into abandoned")
    print("memory while the service keeps running.")


if __name__ == "__main__":
    main()
