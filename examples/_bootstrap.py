"""Make ``import repro`` work when examples run from a source checkout.

Every example starts with ``import _bootstrap  # noqa: F401`` instead of
carrying its own ``sys.path`` surgery.  Installing the package (``pip
install -e .``) makes the import a no-op.
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def add_repo_path(*parts):
    """Put a repo-relative directory on ``sys.path`` (idempotent)."""
    path = os.path.join(_ROOT, *parts)
    if path not in sys.path:
        sys.path.insert(0, path)


add_repo_path("src")
