#!/usr/bin/env python3
"""Adaptive heartbeat monitoring of application threads (Section 4.4).

Two worker threads heartbeat the AHBM through CHECK instructions while
doing work; the kernel heartbeats on behalf of the OS through the
driver path.  One worker then wedges itself in an infinite loop that
stops issuing heartbeats.  The Adaptive Timeout Monitor — which has been
learning each entity's inter-beat cadence (EWMA mean + deviation) —
declares exactly that entity failed, and the kernel policy kills it so
the rest of the system finishes cleanly.

Run:  python examples/ahbm_liveness.py
"""

import _bootstrap  # noqa: F401  (sys.path for repo checkouts)

from repro.kernel.kernel import KernelConfig
from repro.program.layout import MemoryLayout
from repro.rse.check import MODULE_AHBM
from repro.system import build_machine
from repro.workloads.asmlib import build_workload_image

PROGRAM = """
.data
done: .word 0

.text
main:
    la $a0, healthy_worker
    li $v0, SYS_SPAWN
    syscall
    la $a0, wedging_worker
    li $v0, SYS_SPAWN
    syscall
main_wait:
    li $v0, SYS_YIELD
    syscall
    lw $t0, done
    li $t1, 1
    blt $t0, $t1, main_wait
    halt                        # healthy worker finished; demo over

healthy_worker:
    li $a0, 101                 # entity id
    chk AHBM, NBLK, OP_AHBM_REGISTER, 0
    li $s0, 60                  # work batches
hw_loop:
    li $t0, 400                 # one batch of work
hw_work:
    addi $t0, $t0, -1
    bnez $t0, hw_work
    li $a0, 101
    chk AHBM, NBLK, OP_AHBM_HEARTBEAT, 0
    li $v0, SYS_YIELD
    syscall
    addi $s0, $s0, -1
    bnez $s0, hw_loop
    la $t0, done
    li $t1, 1
    sw $t1, 0($t0)
    li $v0, SYS_EXIT
    syscall

wedging_worker:
    li $a0, 202                 # entity id
    chk AHBM, NBLK, OP_AHBM_REGISTER, 0
    li $s0, 12                  # heartbeats before wedging
ww_loop:
    li $t0, 400
ww_work:
    addi $t0, $t0, -1
    bnez $t0, ww_work
    li $a0, 202
    chk AHBM, NBLK, OP_AHBM_HEARTBEAT, 0
    li $v0, SYS_YIELD
    syscall
    addi $s0, $s0, -1
    bnez $s0, ww_loop
wedged:                         # infinite loop, no more heartbeats
    li $v0, SYS_YIELD
    syscall
    j wedged
"""


def main():
    machine = build_machine(with_rse=True, modules=("ahbm",),
                            kernel_config=KernelConfig(quantum_cycles=2000))
    ahbm = machine.module(MODULE_AHBM)
    ahbm.sample_period = 128
    ahbm.initial_timeout = 60_000
    machine.rse.enable_module(MODULE_AHBM)

    # OS liveness through the kernel-driver path.
    OS_ID = 1
    ahbm.register(OS_ID, 0)
    machine.kernel.os_heartbeat_id = OS_ID

    # Kill a thread whose heartbeat entity is declared dead (policy).
    entity_to_tid = {101: 2, 202: 3}
    failures = []

    def on_failure(entity_id, cycle):
        failures.append((entity_id, cycle))
        tid = entity_to_tid.get(entity_id)
        if tid is not None:
            machine.kernel.terminate_thread(tid)

    ahbm.on_failure = on_failure

    image, __ = build_workload_image(PROGRAM, MemoryLayout())
    machine.kernel.load_process(image)
    result = machine.kernel.run(max_cycles=20_000_000)

    print("run ended: %s after %d cycles" % (result.reason, result.cycles))
    print()
    print("entity   beats  learned gap  adaptive timeout  alive")
    for entity_id in sorted(ahbm.entities):
        entity = ahbm.entities[entity_id]
        name = {1: "OS", 101: "healthy", 202: "wedged"}[entity_id]
        print("%-8s %5d  %11s  %16d  %s"
              % (name, entity.counter,
                 "%.0f cyc" % entity.mean_gap if entity.mean_gap else "-",
                 ahbm.timeout_for(entity), entity.alive))
    print()
    for entity_id, cycle in failures:
        print("AHBM declared entity %d failed at cycle %d; kernel "
              "terminated thread %d" % (entity_id, cycle,
                                        entity_to_tid[entity_id]))

    assert result.reason == "halt"
    assert [entity for entity, __ in failures] == [202]
    assert ahbm.is_alive(101) and ahbm.is_alive(1)
    print()
    print("Only the wedged worker tripped its adaptive timeout; the")
    print("healthy worker and the OS heartbeat were never flagged.")


if __name__ == "__main__":
    main()
