#!/usr/bin/env python3
"""Fleet co-simulation with fault injection under live traffic.

Three networked server nodes (the Fig 9 multithreaded server, extended
with gossip over SYS_NSEND/SYS_NRECV) serve an open-loop bursty request
stream while the cycle bridge co-simulates them deterministically.  Two
things go wrong mid-traffic:

* node 1 is killed outright (SIGKILL-style: the machine vanishes), and
* node 2 takes a memory fault strike that corrupts its poll loop.

Both nodes fail over: a spare machine is rebuilt from the node's last
wire-format checkpoint, resumes past the death cycle, and re-serves the
requests lost since the checkpoint.  The demo proves convergence by
comparing the merged request log against an uninterrupted run of the
same spec — byte-identical.

Run:  python examples/fleet_failover.py
"""

import _bootstrap  # noqa: F401  (sys.path for repo checkouts)

from repro.fleet import FleetSpec, run_fleet
from repro.workloads import fleet_server


def describe(run, title):
    print("=== %s ===" % title)
    for node in run.nodes:
        line = "  node %d: %-7s cycle=%-9d served=%d" % (
            node.node_id, node.status, node.cycle,
            len(node.kernel.responses))
        for event in node.failovers:
            line += "  [failover: %s @%d, resumed @%d, re-served %d]" % (
                event.reason, event.death_cycle, event.resume_cycle,
                event.rewound_requests)
        print(line)
    for node in run.nodes:
        for strike in node.strikes:
            print("  strike %s@%d on node %d -> %s" %
                  (strike.model, strike.cycle, strike.node, strike.outcome))
    print("  served %d/%d requests, digest %s" %
          (run.served(), run.spec.requests, run.digest()[:16]))
    print()


def main():
    base = dict(nodes=3, requests=90, workers=2, seed=11,
                max_cycles=12_000_000)

    clean = run_fleet(FleetSpec(**base))
    describe(clean, "uninterrupted run")

    # A deterministic strike: flip bit 31 of the first instruction of
    # node 2's request-poll loop.  The corrupted loop faults, which the
    # bridge turns into a checkpoint failover.
    __, asm = fleet_server.program(
        2, 3, 2, fleet_server.DEFAULT_WORK_ITERS,
        fleet_server.DEFAULT_CLASSES, fleet_server.DEFAULT_STATS_BATCH,
        fleet_server.DEFAULT_DRAIN_CYCLES,
        fleet_server.DEFAULT_DRAIN_POLL_GAP)
    strike = {"model": "mem-flip", "node": 2, "cycle": 15_000,
              "params": {"addr": asm.symbols["wait_loop"], "bit": 31,
                         "cycle": 15_000}}

    stormy = run_fleet(FleetSpec(kills=((1, 9_000),), strikes=(strike,),
                                 **base))
    describe(stormy, "kill node 1 @9000 + fault strike node 2 @15000")

    converged = set(stormy.merged_log()) == set(clean.merged_log())
    print("merged request logs converge: %s" % converged)
    if not converged or stormy.served() != stormy.spec.requests:
        raise SystemExit("fleet did not converge")


if __name__ == "__main__":
    main()
