#!/usr/bin/env python3
"""Quickstart: build a machine with the RSE, run a program, catch an error.

This walks the library's core loop end to end:

1. write a small assembly program and assemble it;
2. build a simulated machine with the RSE framework and the Instruction
   Checker Module (ICM) attached;
3. provision the ICM's CheckerMemory from a static parse of the binary
   and enable runtime CHECK insertion for all control-flow instructions;
4. run the clean program (every check passes);
5. flip one bit of a branch instruction in memory — modelling a
   multi-bit-upset on the memory-to-dispatch path — and watch the ICM
   stop the pipeline before the corrupted instruction can retire.

Run:  python examples/quickstart.py
"""

import _bootstrap  # noqa: F401  (sys.path for repo checkouts)

from repro.isa.assembler import assemble
from repro.isa.encoding import flip_bit
from repro.pipeline.core import EventKind
from repro.rse.check import MODULE_ICM
from repro.rse.modules.icm import build_checker_memory, make_icm_injector
from repro.system import build_machine

PROGRAM = """
    main:
        li  $t0, 0          # sum
        li  $t1, 100        # counter
    loop:
        add $t0, $t0, $t1
        addi $t1, $t1, -1
        bnez $t1, loop      # <- control flow: checked by the ICM
        halt
"""


def build():
    machine = build_machine(with_rse=True, modules=("icm",))
    asm = assemble(PROGRAM)
    machine.memory.store_bytes(asm.text_base, asm.text)

    icm = machine.module(MODULE_ICM)
    checker_map = build_checker_memory(machine.memory, asm.text_base,
                                       len(asm.text))
    icm.configure(checker_map)
    machine.rse.enable_module(MODULE_ICM)
    machine.pipeline.check_injector = make_icm_injector(checker_map)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.regs[29] = 0x7FFF0000
    return machine, asm, icm


def main():
    print("== clean run " + "=" * 50)
    machine, asm, icm = build()
    event = machine.pipeline.run(max_cycles=200_000)
    stats = machine.pipeline.stats
    print("event:            %s" % event.kind.value)
    print("sum(1..100):      %d" % machine.pipeline.regs[8])
    print("cycles:           %d   instructions: %d   IPC: %.2f"
          % (stats.cycles, stats.instret, stats.ipc))
    print("ICM checks:       %d   Icm_Cache hit rate: %.1f%%"
          % (icm.checks_completed, 100 * icm.cache_hit_rate))
    assert event.kind is EventKind.HALT and machine.pipeline.regs[8] == 5050

    print()
    print("== corrupted run " + "=" * 46)
    machine, asm, icm = build()
    branch_pc = min(icm.checker_map)          # first checked instruction
    word = machine.memory.load_word(branch_pc)
    corrupted = flip_bit(word, 20)
    machine.memory.store_word(branch_pc, corrupted)
    print("flipped bit 20 of the instruction at 0x%08x "
          "(0x%08x -> 0x%08x)" % (branch_pc, word, corrupted))
    event = machine.pipeline.run(max_cycles=200_000)
    print("event:            %s (%s)" % (event.kind.value, event.cause))
    print("ICM mismatches:   %d" % icm.mismatches)
    assert event.kind is EventKind.CHECK_ERROR
    print()
    print("The ICM compared the fetched binary against its redundant copy")
    print("and flushed the pipeline before the corrupt branch committed.")


if __name__ == "__main__":
    main()
