#!/usr/bin/env python3
"""The RSE checking itself: Table 2's error scenarios, live.

The framework's own hardware can fail.  Section 3.4 adds a watchdog over
the IOQ's check/checkValid bits plus an error-transition counter; when
either trips, the RSE decouples into a safe mode whose constant output
lets the pipeline commit unhindered — a broken checker must never take
the processor down with it.

This demo injects three of Table 2's faults into a synchronous module
and shows the self-checker catching each one while the application still
completes:

1. a module that stops making progress (would hang the pipeline);
2. a module that raises a false alarm on every CHECK (would flush the
   pipeline forever);
3. a checkValid bit stuck at 1 in the IOQ (module results ignored).

Run:  python examples/selfcheck_demo.py
"""

import _bootstrap  # noqa: F401  (sys.path for repo checkouts)

_bootstrap.add_repo_path("tests")   # for the shared ProbeModule helper

from probe_module import TEST_MODULE_ID, ProbeModule
from repro.isa.assembler import assemble
from repro.pipeline.core import EventKind
from repro.rse.check import asm_constants
from repro.system import build_machine

PROGRAM = """
    main:
        li $t1, 30
        li $s0, 0
    loop:
        chk PROBE, BLK, 2, 0
        addi $s0, $s0, 1
        addi $t1, $t1, -1
        bnez $t1, loop
        halt
"""


def build(module):
    machine = build_machine(with_rse=True)
    machine.rse.attach(module)
    machine.rse.selfcheck.watchdog_timeout = 300
    machine.rse.selfcheck.error_threshold = 5
    constants = asm_constants()
    constants["PROBE"] = TEST_MODULE_ID
    asm = assemble(PROGRAM, constants=constants)
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.rse.enable_module(TEST_MODULE_ID)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.regs[29] = 0x7FFF0000
    return machine


def finish(machine):
    """Run to completion, retrying CHECK errors like the kernel would."""
    flushes = 0
    while True:
        event = machine.pipeline.run(max_cycles=500_000)
        if event.kind is EventKind.CHECK_ERROR:
            flushes += 1
            machine.rse.selfcheck.record_error(
                machine.rse.modules[TEST_MODULE_ID], machine.pipeline.cycle)
            machine.pipeline.resume(event.pc)          # retry the CHECK
            continue
        return event, flushes


def scenario(title, module, inject=None):
    print("== %s %s" % (title, "=" * max(0, 58 - len(title))))
    machine = build(module)
    if inject is not None:
        inject(machine)
    event, flushes = finish(machine)
    trips = machine.rse.selfcheck.trips
    print("application finished:   %s (loop count = %d)"
          % (event.kind.value, machine.pipeline.regs[16]))
    print("pipeline flushes seen:  %d" % flushes)
    print("framework decoupled:    %s" % machine.rse.safe_mode)
    if trips:
        print("self-check verdict:     %r" % trips[0].reason)
    assert event.kind is EventKind.HALT and machine.pipeline.regs[16] == 30
    assert machine.rse.safe_mode
    print()


def main():
    module = ProbeModule()
    module.fault_mode = "no_progress"
    scenario("module makes no progress (application would hang)", module)

    module = ProbeModule(delay=1)
    module.fault_mode = "false_alarm"
    scenario("module raises a false alarm on every CHECK", module)

    module = ProbeModule(delay=2)

    def stuck_valid(machine):
        original = machine.rse.ioq.allocate

        def faulty(uop, cycle):
            entry = original(uop, cycle)
            if uop.instr.is_check:
                entry.stuck_check_valid = 1          # hardware stuck-at-1
            return entry

        machine.rse.ioq.allocate = faulty

    scenario("IOQ checkValid bit stuck at 1", module, inject=stuck_valid)

    print("In every scenario the watchdog/self-check tripped, the RSE")
    print("switched to safe mode (checkValid=1, check=0 constants), and")
    print("the application ran to the correct result — protection is")
    print("lost, the processor is not.")


if __name__ == "__main__":
    main()
