#!/usr/bin/env python3
"""Fault-injection campaigns on the `repro.campaign` engine.

The ICM's value proposition (Section 4.3) is coverage of multi-bit
errors in an instruction anywhere between memory and the dispatch stage.
This example drives the campaign engine through the paper's evaluation
shape:

* instruction bit flips with the ICM attached: every corruption is a
  CHECK_ERROR before retirement (100% detection, with a Wilson interval
  saying how much the sample size lets us claim);
* the same flips unprotected: faults, silent corruptions, hangs;
* two fault models the ICM does *not* cover — register-file flips and
  data-memory flips mid-execution — showing classified outcomes beyond
  the instruction-corruption space.

Run:  python examples/fault_campaign.py
"""

import _bootstrap  # noqa: F401  (sys.path for repo checkouts)

from repro.analysis.tables import format_table
from repro.campaign import CampaignSpec, DEMO_WORKLOAD, Outcome, \
    detection_stats, run_campaign
from repro.security.faults import BitFlipOutcome, run_bitflip_campaign

WORKLOAD = """
    main:
        li $t0, 0
        li $t1, 60
        li $s0, 0
    loop:
        add $s0, $s0, $t0
        andi $t2, $t0, 3
        beqz $t2, skip
        addi $s0, $s0, 7
    skip:
        addi $t0, $t0, 1
        blt $t0, $t1, loop
        halt
"""


def main():
    campaigns = {}
    for protected in (True, False):
        campaigns[protected] = run_bitflip_campaign(
            WORKLOAD, injections=40, bits_per_injection=1,
            with_icm=protected, seed=2026, max_cycles=200_000)
    multi = run_bitflip_campaign(WORKLOAD, injections=20,
                                 bits_per_injection=3, with_icm=True,
                                 seed=77, max_cycles=200_000)

    rows = []
    for outcome in BitFlipOutcome:
        rows.append([
            outcome.value,
            campaigns[True].count(outcome),
            campaigns[False].count(outcome),
            multi.count(outcome),
        ])
    print(format_table(
        ["Outcome", "ICM on (1-bit)", "unprotected (1-bit)",
         "ICM on (3-bit)"],
        rows, title="Bit-flip campaign over checked instructions"))
    print()
    print("ICM detection rate, single-bit: %.0f%%"
          % (100 * campaigns[True].detection_rate))
    print("ICM detection rate, triple-bit: %.0f%%"
          % (100 * multi.detection_rate))
    damage = (campaigns[False].count(BitFlipOutcome.FAULTED)
              + campaigns[False].count(BitFlipOutcome.CORRUPTED)
              + campaigns[False].count(BitFlipOutcome.HUNG))
    print("unprotected runs damaged:       %d / %d"
          % (damage, len(campaigns[False].runs)))

    assert campaigns[True].detection_rate == 1.0
    assert multi.detection_rate == 1.0

    # Beyond the ICM's coverage: strike the register file and live data
    # memory mid-execution — the errors other RSE modules (and the
    # recovery path) exist for.  The demo workload keeps a checksum in
    # registers and an array it rewrites every pass, so strikes land on
    # live state.  The ICM rightly detects none of these; the campaign
    # still classifies every run.
    print()
    other = {}
    for model in ("reg-flip", "mem-flip"):
        spec = CampaignSpec(source=DEMO_WORKLOAD, model=model,
                            protected=False, injections=30, seed=11,
                            max_cycles=200_000)
        other[model] = run_campaign(spec)
    rows = [[outcome.value,
             other["reg-flip"].count(outcome),
             other["mem-flip"].count(outcome)]
            for outcome in Outcome]
    print(format_table(["Outcome", "reg-flip", "mem-flip"], rows,
                       title="Mid-execution strikes (unprotected)"))
    detected = detection_stats(
        [record for run in other.values() for record in run.records])[0]
    assert detected == 0
    for run in other.values():
        assert len(run.records) == 30
        assert all(record["outcome"] in
                   {outcome.value for outcome in Outcome}
                   for record in run.records)
    assert other["mem-flip"].count(Outcome.CORRUPTED) > 0

    print()
    print("Every corrupted checked instruction was stopped by the ICM at")
    print("commit; the unprotected machine shows the faults, silent data")
    print("corruptions and hangs the module exists to prevent.")


if __name__ == "__main__":
    main()
