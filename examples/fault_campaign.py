#!/usr/bin/env python3
"""Instruction bit-flip fault-injection campaign (ICM coverage).

The ICM's value proposition (Section 4.3) is coverage of multi-bit
errors in an instruction anywhere between memory and the dispatch stage.
This campaign flips random bits of checked instructions in a small
workload, once with the ICM attached and once without, and tabulates
what the machine did:

* ICM on: every corruption is a CHECK_ERROR before retirement;
* unprotected: the same corruptions fault, silently corrupt results, or
  hang the program.

Run:  python examples/fault_campaign.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.analysis.tables import format_table
from repro.security.faults import BitFlipOutcome, run_bitflip_campaign

WORKLOAD = """
    main:
        li $t0, 0
        li $t1, 60
        li $s0, 0
    loop:
        add $s0, $s0, $t0
        andi $t2, $t0, 3
        beqz $t2, skip
        addi $s0, $s0, 7
    skip:
        addi $t0, $t0, 1
        blt $t0, $t1, loop
        halt
"""


def main():
    campaigns = {}
    for protected in (True, False):
        campaigns[protected] = run_bitflip_campaign(
            WORKLOAD, injections=40, bits_per_injection=1,
            with_icm=protected, seed=2026, max_cycles=200_000)
    multi = run_bitflip_campaign(WORKLOAD, injections=20,
                                 bits_per_injection=3, with_icm=True,
                                 seed=77, max_cycles=200_000)

    rows = []
    for outcome in BitFlipOutcome:
        rows.append([
            outcome.value,
            campaigns[True].count(outcome),
            campaigns[False].count(outcome),
            multi.count(outcome),
        ])
    print(format_table(
        ["Outcome", "ICM on (1-bit)", "unprotected (1-bit)",
         "ICM on (3-bit)"],
        rows, title="Bit-flip campaign over checked instructions"))
    print()
    print("ICM detection rate, single-bit: %.0f%%"
          % (100 * campaigns[True].detection_rate))
    print("ICM detection rate, triple-bit: %.0f%%"
          % (100 * multi.detection_rate))
    damage = (campaigns[False].count(BitFlipOutcome.FAULTED)
              + campaigns[False].count(BitFlipOutcome.CORRUPTED)
              + campaigns[False].count(BitFlipOutcome.HUNG))
    print("unprotected runs damaged:       %d / %d"
          % (damage, len(campaigns[False].runs)))

    assert campaigns[True].detection_rate == 1.0
    assert multi.detection_rate == 1.0
    print()
    print("Every corrupted checked instruction was stopped by the ICM at")
    print("commit; the unprotected machine shows the faults, silent data")
    print("corruptions and hangs the module exists to prevent.")


if __name__ == "__main__":
    main()
