"""Unit tests: the catalog itself and checkers fed synthetic events."""

import pytest

from repro.assertions import PROPERTIES, catalog, shared_properties
from repro.assertions.monitor import EVENTS, AssertionMonitor
from repro.assertions.properties import ALL_ENGINES, select
from repro.rse.ioq import IOQEntry


class _FakeInstr:
    def __init__(self, is_check=True):
        self.is_check = is_check


class _FakeUop:
    def __init__(self, seq=1, pc=0x1000, is_check=True):
        self.seq = seq
        self.pc = pc
        self.instr = _FakeInstr(is_check)


def make_entry(is_check=True, seq=1):
    return IOQEntry(seq, _FakeUop(seq=seq, is_check=is_check), 0, is_check)


def fire(monitor, event, *payload):
    for handler in monitor.handlers(event):
        handler(*payload)


# ----------------------------------------------------------------- catalog

def test_catalog_has_at_least_eight_properties():
    assert len(PROPERTIES) >= 8
    entries = catalog()
    assert len(entries) == len(PROPERTIES)
    for pid, description, engines in entries:
        assert pid and description
        assert engines
        assert set(engines) <= set(ALL_ENGINES)


def test_every_engine_hosts_multiple_properties():
    for engine in ALL_ENGINES:
        assert len(select(engine)) >= 4, engine


def test_select_unknown_property_raises():
    with pytest.raises(KeyError):
        select("pipeline", properties=["no-such-property"])


def test_select_restricts_to_requested_ids():
    classes = select("pipeline", properties=["store-reaches-memory"])
    assert [cls.id for cls in classes] == ["store-reaches-memory"]


def test_shared_properties_symmetric_and_comparable():
    assert shared_properties("interp", "pipeline") == \
        shared_properties("pipeline", "interp")
    # Every fully portable property is comparable across any pair.
    assert "store-reaches-memory" in shared_properties("interp", "predecode")
    # Pipeline-only properties never enter a funcsim comparison.
    assert "ioq-alloc-encoding" not in shared_properties(
        "interp", "pipeline")


def test_checker_events_are_all_known():
    for cls in PROPERTIES.values():
        hooks = [name for name in dir(cls) if name.startswith("on_")]
        assert hooks, cls.id
        for name in hooks:
            assert name[3:] in EVENTS, (cls.id, name)


# ------------------------------------------------------- synthetic events

def test_retire_alignment_fires_on_misaligned_pc():
    monitor = AssertionMonitor("interp", properties=["retire-alignment"])
    fire(monitor, "retire", 0x1002, 0x1006, 0x1006, False, False)
    assert monitor.violated_properties() == {"retire-alignment"}


def test_retire_contiguity_tracks_expected_next():
    monitor = AssertionMonitor("interp", properties=["retire-contiguity"])
    fire(monitor, "retire", 0x1000, 0x1004, 0x1004, False, False)
    fire(monitor, "retire", 0x1004, 0x1008, 0x1008, False, False)
    assert not monitor.violations
    fire(monitor, "retire", 0x2000, 0x2004, 0x2004, False, False)
    assert monitor.violated_properties() == {"retire-contiguity"}


def test_retire_contiguity_reset_by_redirect():
    monitor = AssertionMonitor("interp", properties=["retire-contiguity"])
    fire(monitor, "retire", 0x1000, 0x1004, 0x1004, False, False)
    fire(monitor, "redirect", 0x2000)
    fire(monitor, "retire", 0x2000, 0x2004, 0x2004, False, False)
    assert not monitor.violations


def test_retire_contiguity_checks_derived_against_observed():
    monitor = AssertionMonitor("interp", properties=["retire-contiguity"])
    fire(monitor, "retire", 0x1000, 0x1004, 0x2000, False, False)
    assert monitor.violation_count() == 1


def test_ioq_alloc_encoding_flags_miscoded_entry():
    monitor = AssertionMonitor("pipeline", properties=["ioq-alloc-encoding"])
    good = make_entry(is_check=True)
    fire(monitor, "ioq_alloc", good, True)
    assert not monitor.violations
    bad = make_entry(is_check=True, seq=2)
    bad.check_valid = 1          # architectural bit corrupted at alloc
    fire(monitor, "ioq_alloc", bad, True)
    assert monitor.violated_properties() == {"ioq-alloc-encoding"}


def test_ioq_properties_stand_down_on_stuck_entries():
    """Injected stuck-at faults belong to the Table 2 watchdog."""
    monitor = AssertionMonitor("pipeline")
    entry = make_entry(is_check=True)
    entry.stuck_check_valid = 1
    fire(monitor, "ioq_alloc", entry, True)
    fire(monitor, "ioq_gate", entry, "ok", False)
    assert not monitor.violations


def test_ioq_gate_flags_consume_without_valid():
    monitor = AssertionMonitor("pipeline",
                               properties=["ioq-valid-before-consume"])
    entry = make_entry(is_check=True)
    fire(monitor, "ioq_gate", entry, "wait", False)     # stall is fine
    assert not monitor.violations
    fire(monitor, "ioq_gate", entry, "ok", False)       # consumed at 00
    assert monitor.violated_properties() == {"ioq-valid-before-consume"}


def test_ioq_gate_trusts_safe_mode():
    monitor = AssertionMonitor("pipeline",
                               properties=["ioq-valid-before-consume"])
    entry = make_entry(is_check=True)
    fire(monitor, "ioq_gate", entry, "ok", True)        # decoupled
    assert not monitor.violations


def test_mau_quiesce_fires_only_on_capture_with_pending():
    monitor = AssertionMonitor("pipeline",
                               properties=["mau-quiesce-before-checkpoint"])
    fire(monitor, "checkpoint", True, False)     # clean capture
    fire(monitor, "checkpoint", False, True)     # refused capture: correct
    assert not monitor.violations
    fire(monitor, "checkpoint", True, True)      # captured despite pending
    assert monitor.violated_properties() == {"mau-quiesce-before-checkpoint"}


def test_violation_records_carry_context():
    monitor = AssertionMonitor("pipeline", properties=["retire-alignment"])
    monitor.clock = lambda: 42
    fire(monitor, "retire", 0x1001, None, None, False, False)
    violation = monitor.violations[0]
    assert violation.property_id == "retire-alignment"
    assert violation.engine == "pipeline"
    assert violation.pc == 0x1001
    assert violation.cycle == 42
    doc = violation.to_dict()
    assert doc["property"] == "retire-alignment"
    assert doc["operands"] == {"pc": 0x1001}


def test_violation_list_is_bounded_but_counts_are_not():
    monitor = AssertionMonitor("pipeline", properties=["retire-alignment"],
                               violation_limit=3)
    for __ in range(10):
        fire(monitor, "retire", 0x1001, None, None, False, False)
    assert len(monitor.violations) == 3
    assert monitor.violation_count() == 10
