"""``Machine.assertions``: attach/detach lifecycle, snapshot, metrics."""

import pytest

from repro.campaign import DEMO_WORKLOAD
from repro.program.layout import MemoryLayout
from repro.system import build_machine
from repro.workloads.asmlib import build_workload_image


def build_loaded(with_rse=False, source=DEMO_WORKLOAD):
    machine = build_machine(with_rse=with_rse,
                            modules=("icm",) if with_rse else ())
    image, asm = build_workload_image(source, MemoryLayout())
    machine.kernel.load_process(image)
    return machine, asm


def test_clean_run_bare_machine_no_violations():
    machine, __ = build_loaded()
    machine.assertions.attach()
    result = machine.kernel.run(max_cycles=2_000_000)
    assert result.reason == "halt"
    machine.assertions.detach()
    assert machine.assertions.violation_count() == 0


def test_clean_run_rse_machine_no_violations():
    machine, __ = build_loaded(with_rse=True)
    machine.assertions.attach()
    result = machine.kernel.run(max_cycles=2_000_000)
    assert result.reason == "halt"
    machine.assertions.detach()
    assert machine.assertions.violation_count() == 0


def test_monitoring_is_architecturally_invisible():
    baseline, __ = build_loaded(with_rse=True)
    result_a = baseline.kernel.run(max_cycles=2_000_000)
    monitored, __ = build_loaded(with_rse=True)
    monitored.assertions.attach()
    result_b = monitored.kernel.run(max_cycles=2_000_000)
    assert result_a.reason == result_b.reason
    assert result_a.cycles == result_b.cycles
    assert (baseline.pipeline.stats.instret ==
            monitored.pipeline.stats.instret)
    assert list(baseline.pipeline.regs) == list(monitored.pipeline.regs)


def test_double_attach_raises_and_detach_is_idempotent():
    machine, __ = build_loaded()
    machine.assertions.attach()
    with pytest.raises(RuntimeError):
        machine.assertions.attach()
    machine.assertions.detach()
    machine.assertions.detach()          # second detach is a no-op
    machine.assertions.attach()          # re-attach after detach works
    machine.assertions.detach()


def test_detach_leaves_no_shadows_behind():
    machine, __ = build_loaded(with_rse=True)
    pipeline_dict_before = set(machine.pipeline.__dict__)
    rse_dict_before = set(machine.rse.__dict__)
    machine.assertions.attach()
    machine.assertions.detach()
    assert set(machine.pipeline.__dict__) == pipeline_dict_before
    assert set(machine.rse.__dict__) == rse_dict_before
    assert "checkpoint" not in machine.__dict__
    assert "restore" not in machine.__dict__


def test_snapshot_section_schema():
    machine, __ = build_loaded()
    doc = machine.snapshot()
    section = doc["assertions"]
    assert section == {"attached": False, "properties": [],
                       "counts": {}, "violations": []}
    machine.assertions.attach()
    machine.kernel.run(max_cycles=2_000_000)
    section = machine.snapshot()["assertions"]
    assert section["attached"] is True
    assert len(section["properties"]) >= 8
    assert section["violations"] == []
    machine.assertions.detach()
    # Results survive detach for post-mortem reads.
    section = machine.snapshot()["assertions"]
    assert section["attached"] is False
    assert len(section["properties"]) >= 8


def test_violations_mirror_into_metrics_registry():
    machine, __ = build_loaded()
    machine.assertions.attach()
    machine.assertions.monitor.violation("retire-alignment", "synthetic",
                                         pc=0x1001)
    counter = machine.obs.metrics.counter("assertions.retire-alignment")
    assert counter.value == 1
    assert machine.assertions.violation_count() == 1
    snap = machine.snapshot()["assertions"]
    assert snap["counts"] == {"retire-alignment": 1}
    assert snap["violations"][0]["detail"] == "synthetic"


def test_property_subset_attach():
    machine, __ = build_loaded()
    monitor = machine.assertions.attach(
        properties=["store-reaches-memory", "retire-alignment"])
    assert monitor.property_ids == ["store-reaches-memory",
                                    "retire-alignment"]
    result = machine.kernel.run(max_cycles=2_000_000)
    assert result.reason == "halt"
    assert machine.assertions.violation_count() == 0
