"""Every property holds on every engine for the Table 4 workload set.

This is the acceptance gate for the catalog: the same invariants,
written once, run on the reference interpreter, the predecode closure
engine and the full out-of-order machine against real benchmark code
(quick-scaled, as the tier-1 experiment tests are).
"""

import pytest

from repro.assertions import attach_funcsim
from repro.experiments.table4 import workload_sources
from repro.funcsim import FuncSim, StepResult
from repro.isa.assembler import assemble
from repro.memory.mainmem import MainMemory
from repro.program.layout import MemoryLayout
from repro.system import build_machine
from repro.workloads.asmlib import build_workload_image

WORKLOADS = sorted(workload_sources(quick=True).items())

STACK_TOP = 0x7FFF0000


@pytest.mark.parametrize("name,source", WORKLOADS,
                         ids=[name for name, __ in WORKLOADS])
@pytest.mark.parametrize("predecode", [False, True],
                         ids=["interp", "predecode"])
def test_workload_clean_on_funcsim(name, source, predecode):
    asm = assemble(source)
    memory = MainMemory()
    memory.store_bytes(asm.text_base, asm.text)
    memory.store_bytes(asm.data_base, asm.data)
    sim = FuncSim(memory, entry=asm.entry, sp=STACK_TOP,
                  predecode_enabled=predecode)
    adapter = attach_funcsim(sim)
    result = sim.run(max_steps=20_000_000)
    adapter.detach()
    assert result is StepResult.HALTED, (name, result)
    assert adapter.monitor.violation_count() == 0, \
        adapter.monitor.violations[:3]


@pytest.mark.parametrize("name,source", WORKLOADS,
                         ids=[name for name, __ in WORKLOADS])
def test_workload_clean_on_pipeline_machine(name, source):
    machine = build_machine()
    image, __ = build_workload_image(source, MemoryLayout())
    machine.kernel.load_process(image)
    machine.assertions.attach()
    result = machine.kernel.run(max_cycles=20_000_000)
    machine.assertions.detach()
    assert result.reason == "halt", (name, result.reason)
    assert machine.assertions.violation_count() == 0, \
        machine.assertions.violations()[:3]
