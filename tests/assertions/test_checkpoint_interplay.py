"""Assertions stay correct — and silent — across checkpoint/restore.

The hub must suspend the engine-level shadows while the checkpoint
layer captures (so wrapper closures never become machine state), emit
the checkpoint/restore events, and treat the restore redirect as a
sanctioned discontinuity rather than a contiguity violation.
"""

from repro.assertions.monitor import AssertionMonitor
from repro.campaign import DEMO_WORKLOAD
from repro.isa.assembler import assemble
from repro.memory.mainmem import PAGE_SIZE
from repro.pipeline.core import EventKind
from repro.system import build_machine

STACK_TOP = 0x7FFF0000
BUDGET = 200_000


def build_monitored_machine():
    asm = assemble(DEMO_WORKLOAD)
    machine = build_machine(with_rse=False)
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.memory.store_bytes(asm.data_base, asm.data)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.regs[29] = STACK_TOP
    machine.assertions.attach()
    return machine


def test_checkpoint_restore_cycle_stays_silent_and_deterministic():
    machine = build_monitored_machine()
    event = machine.pipeline.run(max_cycles=400)
    assert event.kind is EventKind.MAX_CYCLES
    captured = machine.checkpoint()

    event = machine.pipeline.run(max_cycles=BUDGET)
    assert event.kind is EventKind.HALT
    first_regs = list(machine.pipeline.regs)
    first_cycle = machine.pipeline.cycle

    machine.restore(captured)
    event = machine.pipeline.run(max_cycles=BUDGET)
    assert event.kind is EventKind.HALT
    assert list(machine.pipeline.regs) == first_regs
    assert machine.pipeline.cycle == first_cycle

    machine.assertions.detach()
    assert machine.assertions.violation_count() == 0, \
        machine.assertions.violations()[:3]


def test_shadows_resume_after_capture(monkeypatch):
    """Instrumentation must still observe commits after a checkpoint."""
    from repro.isa import semantics

    machine = build_monitored_machine()
    machine.pipeline.run(max_cycles=400)
    machine.checkpoint()
    # Break sw *after* the capture: if the suspended shadows were not
    # re-installed, the dropped stores would sail past unobserved.
    monkeypatch.setitem(semantics.STORE_OPS, "sw",
                        lambda memory, addr, value: None)
    machine.pipeline.run(max_cycles=5_000)
    assert "store-reaches-memory" in \
        machine.assertions.monitor.violated_properties()


def test_checkpoint_capture_excludes_wrapper_state():
    """The captured machine state equals a bare machine's capture."""
    bare = build_monitored_machine()
    bare.assertions.detach()
    bare.pipeline.run(max_cycles=400)
    bare_capture = bare.checkpoint()

    monitored = build_monitored_machine()
    monitored.pipeline.run(max_cycles=400)
    monitored_capture = monitored.checkpoint()

    monitored_fields = set(monitored_capture._state["pipeline"])
    assert monitored_fields & {"step", "run", "resume", "reset_at",
                               "_try_issue_load"} == set()
    assert monitored_fields == set(bare_capture._state["pipeline"])


# ----------------------------------------------- synthetic restore events

class _FakeMemory:
    def __init__(self, versions, page_bytes):
        self.write_versions = versions
        self._pages = page_bytes

    def load_bytes(self, base, size):
        return self._pages[base // PAGE_SIZE][:size]


class _FakeCheckpoint:
    def __init__(self, pages):
        self.pages = pages


def _restore_monitor():
    return AssertionMonitor("pipeline",
                            properties=["page-version-monotonic"])


def test_page_version_rollback_fires():
    monitor = _restore_monitor()
    memory = _FakeMemory({3: 1}, {})
    for handler in monitor.handlers("restore"):
        handler(memory, _FakeCheckpoint({}), {3: 5})
    assert monitor.violated_properties() == {"page-version-monotonic"}


def test_restored_page_content_mismatch_fires():
    monitor = _restore_monitor()
    good = bytes(PAGE_SIZE)
    bad = b"\x01" + bytes(PAGE_SIZE - 1)
    memory = _FakeMemory({0: 7}, {0: bad})
    for handler in monitor.handlers("restore"):
        handler(memory, _FakeCheckpoint({0: good}), {0: 7})
    assert monitor.violated_properties() == {"page-version-monotonic"}


def test_clean_restore_event_is_silent():
    monitor = _restore_monitor()
    payload = bytes(PAGE_SIZE)
    memory = _FakeMemory({0: 8}, {0: payload})
    for handler in monitor.handlers("restore"):
        handler(memory, _FakeCheckpoint({0: payload}), {0: 7})
    assert not monitor.violations
