"""The funcsim adapters: clean runs stay clean, broken engines are caught."""

from repro.assertions import attach_funcsim
from repro.funcsim import FuncSim, StepResult
from repro.isa import semantics
from repro.isa.assembler import assemble
from repro.memory.mainmem import MainMemory

STACK_TOP = 0x7FFF0000

# Stores of every width, both linking-jump shapes (including the
# rd == rs case that only a link-before-target engine gets right),
# loops, and sub-word loads.
EXERCISER = """
main:
    la $gp, scratch
    li $t0, 0x7fb3ff91
    sw $t0, 0($gp)
    sh $t0, 4($gp)
    sb $t0, 6($gp)
    lb $s0, 0($gp)
    lhu $s1, 4($gp)
    li $t1, 4
    li $s2, 0
loop:
    add $s2, $s2, $t1
    sw $s2, 8($gp)
    addi $t1, $t1, -1
    bnez $t1, loop
    jal leaf
    la $t9, target
    jalr $t9, $t9
    addi $s3, $s3, 5
target:
    halt
leaf:
    jr $ra
    .data
scratch:
    .word 0, 0, 0, 0
"""


def run_monitored(source, predecode):
    asm = assemble(source)
    memory = MainMemory()
    memory.store_bytes(asm.text_base, asm.text)
    memory.store_bytes(asm.data_base, asm.data)
    sim = FuncSim(memory, entry=asm.entry, sp=STACK_TOP,
                  predecode_enabled=predecode)
    adapter = attach_funcsim(sim)
    result = sim.run(max_steps=100_000)
    adapter.detach()
    return sim, result, adapter.monitor


def test_interp_clean_run_has_no_violations():
    sim, result, monitor = run_monitored(EXERCISER, predecode=False)
    assert result is StepResult.HALTED
    assert monitor.engine == "interp"
    assert monitor.violation_count() == 0
    assert sim.regs[19] == 5          # $s3: jalr fell through via the link


def test_predecode_clean_run_has_no_violations():
    sim, result, monitor = run_monitored(EXERCISER, predecode=True)
    assert result is StepResult.HALTED
    assert monitor.engine == "predecode"
    assert monitor.violation_count() == 0


def test_monitoring_does_not_perturb_execution():
    asm = assemble(EXERCISER)
    results = []
    for monitored in (False, True):
        memory = MainMemory()
        memory.store_bytes(asm.text_base, asm.text)
        memory.store_bytes(asm.data_base, asm.data)
        sim = FuncSim(memory, entry=asm.entry, sp=STACK_TOP)
        if monitored:
            attach_funcsim(sim)
        result = sim.run(max_steps=100_000)
        results.append((result, sim.instret, list(sim.regs)))
    assert results[0] == results[1]


def test_detach_restores_bare_methods():
    """Instrumentation must never change the instance dict's key set:
    adding/deleting keys would un-share CPython's key-sharing dict and
    tax every hot-loop attribute load even after detach."""
    asm = assemble(EXERCISER)
    memory = MainMemory()
    memory.store_bytes(asm.text_base, asm.text)
    memory.store_bytes(asm.data_base, asm.data)
    sim = FuncSim(memory, entry=asm.entry, sp=STACK_TOP)
    bare_keys = list(sim.__dict__)
    bare_step, bare_run = sim.step, sim.run
    adapter = attach_funcsim(sim)
    assert sim.step is not bare_step and sim.run is not bare_run
    assert list(sim.__dict__) == bare_keys     # same keys, new values
    adapter.detach()
    assert sim.step is bare_step and sim.run is bare_run
    assert list(sim.__dict__) == bare_keys
    assert sim.trace_mem is None


def test_broken_store_engine_fires_store_reaches_memory(monkeypatch):
    """A deliberately broken sb (drops the write) must be caught."""
    monkeypatch.setitem(semantics.STORE_OPS, "sb",
                        lambda memory, addr, value: None)
    source = """
    main:
        la $gp, scratch
        li $t0, 0x55
        sb $t0, 0($gp)
        halt
        .data
    scratch:
        .word 0
    """
    __, result, monitor = run_monitored(source, predecode=False)
    assert result is StepResult.HALTED
    assert "store-reaches-memory" in monitor.violated_properties()
    violation = monitor.violations[0]
    assert violation.operands["expected"] == 0x55
    assert violation.operands["actual"] == 0


def test_broken_link_order_fires_jalr_property(monkeypatch):
    """An engine that reads the jump target before writing the link.

    With rd == rs a correct jalr jumps to the freshly written link
    (pc+4); the classic stale-rs bug jumps to the register's *old*
    value instead.  We emulate that broken engine by redirecting jalr
    to the pre-link destination and expect the checker to object.
    """
    source = """
    main:
        la $t9, wrong
        jalr $t9, $t9
        halt
    wrong:
        halt
    """
    asm = assemble(source)
    stale_target = asm.symbols["wrong"]
    original = semantics.jump_target
    from repro.funcsim import interp as interp_mod

    class StaleSemantics:
        def __getattr__(self, name):
            return getattr(semantics, name)

        @staticmethod
        def jump_target(instr, pc, rs_value):
            if instr.name == "jalr" and instr.dest == instr.rs:
                return stale_target      # stale read: target before link
            return original(instr, pc, rs_value)

    monkeypatch.setattr(interp_mod, "semantics", StaleSemantics())
    __, result, monitor = run_monitored(source, predecode=False)
    assert result is StepResult.HALTED
    assert "jalr-link-before-target" in monitor.violated_properties()
