"""The campaign ASSERTION detection channel and spec compatibility."""

from repro.campaign import (DEMO_WORKLOAD, CampaignSpec, ExecutionOptions,
                            run_campaign)
from repro.campaign.models import Outcome
from repro.campaign.report import format_campaign_report
from repro.campaign.runner import (CampaignContext, build_campaign_machine,
                                   classify)


def small_spec(**overrides):
    options = dict(source=DEMO_WORKLOAD, model="mem-flip", injections=6,
                   seed=7, protected=False, max_cycles=200_000)
    options.update(overrides)
    return CampaignSpec(**options)


def test_spec_serialization_is_fingerprint_stable():
    """Pre-assertion stores must stay resumable: the key is only
    stamped when the feature is on."""
    plain = small_spec()
    assert "assertions" not in plain.to_dict()
    monitored = small_spec(assertions=True)
    assert monitored.to_dict()["assertions"] is True
    assert plain.fingerprint() != monitored.fingerprint()
    rebuilt = CampaignSpec.from_dict(monitored.to_dict())
    assert rebuilt.assertions is True
    assert rebuilt.fingerprint() == monitored.fingerprint()


def test_classify_routes_violations_to_assertion_outcome():
    spec = small_spec(assertions=True)
    ctx = CampaignContext(spec)
    machine, __ = build_campaign_machine(ctx.asm, protected=False,
                                         assertions=True)
    event = machine.pipeline.run(max_cycles=spec.max_cycles)
    assert classify(machine, ctx, event) is Outcome.BENIGN
    machine.assertions.monitor.violation("store-reaches-memory",
                                         "synthetic", pc=0x1000)
    assert classify(machine, ctx, event) is Outcome.ASSERTION


def test_monitored_campaign_runs_and_records_counts():
    run = run_campaign(small_spec(assertions=True))
    assert len(run.records) == 6
    for record in run.records:
        if record["outcome"] != Outcome.NOT_TRIGGERED.value:
            assert "assertions" in record
    report = format_campaign_report(run.records)
    assert "Outcome" in report


def test_unmonitored_records_carry_no_assertion_key():
    run = run_campaign(small_spec())
    assert all("assertions" not in record for record in run.records)


def test_fork_mode_is_disabled_under_assertions():
    """Fork reuses one trunk machine; a live monitor would leak one
    strike's violations into the next classification."""
    monitored = run_campaign(small_spec(assertions=True),
                             options=ExecutionOptions(fork=True))
    cold = run_campaign(small_spec(assertions=True),
                        options=ExecutionOptions(fork=False))
    assert [r["outcome"] for r in monitored.records] == \
        [r["outcome"] for r in cold.records]


def test_report_mentions_assertion_channel_when_it_fires():
    records = [{"outcome": Outcome.ASSERTION.value},
               {"outcome": Outcome.DETECTED.value}]
    report = format_campaign_report(records)
    assert "assertion-flagged" in report
    assert "separate channel" in report
