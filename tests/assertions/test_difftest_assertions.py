"""The difftest ``assertion`` divergence class.

A deliberately broken engine stub — the pipeline's store path drops the
low byte of every word store — must surface through the oracle as an
``assertion`` divergence: the invariant fires on the broken engine and
stays quiet on the reference, and that asymmetry is compared *before*
any downstream state drift.
"""

import pytest

from repro.difftest import fuzz
from repro.difftest.oracle import run_source
from repro.isa import semantics
import repro.pipeline.core as pipeline_core

STORE_PROGRAM = """
main:
    la $gp, scratch
    li $t0, 0x12345678
    sw $t0, 0($gp)
    halt
    .data
scratch:
    .word 0
"""


class _BrokenStores:
    """Semantics proxy for the pipeline only: sw drops its low byte."""

    def __getattr__(self, name):
        return getattr(semantics, name)

    @staticmethod
    def store_to(memory, instr, addr, value):
        if instr.name == "sw":
            value &= 0xFFFFFF00
        semantics.store_to(memory, instr, addr, value)


@pytest.fixture
def broken_pipeline_stores(monkeypatch):
    monkeypatch.setattr(pipeline_core, "semantics", _BrokenStores())


def test_broken_engine_surfaces_as_assertion_divergence(
        broken_pipeline_stores):
    result = run_source(STORE_PROGRAM, assertions=True)
    assert not result.ok
    divergence = result.divergence
    assert divergence.kind == "assertion"
    assert "store-reaches-memory" in divergence.detail
    assert "pipeline" in divergence.engines
    # The violation records ride along for the report.
    assert "pipeline" in result.violations
    assert result.violations["pipeline"][0]["property"] == \
        "store-reaches-memory"


def test_unwatched_oracle_still_sees_state_divergence(
        broken_pipeline_stores):
    """Without assertions the same bug is caught later and less precisely."""
    result = run_source(STORE_PROGRAM, assertions=False)
    assert not result.ok
    assert result.divergence.kind != "assertion"


def test_seeded_fuzz_reports_assertion_divergences(broken_pipeline_stores):
    report = fuzz(seed=1234, count=6, mode="basic", max_steps=20_000,
                  shrink_diverging=False, assertions=True)
    assert not report.ok
    kinds = {entry["divergence"]["kind"] for entry in report.divergences}
    assert "assertion" in kinds
    doc = report.to_dict()
    assert doc["assertions"] is True
    assert doc["ok"] is False


def test_watched_clean_fuzz_stays_clean():
    report = fuzz(seed=1234, count=6, mode="all", max_steps=20_000,
                  shrink_diverging=False, assertions=True)
    assert report.ok
    assert report.violations == []
