"""Attribution: stuck-at IOQ faults belong to the Table 2 watchdog.

An injected stuck-at-'1' on ``checkValid`` must be reported exactly
once, by the self-checking watchdog (which reads the *effective* bits),
and never by the assertion suite (which reads the *architectural* bits
and stands down on stuck entries).  Conversely, an architectural
mis-encoding with no stuck-at override is the assertion suite's to
flag — and a single occurrence is below the watchdog's streak
threshold, so it stays silent.
"""

import sys

from repro.isa.assembler import assemble
from repro.pipeline.core import EventKind
from repro.rse.check import asm_constants
from repro.system import build_machine

sys.path.insert(0, "tests")
from probe_module import TEST_MODULE_ID, ProbeModule          # noqa: E402

STACK_TOP = 0x7FFF0000

CHECK_LOOP = """
    main:
        li $t1, 20
    loop:
        chk PROBE, BLK, 2, 0
        addi $t1, $t1, -1
        bnez $t1, loop
        halt
"""


def build_monitored(source, module):
    machine = build_machine(with_rse=True)
    machine.rse.attach(module)
    constants = asm_constants()
    constants["PROBE"] = TEST_MODULE_ID
    asm = assemble(source, constants=constants)
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.rse.enable_module(TEST_MODULE_ID)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.regs[29] = STACK_TOP
    machine.assertions.attach()
    return machine


def inject_alloc_fault(machine, mutate):
    original_allocate = machine.rse.ioq.allocate

    def faulty_allocate(uop, cycle):
        entry = original_allocate(uop, cycle)
        if uop.instr.is_check:
            mutate(entry)
        return entry

    machine.rse.ioq.allocate = faulty_allocate


def ioq_assertion_counts(machine):
    return {pid: count
            for pid, count in machine.assertions.monitor.counts.items()
            if pid.startswith("ioq-")}


def test_stuck_at_1_goes_to_watchdog_not_assertions():
    module = ProbeModule(delay=5)
    machine = build_monitored(CHECK_LOOP, module)

    def stuck(entry):
        entry.stuck_check_valid = 1

    inject_alloc_fault(machine, stuck)
    event = machine.pipeline.run(max_cycles=100_000)
    machine.assertions.detach()
    assert event.kind is EventKind.HALT
    # One detection channel fired: the watchdog decoupled ...
    assert machine.rse.safe_mode
    assert any("stuck-at-1" in trip.reason
               for trip in machine.rse.selfcheck.trips)
    # ... and the assertion suite attributed nothing to itself.
    assert ioq_assertion_counts(machine) == {}


def test_architectural_miscode_goes_to_assertions_not_watchdog():
    module = ProbeModule(delay=5)
    machine = build_monitored(CHECK_LOOP, module)
    seen = {"count": 0}

    def miscode_once(entry):
        if seen["count"] == 0:
            entry.check_valid = 1          # real bit corrupted, no override
        seen["count"] += 1

    inject_alloc_fault(machine, miscode_once)
    event = machine.pipeline.run(max_cycles=100_000)
    machine.assertions.detach()
    assert event.kind is EventKind.HALT
    # One mis-encoded alloc is below the watchdog's stuck-at-1 streak
    # threshold, so the framework stays coupled ...
    assert not machine.rse.safe_mode
    assert not machine.rse.selfcheck.trips
    # ... and the assertion suite flagged exactly that entry.
    assert ioq_assertion_counts(machine) == {"ioq-alloc-encoding": 1}


def test_healthy_check_traffic_is_silent_everywhere():
    module = ProbeModule(delay=3)
    machine = build_monitored(CHECK_LOOP, module)
    event = machine.pipeline.run(max_cycles=100_000)
    machine.assertions.detach()
    assert event.kind is EventKind.HALT
    assert not machine.rse.safe_mode
    assert not machine.rse.selfcheck.trips
    assert machine.assertions.violation_count() == 0
