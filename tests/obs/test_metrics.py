"""Units for the metric primitives behind Machine.snapshot()['obs']."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_inc_and_snapshot():
    counter = Counter("events")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert counter.snapshot() == {"kind": "counter", "value": 5}
    counter.reset()
    assert counter.value == 0


def test_gauge_tracks_extremes():
    gauge = Gauge("occupancy")
    for value in (3, 9, 1):
        gauge.set(value)
    doc = gauge.snapshot()
    assert doc == {"kind": "gauge", "value": 1, "min": 1, "max": 9}
    gauge.reset()
    assert gauge.snapshot()["min"] is None


def test_histogram_bucketing():
    hist = Histogram("wait", bounds=(1, 4, 16))
    for value in (0, 1, 2, 5, 100):
        hist.observe(value)
    doc = hist.snapshot()
    assert doc["count"] == 5
    assert doc["sum"] == 108
    assert doc["min"] == 0 and doc["max"] == 100
    # bisect_left: value <= bound lands in that bound's bucket.
    assert doc["buckets"] == {"le_1": 2, "le_4": 1, "le_16": 1}
    assert doc["overflow"] == 1
    assert hist.mean == pytest.approx(108 / 5)


def test_histogram_percentile():
    hist = Histogram("lat", bounds=(1, 2, 4, 8))
    for value in (1, 1, 2, 4, 50):
        hist.observe(value)
    assert hist.percentile(50) == 2
    assert hist.percentile(100) == 50      # overflow resolves to max
    assert Histogram("empty").percentile(99) == 0


def test_registry_create_on_first_use():
    registry = MetricsRegistry()
    counter = registry.counter("a")
    assert registry.counter("a") is counter
    registry.gauge("b")
    registry.histogram("c", bounds=(1, 2))
    assert registry.names() == ["a", "b", "c"]
    assert len(registry) == 3
    assert "a" in registry and "zzz" not in registry


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")


def test_registry_snapshot_sorted_and_reset():
    registry = MetricsRegistry()
    registry.counter("z").inc(7)
    registry.counter("a").inc(1)
    assert list(registry.snapshot()) == ["a", "z"]
    registry.reset()
    assert registry.snapshot()["z"]["value"] == 0
