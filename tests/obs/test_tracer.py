"""Units for the bounded cycle-event ring buffer and its JSONL export."""

import json

from repro.obs.tracer import CycleTracer


def test_ring_buffer_bounds_and_drop_accounting():
    tracer = CycleTracer(capacity=4)
    for cycle in range(10):
        tracer.emit(cycle, "tick")
    assert len(tracer) == 4
    assert tracer.emitted_total == 10
    assert tracer.dropped == 6
    # Oldest events were evicted; the window is the most recent four.
    assert [event[0] for event in tracer.events()] == [6, 7, 8, 9]


def test_events_filter_by_kind():
    tracer = CycleTracer(capacity=16)
    tracer.emit(1, "a")
    tracer.emit(2, "b", {"x": 1})
    tracer.emit(3, "a")
    assert [event[0] for event in tracer.events("a")] == [1, 3]
    assert tracer.events("b")[0][2] == {"x": 1}


def test_clear():
    tracer = CycleTracer(capacity=4)
    tracer.emit(1, "a")
    tracer.clear()
    assert len(tracer) == 0 and tracer.emitted_total == 0


def test_export_jsonl_round_trip(tmp_path):
    tracer = CycleTracer(capacity=8)
    tracer.emit(5, "bus_wait", {"wait": 3})
    tracer.emit(9, "sched")
    path = tmp_path / "trace.jsonl"
    written = tracer.export_jsonl(str(path))
    assert written == 2
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    header, first, second = lines
    assert header["kind"] == "trace"
    assert header["capacity"] == 8
    assert header["emitted"] == 2 and header["dropped"] == 0
    assert first == {"kind": "event", "cycle": 5, "event": "bus_wait",
                     "data": {"wait": 3}}
    assert second == {"kind": "event", "cycle": 9, "event": "sched"}


def test_snapshot_shape():
    tracer = CycleTracer(capacity=2)
    tracer.emit(1, "a")
    assert tracer.snapshot() == {"capacity": 2, "emitted": 1,
                                 "buffered": 1, "dropped": 0}
