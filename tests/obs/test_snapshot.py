"""Golden schema for Machine.snapshot() and the deprecation shims.

The snapshot document is the one observable contract every consumer
(CLI --stats-json, experiments, CI artifacts) builds on; these tests pin
its key set so schema drift is an explicit, reviewed change.
"""

import json

import pytest

from repro.obs import SCHEMA
from repro.pipeline.core import PipelineStats
from repro.system import build_machine
from repro.workloads import kmeans

TOP_KEYS = {"schema", "cycle", "pipeline", "memory", "rse", "kernel",
            "assertions", "obs"}
PIPELINE_KEYS = set(PipelineStats.FIELDS) | {"ipc", "predictor"}
MEMORY_KEYS = {"il1", "dl1", "il2", "dl2", "bus"}
CACHE_KEYS = {"accesses", "hits", "misses", "writebacks", "miss_rate"}
KERNEL_KEYS = {"threads", "context_switches", "syscalls",
               "timer_preemptions", "faults", "detections", "checkpoints",
               "requests", "net", "output_events"}
RSE_KEYS = {"checks_seen", "safe_mode", "ioq", "mau", "queues",
            "selfcheck_trips", "modules"}
MODULE_BASE_KEYS = {"enabled", "checks", "errors"}


def run_machine(**kwargs):
    image, __ = kmeans.program(pattern_count=20, clusters=4, iterations=1)
    machine = build_machine(**kwargs)
    result = machine.run_program(image)
    assert result.reason == "halt", result
    return machine, result


def test_bare_machine_golden_keys():
    machine, __ = run_machine()
    doc = machine.snapshot()
    assert set(doc) == TOP_KEYS
    assert doc["schema"] == SCHEMA
    assert doc["rse"] is None                    # key present, value None
    assert set(doc["pipeline"]) == PIPELINE_KEYS
    assert set(doc["memory"]) == MEMORY_KEYS
    for level in ("il1", "dl1", "il2", "dl2"):
        assert set(doc["memory"][level]) == CACHE_KEYS
    assert set(doc["kernel"]) == KERNEL_KEYS
    assert set(doc["obs"]) == {"probes", "metrics", "trace"}
    assert doc["cycle"] == machine.cycle
    assert doc["pipeline"]["instret"] > 0


def test_rse_machine_golden_keys():
    machine, __ = run_machine(with_rse=True, modules=("icm", "ddt"))
    doc = machine.snapshot()
    assert set(doc) == TOP_KEYS                  # same top level either way
    assert set(doc["rse"]) == RSE_KEYS
    assert set(doc["rse"]["modules"]) == {"ICM", "DDT"}
    for module_doc in doc["rse"]["modules"].values():
        assert MODULE_BASE_KEYS <= set(module_doc)
    assert set(doc["rse"]["ioq"]) == {"allocated", "occupancy"}


def test_snapshot_is_json_serializable():
    machine, __ = run_machine(with_rse=True, modules=("icm",))
    round_tripped = json.loads(json.dumps(machine.snapshot()))
    assert round_tripped["schema"] == SCHEMA


def test_run_result_carries_snapshot():
    machine, result = run_machine()
    assert result.snapshot is not None
    assert result.snapshot["schema"] == SCHEMA
    assert result.snapshot["pipeline"]["cycles"] == result.cycles


def test_machine_reset_stats_zeroes_counters_only():
    machine, __ = run_machine(with_rse=True, modules=("icm",))
    before = machine.snapshot()
    assert before["pipeline"]["instret"] > 0
    machine.reset_stats()
    after = machine.snapshot()
    assert after["pipeline"]["instret"] == 0
    assert after["pipeline"]["cycles"] == 0
    assert after["memory"]["il1"]["accesses"] == 0
    assert after["memory"]["bus"]["cpu_transfers"] == 0
    assert after["kernel"]["context_switches"] == 0
    assert after["rse"]["checks_seen"] == 0
    # Architectural state survives: the machine cycle keeps advancing.
    assert machine.cycle == before["cycle"]


def test_legacy_stats_shims_are_gone():
    """The pre-snapshot accessors were removed, not left half-working.

    ``snapshot()`` is the one stats surface; a stale caller should get
    an immediate AttributeError, never silently diverging counters.
    """
    machine, __ = run_machine(with_rse=True, modules=("icm",))
    assert not hasattr(machine.pipeline.stats, "as_dict")
    assert not hasattr(machine.hierarchy, "stats")
    assert not hasattr(machine.rse, "stats")
    assert set(machine.pipeline.stats.snapshot()) == \
        set(PipelineStats.FIELDS) | {"ipc"}
