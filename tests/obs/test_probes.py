"""Probe attach/detach hygiene and the zero-cost-when-off contract.

Probes instrument by shadowing bound methods with instance attributes,
so "off" must mean *no wrapper anywhere* (the class methods run bare)
and "on" must be architecturally invisible (identical retired
instruction stream and cycle count).
"""

import pytest

from repro.system import build_machine
from repro.workloads import kmeans

ALL_PROBES = ("fetch_stall", "mispredict", "bus", "rse", "sched", "commit")


def build_loaded(with_rse=False, modules=()):
    image, __ = kmeans.program(pattern_count=20, clusters=4, iterations=1)
    machine = build_machine(with_rse=with_rse, modules=modules)
    machine.kernel.load_process(image)
    return machine


def run_to_halt(machine):
    result = machine.kernel.run()
    assert result.reason == "halt", result
    return result


def shadowed_attrs(machine):
    """Instance attributes that would indicate a live probe wrapper."""
    spots = [
        (machine.hierarchy, "ifetch"),
        (machine.pipeline.predictor, "record_hit"),
        (machine.hierarchy.bus, "cpu_transfer"),
        (machine.hierarchy.bus, "mau_transfer"),
        (machine.kernel, "_schedule"),
    ]
    if machine.rse is not None:
        spots += [(machine.rse, "on_dispatch"), (machine.rse, "on_commit"),
                  (machine.rse, "note_error_transition")]
    return [attr for obj, attr in spots if attr in vars(obj)]


def test_probes_on_off_equivalence():
    """Attaching every probe must not change architectural results."""
    baseline = build_loaded(with_rse=True)
    run_to_halt(baseline)

    probed = build_loaded(with_rse=True)
    for name in ALL_PROBES:
        probed.obs.attach(name)
    run_to_halt(probed)

    base_doc, probe_doc = baseline.snapshot(), probed.snapshot()
    assert probe_doc["pipeline"]["instret"] == base_doc["pipeline"]["instret"]
    assert probe_doc["pipeline"]["cycles"] == base_doc["pipeline"]["cycles"]
    assert probe_doc["memory"] == base_doc["memory"]


def test_detach_restores_bare_methods():
    machine = build_loaded(with_rse=True)
    assert shadowed_attrs(machine) == []        # nothing before attach
    for name in ALL_PROBES:
        machine.obs.attach(name)
    assert shadowed_attrs(machine) != []
    machine.obs.detach()                        # all probes
    assert shadowed_attrs(machine) == []
    assert machine.obs.attached() == []
    assert machine.snapshot()["obs"]["probes"] == []


def test_attach_is_idempotent_and_validates_names():
    machine = build_loaded()
    machine.obs.attach("fetch_stall")
    machine.obs.attach("fetch_stall")           # second attach is a no-op
    assert machine.obs.attached() == ["fetch_stall"]
    with pytest.raises(KeyError):
        machine.obs.attach("nonsense")


def test_rse_probe_requires_rse():
    machine = build_loaded()                    # bare machine
    with pytest.raises(ValueError):
        machine.obs.attach("rse")


def test_probes_populate_metrics_and_trace():
    machine = build_loaded(with_rse=True)
    machine.obs.attach("fetch_stall")
    machine.obs.attach("bus")
    machine.obs.attach("sched")
    run_to_halt(machine)
    doc = machine.snapshot()["obs"]
    assert sorted(doc["probes"]) == ["bus", "fetch_stall", "sched"]
    metrics = doc["metrics"]
    assert metrics["pipeline.fetch_miss_events"]["value"] > 0
    assert metrics["pipeline.fetch_miss_latency"]["count"] > 0
    assert metrics["bus.cpu_wait"]["count"] > 0
    assert doc["trace"]["emitted"] > 0


def test_commit_probe_exposes_tracer():
    machine = build_loaded(with_rse=True)
    machine.obs.attach("commit", limit=50)
    run_to_halt(machine)
    tracer = machine.obs.probe("commit").tracer
    assert len(tracer.entries) == 50
    machine.obs.detach("commit")


def test_reattach_with_conflicting_kwargs_raises():
    """Silently keeping the old configuration hid real bugs: a second
    attach("commit", limit=200) used to return the limit=50 probe."""
    machine = build_loaded(with_rse=True)
    first = machine.obs.attach("commit", limit=50)
    assert machine.obs.attach("commit", limit=50) is first   # same: no-op
    with pytest.raises(ValueError) as excinfo:
        machine.obs.attach("commit", limit=200)
    assert "commit" in str(excinfo.value)
    assert "detach" in str(excinfo.value)
    # The original probe stays attached and configured.
    assert machine.obs.attached() == ["commit"]
    assert machine.obs.probe("commit") is first


def test_attach_detach_reattach_cycle_accepts_new_kwargs():
    machine = build_loaded(with_rse=True)
    machine.obs.attach("commit", limit=50)
    machine.obs.detach("commit")
    probe = machine.obs.attach("commit", limit=200)   # fresh config is fine
    assert machine.obs.probe("commit") is probe
    machine.obs.detach("commit")
    machine.obs.attach("commit", limit=200)
    machine.obs.detach()
    assert machine.obs.attached() == []
