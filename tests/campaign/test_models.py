"""Fault-model registry: spaces, sampling, and per-model behavior."""

import random

import pytest

from repro.campaign.models import MODELS, Outcome, get_model
from repro.campaign.runner import CampaignContext, CampaignSpec
from repro.campaign.space import derive_seed, sample_injections

LOOP = """
    main:
        li $t0, 0
        li $t1, 25
        li $s0, 0
    loop:
        add $s0, $s0, $t0
        addi $t0, $t0, 1
        blt $t0, $t1, loop
        halt
"""

DATA_LOOP = """
    .data
vals:   .word 10, 20, 30, 40
    .text
    main:
        li $t0, 0
        li $t1, 4
        li $s0, 0
        la $t3, vals
    loop:
        lw $t2, 0($t3)
        add $s0, $s0, $t2
        addi $t3, $t3, 4
        addi $t0, $t0, 1
        blt $t0, $t1, loop
        halt
"""


def make_ctx(source=LOOP, model="instr-flip", **kwargs):
    spec = CampaignSpec(source=source, model=model, max_cycles=100_000,
                        **kwargs)
    return CampaignContext(spec)


def test_registry_has_all_four_models():
    assert {"instr-flip", "reg-flip", "mem-flip", "cf-corrupt"} <= set(MODELS)


def test_unknown_model_rejected():
    with pytest.raises(ValueError):
        get_model("alpha-ray")


def test_context_enumerates_targets():
    ctx = make_ctx(DATA_LOOP)
    assert ctx.checked_pcs                      # control-flow pcs get checked
    assert set(ctx.control_pcs) == set(ctx.checked_pcs)
    assert len(ctx.data_words) == 4
    assert ctx.golden_cycles > 0
    assert 16 in ctx.golden_regs


def test_instr_flip_samples_within_checked_space():
    ctx = make_ctx()
    model = get_model("instr-flip", bits=2)
    space = model.build_space(ctx)
    rng = random.Random(0)
    for __ in range(20):
        params = model.sample(rng, space)
        assert params["pc"] in ctx.checked_pcs
        assert len(params["bits"]) == 2
        assert all(0 <= bit < 32 for bit in params["bits"])


def test_instr_flip_requires_checked_instructions():
    ctx = make_ctx("main: halt\n")
    with pytest.raises(ValueError):
        get_model("instr-flip").build_space(ctx)


def test_reg_flip_samples_within_run_window():
    ctx = make_ctx()
    model = get_model("reg-flip")
    space = model.build_space(ctx)
    rng = random.Random(1)
    for __ in range(20):
        params = model.sample(rng, space)
        assert 1 <= params["reg"] < 32
        assert 1 <= params["cycle"] < ctx.golden_cycles


def test_mem_flip_targets_data_segment():
    ctx = make_ctx(DATA_LOOP)
    space = get_model("mem-flip").build_space(ctx)
    assert space["addrs"] == ctx.data_words


def test_mem_flip_falls_back_to_stack_without_data():
    ctx = make_ctx(LOOP)
    space = get_model("mem-flip").build_space(ctx)
    assert space["addrs"]
    assert all(addr < ctx.stack_top for addr in space["addrs"])


def test_derived_seeds_are_stable_and_distinct():
    seeds = [derive_seed(42, index) for index in range(100)]
    assert seeds == [derive_seed(42, index) for index in range(100)]
    assert len(set(seeds)) == 100
    assert seeds != [derive_seed(43, index) for index in range(100)]


def test_sampling_is_order_independent():
    ctx = make_ctx()
    model = ctx.model
    full = sample_injections(model, ctx, 20, 9)
    again = sample_injections(model, ctx, 20, 9)
    assert [injection.params for injection in full] == \
        [injection.params for injection in again]
    # Injection #15 is the same whether or not the others were generated.
    prefix = sample_injections(model, ctx, 16, 9)
    assert prefix[15].params == full[15].params
    assert prefix[15].seed == full[15].seed


def test_injection_round_trips_through_dict():
    ctx = make_ctx()
    injection = sample_injections(ctx.model, ctx, 1, 3)[0]
    from repro.campaign.models import Injection

    clone = Injection.from_dict(injection.to_dict())
    assert clone.id == injection.id
    assert clone.params == injection.params


def test_outcome_values_cover_crash():
    assert Outcome.CRASHED.value == "crashed"
    assert Outcome.NOT_TRIGGERED.value == "not_triggered"
    assert Outcome.ASSERTION.value == "assertion"
    assert len(Outcome) == 8
