"""JSONL store semantics and the report layer."""

import pytest

from repro.campaign.report import (detection_stats, format_campaign_report,
                                   format_comparison, outcome_counts)
from repro.campaign.store import ResultStore, StoreMismatch


def record(run_id, outcome):
    return {"id": run_id, "model": "instr-flip", "seed": run_id,
            "params": {"pc": 0x1000 + 4 * run_id, "bits": [run_id % 32]},
            "outcome": outcome, "event": "halt", "pc": 0, "cycles": 100}


# ----------------------------------------------------------------- store

def test_store_round_trip(tmp_path):
    store = ResultStore(str(tmp_path / "store.jsonl"))
    store.write_header("fp123", {"model": "instr-flip"})
    records = [record(0, "detected"), record(1, "benign")]
    for item in records:
        store.append(item)
    store.close()

    header, loaded = store.load()
    assert header["fingerprint"] == "fp123"
    assert loaded == records
    assert store.done_ids() == {0, 1}
    assert store.record_for(1) == records[1]
    assert store.record_for(7) is None


def test_store_tolerates_torn_tail(tmp_path):
    store = ResultStore(str(tmp_path / "store.jsonl"))
    store.write_header("fp", {})
    store.append(record(0, "detected"))
    store.close()
    with open(store.path, "a") as handle:
        handle.write('{"kind": "run", "id": 1, "outco')
    __, loaded = store.load()
    assert [item["id"] for item in loaded] == [0]


def test_store_verify_rejects_other_fingerprint(tmp_path):
    store = ResultStore(str(tmp_path / "store.jsonl"))
    store.write_header("fp-a", {})
    store.close()
    with pytest.raises(StoreMismatch):
        store.verify("fp-b")


def test_headerless_file_rejected(tmp_path):
    path = tmp_path / "store.jsonl"
    path.write_text('{"kind": "run", "id": 0, "outcome": "benign"}\n')
    with pytest.raises(StoreMismatch):
        ResultStore(str(path)).load()


# ---------------------------------------------------------------- report

def test_outcome_counts_cover_every_outcome():
    counts = outcome_counts([record(0, "detected"), record(1, "detected"),
                             record(2, "hung")])
    assert counts["detected"] == 2
    assert counts["hung"] == 1
    assert counts["crashed"] == 0


def test_detection_stats_with_interval():
    records = [record(index, "detected") for index in range(40)]
    detected, total, det_rate, (low, high) = detection_stats(records)
    assert (detected, total, det_rate) == (40, 40, 1.0)
    assert high == 1.0
    assert 0.89 < low < 0.95        # Wilson: 40/40 is not "exactly 100%"


def test_campaign_report_mentions_rates():
    records = [record(0, "detected"), record(1, "corrupted"),
               record(2, "benign")]
    text = format_campaign_report(records, title="Unit campaign")
    assert "Unit campaign" in text
    assert "detection rate: 1/3" in text
    assert "Wilson" in text
    assert "damaging runs:  1/3" in text


def test_comparison_report_shows_both_sides():
    protected = [record(index, "detected") for index in range(10)]
    baseline = [record(index, "corrupted") for index in range(8)]
    baseline.append(record(8, "benign"))
    text = format_comparison(protected, baseline)
    assert "Protected" in text and "Unprotected" in text
    assert "10/10" in text
    assert "8/9" in text
