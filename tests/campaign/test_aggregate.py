"""Live aggregation: tailing, torn lines, dedup, Wilson matrices."""

import json
import os

import pytest

from repro.analysis.stats import wilson_interval
from repro.campaign import (CampaignAggregator, CampaignSpec, DEMO_WORKLOAD,
                            ExecutionOptions, StoreTail, run_campaign)
from repro.campaign.aggregate import SCHEMA, discover_stores
from repro.campaign.models import Outcome
from repro.campaign.report import format_campaign_report
from repro.campaign.store import StoreMismatch


def spec_for(**kwargs):
    kwargs.setdefault("model", "reg-flip")
    kwargs.setdefault("injections", 8)
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("max_cycles", 30_000)
    return CampaignSpec(DEMO_WORKLOAD, **kwargs)


def write_store(path, fingerprint, records, spec=None):
    with open(path, "w") as handle:
        header = {"kind": "campaign", "fingerprint": fingerprint,
                  "spec": spec or {"injections": len(records)}}
        handle.write(json.dumps(header) + "\n")
        for record in records:
            handle.write(json.dumps(dict(record, kind="run")) + "\n")


def record(run_id, outcome, cycles=100):
    return {"id": run_id, "outcome": outcome, "cycles": cycles}


# -------------------------------------------------------------------- tailing

def test_tail_consumes_only_complete_lines(tmp_path):
    path = str(tmp_path / "store.jsonl")
    tail = StoreTail(path)
    assert tail.poll() == []                     # file not created yet

    with open(path, "w") as handle:
        handle.write('{"kind": "run", "id": 0, "outcome": "benign"}\n')
        handle.write('{"kind": "run", "id": 1, "outc')     # torn, no newline
    payloads = tail.poll()
    assert [payload["id"] for payload in payloads] == [0]

    with open(path, "a") as handle:
        handle.write('ome": "benign"}\n')                  # newline lands
    payloads = tail.poll()
    assert [payload["id"] for payload in payloads] == [1]
    assert tail.poll() == []                               # nothing new


def test_tail_skips_unparsable_mid_file_line(tmp_path):
    path = str(tmp_path / "store.jsonl")
    with open(path, "w") as handle:
        handle.write('{"kind": "run", "id": 0, "outcome": "benign"}\n')
        handle.write('{"kind": "run", "id": 9, "torn\n')   # terminated tear
        handle.write('{"kind": "run", "id": 1, "outcome": "benign"}\n')
    payloads = StoreTail(path).poll()
    assert [payload["id"] for payload in payloads] == [0, 1]


# ---------------------------------------------------------------- aggregation

def test_aggregator_is_incremental_and_dedups(tmp_path):
    a = str(tmp_path / "a.jsonl")
    b = str(tmp_path / "b.jsonl")
    write_store(a, "f" * 16, [record(0, "detected"), record(1, "benign")])
    write_store(b, "f" * 16, [record(1, "benign"),     # duplicate id
                              record(2, "corrupted")])
    aggregator = CampaignAggregator([a, b])
    assert aggregator.poll() == 3                # 4 records, 1 duplicate
    assert aggregator.done == 3
    assert aggregator.counts["detected"] == 1
    assert aggregator.counts["benign"] == 1      # counted once
    assert aggregator.poll() == 0                # nothing new

    with open(a, "a") as handle:
        handle.write(json.dumps(dict(record(3, "hung"), kind="run")) + "\n")
    assert aggregator.poll() == 1
    assert aggregator.counts["hung"] == 1


def test_aggregator_rejects_foreign_fingerprint(tmp_path):
    a = str(tmp_path / "a.jsonl")
    b = str(tmp_path / "b.jsonl")
    write_store(a, "a" * 16, [record(0, "benign")])
    write_store(b, "b" * 16, [record(1, "benign")])
    with pytest.raises(StoreMismatch):
        CampaignAggregator([a, b]).poll()


def test_detection_matrix_wilson_math(tmp_path):
    path = str(tmp_path / "store.jsonl")
    records = ([record(i, "detected") for i in range(6)]
               + [record(6, "benign"), record(7, "corrupted"),
                  record(8, "not_triggered")])
    write_store(path, "f" * 16, records)
    aggregator = CampaignAggregator([path], expected=9)
    aggregator.poll()
    matrix = aggregator.detection_matrix()
    assert matrix["runs"] == 9
    cell = matrix["outcomes"]["detected"]
    assert cell["count"] == 6
    assert cell["share"] == pytest.approx(6 / 9)
    assert tuple(cell["ci"]) == wilson_interval(6, 9)
    # NOT_TRIGGERED excluded from the detection denominator.
    detection = matrix["detection"]
    assert detection["injected"] == 8
    assert detection["detected"] == 6
    assert detection["rate"] == pytest.approx(6 / 8)
    assert tuple(detection["ci"]) == wilson_interval(6, 8)
    assert matrix["damaging"] == 1               # the corrupted run
    assert aggregator.complete()


def test_snapshot_schema_and_metrics_rollup(tmp_path):
    path = str(tmp_path / "store.jsonl")
    write_store(path, "f" * 16,
                [record(0, "benign", cycles=500),
                 record(1, "detected", cycles=900)],
                spec={"injections": 4})
    aggregator = CampaignAggregator([path])
    aggregator.poll()
    snapshot = aggregator.snapshot()
    assert snapshot["schema"] == SCHEMA
    assert snapshot["fingerprint"] == "f" * 16
    assert snapshot["expected"] == 4             # from the stored spec
    assert snapshot["done"] == 2
    assert snapshot["complete"] is False
    metrics = snapshot["metrics"]
    assert metrics["campaign.records"]["value"] == 2
    assert metrics["campaign.run_cycles"]["count"] == 2
    assert metrics["campaign.run_cycles"]["sum"] == 1400
    assert metrics["campaign.progress"]["value"] == 2
    json.dumps(snapshot)                         # JSON-serializable as-is


def test_final_report_matches_record_scan(tmp_path):
    """The live aggregator's final report is character-identical to the
    post-hoc report over the full record list."""
    spec = spec_for()
    store = str(tmp_path / "camp.jsonl")
    run = run_campaign(spec, options=ExecutionOptions(shards=2,
                                                      store=store))
    aggregator = CampaignAggregator.watch(store)
    aggregator.poll()
    assert aggregator.complete()
    assert aggregator.final_report() == format_campaign_report(run.records)
    assert aggregator.render()                   # renders without records


def test_discover_stores_finds_shard_siblings(tmp_path):
    store = str(tmp_path / "camp.jsonl")
    run_campaign(spec_for(injections=6),
                 options=ExecutionOptions(shards=2, store=store))
    paths = discover_stores(store)
    assert [os.path.basename(path) for path in paths] == \
        ["camp.shard000.jsonl", "camp.shard001.jsonl", "camp.jsonl"]
