"""Text-segment corruption vs the predecode cache.

The campaign fault models mutate instruction memory with plain
``store_word`` calls — before the run (``instr-flip``'s arm) or in the
middle of it (``mem-flip``-style fires).  The shared predecode cache
must never serve a stale decode of a corrupted word: subsequent
execution has to change, and the ICM's binary comparison has to see the
raw corrupted word in memory.
"""

from repro.campaign.models import Outcome
from repro.campaign.runner import (CampaignContext, CampaignSpec,
                                   build_campaign_machine, classify)
from repro.isa.encoding import flip_bit
from repro.pipeline.core import EventKind

LOOP = """
    main:
        li $t0, 0
        li $t1, 2000
        li $s0, 0
    loop:
        add $s0, $s0, $t0
        addi $t0, $t0, 1
        blt $t0, $t1, loop
        halt
"""


def spec_for(**kwargs):
    kwargs.setdefault("injections", 1)
    kwargs.setdefault("seed", 42)
    kwargs.setdefault("max_cycles", 100_000)
    kwargs.setdefault("protected", False)
    return CampaignSpec(source=LOOP, **kwargs)


def corrupt_text_mid_run(protected, addr_of, trigger=400, bit=1):
    """Run to *trigger* cycles, flip a bit of an already-hot text word
    chosen by ``addr_of(ctx)``, then run out the budget."""
    ctx = CampaignContext(spec_for(protected=protected))
    machine, __ = build_campaign_machine(ctx.asm, protected=protected)
    event = machine.pipeline.run(max_cycles=trigger)
    assert event.kind is EventKind.MAX_CYCLES
    addr = addr_of(ctx)
    corrupted = flip_bit(machine.memory.load_word(addr), bit)
    machine.memory.store_word(addr, corrupted)
    event = machine.pipeline.run(max_cycles=ctx.spec.max_cycles)
    return ctx, machine, event, addr, corrupted


def test_mid_run_text_flip_changes_execution_after_warmup():
    # Strike the loop-body `add` (4th text word), executed dozens of
    # times before the flip lands.
    ctx, machine, event, addr, corrupted = corrupt_text_mid_run(
        False, lambda ctx: ctx.asm.text_base + 12)
    # Memory (what ICM-style binary comparison reads) holds the raw
    # corrupted word, not the word the cache first decoded.
    assert machine.memory.load_word(addr) == corrupted
    outcome = classify(machine, ctx, event)
    assert outcome is not Outcome.BENIGN, (
        "stale predecode entry: corrupted text had no effect")


def test_mid_run_text_flip_is_detected_by_icm():
    # On a protected machine a strike on an ICM-checked (control)
    # instruction must trip the binary comparison — which only happens
    # if fetch sees the post-corruption word, not a stale decode.
    ctx, machine, event, __, __ = corrupt_text_mid_run(
        True, lambda ctx: min(ctx.checked_pcs))
    assert classify(machine, ctx, event) is Outcome.DETECTED


def test_armed_instr_flip_still_does_damage_unprotected():
    # The pre-run arm path (instr-flip) stores before first fetch; with
    # a cold cache this must keep behaving exactly as before predecode.
    from repro.campaign import run_campaign
    run = run_campaign(spec_for(model="instr-flip", injections=16,
                                protected=False, seed=7))
    damage = (run.count(Outcome.FAULTED) + run.count(Outcome.CORRUPTED)
              + run.count(Outcome.HUNG))
    assert damage > 0
