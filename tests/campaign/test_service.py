"""Sharded campaign service: planning, work stealing, crash recovery."""

import os

import pytest

from repro.campaign import (CampaignSpec, DEMO_WORKLOAD, ExecutionOptions,
                            ResultStore, StoreMismatch, run_campaign)
from repro.campaign.runner import CampaignContext
from repro.campaign.service import (ImageEngine, ServiceError,
                                    build_campaign_image, merge_shards,
                                    plan_shards, run_service,
                                    shard_store_path)
from repro.campaign.space import sample_injections


def spec_for(**kwargs):
    kwargs.setdefault("model", "reg-flip")
    kwargs.setdefault("injections", 10)
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("max_cycles", 30_000)
    return CampaignSpec(DEMO_WORKLOAD, **kwargs)


# ------------------------------------------------------------------ planning

def test_plan_shards_covers_range_exactly():
    plan = plan_shards(10, 3)
    assert plan == [(0, 0, 4), (1, 4, 7), (2, 7, 10)]
    covered = [index for __, start, stop in plan
               for index in range(start, stop)]
    assert covered == list(range(10))


def test_plan_shards_edges():
    assert plan_shards(0, 4) == []
    assert plan_shards(3, 8) == [(0, 0, 1), (1, 1, 2), (2, 2, 3)]  # clamped
    assert plan_shards(5, 1) == [(0, 0, 5)]
    assert plan_shards(5, 0) == [(0, 0, 5)]          # at least one shard


def test_shard_store_path_layout():
    assert shard_store_path("/tmp/camp.jsonl", 2) == "/tmp/camp.shard002.jsonl"
    assert shard_store_path("camp", 0) == "camp.shard000.jsonl"


# ------------------------------------------------------ sharded == serial

def test_sharded_records_match_serial_byte_identical(tmp_path):
    spec = spec_for()
    serial_path = str(tmp_path / "serial.jsonl")
    serial = run_campaign(spec, options=ExecutionOptions(store=serial_path))

    sharded_path = str(tmp_path / "sharded.jsonl")
    sharded = run_campaign(spec, options=ExecutionOptions(
        workers=2, shards=3, store=sharded_path))
    assert sharded.records == serial.records
    # The merged store is byte-identical to the single-process store.
    assert open(sharded_path, "rb").read() == \
        open(serial_path, "rb").read()
    # Shard stores exist beside it and are individually verifiable.
    for shard_id in range(3):
        path = shard_store_path(sharded_path, shard_id)
        header, records = ResultStore(path).verify(spec.fingerprint())
        shard = header["shard"]
        assert shard["id"] == shard_id
        assert all(shard["start"] <= record["id"] < shard["stop"]
                   for record in records)


def test_sharded_without_store_uses_tempdir(tmp_path):
    spec = spec_for(injections=6)
    serial = run_campaign(spec)
    sharded = run_campaign(spec, options=ExecutionOptions(shards=2))
    assert sharded.records == serial.records


# ----------------------------------------------------------- crash recovery

def test_service_survives_sigkilled_worker(tmp_path, monkeypatch):
    """Acceptance: SIGKILL a worker mid-flight; the service still
    converges to the exact single-process record set and consumes the
    kill flag (proving a worker really died)."""
    spec = spec_for(injections=12)
    serial = run_campaign(spec)

    flag = tmp_path / "kill.flag"
    flag.touch()
    monkeypatch.setenv("REPRO_CAMPAIGN_KILL_FILE", str(flag))
    monkeypatch.setenv("REPRO_CAMPAIGN_KILL_AFTER", "2")
    store = str(tmp_path / "camp.jsonl")
    sharded = run_campaign(spec, options=ExecutionOptions(
        workers=2, shards=4, store=store))
    assert not flag.exists(), "kill flag not consumed - no worker died"
    assert sharded.records == serial.records


def test_resume_from_truncated_shard_store(tmp_path):
    """Torn shard stores (worker killed mid-write) resume to the full
    record set."""
    spec = spec_for(injections=8)
    store = str(tmp_path / "camp.jsonl")
    full = run_campaign(spec, options=ExecutionOptions(shards=2,
                                                       store=store))
    # Damage shard 0: drop its last record and leave a torn tail; remove
    # the merged store so the service has to re-merge.
    shard0 = shard_store_path(store, 0)
    lines = open(shard0).readlines()
    with open(shard0, "w") as handle:
        handle.writelines(lines[:-1])
        handle.write('{"kind": "run", "id": 3, "torn')
    os.remove(store)

    resumed = run_campaign(spec, options=ExecutionOptions(shards=2,
                                                          store=store))
    assert resumed.records == full.records
    assert ResultStore(store).verify(spec.fingerprint())


def test_fully_covered_merged_store_short_circuits(tmp_path):
    spec = spec_for(injections=6)
    store = str(tmp_path / "camp.jsonl")
    full = run_campaign(spec, options=ExecutionOptions(shards=2,
                                                       store=store))
    # Remove the shard stores: a covered merged store must be enough.
    for shard_id in range(2):
        os.remove(shard_store_path(store, shard_id))
    seen = []
    again = run_campaign(spec, options=ExecutionOptions(shards=2,
                                                        store=store),
                         progress=lambda done, total: seen.append(done))
    assert again.records == full.records
    assert seen == [6]


# -------------------------------------------------------------- image engine

def test_image_engine_records_match_fresh_machines():
    spec = spec_for(injections=5)
    ctx = CampaignContext(spec)
    image = build_campaign_image(spec)
    engine = ImageEngine(ctx, image)
    injections = sample_injections(ctx.model, ctx, spec.injections,
                                   spec.seed)
    fresh = run_campaign(spec)
    assert [engine.run(injection) for injection in injections] == \
        fresh.records


def test_image_engine_rejects_foreign_image():
    from repro.checkpoint import CheckpointError

    spec = spec_for(injections=4)
    other = spec_for(injections=4, seed=8)
    ctx = CampaignContext(spec)
    with pytest.raises(CheckpointError):
        ImageEngine(ctx, build_campaign_image(other))


# -------------------------------------------------------------------- merge

def test_merge_rejects_foreign_shard(tmp_path):
    spec = spec_for(injections=6)
    other = spec_for(injections=6, seed=8)
    store = str(tmp_path / "camp.jsonl")
    run_campaign(spec, options=ExecutionOptions(shards=2, store=store))
    foreign = str(tmp_path / "foreign.jsonl")
    run_campaign(other, options=ExecutionOptions(store=foreign))
    with pytest.raises(StoreMismatch):
        merge_shards(spec, [shard_store_path(store, 0), foreign])


def test_merge_detects_missing_coverage(tmp_path):
    spec = spec_for(injections=6)
    store = str(tmp_path / "camp.jsonl")
    run_campaign(spec, options=ExecutionOptions(shards=2, store=store))
    with pytest.raises(ServiceError, match="missing"):
        merge_shards(spec, [shard_store_path(store, 0)])
    with pytest.raises(ServiceError, match="missing|store"):
        merge_shards(spec, [shard_store_path(store, 0),
                            str(tmp_path / "nope.jsonl")])


def test_run_service_requires_shards_option(tmp_path):
    spec = spec_for(injections=4)
    run = run_service(spec, ExecutionOptions(shards=1))
    assert len(run.records) == 4
    assert run.options.shards == 1
