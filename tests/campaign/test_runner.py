"""Campaign execution: determinism, parallelism, resume, replay."""

import os

import pytest

from repro.campaign import (CampaignSpec, DEMO_WORKLOAD, ExecutionOptions,
                            Outcome, replay, resume_spec, run_campaign)
from repro.campaign.store import ResultStore, StoreMismatch

LOOP = """
    main:
        li $t0, 0
        li $t1, 25
        li $s0, 0
    loop:
        add $s0, $s0, $t0
        addi $t0, $t0, 1
        blt $t0, $t1, loop
        halt
"""


def spec_for(model="instr-flip", source=LOOP, **kwargs):
    kwargs.setdefault("injections", 12)
    kwargs.setdefault("seed", 42)
    kwargs.setdefault("max_cycles", 100_000)
    return CampaignSpec(source=source, model=model, **kwargs)


# ----------------------------------------------------------- determinism

def test_same_seed_same_records():
    """Regression: identical seed + config => identical per-run records."""
    one = run_campaign(spec_for())
    two = run_campaign(spec_for())
    assert one.records == two.records


def test_different_seed_different_records():
    one = run_campaign(spec_for(seed=1))
    two = run_campaign(spec_for(seed=2))
    assert [record["params"] for record in one.records] != \
        [record["params"] for record in two.records]


def test_mid_run_models_are_deterministic_too():
    spec = spec_for(model="reg-flip", protected=False)
    assert run_campaign(spec).records == run_campaign(spec).records


# ------------------------------------------------------------ protection

def test_icm_detects_all_instruction_flips():
    run = run_campaign(spec_for(injections=20))
    assert run.detection_rate == 1.0


def test_cf_corruption_detected_by_icm():
    run = run_campaign(spec_for(model="cf-corrupt", injections=10))
    assert run.detection_rate == 1.0


def test_unprotected_instruction_flips_do_damage():
    run = run_campaign(spec_for(protected=False, injections=20, seed=7))
    assert run.detection_rate == 0.0
    damage = (run.count(Outcome.FAULTED) + run.count(Outcome.CORRUPTED)
              + run.count(Outcome.HUNG))
    assert damage > 0


def test_non_icm_models_classify_outcomes():
    """Register-file and data-memory strikes yield classified outcomes."""
    for model in ("reg-flip", "mem-flip"):
        run = run_campaign(spec_for(model=model, source=DEMO_WORKLOAD,
                                    protected=False, injections=15, seed=11))
        assert len(run.records) == 15
        values = {outcome.value for outcome in Outcome}
        assert all(record["outcome"] in values for record in run.records)
        assert run.count(Outcome.DETECTED) == 0     # ICM doesn't cover these
    # Data strikes on the live array must corrupt at least one run.
    run = run_campaign(spec_for(model="mem-flip", source=DEMO_WORKLOAD,
                                protected=False, injections=15, seed=11))
    assert run.count(Outcome.CORRUPTED) > 0


# ------------------------------------------------------------- parallel

def test_parallel_records_match_serial():
    spec = spec_for(injections=12)
    serial = run_campaign(spec, options=ExecutionOptions(workers=1))
    parallel = run_campaign(
        spec, options=ExecutionOptions(workers=2, chunk_size=3))
    assert serial.records == parallel.records


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="wall-clock speedup needs >= 4 cores")
def test_parallel_is_faster_on_multicore():
    import time

    spec = spec_for(source=DEMO_WORKLOAD, injections=200, seed=5,
                    max_cycles=200_000)
    start = time.time()
    run_campaign(spec, options=ExecutionOptions(workers=1))
    serial = time.time() - start
    start = time.time()
    run_campaign(spec, options=ExecutionOptions(workers=4))
    parallel = time.time() - start
    assert parallel < serial


# --------------------------------------------------------------- resume

def test_resume_completes_interrupted_campaign(tmp_path):
    spec = spec_for(injections=12)
    full_path = str(tmp_path / "full.jsonl")
    full = run_campaign(spec, options=ExecutionOptions(store=full_path))

    # Simulate a kill after 5 records, mid-write of the 6th.
    with open(full_path) as handle:
        lines = handle.readlines()
    part_path = str(tmp_path / "part.jsonl")
    with open(part_path, "w") as handle:
        handle.writelines(lines[:6])
        handle.write('{"kind": "run", "id": 99, "torn')

    resumed = run_campaign(spec, options=ExecutionOptions(store=part_path))
    assert resumed.records == full.records
    assert resumed.summary() == full.summary()
    # The store now holds every record and resuming again runs nothing.
    again = run_campaign(spec, options=ExecutionOptions(store=part_path))
    assert again.records == full.records


def test_resume_rejects_different_config(tmp_path):
    path = str(tmp_path / "campaign.jsonl")
    run_campaign(spec_for(seed=1, injections=4),
                 options=ExecutionOptions(store=path))
    with pytest.raises(StoreMismatch):
        run_campaign(spec_for(seed=2, injections=4),
                     options=ExecutionOptions(store=path))


def test_store_spec_round_trip(tmp_path):
    path = str(tmp_path / "campaign.jsonl")
    spec = spec_for(injections=4)
    run_campaign(spec, options=ExecutionOptions(store=path))
    recovered = resume_spec(path)
    assert recovered.fingerprint() == spec.fingerprint()


# --------------------------------------------------------------- replay

def test_replay_reproduces_stored_record(tmp_path):
    path = str(tmp_path / "campaign.jsonl")
    spec = spec_for(injections=8)
    run_campaign(spec, options=ExecutionOptions(store=path))
    stored = ResultStore(path).record_for(5)
    assert stored is not None
    assert replay(spec, 5) == stored


def test_replay_validates_id():
    with pytest.raises(ValueError):
        replay(spec_for(injections=4), 4)


# -------------------------------------------------------- not-triggered

class _LateTrigger:
    """Test-only model: arms a trigger *extra* cycles past the golden end.

    With ``extra`` small the workload halts before the trigger (fire()
    never runs); with ``extra`` huge the trigger falls outside the cycle
    budget and the run is skipped outright.  Either way the record must
    come back NOT_TRIGGERED and stay out of the detection denominator.
    """

    name = "test-late-trigger"
    arm_is_pure = True

    def __init__(self, extra=100):
        self.extra = int(extra)

    def build_space(self, ctx):
        return {"trigger": ctx.golden_cycles + self.extra}

    def sample(self, rng, space):
        rng.random()                      # keep the per-injection draw
        return {"cycle": space["trigger"]}

    def arm(self, machine, ctx, params):
        return params["cycle"]

    def fire(self, machine, ctx, params):
        machine.pipeline.regs[9] ^= 1     # must never run in these tests


@pytest.fixture
def late_trigger_model():
    from repro.campaign.models import MODELS

    MODELS[_LateTrigger.name] = _LateTrigger
    yield
    MODELS.pop(_LateTrigger.name, None)


def test_early_halt_reports_not_triggered(late_trigger_model):
    """Regression: a run that halts before the armed trigger is
    NOT_TRIGGERED (event records the halt), never BENIGN/CORRUPTED."""
    spec = spec_for(model="test-late-trigger", injections=6,
                    model_options={"extra": 100})
    run = run_campaign(spec)
    assert len(run.records) == 6
    for record in run.records:
        assert record["outcome"] == Outcome.NOT_TRIGGERED.value
        assert record["event"] == "halt"
        assert record["cycles"] > 0
    assert run.injected_runs == 0
    assert run.detection_rate == 0.0


def test_out_of_budget_trigger_reports_not_triggered(late_trigger_model):
    """Regression: a trigger past max_cycles must be skipped, not clamped
    into the budget (clamping used to fire the fault at a cycle the model
    never sampled)."""
    spec = spec_for(model="test-late-trigger", injections=4,
                    model_options={"extra": 10**9})
    run = run_campaign(spec)
    for record in run.records:
        assert record["outcome"] == Outcome.NOT_TRIGGERED.value
        assert record["event"] == "skipped"
        assert record["cycles"] == 0


def test_not_triggered_excluded_from_detection_rate():
    from repro.campaign.report import detection_stats

    records = [{"id": 0, "outcome": "detected"},
               {"id": 1, "outcome": "detected"},
               {"id": 2, "outcome": "not_triggered"},
               {"id": 3, "outcome": "not_triggered"}]
    detected, total, det_rate, __ = detection_stats(records)
    assert total == 2
    assert detected == 2
    assert det_rate == 1.0

    from repro.campaign.runner import CampaignRun
    synthetic = CampaignRun(spec_for(), records)
    assert synthetic.injected_runs == 2
    assert synthetic.detection_rate == 1.0


# ----------------------------------------------------------------- fork

def test_fork_records_match_cold_serial():
    """--fork is an execution detail: byte-identical records."""
    spec = spec_for(model="reg-flip", injections=12, max_cycles=10_000)
    cold = run_campaign(spec, options=ExecutionOptions(fork=False))
    forked = run_campaign(spec, options=ExecutionOptions(fork=True))
    assert cold.records == forked.records


def test_fork_parallel_matches_cold(tmp_path):
    spec = spec_for(model="mem-flip", source=DEMO_WORKLOAD, protected=False,
                    injections=10, seed=11, max_cycles=20_000)
    cold = run_campaign(
        spec, options=ExecutionOptions(workers=1, fork=False))
    forked = run_campaign(
        spec, options=ExecutionOptions(workers=2, chunk_size=3,
                                       fork=True))
    assert cold.records == forked.records


def test_fork_flag_is_safe_for_impure_models():
    """instr-flip arms by rewriting memory; fork silently stays cold."""
    spec = spec_for(injections=6)
    assert run_campaign(spec, options=ExecutionOptions(fork=True)).records == \
        run_campaign(spec, options=ExecutionOptions(fork=False)).records


# ---------------------------------------------------------------- shim

def test_legacy_kwargs_warn_and_still_work(tmp_path):
    """Pre-redesign ``run_campaign(spec, workers=...)`` keeps working
    behind a DeprecationWarning, producing identical records."""
    path = str(tmp_path / "campaign.jsonl")
    spec = spec_for(injections=6)
    canonical = run_campaign(
        spec, options=ExecutionOptions(workers=2, chunk_size=3, store=path))
    os.remove(path)
    with pytest.warns(DeprecationWarning, match="ExecutionOptions"):
        legacy = run_campaign(spec, workers=2, chunk_size=3, store_path=path)
    assert legacy.records == canonical.records
    assert legacy.options == ExecutionOptions(workers=2, chunk_size=3,
                                              store=path)


def test_legacy_kwargs_reject_unknown_and_mixed_forms():
    spec = spec_for(injections=2)
    with pytest.raises(TypeError, match="unexpected keyword"):
        run_campaign(spec, worker_count=2)
    with pytest.raises(TypeError, match="not both"):
        run_campaign(spec, options=ExecutionOptions(), workers=2)


def test_run_carries_its_execution_options():
    options = ExecutionOptions(workers=1, fork=False)
    run = run_campaign(spec_for(injections=2), options=options)
    assert run.options == options
    assert run_campaign(spec_for(injections=2)).options == ExecutionOptions()


def test_full_store_short_circuits_to_pure_read(tmp_path, monkeypatch):
    """Resuming a fully-covered store must not build a context (no
    assembly, no golden run) — it is a pure store read."""
    import repro.campaign.runner as runner_mod

    path = str(tmp_path / "campaign.jsonl")
    spec = spec_for(injections=6)
    full = run_campaign(spec, options=ExecutionOptions(store=path))

    def boom(*args, **kwargs):
        raise AssertionError("CampaignContext built on a covered store")

    monkeypatch.setattr(runner_mod, "CampaignContext", boom)
    seen = []
    again = run_campaign(spec, options=ExecutionOptions(store=path),
                         progress=lambda done, total: seen.append((done,
                                                                   total)))
    assert again.records == full.records
    assert seen == [(6, 6)]


def test_faults_shim_on_new_engine():
    from repro.security.faults import BitFlipOutcome, golden_state, \
        run_bitflip_campaign

    result = run_bitflip_campaign(LOOP, injections=10, seed=5,
                                  max_cycles=100_000)
    assert result.detection_rate == 1.0
    assert len(result.runs) == 10
    pc, bits, outcome = result.runs[0]
    assert isinstance(bits, tuple)
    assert outcome is BitFlipOutcome.DETECTED
    golden = golden_state(LOOP, (16,), 100_000)
    assert golden[16] == sum(range(25))
