"""Uncertainty helpers: rates and Wilson confidence intervals."""

import math

import pytest

from repro.analysis.stats import rate, wilson_interval


def test_rate_basic_and_empty():
    assert rate(3, 4) == 0.75
    assert rate(0, 0) == 0.0


def test_wilson_known_value():
    # Canonical worked example: 8/20 at 95% -> approximately (0.22, 0.61).
    low, high = wilson_interval(8, 20)
    assert math.isclose(low, 0.2189, abs_tol=5e-3)
    assert math.isclose(high, 0.6134, abs_tol=5e-3)


def test_wilson_stays_inside_unit_interval_at_extremes():
    low, high = wilson_interval(0, 30)
    assert low == 0.0
    assert 0.0 < high < 0.2
    low, high = wilson_interval(30, 30)
    assert 0.8 < low < 1.0
    assert high == 1.0


def test_wilson_narrows_with_sample_size():
    small = wilson_interval(5, 10)
    large = wilson_interval(500, 1000)
    assert (large[1] - large[0]) < (small[1] - small[0])


def test_wilson_contains_point_estimate():
    for successes, total in ((1, 7), (13, 40), (99, 100)):
        low, high = wilson_interval(successes, total)
        assert low <= successes / total <= high


def test_wilson_empty_sample_is_vacuous():
    assert wilson_interval(0, 0) == (0.0, 1.0)


def test_wilson_rejects_impossible_counts():
    with pytest.raises(ValueError):
        wilson_interval(5, 4)
    with pytest.raises(ValueError):
        wilson_interval(-1, 4)


def test_wilson_z_controls_width():
    narrow = wilson_interval(10, 20, z=1.0)
    wide = wilson_interval(10, 20, z=2.58)
    assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])
