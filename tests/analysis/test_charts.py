"""ASCII chart rendering."""

from repro.analysis.charts import ascii_chart


def test_renders_points_with_distinct_glyphs():
    chart = ascii_chart([("one", [(0, 0), (1, 1)]),
                         ("two", [(0, 1), (1, 0)])], width=20, height=5)
    assert "*" in chart and "o" in chart
    assert "one" in chart and "two" in chart


def test_axis_labels():
    chart = ascii_chart([("s", [(1, 10), (9, 30)])], title="T",
                        x_label="threads")
    lines = chart.splitlines()
    assert lines[0] == "T"
    assert "threads" in chart
    assert "10" in chart and "30" in chart
    assert "1" in lines[-3] and "9" in lines[-3]


def test_constant_series_does_not_divide_by_zero():
    chart = ascii_chart([("flat", [(0, 5), (1, 5), (2, 5)])])
    assert "flat" in chart


def test_single_point():
    chart = ascii_chart([("p", [(3, 3)])])
    assert "*" in chart


def test_empty_series():
    assert ascii_chart([("none", [])]) == "(no data)"


def test_float_formatting():
    chart = ascii_chart([("s", [(0, 0.25), (1, 1.75)])])
    assert "1.75" in chart and "0.25" in chart
