"""Analysis helpers: stats math, tables, the hardware-cost arithmetic."""

import pytest

from repro.analysis.hardware_cost import (
    framework_input_cost,
    mlr_hardware_cost,
    mux_gate_count,
)
from repro.analysis.stats import RunRecord, improvement_pct, overhead_pct
from repro.analysis.tables import format_table


def test_framework_cost_matches_paper_footnote():
    """Footnote 4: 2560 flip-flops, 12,800 gates."""
    cost = framework_input_cost()
    assert cost["flip_flops"] == 2560
    assert cost["gates"] == 12800
    assert cost["gates_per_bit"] == 25


def test_cost_scales_with_rob():
    small = framework_input_cost(entries_per_queue=16)
    big = framework_input_cost(entries_per_queue=32)
    assert big["flip_flops"] == 2 * small["flip_flops"]
    assert big["gates"] == 2 * small["gates"]


def test_mux_gate_model():
    assert mux_gate_count(2) == 4
    assert mux_gate_count(3) == 5
    assert mux_gate_count(4) == 6
    with pytest.raises(ValueError):
        mux_gate_count(5)


def test_mlr_cost_matches_section_5_3():
    cost = mlr_hardware_cost()
    assert cost["pi_registers"] == 24
    assert cost["pi_adders"] == 4
    assert cost["pd_adders"] == 5
    assert cost["total_buffer_bytes"] == 3 * 4096


def test_overhead_pct():
    assert overhead_pct(100, 104) == pytest.approx(4.0)
    assert overhead_pct(0, 50) == 0.0


def test_improvement_pct():
    assert improvement_pct(100, 80) == pytest.approx(20.0)


def test_run_record_from_machine():
    from repro.system import build_machine
    from repro.program.layout import MemoryLayout
    from repro.workloads.asmlib import build_workload_image

    machine = build_machine()
    image, __ = build_workload_image("main: li $t0, 1\n halt\n",
                                     MemoryLayout())
    machine.run_program(image)
    record = RunRecord.from_machine("tiny", machine)
    assert record.cycles > 0
    assert record.instret == 2
    assert 0 < record.ipc <= 4
    assert record.cache("il1", "accesses") > 0


def test_format_table():
    text = format_table(
        ["Benchmark", "Cycles", "Overhead"],
        [["vpr-place", 12345, 3.47], ["kMeans", 260, 4.99]],
        title="Table 4")
    lines = text.splitlines()
    assert lines[0] == "Table 4"
    assert "Benchmark" in lines[2]
    assert "vpr-place" in text and "3.47" in text
    # Numeric columns are right-aligned.
    assert lines[4].endswith("3.47")
