"""Disassembler and tracing tools."""

import pytest

from repro.analysis.tracing import attach_commit_tracer, trace_functional
from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble_image, disassemble_segment
from repro.memory.mainmem import MainMemory
from repro.pipeline.core import EventKind
from repro.program.layout import MemoryLayout
from repro.system import build_machine
from repro.workloads.asmlib import build_workload_image

SOURCE = """
    main:
        li $t0, 2
    loop:
        addi $t0, $t0, -1
        bnez $t0, loop
        halt
"""


def load(source=SOURCE):
    asm = assemble(source)
    memory = MainMemory()
    memory.store_bytes(asm.text_base, asm.text)
    memory.store_bytes(asm.data_base, asm.data)
    return asm, memory


def test_disassemble_roundtrips_mnemonics():
    asm, memory = load()
    lines = disassemble_segment(memory, asm.text_base, len(asm.text),
                                symbols=asm.symbols)
    mnemonics = [line.text.split()[0] for line in lines]
    assert mnemonics == ["addi", "addi", "bne", "halt"]


def test_disassemble_annotates_branch_targets():
    asm, memory = load()
    lines = disassemble_segment(memory, asm.text_base, len(asm.text),
                                symbols=asm.symbols)
    branch_line = lines[2]
    assert "<loop>" in branch_line.text
    assert lines[1].label == "loop"


def test_disassemble_handles_garbage_words():
    memory = MainMemory()
    memory.store_word(0x1000, 0xF4000000)
    lines = disassemble_segment(memory, 0x1000, 4)
    assert lines[0].text == ".word 0xf4000000"


def test_disassemble_image():
    image, asm = build_workload_image(SOURCE, MemoryLayout())
    listing = disassemble_image(image)
    assert "main:" in listing
    assert "halt" in listing


def test_functional_trace_records_register_writes():
    asm, memory = load()
    entries, sim = trace_functional(memory, asm.entry)
    assert entries[0].pc == asm.entry
    assert entries[0].reg_writes == ((8, 2),)          # li $t0, 2
    assert entries[-1].text == "halt"
    rendered = entries[0].render()
    assert "$t0=0x00000002" in rendered


def test_functional_trace_stops_on_fault():
    memory = MainMemory()
    memory.store_word(0x1000, 0xF4000000)
    entries, sim = trace_functional(memory, 0x1000, max_steps=10)
    assert len(entries) == 1
    assert "fetch fault" in entries[0].text or sim.fault


def test_commit_tracer_records_retirement_stream():
    machine = build_machine(with_rse=True)
    tracer = attach_commit_tracer(machine)
    asm = assemble(SOURCE)
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.pipeline.reset_at(asm.entry)
    event = machine.pipeline.run(max_cycles=10_000)
    assert event.kind is EventKind.HALT
    machine.rse.drain()
    texts = [entry.text for entry in tracer.entries]
    assert texts[-1] == "halt"
    assert len(tracer.entries) == machine.pipeline.stats.instret
    cycles = [entry.cycle for entry in tracer.entries]
    assert cycles == sorted(cycles)          # retirement is in time order
    assert "halt" in tracer.render(last=1)


def test_commit_tracer_requires_rse():
    machine = build_machine()
    with pytest.raises(ValueError):
        attach_commit_tracer(machine)


def test_commit_tracer_limit():
    machine = build_machine(with_rse=True)
    tracer = attach_commit_tracer(machine, limit=3)
    asm = assemble(SOURCE)
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.run(max_cycles=10_000)
    machine.rse.drain()
    assert len(tracer.entries) == 3
