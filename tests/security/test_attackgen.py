"""The generative attack corpus: determinism, physics, hardening fixes."""

import pytest

from repro.memory.mainmem import PAGE_SHIFT, MainMemory
from repro.program.layout import MemoryLayout
from repro.program.loader import Loader
from repro.security import attacks
from repro.security.attackgen import (
    ATTACK_CLASSES,
    AttackOutcome,
    generate_variant,
    parse_config,
    run_variant,
)
from repro.system import build_machine
from repro.workloads.asmlib import build_workload_image


def _image_bytes(image):
    return b"".join(bytes(segment.data) for segment in image.segments)


# ------------------------------------------------------------ determinism

@pytest.mark.parametrize("attack_class", ATTACK_CLASSES)
def test_same_seed_same_program(attack_class):
    """Satellite: one seed -> byte-identical attack program."""
    first = generate_variant(attack_class, 123, config="trr")
    second = generate_variant(attack_class, 123, config="trr")
    assert first.source == second.source
    assert _image_bytes(first.image) == _image_bytes(second.image)
    assert first.meta == second.meta


def test_different_seeds_differ():
    sources = {generate_variant("stack-smash", seed).source
               for seed in range(8)}
    assert len(sources) > 1


def test_payload_geometry_is_config_independent():
    """The same seed must face every module row with the same payload
    (that is what makes matrix columns comparable)."""
    none = generate_variant("stack-smash", 55, config="none")
    icm = generate_variant("stack-smash", 55, config="icm")
    assert none.meta == icm.meta
    assert none.source == icm.source


def test_parse_config_validates():
    assert parse_config("none") == ()
    assert parse_config("mlr+icm") == ("mlr", "icm")
    with pytest.raises(ValueError):
        parse_config("mlr+nope")
    with pytest.raises(ValueError):
        parse_config("mlr+mlr")
    with pytest.raises(ValueError):
        generate_variant("no-such-class", 1)


# ----------------------------------------------------- per-class physics

@pytest.mark.parametrize("seed", [2, 9])
def test_stack_smash_rows(seed):
    variant = generate_variant("stack-smash", seed)
    assert run_variant(variant).outcome is AttackOutcome.HIJACKED
    trr = generate_variant("stack-smash", seed, config="trr")
    assert run_variant(trr).outcome is AttackOutcome.CRASHED
    mlr = generate_variant("stack-smash", seed, config="mlr")
    assert run_variant(mlr).outcome is AttackOutcome.CRASHED
    cfc = generate_variant("stack-smash", seed, config="cfc")
    assert run_variant(cfc).outcome is AttackOutcome.DETECTED


@pytest.mark.parametrize("seed", [2, 9])
def test_got_hijack_rows(seed):
    variant = generate_variant("got-hijack", seed)
    assert run_variant(variant).outcome is AttackOutcome.HIJACKED
    mlr = generate_variant("got-hijack", seed, config="mlr")
    assert run_variant(mlr).outcome is AttackOutcome.FOILED
    cfc = generate_variant("got-hijack", seed, config="cfc")
    assert run_variant(cfc).outcome is AttackOutcome.DETECTED


def test_smc_patch_rows():
    variant = generate_variant("smc-patch", 4)
    assert run_variant(variant).outcome is AttackOutcome.HIJACKED
    # Layout randomization cannot stop code patching ...
    mlr = generate_variant("smc-patch", 4, config="mlr")
    assert run_variant(mlr).outcome is AttackOutcome.HIJACKED
    # ... but instruction checking sees the word mismatch at fetch.
    icm = generate_variant("smc-patch", 4, config="icm")
    run = run_variant(icm)
    assert run.outcome is AttackOutcome.DETECTED
    assert run.reason == "check_error"


def test_thread_smash_rows():
    variant = generate_variant("thread-smash", 4)
    assert run_variant(variant).outcome is AttackOutcome.HIJACKED
    trr = generate_variant("thread-smash", 4, config="trr")
    assert run_variant(trr).outcome is AttackOutcome.CRASHED
    mlr = generate_variant("thread-smash", 4, config="mlr")
    assert run_variant(mlr).outcome is AttackOutcome.FOILED


def test_race_got_schedule_dependent_but_never_unclassified():
    outcomes = {run_variant(generate_variant("race-got", seed)).outcome
                for seed in range(12)}
    assert AttackOutcome.UNCLASSIFIED not in outcomes
    assert outcomes <= {AttackOutcome.HIJACKED, AttackOutcome.FOILED}
    assert len(outcomes) == 2          # the race is a real race


def test_cfc_detects_exactly_the_race_wins():
    for seed in range(12):
        bare = run_variant(generate_variant("race-got", seed))
        cfc = run_variant(generate_variant("race-got", seed, config="cfc"))
        if bare.outcome is AttackOutcome.HIJACKED:
            assert cfc.outcome is AttackOutcome.DETECTED
        else:
            assert cfc.outcome is AttackOutcome.FOILED


# ------------------------------------------------- hand-written hardening

def test_payload_overflow_raises_with_sizes(monkeypatch):
    """Satellite: an over-long shellcode must fail loudly, not silently
    truncate the payload into garbage (negative padding)."""
    room = attacks.RA_FRAME_OFFSET - attacks.BUFFER_FRAME_OFFSET
    monkeypatch.setattr(attacks, "_shellcode",
                        lambda flag_addr: bytes(room + 4))
    with pytest.raises(ValueError) as err:
        attacks.build_stack_smash_payload(0x10000000)
    message = str(err.value)
    assert str(room + 4) in message and str(room) in message


def test_boundary_shellcode_still_fits(monkeypatch):
    """Exactly filling the room up to the saved $ra is legal."""
    room = attacks.RA_FRAME_OFFSET - attacks.BUFFER_FRAME_OFFSET
    monkeypatch.setattr(attacks, "_shellcode",
                        lambda flag_addr: bytes(room))
    payload = attacks.build_stack_smash_payload(0x10000000)
    assert len(payload) == room + 4    # room + return address


def test_make_stack_executable_covers_late_mappings():
    """Satellite: the rwx model must cover the whole stack range no
    matter the mapping order, and pages mapped *after* the flip (MLR's
    relocated stack arrives via SYS_MMAP mid-run) must still come up
    executable."""
    machine = build_machine()
    layout = MemoryLayout()
    image, __ = build_workload_image("main:\n    halt\n", layout)
    machine.kernel.load_process(image)
    attacks._make_stack_executable(machine.kernel, layout)
    perms = machine.kernel.page_perms
    first = layout.stack_base >> PAGE_SHIFT
    last = (layout.stack_top - 1) >> PAGE_SHIFT
    assert perms[first] == "rwx" and perms[last] == "rwx"
    # a page the loader never touched, mapped later as rw:
    late = 0x50000000
    machine.kernel._map_range(late, 4096, "rw")
    assert perms[late >> PAGE_SHIFT] == "rwx"


def test_loader_stack_perms_unaffected_elsewhere():
    memory = MainMemory()
    layout = MemoryLayout()
    image, __ = build_workload_image("main:\n    halt\n", layout)
    process = Loader(memory).load(image)
    assert all(p == "rw" for page, p in process.page_perms.items()
               if layout.stack_base <= (page << PAGE_SHIFT)
               < layout.stack_top)
