"""Bit-flip campaigns: ICM coverage on checked instructions."""

import pytest

from repro.security.faults import BitFlipOutcome, run_bitflip_campaign

WORKLOAD = """
    main:
        li $t0, 0
        li $t1, 25
        li $s0, 0
    loop:
        add $s0, $s0, $t0
        addi $t0, $t0, 1
        blt $t0, $t1, loop
        halt
"""


def test_icm_detects_all_checked_bitflips():
    campaign = run_bitflip_campaign(WORKLOAD, injections=25, with_icm=True,
                                    seed=5)
    assert campaign.detection_rate == 1.0


def test_multibit_errors_also_detected():
    campaign = run_bitflip_campaign(WORKLOAD, injections=15,
                                    bits_per_injection=3, with_icm=True,
                                    seed=6)
    assert campaign.detection_rate == 1.0


def test_unprotected_baseline_shows_damage():
    campaign = run_bitflip_campaign(WORKLOAD, injections=30, with_icm=False,
                                    seed=7, max_cycles=100_000)
    assert campaign.detection_rate == 0.0
    damage = (campaign.count(BitFlipOutcome.FAULTED)
              + campaign.count(BitFlipOutcome.CORRUPTED)
              + campaign.count(BitFlipOutcome.HUNG))
    assert damage > 0          # some flips really do hurt


def test_campaign_is_deterministic():
    one = run_bitflip_campaign(WORKLOAD, injections=10, seed=42)
    two = run_bitflip_campaign(WORKLOAD, injections=10, seed=42)
    assert one.runs == two.runs


def test_campaign_requires_checked_instructions():
    with pytest.raises(ValueError):
        run_bitflip_campaign("main: halt\n", injections=1)
