"""Runtime re-randomization (the Section 4.1 extension)."""

import random

from repro.memory.mainmem import PAGE_SIZE
from repro.program.layout import MemoryLayout
from repro.security.rerandomize import (
    register_pointer_table,
    rerandomize_heap,
)
from repro.system import build_machine
from repro.workloads.asmlib import build_workload_image

# The program allocates a heap buffer, stores its address in a pointer
# variable listed in the "special data section" (ptr_table), writes a
# value through the pointer, then waits for the host to re-randomize and
# finally re-reads through the (patched) pointer.
PROGRAM = """
.data
heap_ptr:  .word 0               # a pointer variable (compiler-identified)
ptr_table: .word heap_ptr        # the special data section
phase:     .word 0
readback:  .word 0

.text
main:
    li $v0, SYS_SBRK
    li $a0, 4096
    syscall
    la $t0, heap_ptr
    sw $v0, 0($t0)               # heap_ptr = sbrk(4096)
    li $t1, 0xBEEF
    sw $t1, 0($v0)               # *heap_ptr = 0xBEEF
    # signal the host and wait for re-randomization
    la $t0, phase
    li $t1, 1
    sw $t1, 0($t0)
wait:
    li $v0, SYS_YIELD
    syscall
    lw $t0, phase
    li $t1, 2
    bne $t0, $t1, wait
    # read back through the (re-randomized) pointer
    lw $t0, heap_ptr
    lw $t1, 0($t0)
    la $t2, readback
    sw $t1, 0($t2)
    halt
"""


def run_scenario(seed=7):
    machine = build_machine()
    image, asm = build_workload_image(PROGRAM, MemoryLayout())
    machine.kernel.load_process(image)
    register_pointer_table(machine.kernel, asm.symbols["ptr_table"], 1)

    # Run until the guest signals phase 1 (pipeline drained at events).
    report = None
    for __ in range(10_000):
        result = machine.kernel.run(max_cycles=2000)
        if machine.memory.load_word(asm.symbols["phase"]) == 1 \
                and report is None:
            old_ptr = machine.memory.load_word(asm.symbols["heap_ptr"])
            report = rerandomize_heap(machine.kernel,
                                      rng=random.Random(seed))
            machine.memory.store_word(asm.symbols["phase"], 2)
            new_ptr = machine.memory.load_word(asm.symbols["heap_ptr"])
            break
    assert report is not None, "guest never reached phase 1"
    result = machine.kernel.run(max_cycles=10_000_000)
    return machine, asm, result, report, old_ptr, new_ptr


def test_heap_moves_and_pointers_are_patched():
    machine, asm, result, report, old_ptr, new_ptr = run_scenario()
    assert result.reason == "halt"
    assert report.pages_moved >= 1
    assert report.pointers_patched == 1
    assert new_ptr == old_ptr + report.delta
    # The guest's post-re-randomization read sees its own data.
    assert machine.memory.load_word(asm.symbols["readback"]) == 0xBEEF


def test_old_heap_location_is_retired():
    machine, asm, result, report, old_ptr, __ = run_scenario()
    # Old pages are unmapped (a stale hardcoded pointer now crashes) and
    # scrubbed (no information leak).
    page = old_ptr >> 12
    assert page not in machine.kernel.page_perms
    assert machine.memory.load_word(old_ptr) == 0


def test_rerandomization_is_seed_dependent():
    __, __, __, report_a, __, __ = run_scenario(seed=1)
    __, __, __, report_b, __, __ = run_scenario(seed=2)
    assert report_a.delta != report_b.delta


def test_unregistered_pointers_break():
    """Without the compiler's pointer table the stale pointer crashes —
    exactly why the paper needs the special data section."""
    machine = build_machine()
    image, asm = build_workload_image(PROGRAM, MemoryLayout())
    machine.kernel.load_process(image)
    # note: no register_pointer_table call
    for __ in range(10_000):
        machine.kernel.run(max_cycles=2000)
        if machine.memory.load_word(asm.symbols["phase"]) == 1:
            rerandomize_heap(machine.kernel, rng=random.Random(3))
            machine.memory.store_word(asm.symbols["phase"], 2)
            break
    result = machine.kernel.run(max_cycles=10_000_000)
    assert result.reason == "fault"          # stale heap_ptr, unmapped page
