"""The module × attack-class coverage matrix and its campaign plumbing."""

import json

from repro.campaign import CampaignSpec, ExecutionOptions, run_campaign
from repro.security.coverage import (
    SCHEMA,
    attack_matrix,
    format_attack_matrix,
)

QUICK = dict(classes=("stack-smash", "got-hijack"),
             configs=("none", "mlr"), variants=4, seed=17)


def test_matrix_shape_and_schema():
    doc = attack_matrix(**QUICK)
    assert doc["schema"] == SCHEMA
    assert len(doc["cells"]) == 4
    for cell in doc["cells"]:
        assert sum(cell["outcomes"].values()) == cell["variants"] == 4
        assert cell["outcomes"]["unclassified"] == 0
        low, high = cell["stopped_ci"]
        assert 0.0 <= low <= cell["stopped_rate"] <= high <= 1.0


def test_matrix_reproduces_byte_identically():
    first = json.dumps(attack_matrix(**QUICK), sort_keys=True)
    second = json.dumps(attack_matrix(**QUICK), sort_keys=True)
    assert first == second


def test_matrix_consistent_with_handwritten_attacks():
    """The generated rows must agree with the fixed exploits: no
    defense -> hijacked corpus; MLR -> stopped corpus."""
    doc = attack_matrix(**QUICK)
    by_key = {(c["config"], c["class"]): c for c in doc["cells"]}
    assert by_key[("none", "stack-smash")]["outcomes"]["hijacked"] == 4
    assert by_key[("none", "got-hijack")]["outcomes"]["hijacked"] == 4
    assert by_key[("mlr", "stack-smash")]["outcomes"]["crashed"] == 4
    assert by_key[("mlr", "got-hijack")]["outcomes"]["foiled"] == 4
    for key in by_key:
        assert by_key[key]["stopped"] == (0 if key[0] == "none" else 4)


def test_format_matrix_mentions_every_axis():
    doc = attack_matrix(**QUICK)
    table = format_attack_matrix(doc)
    for token in ("none", "mlr", "stack-smash", "got-hijack"):
        assert token in table


def test_attack_campaign_records_identical_across_paths(tmp_path):
    """Serial, sharded-service and store-resumed runs of the attack
    model must produce the same records."""
    spec = CampaignSpec(source="attack:smc-patch", model="attack",
                        model_options={"attack_class": "smc-patch",
                                       "config": "icm"},
                        injections=6, seed=23, max_cycles=300_000)
    serial = run_campaign(spec)
    sharded = run_campaign(spec, options=ExecutionOptions(shards=2,
                                                          workers=2))
    assert serial.records == sharded.records
    store = str(tmp_path / "attack.jsonl")
    stored = run_campaign(spec, options=ExecutionOptions(store=store))
    resumed = run_campaign(spec, options=ExecutionOptions(store=store))
    assert stored.records == resumed.records == serial.records
    assert all(r["outcome"] == "detected" for r in serial.records)
