"""Engine-independent attack classification (interp/predecode/jit vs
pipeline): the same attack program must reach the same verdict on every
execution engine — outcomes are architectural, not engine artifacts."""

import pytest

from repro.security.attackgen import (
    FUNCSIM_CLASSES,
    generate_variant,
    run_variant,
)
from repro.security.attacks import (
    AttackOutcome,
    run_got_hijack,
    run_stack_smash,
)

ENGINES = ("pipeline", "interp", "predecode", "jit")


@pytest.mark.parametrize("defense", ["none", "trr", "mlr"])
def test_stack_smash_parity(defense):
    outcomes = {engine: run_stack_smash(defense=defense, seed=77,
                                        engine=engine).outcome
                for engine in ENGINES}
    assert len(set(outcomes.values())) == 1, outcomes
    expected = (AttackOutcome.HIJACKED if defense == "none"
                else AttackOutcome.CRASHED)
    assert outcomes["pipeline"] is expected


@pytest.mark.parametrize("defense", ["none", "mlr"])
def test_got_hijack_parity(defense):
    outcomes = {engine: run_got_hijack(defense=defense,
                                       engine=engine).outcome
                for engine in ENGINES}
    assert len(set(outcomes.values())) == 1, outcomes
    expected = (AttackOutcome.HIJACKED if defense == "none"
                else AttackOutcome.FOILED)
    assert outcomes["pipeline"] is expected


@pytest.mark.parametrize("attack_class", FUNCSIM_CLASSES)
@pytest.mark.parametrize("config", ["none", "trr", "mlr"])
def test_generated_variant_parity(attack_class, config):
    variant = generate_variant(attack_class, 31, config=config)
    outcomes = {engine: run_variant(variant, engine=engine).outcome
                for engine in ENGINES}
    assert len(set(outcomes.values())) == 1, outcomes


def test_threaded_class_rejects_funcsim():
    variant = generate_variant("thread-smash", 1)
    with pytest.raises(ValueError):
        run_variant(variant, engine="interp")


def test_module_config_rejects_funcsim():
    variant = generate_variant("smc-patch", 1, config="icm")
    with pytest.raises(ValueError):
        run_variant(variant, engine="jit")
