"""Attack experiments: fixed layout falls, TRR/MLR defend."""

import pytest

from repro.security.attacks import (
    AttackOutcome,
    run_got_hijack,
    run_stack_smash,
)


def test_stack_smash_succeeds_on_fixed_layout():
    result = run_stack_smash(defense="none")
    assert result.outcome is AttackOutcome.HIJACKED


def test_stack_smash_crashes_under_trr():
    result = run_stack_smash(defense="trr", seed=77)
    assert result.outcome is AttackOutcome.CRASHED


def test_stack_smash_defeated_under_mlr():
    result = run_stack_smash(defense="mlr")
    # The attack is converted into a crash (the paper's exact claim);
    # shellcode never runs.
    assert result.outcome is AttackOutcome.CRASHED


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_trr_defends_across_random_layouts(seed):
    result = run_stack_smash(defense="trr", seed=seed)
    assert result.outcome is not AttackOutcome.HIJACKED


def test_got_hijack_succeeds_on_fixed_layout():
    result = run_got_hijack(defense="none")
    assert result.outcome is AttackOutcome.HIJACKED


def test_got_hijack_foiled_under_mlr():
    result = run_got_hijack(defense="mlr")
    # The stale GOT write hits abandoned memory: service completes and
    # the legitimate logger ran.
    assert result.outcome is AttackOutcome.FOILED


def test_benign_request_handled_everywhere():
    """A short, honest request never trips anything."""
    from repro.program.layout import MemoryLayout
    from repro.security.attacks import vulnerable_service_program
    from repro.system import build_machine

    machine = build_machine()
    image, asm = vulnerable_service_program(MemoryLayout())
    machine.kernel.load_process(image)
    machine.memory.store_bytes(asm.symbols["request"], b"hello")
    machine.memory.store_word(asm.symbols["request_len"], 5)
    result = machine.kernel.run(max_cycles=1_000_000)
    assert result.reason == "halt"
    assert machine.memory.load_word(asm.symbols["secret_flag"]) == 0
