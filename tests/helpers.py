"""Shared test utilities: build and run small machines from assembly."""

from repro.funcsim import FuncSim
from repro.isa.assembler import assemble
from repro.memory.bus import BASELINE_TIMING
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mainmem import MainMemory
from repro.pipeline import Pipeline, PipelineConfig

STACK_TOP = 0x7FFF0000


def load_assembly(source, constants=None):
    asm = assemble(source, constants=constants)
    mem = MainMemory()
    mem.store_bytes(asm.text_base, asm.text)
    mem.store_bytes(asm.data_base, asm.data)
    return asm, mem


def make_pipeline(mem, entry, timing=BASELINE_TIMING, config=None, rse=None):
    hierarchy = MemoryHierarchy(timing)
    pipeline = Pipeline(mem, hierarchy, config=config or PipelineConfig(),
                        rse=rse)
    pipeline.reset_at(entry)
    pipeline.regs[29] = STACK_TOP
    return pipeline


def run_pipeline(source, max_cycles=2_000_000, constants=None, config=None,
                 rse=None, timing=BASELINE_TIMING):
    """Assemble, run on the OoO pipeline until an event; returns (pipeline, asm, event)."""
    asm, mem = load_assembly(source, constants=constants)
    pipeline = make_pipeline(mem, asm.entry, timing=timing, config=config,
                             rse=rse)
    event = pipeline.run(max_cycles=max_cycles)
    return pipeline, asm, event


def run_func(source, max_steps=5_000_000, constants=None):
    """Assemble, run on the functional simulator; returns (sim, asm, result)."""
    asm, mem = load_assembly(source, constants=constants)
    sim = FuncSim(mem, entry=asm.entry, sp=STACK_TOP)
    result = sim.run(max_steps)
    return sim, asm, result


def assert_same_architectural_state(source, regs_of_interest=range(2, 32),
                                    mem_words=(), constants=None):
    """Run *source* on both engines and compare registers and memory words."""
    func_sim, func_asm, func_result = run_func(source, constants=constants)
    pipe, pipe_asm, event = run_pipeline(source, constants=constants)
    assert func_result.value == "halted", func_result
    assert event.kind.value == "halt", event
    for reg in regs_of_interest:
        if reg == 1:
            continue          # $at is assembler scratch
        assert pipe.regs[reg] == func_sim.regs[reg], (
            "reg %d: pipeline=0x%08x func=0x%08x" % (
                reg, pipe.regs[reg], func_sim.regs[reg]))
    for label_or_addr in mem_words:
        addr = (func_asm.symbols[label_or_addr]
                if isinstance(label_or_addr, str) else label_or_addr)
        assert (pipe.memory.load_word(addr) ==
                func_sim.memory.load_word(addr)), hex(addr)
    assert pipe.stats.instret == func_sim.instret, (
        "instret: pipeline=%d func=%d" % (pipe.stats.instret,
                                          func_sim.instret))
    return pipe, func_sim
