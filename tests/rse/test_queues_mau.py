"""Input-interface queues (latch delay, squash) and the MAU."""

from repro.memory.bus import FRAMEWORK_TIMING
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mainmem import MainMemory
from repro.rse.mau import MemoryAccessUnit
from repro.rse.queues import LATCH_DELAY, InputInterface, InputQueue


def test_latch_delay_one_cycle():
    queue = InputQueue("t", depth=4)
    queue.push(10, ("a",))
    assert queue.pop_ready(10) == []          # Table 3: visible next cycle
    assert queue.pop_ready(10 + LATCH_DELAY) == [("a",)]


def test_pop_ready_preserves_order():
    queue = InputQueue("t", depth=8)
    for index in range(5):
        queue.push(index, (index,))
    assert queue.pop_ready(100) == [(i,) for i in range(5)]
    assert queue.pop_ready(100) == []


def test_pop_ready_partial():
    queue = InputQueue("t", depth=8)
    queue.push(0, ("early",))
    queue.push(5, ("late",))
    assert queue.pop_ready(1) == [("early",)]
    assert len(queue) == 1


def test_overflow_drops_oldest_and_counts():
    queue = InputQueue("t", depth=2)
    for index in range(4):
        queue.push(0, (index,))
    assert queue.dropped_overflow == 2
    assert queue.pop_ready(10) == [(2,), (3,)]


def test_discard_predicate():
    queue = InputQueue("t", depth=8)
    for seq in range(6):
        queue.push(0, (seq, "payload"))
    queue.discard(lambda item: item[0] % 2 == 0)
    assert [item[0] for item in queue.pop_ready(10)] == [1, 3, 5]


def test_interface_squash_flushes_all_but_commit():
    interface = InputInterface(depth=16)
    for queue in interface.all_queues():
        queue.push(0, (7, "x"))
        queue.push(0, (8, "y"))
    interface.discard_squashed({7})
    for name in ("fetch_out", "regfile_data", "execute_out", "memory_out"):
        items = getattr(interface, name).pop_ready(10)
        assert [item[0] for item in items] == [8], name
    # Commit_Out keeps everything: squash notifications travel through it.
    assert len(interface.commit_out.pop_ready(10)) == 2


def make_mau():
    memory = MainMemory()
    hierarchy = MemoryHierarchy(FRAMEWORK_TIMING)
    return MemoryAccessUnit(memory, hierarchy), memory


def test_mau_load_roundtrip():
    mau, memory = make_mau()
    memory.store_bytes(0x1000, bytes(range(16)))
    results = []
    mau.load("m", 0x1000, 16, results.append)
    for cycle in range(200):
        mau.step(cycle)
    assert results == [bytes(range(16))]


def test_mau_store_applies_data():
    mau, memory = make_mau()
    acks = []
    mau.store("m", 0x2000, b"\x42" * 8, acks.append)
    for cycle in range(200):
        mau.step(cycle)
    assert memory.load_bytes(0x2000, 8) == b"\x42" * 8
    assert acks == [None]


def test_mau_serves_fifo():
    mau, memory = make_mau()
    order = []
    mau.load("a", 0x0, 8, lambda __: order.append("a"))
    mau.load("b", 0x100, 8, lambda __: order.append("b"))
    mau.store("c", 0x200, b"\x01", lambda __: order.append("c"))
    for cycle in range(500):
        mau.step(cycle)
    assert order == ["a", "b", "c"]


def test_mau_respects_bus_latency():
    mau, memory = make_mau()
    done_cycles = []
    mau.load("m", 0x0, 8, lambda __: done_cycles.append(True))
    mau.step(0)          # request accepted, transfer scheduled
    expected = FRAMEWORK_TIMING.transfer_latency(8)
    for cycle in range(1, expected):
        mau.step(cycle)
    assert not done_cycles          # still in flight
    mau.step(expected)
    assert done_cycles


def test_mau_busy_flag_and_pending():
    mau, __ = make_mau()
    assert not mau.busy
    mau.load("m", 0x0, 8, lambda __: None)
    mau.load("m", 0x8, 8, lambda __: None)
    assert mau.busy
    mau.step(0)
    assert mau.pending() == 2          # one active + one queued
    for cycle in range(1, 500):
        mau.step(cycle)
    assert not mau.busy


def test_mau_stats():
    mau, memory = make_mau()
    mau.load("m", 0x0, 32, lambda __: None)
    mau.store("m", 0x40, b"\x00" * 16)
    for cycle in range(500):
        mau.step(cycle)
    assert mau.requests_total == 2
    assert mau.bytes_loaded == 32
    assert mau.bytes_stored == 16
