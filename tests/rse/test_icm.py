"""ICM: redundant-copy checking, Icm_Cache behaviour, detection."""

from repro.isa.assembler import assemble
from repro.isa.encoding import flip_bit
from repro.pipeline.core import EventKind
from repro.rse.check import MODULE_ICM
from repro.rse.modules.icm import ICM, build_checker_memory, make_icm_injector
from repro.system import build_machine

LOOP_PROGRAM = """
    main:
        li $t0, 0
        li $t1, 30
    loop:
        addi $t0, $t0, 1
        blt $t0, $t1, loop
        halt
"""


def build_icm_machine(source, predicate=None):
    machine = build_machine(with_rse=True, modules=("icm",))
    asm = assemble(source)
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.memory.store_bytes(asm.data_base, asm.data)
    icm = machine.module(MODULE_ICM)
    checker_map = build_checker_memory(machine.memory, asm.text_base,
                                       len(asm.text), predicate=predicate)
    icm.configure(checker_map)
    machine.rse.enable_module(MODULE_ICM)
    machine.pipeline.check_injector = make_icm_injector(checker_map)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.regs[29] = 0x7FFF0000
    return machine, asm, icm


def test_clean_program_passes_all_checks():
    machine, asm, icm = build_icm_machine(LOOP_PROGRAM)
    event = machine.pipeline.run(max_cycles=200_000)
    assert event.kind is EventKind.HALT
    assert machine.pipeline.regs[8] == 30
    assert icm.checks_completed >= 29          # one per loop branch commit
    assert icm.mismatches == 0
    assert machine.pipeline.stats.committed_checks >= 29


def test_cache_hits_dominate_in_loops():
    machine, __, icm = build_icm_machine(LOOP_PROGRAM)
    machine.pipeline.run(max_cycles=200_000)
    assert icm.cache_misses >= 1          # cold miss
    assert icm.cache_hits > icm.cache_misses


def test_detects_single_bit_flip_in_branch():
    machine, asm, icm = build_icm_machine(LOOP_PROGRAM)
    # Corrupt the branch ("blt" expands to slt+bne; the bne is checked) in
    # *instruction memory* after the redundant copy was taken.
    branch_pc = None
    for offset in range(0, len(asm.text), 4):
        pc = asm.text_base + offset
        if pc in icm.checker_map:
            branch_pc = pc
            break
    assert branch_pc is not None
    word = machine.memory.load_word(branch_pc)
    machine.memory.store_word(branch_pc, flip_bit(word, 3))
    event = machine.pipeline.run(max_cycles=200_000)
    assert event.kind is EventKind.CHECK_ERROR
    assert icm.mismatches >= 1


def test_detects_multi_bit_corruption():
    machine, asm, icm = build_icm_machine(LOOP_PROGRAM)
    branch_pc = next(pc for pc in sorted(icm.checker_map))
    word = machine.memory.load_word(branch_pc)
    for bit in (1, 7, 19):
        word = flip_bit(word, bit)
    machine.memory.store_word(branch_pc, word)
    event = machine.pipeline.run(max_cycles=200_000)
    assert event.kind is EventKind.CHECK_ERROR


def test_corruption_to_illegal_instruction_still_detected():
    machine, asm, icm = build_icm_machine(LOOP_PROGRAM)
    branch_pc = next(pc for pc in sorted(icm.checker_map))
    machine.memory.store_word(branch_pc, 0xF4000000)          # undecodable
    event = machine.pipeline.run(max_cycles=200_000)
    # Either the ICM flags the mismatch or the decoder faults; the ICM
    # should win because the CHECK is older than the poisoned fetch.
    assert event.kind is EventKind.CHECK_ERROR


def test_checker_memory_contiguous():
    machine, asm, icm = build_icm_machine(LOOP_PROGRAM)
    slots = sorted(icm.checker_map.values())
    assert all(b - a == 4 for a, b in zip(slots, slots[1:]))


def test_injector_only_fires_on_checked_pcs():
    machine, asm, icm = build_icm_machine(LOOP_PROGRAM)
    injector = machine.pipeline.check_injector
    checked = sorted(icm.checker_map)
    assert injector(checked[0], None) is not None
    assert injector(asm.text_base, None) is None          # li, not control


def test_icm_disabled_means_no_checks():
    machine, asm, icm = build_icm_machine(LOOP_PROGRAM)
    machine.rse.disable_module(MODULE_ICM)
    event = machine.pipeline.run(max_cycles=200_000)
    assert event.kind is EventKind.HALT
    assert icm.checks_completed == 0


def test_unmapped_pc_check_is_benign():
    # Inject CHECKs for every instruction but only map branches: non-branch
    # checks complete without error.
    machine, asm, icm = build_icm_machine(LOOP_PROGRAM)
    machine.pipeline.check_injector = lambda pc, instr: \
        make_icm_injector(dict.fromkeys(
            range(asm.text_base, asm.text_base + len(asm.text), 4), 0)
        )(pc, instr) if False else None
    # Simpler: directly ask the module to check an unmapped pc via a map
    # that includes a non-control pc.
    bogus_map = dict(icm.checker_map)
    bogus_map[asm.text_base] = None          # no CheckerMemory slot
    machine.pipeline.check_injector = make_icm_injector(bogus_map)
    icm.checker_map.pop(asm.text_base, None)
    event = machine.pipeline.run(max_cycles=200_000)
    assert event.kind is EventKind.HALT
    assert icm.unmapped_checks >= 1


def test_coverage_predicates():
    from repro.rse.modules.icm import (
        cover_all,
        cover_control,
        cover_memory,
        cover_region,
    )
    from repro.isa.encoding import decode, encode
    from repro.isa.instructions import SPEC_BY_NAME

    branch = decode(encode(SPEC_BY_NAME["beq"], rs=1, rt=2, imm=1))
    load = decode(encode(SPEC_BY_NAME["lw"], rt=1, rs=2, imm=0))
    alu = decode(encode(SPEC_BY_NAME["add"], rd=1, rs=2, rt=3))
    assert cover_control(branch) and not cover_control(load)
    assert cover_memory(load) and not cover_memory(branch)
    assert cover_all(alu) and cover_all(load) and cover_all(branch)
    region = cover_region(0x1000, 0x2000)
    assert region(alu, 0x1000) and not region(alu, 0x2000)


def test_memory_coverage_detects_load_corruption():
    from repro.rse.modules.icm import cover_memory
    from repro.isa.encoding import flip_bit

    source = """
        .data
        v: .word 5
        .text
        main:
            la $t0, v
            li $t1, 6
        loop:
            lw $t2, 0($t0)
            addi $t1, $t1, -1
            bnez $t1, loop
            halt
    """
    machine, asm, icm = build_icm_machine(source, predicate=cover_memory)
    load_pc = next(iter(icm.checker_map))
    word = machine.memory.load_word(load_pc)
    machine.memory.store_word(load_pc, flip_bit(word, 17))
    event = machine.pipeline.run(max_cycles=200_000)
    assert event.kind is EventKind.CHECK_ERROR


def test_critical_region_coverage():
    from repro.rse.modules.icm import cover_region

    machine, asm, icm = build_icm_machine(LOOP_PROGRAM)
    region_map = __import__("repro.rse.modules.icm", fromlist=["x"]) \
        .build_checker_memory(machine.memory, asm.text_base, 8,
                              base=0x21000000,
                              predicate=cover_region(asm.text_base,
                                                     asm.text_base + 8))
    # Only the first two instructions are covered.
    assert sorted(region_map) == [asm.text_base, asm.text_base + 4]
