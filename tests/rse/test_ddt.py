"""DDT: the Figure 5 state machine, DDM logging, SavePage, PST LRU."""

from repro.rse.check import MODULE_DDT
from repro.rse.modules.ddt import DDT
from repro.system import build_machine


class FakeInstr:
    def __init__(self, kind):
        self.is_load = kind == "load"
        self.is_store = kind == "store"


class FakeUop:
    def __init__(self, kind, addr):
        self.instr = FakeInstr(kind)
        self.eff_addr = addr


def make_ddt(**kwargs):
    machine = build_machine(with_rse=True)
    ddt = machine.rse.attach(DDT(**kwargs))
    machine.rse.enable_module(MODULE_DDT)
    saved = []

    def handler(page, tid, cycle):
        saved.append((page, tid))
        return 0

    ddt.save_page_handler = handler
    for tid in (1, 2, 3):
        ddt.register_thread(tid)
    return machine, ddt, saved


def _load(machine, ddt, tid, addr, cycle=0):
    machine.rse.set_current_thread(tid)
    ddt.on_commit(FakeUop("load", addr), cycle)


def _store(machine, ddt, tid, addr, cycle=0):
    machine.rse.set_current_thread(tid)
    return ddt.pre_commit_store(FakeUop("store", addr), cycle)


PAGE_A = 0x100 << 12
PAGE_B = 0x200 << 12


def test_first_store_saves_page_and_takes_ownership():
    machine, ddt, saved = make_ddt()
    _store(machine, ddt, 1, PAGE_A)
    assert saved == [(0x100, 1)]
    assert ddt.pst[0x100] == [1, 1]


def test_own_store_does_not_resave():
    """Outcome (3): store by the current write-owner is free."""
    machine, ddt, saved = make_ddt()
    _store(machine, ddt, 1, PAGE_A)
    _store(machine, ddt, 1, PAGE_A + 64)
    assert len(saved) == 1


def test_foreign_store_saves_and_transfers_ownership():
    """Outcome (4): store by a non-owner raises SavePage."""
    machine, ddt, saved = make_ddt()
    _store(machine, ddt, 1, PAGE_A)
    _store(machine, ddt, 2, PAGE_A)
    assert saved == [(0x100, 1), (0x100, 2)]
    assert ddt.pst[0x100] == [2, 2]


def test_own_load_logs_nothing():
    """Outcome (1): load by the current read-owner."""
    machine, ddt, saved = make_ddt()
    _store(machine, ddt, 1, PAGE_A)
    _load(machine, ddt, 1, PAGE_A)
    _load(machine, ddt, 1, PAGE_A)
    assert ddt.dependencies_logged == 0


def test_foreign_load_logs_dependency():
    """Outcome (2): t2 reads a page t1 wrote -> dependency t1 -> t2."""
    machine, ddt, saved = make_ddt()
    _store(machine, ddt, 1, PAGE_A)
    _load(machine, ddt, 2, PAGE_A)
    assert 2 in ddt.ddm[1]
    assert ddt.dependencies_logged == 1
    assert ddt.pst[0x100] == [1, 2]          # read-owner moved to t2


def test_load_from_unwritten_page_logs_nothing():
    machine, ddt, saved = make_ddt()
    _load(machine, ddt, 2, PAGE_B)
    assert ddt.dependencies_logged == 0


def test_dependency_not_symmetric():
    machine, ddt, saved = make_ddt()
    _store(machine, ddt, 1, PAGE_A)
    _load(machine, ddt, 2, PAGE_A)
    assert 2 in ddt.ddm[1]
    assert 1 not in ddt.ddm.get(2, set())


def test_transitive_closure():
    # t1 -> t2 (page A), t2 -> t3 (page B): dependents of t1 = {2, 3}.
    machine, ddt, saved = make_ddt()
    _store(machine, ddt, 1, PAGE_A)
    _load(machine, ddt, 2, PAGE_A)
    _store(machine, ddt, 2, PAGE_B)
    _load(machine, ddt, 3, PAGE_B)
    assert ddt.dependents_of(1) == {2, 3}
    assert ddt.dependents_of(2) == {3}
    assert ddt.dependents_of(3) == set()


def test_figure8_dependency_chain():
    """The exact scenario of Figure 8 (five threads, pages p1-p3)."""
    machine, ddt, saved = make_ddt()
    for tid in (4, 5):
        ddt.register_thread(tid)
    p1, p2, p3 = PAGE_A, PAGE_B, 0x300 << 12
    _store(machine, ddt, 3, p1)          # t2 (paper) writes p1
    _load(machine, ddt, 2, p1)           # t1 reads p1  => t2 -> t1
    _store(machine, ddt, 2, p2)          # t1 writes p2
    _load(machine, ddt, 1, p2)           # t0 reads p2  => t1 -> t0
    _store(machine, ddt, 1, p3)          # t0 writes p3
    _load(machine, ddt, 2, p3)           # t1 reads p3  => t0 -> t1
    # Crash of paper-t2 (our tid 3): dependents are t1 and t0 (2 and 1).
    assert ddt.dependents_of(3) == {1, 2}
    # Threads 4 and 5 never touched shared pages: healthy.
    assert 4 not in ddt.dependents_of(3)


def test_forget_thread_clears_state():
    machine, ddt, saved = make_ddt()
    _store(machine, ddt, 1, PAGE_A)
    _load(machine, ddt, 2, PAGE_A)
    ddt.forget_thread(1)
    assert 1 not in ddt.ddm
    assert ddt.pst[0x100][0] is None


def test_pst_lru_eviction():
    machine, ddt, saved = make_ddt(pst_capacity=2)
    _store(machine, ddt, 1, 0x100 << 12)
    _store(machine, ddt, 1, 0x101 << 12)
    _store(machine, ddt, 1, 0x102 << 12)          # evicts 0x100
    assert ddt.pst_evictions == 1
    assert 0x100 not in ddt.pst
    # Re-store to the evicted page: conservatively re-saves.
    _store(machine, ddt, 1, 0x100 << 12)
    assert saved.count((0x100, 1)) == 2


def test_model_lag_drops_back_to_back_dependencies():
    machine, ddt, saved = make_ddt(model_lag=True)
    _store(machine, ddt, 1, PAGE_A)
    _store(machine, ddt, 1, PAGE_B)
    _load(machine, ddt, 2, PAGE_A, cycle=100)
    _load(machine, ddt, 3, PAGE_B, cycle=101)          # within 1 cycle: missed
    assert ddt.dependencies_logged == 1
    assert ddt.dependencies_missed == 1


def test_reset_tracking():
    machine, ddt, saved = make_ddt()
    _store(machine, ddt, 1, PAGE_A)
    _load(machine, ddt, 2, PAGE_A)
    ddt.reset_tracking()
    assert not ddt.pst
    assert ddt.dependents_of(1) == set()
