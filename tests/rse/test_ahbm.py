"""AHBM: registration, heartbeats, adaptive timeout, failure detection."""

from repro.rse.check import MODULE_AHBM
from repro.rse.modules.ahbm import AHBM
from repro.system import build_machine


def make_ahbm(**kwargs):
    machine = build_machine(with_rse=True)
    ahbm = machine.rse.attach(AHBM(**kwargs))
    machine.rse.enable_module(MODULE_AHBM)
    return machine, ahbm


def drive(ahbm, until, beats=(), entity=1):
    """Step the module cycle by cycle, delivering beats at given cycles."""
    beat_set = set(beats)
    for cycle in range(until):
        if cycle in beat_set:
            ahbm.beat(entity, cycle)
        ahbm.step(cycle)


def test_healthy_entity_stays_alive():
    machine, ahbm = make_ahbm(sample_period=64)
    ahbm.register(1, 0)
    drive(ahbm, 20_000, beats=range(0, 20_000, 500))
    assert ahbm.is_alive(1)
    assert not ahbm.failures


def test_hung_entity_detected():
    machine, ahbm = make_ahbm(sample_period=64)
    ahbm.register(1, 0)
    # Regular beats, then silence.
    drive(ahbm, 60_000, beats=range(0, 10_000, 500))
    assert ahbm.is_alive(1) is False
    assert ahbm.failures and ahbm.failures[0][1] == 1


def test_adaptive_timeout_tracks_beat_rate():
    machine, ahbm = make_ahbm(sample_period=64, min_timeout=128)
    ahbm.register(1, 0)
    drive(ahbm, 50_000, beats=range(0, 50_000, 200))          # fast beats
    fast_timeout = ahbm.timeout_for(ahbm.entities[1])
    machine2, ahbm2 = make_ahbm(sample_period=64, min_timeout=128)
    ahbm2.register(1, 0)
    drive(ahbm2, 50_000, beats=range(0, 50_000, 4000))          # slow beats
    slow_timeout = ahbm2.timeout_for(ahbm2.entities[1])
    assert fast_timeout < slow_timeout


def test_slow_but_regular_entity_not_flagged():
    machine, ahbm = make_ahbm(sample_period=64)
    ahbm.register(1, 0)
    drive(ahbm, 100_000, beats=range(0, 100_000, 8000))
    assert ahbm.is_alive(1)


def test_failure_callback_fires_once():
    machine, ahbm = make_ahbm(sample_period=64)
    calls = []
    ahbm.on_failure = lambda entity, cycle: calls.append((entity, cycle))
    ahbm.register(1, 0)
    drive(ahbm, 120_000, beats=range(0, 5_000, 500))
    assert len(calls) == 1


def test_unregister_stops_monitoring():
    machine, ahbm = make_ahbm(sample_period=64)
    ahbm.register(1, 0)
    ahbm.unregister(1)
    drive(ahbm, 60_000)
    assert not ahbm.failures
    assert ahbm.is_alive(1) is None


def test_check_instruction_interface():
    """Heartbeats issued by the application through CHECK instructions."""
    from repro.isa.assembler import assemble
    from repro.pipeline.core import EventKind
    from repro.rse.check import asm_constants

    machine, ahbm = make_ahbm(sample_period=64)
    source = """
        main:
            li $a0, 42
            li $a1, 0
            chk AHBM, NBLK, OP_AHBM_REGISTER, 0
            li $t0, 12
        beat_loop:
            li $a0, 42
            chk AHBM, NBLK, OP_AHBM_HEARTBEAT, 0
            li $t1, 200
        delay:
            addi $t1, $t1, -1
            bnez $t1, delay
            addi $t0, $t0, -1
            bnez $t0, beat_loop
            halt
    """
    asm = assemble(source, constants=asm_constants())
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.regs[29] = 0x7FFF0000
    event = machine.pipeline.run(max_cycles=200_000)
    assert event.kind is EventKind.HALT
    assert 42 in ahbm.entities
    assert ahbm.entities[42].counter == 12
    assert ahbm.entities[42].mean_gap is not None


def test_os_heartbeat_via_kernel_driver():
    """The kernel-driver path: the OS beats on every event it handles."""
    from repro.program.layout import MemoryLayout
    from repro.workloads.asmlib import build_workload_image

    machine, ahbm = make_ahbm(sample_period=64)
    ahbm.register(99, 0)
    machine.kernel.os_heartbeat_id = 99
    image, __ = build_workload_image("""
        main:
            li $t0, 8
        loop:
            li $v0, SYS_YIELD
            syscall
            addi $t0, $t0, -1
            bnez $t0, loop
            halt
    """, MemoryLayout())
    machine.kernel.load_process(image)
    result = machine.kernel.run(max_cycles=2_000_000)
    assert result.reason == "halt"
    assert ahbm.entities[99].counter >= 8
