"""The DDT's "size query and retrieval" CHECK (OP_DDT_DUMP).

Section 4.2.2: "System software performs recovery by retrieving
information stored in PST and DDM through a special size query and
retrieval check instruction."  The dump serialises the DDM to a
guest-visible memory buffer through the MAU.
"""

from repro.isa.assembler import assemble
from repro.pipeline.core import EventKind
from repro.rse.check import MODULE_DDT, asm_constants
from repro.system import build_machine

PROGRAM = """
.data
.align 12
page_a: .space 4096
page_b: .space 4096
dump:   .space 256

.text
main:
    chk DDT, NBLK, OP_ENABLE, 0
    # Build a dependency the hardware can report: this thread (tid 0,
    # bare machine) writes page_a; "another thread" reads it below.
    la $t0, page_a
    li $t1, 7
    sw $t1, 0($t0)
    halt
"""


def test_dump_serialises_ddm_to_memory():
    machine = build_machine(with_rse=True, modules=("ddt",))
    ddt = machine.module(MODULE_DDT)
    # Seed a known DDM: threads 1..3, edges 1->2 and 1->3.
    for tid in (1, 2, 3):
        ddt.register_thread(tid)
    ddt.ddm[1].update({2, 3})

    asm = assemble("""
        .data
        dump: .space 64
        .text
        main:
            la $a0, dump
            li $a1, 0
            chk DDT, BLK, OP_DDT_DUMP, 0
            halt
    """, constants=asm_constants())
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.rse.enable_module(MODULE_DDT)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.regs[29] = 0x7FFF0000
    event = machine.pipeline.run(max_cycles=100_000)
    assert event.kind is EventKind.HALT

    dump_addr = asm.symbols["dump"]
    count = machine.memory.load_word(dump_addr)
    assert count == 3
    tids = [machine.memory.load_word(dump_addr + 4 + 4 * i)
            for i in range(count)]
    assert tids == [1, 2, 3]
    matrix_base = dump_addr + 4 + 4 * count
    matrix = [[machine.memory.load_byte(matrix_base + row * count + col)
               for col in range(count)] for row in range(count)]
    assert matrix[0] == [0, 1, 1]          # 1 -> 2, 1 -> 3
    assert matrix[1] == [0, 0, 0]
    assert matrix[2] == [0, 0, 0]


def test_dump_matches_live_tracking():
    """Dump after real tracked activity agrees with dependents_of()."""
    from repro.kernel.kernel import KernelConfig
    from repro.program.layout import MemoryLayout
    from repro.workloads import figure8
    from repro.workloads.asmlib import build_workload_image

    machine = build_machine(with_rse=True, modules=("ddt",),
                            kernel_config=KernelConfig(
                                quantum_cycles=200_000))
    machine.rse.enable_module(MODULE_DDT)
    ddt = machine.module(MODULE_DDT)
    image, __ = figure8.program()
    machine.kernel.load_process(image)
    machine.kernel.run(max_cycles=30_000_000)
    # W1 (tid 2) contaminated W2 (3) and W3 (4), directly or transitively.
    assert ddt.dependents_of(2) == {3, 4}
