"""Self-checking mechanisms — the four error scenarios of Table 2."""

from repro.isa.assembler import assemble
from repro.pipeline.core import EventKind
from repro.rse.check import asm_constants
from repro.system import build_machine

from probe_module import TEST_MODULE_ID, ProbeModule


def build(source, module, watchdog_timeout=200, error_threshold=4):
    machine = build_machine(with_rse=True)
    machine.rse.attach(module)
    machine.rse.selfcheck.watchdog_timeout = watchdog_timeout
    machine.rse.selfcheck.error_threshold = error_threshold
    constants = asm_constants()
    constants["PROBE"] = TEST_MODULE_ID
    asm = assemble(source, constants=constants)
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.rse.enable_module(TEST_MODULE_ID)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.regs[29] = 0x7FFF0000
    return machine


ONE_CHECK = """
    main:
        chk PROBE, BLK, 2, 0
        li $t0, 1
        halt
"""

CHECK_LOOP = """
    main:
        li $t1, 20
    loop:
        chk PROBE, BLK, 2, 0
        addi $t1, $t1, -1
        bnez $t1, loop
        halt
"""


def test_no_progress_module_trips_watchdog():
    """Scenario 1: the module never completes -> the app would hang forever.

    The watchdog detects the missing 0->1 checkValid transition and
    decouples the framework; the pipeline then commits normally.
    """
    module = ProbeModule()
    module.fault_mode = "no_progress"
    machine = build(ONE_CHECK, module)
    event = machine.pipeline.run(max_cycles=20_000)
    assert event.kind is EventKind.HALT
    assert machine.rse.safe_mode
    assert any("no progress" in t.reason or "stuck-at-0" in t.reason
               for t in machine.rse.selfcheck.trips)
    assert machine.pipeline.regs[8] == 1


def test_false_alarm_burst_trips_selfcheck():
    """Scenario 2: the module always declares an error.

    With the kernel's "retry" policy the pipeline would flush and loop on
    the same CHECK; the error-transition counter catches the burst and
    decouples.  Here we emulate retry at the harness level.
    """
    module = ProbeModule(error=True)
    module.fault_mode = "false_alarm"
    machine = build(ONE_CHECK, module)
    retries = 0
    while retries < 50:
        event = machine.pipeline.run(max_cycles=50_000)
        if event.kind is EventKind.CHECK_ERROR:
            retries += 1
            machine.pipeline.resume(event.pc)          # retry same CHECK
            continue
        break
    assert event.kind is EventKind.HALT
    assert machine.rse.safe_mode
    assert any("burst" in t.reason for t in machine.rse.selfcheck.trips)


def test_false_negative_gives_no_protection_but_no_trip():
    """Scenario 3: always "no error" is indistinguishable from health."""
    module = ProbeModule(error=True)          # would report errors ...
    module.fault_mode = "false_negative"      # ... but the fault hides them
    machine = build(CHECK_LOOP, module)
    event = machine.pipeline.run(max_cycles=100_000)
    assert event.kind is EventKind.HALT
    assert not machine.rse.safe_mode
    assert not machine.rse.selfcheck.trips


def test_stuck_at_0_check_valid_detected():
    """Scenario 4a: checkValid stuck at 0 == module makes no progress."""
    module = ProbeModule(delay=1)
    machine = build(ONE_CHECK, module)
    machine.rse.ioq.slot_faults = {}          # documented injection point

    # Inject by monkey-wiring allocation: every CHECK entry's checkValid
    # reads as stuck 0.
    original_allocate = machine.rse.ioq.allocate

    def faulty_allocate(uop, cycle):
        entry = original_allocate(uop, cycle)
        if uop.instr.is_check:
            entry.stuck_check_valid = 0
        return entry

    machine.rse.ioq.allocate = faulty_allocate
    event = machine.pipeline.run(max_cycles=20_000)
    assert event.kind is EventKind.HALT
    assert machine.rse.safe_mode


def test_stuck_at_1_check_valid_detected():
    """Scenario 4b: checkValid stuck at 1 -> results never gate commit.

    The watchdog sees CHECK entries that are already valid at allocation
    (the written 0 never lands) and declares the stuck-at-1 fault.
    """
    module = ProbeModule(delay=5)
    machine = build(CHECK_LOOP, module)
    original_allocate = machine.rse.ioq.allocate

    def faulty_allocate(uop, cycle):
        entry = original_allocate(uop, cycle)
        if uop.instr.is_check:
            entry.stuck_check_valid = 1
        return entry

    machine.rse.ioq.allocate = faulty_allocate
    event = machine.pipeline.run(max_cycles=100_000)
    assert event.kind is EventKind.HALT
    assert machine.rse.safe_mode
    assert any("stuck-at-1" in t.reason for t in machine.rse.selfcheck.trips)


def test_stuck_at_1_check_bit_detected_via_error_burst():
    """Scenario 4c: check bit stuck at 1 -> repeated flushes, then decouple."""
    module = ProbeModule(delay=1)
    machine = build(ONE_CHECK, module)
    original_allocate = machine.rse.ioq.allocate

    def faulty_allocate(uop, cycle):
        entry = original_allocate(uop, cycle)
        if uop.instr.is_check:
            entry.stuck_check = 1
        return entry

    machine.rse.ioq.allocate = faulty_allocate
    retries = 0
    while retries < 60:
        event = machine.pipeline.run(max_cycles=50_000)
        if event.kind is EventKind.CHECK_ERROR:
            retries += 1
            machine.rse.selfcheck.record_error(module, machine.pipeline.cycle)
            machine.pipeline.resume(event.pc)
            continue
        break
    assert event.kind is EventKind.HALT
    assert machine.rse.safe_mode


def test_safe_mode_lets_everything_commit():
    module = ProbeModule(error=True)
    machine = build(CHECK_LOOP, module)
    machine.rse.decouple("manual")
    event = machine.pipeline.run(max_cycles=100_000)
    assert event.kind is EventKind.HALT
    assert machine.rse.safe_mode_reason == "manual"


def test_recouple_restores_gating():
    module = ProbeModule(error=True)
    machine = build(ONE_CHECK, module)
    machine.rse.decouple("test")
    machine.rse.recouple()
    event = machine.pipeline.run(max_cycles=20_000)
    assert event.kind is EventKind.CHECK_ERROR
