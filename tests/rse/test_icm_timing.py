"""ICM timing: the Figure 6 execution timeline.

Figure 6's cycle budget, measured from the cycle the RSE sees the CHECK
in its Fetch_Out queue (t+2 in the paper's absolute scale):

* Icm_Cache **hit**: request to cache, copies to comparator (+1),
  comparison complete and output written (+2) — so ``checkValid`` is set
  two cycles after the scan, available to the commit stage the cycle
  after that (t+5 overall).
* Icm_Cache **miss**: a memory request through the MAU; the comparison
  completes one cycle after the redundant copy arrives, so the stall is
  dominated by main-memory latency.
"""

from repro.isa.assembler import assemble
from repro.pipeline.core import EventKind
from repro.rse.check import MODULE_ICM
from repro.rse.modules.icm import (
    HIT_PIPELINE_CYCLES,
    ICM,
    build_checker_memory,
    make_icm_injector,
)
from repro.system import build_machine

PROGRAM = """
    main:
        li $t0, 40
    loop:
        addi $t0, $t0, -1
        bnez $t0, loop
        halt
"""


def build(cache_entries=256):
    machine = build_machine(with_rse=True)
    icm = machine.rse.attach(ICM(cache_entries=cache_entries))
    asm = assemble(PROGRAM)
    machine.memory.store_bytes(asm.text_base, asm.text)
    checker_map = build_checker_memory(machine.memory, asm.text_base,
                                       len(asm.text))
    icm.configure(checker_map)
    machine.rse.enable_module(MODULE_ICM)
    machine.pipeline.check_injector = make_icm_injector(checker_map)
    machine.pipeline.reset_at(asm.entry)
    return machine, icm


def _trace_check_timing(machine, icm):
    """Returns (scan_cycle, valid_cycle) samples for each ICM check."""
    samples = []
    original_on_fetch = icm.on_fetch
    original_finish = icm.finish_check
    pending = {}

    def on_fetch(uop, cycle):
        before = len(icm._inflight)
        original_on_fetch(uop, cycle)
        if len(icm._inflight) > before:          # a check started
            pending[id(icm._inflight[-1].entry)] = cycle

    def finish_check(entry, error, cycle):
        start = pending.pop(id(entry), None)
        if start is not None:
            samples.append((start, cycle))
        original_finish(entry, error, cycle)

    icm.on_fetch = on_fetch
    icm.finish_check = finish_check
    event = machine.pipeline.run(max_cycles=100_000)
    assert event.kind is EventKind.HALT
    return samples


def test_hit_latency_is_two_cycles_after_scan():
    machine, icm = build()
    samples = _trace_check_timing(machine, icm)
    # The speculative window issues several checks before the first MAU
    # fill lands, so the first handful miss; steady-state iterations are
    # pure Icm_Cache hits with the Figure 6 latency.
    hits = samples[-25:]
    assert len(hits) == 25, "loop should produce warm checks"
    for scan_cycle, valid_cycle in hits:
        assert valid_cycle - scan_cycle == HIT_PIPELINE_CYCLES


def test_miss_latency_is_memory_bound():
    machine, icm = build()
    samples = _trace_check_timing(machine, icm)
    scan, valid = samples[0]          # the cold miss
    timing = machine.hierarchy.bus.timing
    # MAU group fetch (32 bytes) + the comparison stage.
    assert valid - scan >= timing.transfer_latency(32)
    assert icm.cache_misses >= 1


def test_hit_checks_do_not_stall_commit():
    # With warm Icm_Cache the result lands before the CHECK can retire:
    # commit stalls happen only around the cold miss.
    machine, icm = build()
    event = machine.pipeline.run(max_cycles=100_000)
    assert event.kind is EventKind.HALT
    stall_cycles = machine.pipeline.stats.check_wait_cycles
    # Bounded by a couple of memory latencies (cold misses), not by one
    # stall per loop iteration.
    assert stall_cycles < 6 * machine.hierarchy.bus.timing.transfer_latency(32)


def test_commit_order_preserved_under_checks():
    machine, icm = build()
    event = machine.pipeline.run(max_cycles=100_000)
    assert event.kind is EventKind.HALT
    assert machine.pipeline.regs[8] == 0          # loop ran to completion
