"""Engine odds and ends: load barriers, module registry, thread plumbing."""

import pytest

from repro.isa.encoding import decode
from repro.rse.check import (
    MODULE_DDT,
    MODULE_MLR,
    OP_ICM_CHECK,
    OP_MLR_COPY_GOT,
    encode_check,
    op_reads_payload,
)
from repro.system import build_machine


def test_attach_rejects_duplicate_ids():
    from repro.rse.modules.mlr import MLR

    machine = build_machine(with_rse=True, modules=("mlr",))
    with pytest.raises(ValueError):
        machine.rse.attach(MLR())


def test_module_accessor():
    machine = build_machine(with_rse=True, modules=("mlr", "ddt"))
    assert machine.module(MODULE_MLR).name == "MLR"
    assert machine.rse.module(MODULE_DDT).name == "DDT"


def test_enable_disable_hooks_fire():
    machine = build_machine(with_rse=True, modules=("ddt",))
    calls = []
    ddt = machine.module(MODULE_DDT)
    ddt.on_enable = lambda: calls.append("on")
    ddt.on_disable = lambda: calls.append("off")
    machine.rse.enable_module(MODULE_DDT)
    machine.rse.disable_module(MODULE_DDT)
    assert calls == ["on", "off"]


def test_check_blocks_loads_only_for_memory_writers():
    machine = build_machine(with_rse=True, modules=("mlr", "ddt", "icm"))
    rse = machine.rse
    for module_id in (1, 2, 3):
        rse.enable_module(module_id)
    mlr_blk = decode(encode_check(MODULE_MLR, OP_MLR_COPY_GOT, blocking=True))
    assert rse.check_blocks_loads(mlr_blk)
    mlr_nblk = decode(encode_check(MODULE_MLR, OP_MLR_COPY_GOT,
                                   blocking=False))
    assert not rse.check_blocks_loads(mlr_nblk)
    icm_blk = decode(encode_check(1, OP_ICM_CHECK, blocking=True))
    assert not rse.check_blocks_loads(icm_blk)          # ICM reads only
    rse.disable_module(MODULE_MLR)
    assert not rse.check_blocks_loads(mlr_blk)


def test_op_payload_convention():
    assert op_reads_payload(0x10)
    assert op_reads_payload(0x15)
    assert not op_reads_payload(0x02)
    assert not op_reads_payload(0x00)


def test_set_current_thread():
    machine = build_machine(with_rse=True)
    machine.rse.set_current_thread(7)
    assert machine.rse.current_tid == 7


def test_build_machine_rejects_modules_without_rse():
    with pytest.raises(ValueError):
        build_machine(with_rse=False, modules=("icm",))


def test_bus_timing_selected_by_rse_presence():
    plain = build_machine()
    framed = build_machine(with_rse=True)
    assert plain.hierarchy.bus.timing.first_chunk == 18
    assert framed.hierarchy.bus.timing.first_chunk == 19
