"""Engine behaviour: IOQ gating (Table 1), enable/disable, MAU, squash."""

from repro.isa.assembler import assemble
from repro.pipeline.core import EventKind
from repro.rse.check import OP_ENABLE, asm_constants
from repro.system import build_machine

from probe_module import TEST_MODULE_ID, ProbeModule


def build_probe_machine(source, module=None, enable=True):
    machine = build_machine(with_rse=True)
    probe = module or ProbeModule()
    machine.rse.attach(probe)
    constants = asm_constants()
    constants["PROBE"] = TEST_MODULE_ID
    asm = assemble(source, constants=constants)
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.memory.store_bytes(asm.data_base, asm.data)
    if enable:
        machine.rse.enable_module(TEST_MODULE_ID)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.regs[29] = 0x7FFF0000
    return machine, probe


BLOCKING_CHECK = """
    main:
        li $t0, 1
        chk PROBE, BLK, 2, 0x33
        li $t0, 2
        halt
"""


def test_blocking_check_stalls_then_commits():
    machine, probe = build_probe_machine(BLOCKING_CHECK)
    event = machine.pipeline.run(max_cycles=10_000)
    assert event.kind is EventKind.HALT
    assert machine.pipeline.regs[8] == 2
    assert probe.seen and probe.seen[0][0] == 2
    assert machine.pipeline.stats.check_wait_cycles > 0


def test_blocking_check_error_flushes():
    machine, probe = build_probe_machine(BLOCKING_CHECK,
                                         module=ProbeModule(error=True))
    event = machine.pipeline.run(max_cycles=10_000)
    assert event.kind is EventKind.CHECK_ERROR
    # The instruction after the failing CHECK never committed.
    assert machine.pipeline.regs[8] == 1


def test_nonblocking_check_does_not_stall():
    machine, probe = build_probe_machine("""
        main:
            chk PROBE, NBLK, 2, 7
            li $t0, 9
            halt
    """, module=ProbeModule(delay=500))
    event = machine.pipeline.run(max_cycles=10_000)
    assert event.kind is EventKind.HALT
    # Far less than the module delay: commit never waited for it.
    assert machine.pipeline.stats.cycles < 400


def test_payload_delivered_through_regfile_data():
    machine, probe = build_probe_machine("""
        main:
            li $a0, 0x1234
            li $a1, 0x5678
            chk PROBE, BLK, 0x12, 0
            halt
    """)
    event = machine.pipeline.run(max_cycles=10_000)
    assert event.kind is EventKind.HALT
    assert probe.seen[0][2] == (0x1234, 0x5678)


def test_enable_via_check_instruction():
    machine, probe = build_probe_machine("""
        main:
            chk PROBE, NBLK, 2, 1          # ignored: module disabled
            chk PROBE, NBLK, OP_ENABLE, 0
            chk PROBE, NBLK, 2, 2          # now delivered
            halt
    """, enable=False)
    event = machine.pipeline.run(max_cycles=10_000)
    assert event.kind is EventKind.HALT
    assert probe.enabled
    assert [param for __, param, __ in probe.seen] == [2]


def test_disable_via_check_instruction():
    machine, probe = build_probe_machine("""
        main:
            chk PROBE, NBLK, 2, 1
            chk PROBE, NBLK, OP_DISABLE, 0
            chk PROBE, NBLK, 2, 2          # desensitised: constant '10'
            halt
    """)
    event = machine.pipeline.run(max_cycles=10_000)
    assert event.kind is EventKind.HALT
    assert not probe.enabled
    assert [param for __, param, __ in probe.seen] == [1]


def test_unknown_module_check_commits():
    machine, __ = build_probe_machine("""
        main:
            chk 9, BLK, 2, 0          # no module 9 attached
            li $t0, 4
            halt
    """)
    event = machine.pipeline.run(max_cycles=10_000)
    assert event.kind is EventKind.HALT
    assert machine.pipeline.regs[8] == 4


def test_wrong_path_check_has_no_permanent_effect():
    # A CHECK sits on the wrong path of a branch.  Like the real ICM, a
    # module may *start* a speculative check (Figure 6 starts work right
    # after fetch), but a squashed CHECK must never gate commit or flush
    # the pipeline — even when the module declares an error for it.
    machine, probe = build_probe_machine("""
        main:
            li $t0, 1
            li $t2, 40
        loop:
            beqz $t0, skipped          # never taken
            j over
        skipped:
            chk PROBE, BLK, 2, 0xBAD
        over:
            addi $t2, $t2, -1
            bnez $t2, loop
            li $t1, 5
            halt
    """, module=ProbeModule(error=True, delay=1))
    event = machine.pipeline.run(max_cycles=50_000)
    assert event.kind is EventKind.HALT          # error never surfaced
    assert machine.pipeline.regs[9] == 5
    assert len(machine.rse.ioq) == 0          # squashed entries freed


def test_ioq_frees_entries():
    machine, __ = build_probe_machine(BLOCKING_CHECK)
    machine.pipeline.run(max_cycles=10_000)
    assert len(machine.rse.ioq) == 0
    assert machine.rse.ioq.allocated_total >= 4


def test_mau_moves_data_and_counts():
    machine, __ = build_probe_machine("main: halt")
    machine.memory.store_bytes(0x9000, b"\xAA" * 64)
    results = []
    machine.rse.mau.load("test", 0x9000, 64, results.append)
    machine.rse.mau.store("test", 0xA000, b"\x55" * 32)
    machine.pipeline.run(max_cycles=10_000)
    for __ in range(200):          # drain the MAU after halt
        machine.rse.step(machine.pipeline.cycle)
        machine.pipeline.cycle += 1
    assert results == [b"\xAA" * 64]
    assert machine.memory.load_bytes(0xA000, 32) == b"\x55" * 32
    assert machine.rse.mau.requests_total == 2
    assert machine.hierarchy.bus.mau_transfers == 2


def test_engine_stats_shape():
    machine, __ = build_probe_machine(BLOCKING_CHECK)
    machine.pipeline.run(max_cycles=10_000)
    stats = machine.rse.snapshot()
    assert stats["checks_seen"] >= 1
    assert "Probe" in stats["modules"]
