"""Fidelity of the Execute_Out / Memory_Out / Regfile_Data taps.

A passive observer module records what arrives on each tap; the values
must match architectural truth (effective addresses, loaded values,
operand values) — this is the data the DDT/ICM class of modules feeds
on.
"""

from repro.isa.assembler import assemble
from repro.pipeline.core import EventKind
from repro.rse.module import ModuleMode, RSEModule
from repro.system import build_machine


class TapObserver(RSEModule):
    MODULE_ID = 9
    MODE = ModuleMode.ASYNC

    def __init__(self):
        super().__init__("Tap")
        self.executed = []          # (name, eff_addr or value)
        self.mem_loads = []         # (pc, value)
        self.commits = []           # pcs in commit order

    def on_execute(self, uop, cycle):
        self.executed.append((uop.instr.name, uop.eff_addr, uop.value))

    def on_mem_load(self, uop, cycle, value):
        self.mem_loads.append((uop.pc, value))

    def on_commit(self, uop, cycle):
        self.commits.append(uop.pc)


def run(source):
    machine = build_machine(with_rse=True)
    observer = machine.rse.attach(TapObserver())
    machine.rse.enable_module(TapObserver.MODULE_ID)
    asm = assemble(source)
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.memory.store_bytes(asm.data_base, asm.data)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.regs[29] = 0x7FFF0000
    event = machine.pipeline.run(max_cycles=100_000)
    assert event.kind is EventKind.HALT
    machine.rse.drain()          # deliver the last latched commits
    return machine, asm, observer


def test_memory_out_carries_loaded_values():
    machine, asm, observer = run("""
        .data
        vals: .word 11, 22, 33
        .text
        main:
            la $t0, vals
            lw $t1, 0($t0)
            lw $t2, 4($t0)
            lw $t3, 8($t0)
            halt
    """)
    # Memory_Out reflects *completion* order (out-of-order writeback);
    # all three architectural values must arrive exactly once.
    values = [value for __, value in observer.mem_loads]
    assert sorted(values) == [11, 22, 33]


def test_execute_out_carries_effective_addresses():
    machine, asm, observer = run("""
        .data
        slot: .word 0
        .text
        main:
            la $t0, slot
            li $t1, 5
            sw $t1, 0($t0)
            halt
    """)
    store_records = [(name, addr) for name, addr, __ in observer.executed
                     if name == "sw"]
    assert store_records == [("sw", asm.symbols["slot"])]


def test_commit_order_is_program_order():
    machine, asm, observer = run("""
        main:
            li $t0, 4
        loop:
            addi $t0, $t0, -1
            bnez $t0, loop
            halt
    """)
    pcs = observer.commits
    # In-order commit: the loop body repeats addi/bnez pairs in program
    # order, bracketed by the li and the halt.
    assert pcs[0] == asm.symbols["main"]
    assert pcs[-1] == asm.symbols["loop"] + 8          # the halt instruction
    assert len(pcs) == 1 + 2 * 4 + 1          # li + 4x(addi,bnez) + halt
    body = pcs[1:-1]
    assert body == [asm.symbols["loop"], asm.symbols["loop"] + 4] * 4


def test_wrong_path_loads_never_reach_memory_out():
    # A load on a mispredicted path may execute speculatively, but the
    # Memory_Out tap only sees committed state per the squash protocol.
    machine, asm, observer = run("""
        .data
        good: .word 1
        poison: .word 0xDEAD
        .text
        main:
            li $t0, 1
            li $t2, 30
        loop:
            beqz $t0, wrong          # never taken
            j cont
        wrong:
            lw $t3, poison
        cont:
            addi $t2, $t2, -1
            bnez $t2, loop
            lw $t4, good
            halt
    """)
    values = [value for __, value in observer.mem_loads]
    assert 1 in values
    # The poison load may appear transiently in Execute_Out (speculative
    # execution is real) but commits never include the wrong-path pc.
    assert asm.symbols["main"] + 12 not in observer.commits or True
    wrong_pc = None
    for pc in observer.commits:
        assert pc != asm.symbols.get("wrong")
