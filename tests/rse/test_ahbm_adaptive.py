"""AHBM adaptive-timeout behaviour under cadence drift."""

from repro.rse.modules.ahbm import AHBM, MonitoredEntity
from repro.system import build_machine


def make():
    machine = build_machine(with_rse=True)
    ahbm = machine.rse.attach(AHBM(sample_period=64, min_timeout=128))
    machine.rse.enable_module(AHBM.MODULE_ID)
    return ahbm


def drive(ahbm, beats, until, entity=1):
    beat_set = set(beats)
    for cycle in range(until):
        if cycle in beat_set:
            ahbm.beat(entity, cycle)
        ahbm.step(cycle)


def test_timeout_adapts_upward_when_cadence_slows_gradually():
    ahbm = make()
    ahbm.register(1, 0)
    # Gradually slowing heartbeat: 200 -> 400 -> 800 cycles apart.
    beats = list(range(0, 10_000, 200))
    beats += list(range(10_000, 30_000, 400))
    beats += list(range(30_000, 80_000, 800))
    drive(ahbm, beats, 80_000)
    assert ahbm.is_alive(1)          # gradual drift is not a failure
    assert ahbm.timeout_for(ahbm.entities[1]) > 800


def test_sudden_stop_after_fast_cadence_detected_quickly():
    ahbm = make()
    ahbm.register(1, 0)
    drive(ahbm, range(0, 20_000, 200), 20_000)
    timeout = ahbm.timeout_for(ahbm.entities[1])
    # Continue stepping with no beats: failure within a few timeouts.
    for cycle in range(20_000, 20_000 + 6 * timeout):
        ahbm.step(cycle)
    assert ahbm.is_alive(1) is False
    fail_cycle = ahbm.failures[0][0]
    assert fail_cycle - 20_000 < 5 * timeout


def test_entity_record_statistics():
    entity = MonitoredEntity(1, 0)
    for cycle in (100, 200, 300, 400):
        entity.observe_beat(cycle)
    assert entity.counter == 4
    assert 80 <= entity.mean_gap <= 120          # EWMA around 100
    assert entity.last_change_cycle == 400


def test_min_timeout_floor():
    ahbm = make()
    ahbm.register(1, 0)
    # Very fast beats would yield a tiny timeout; the floor holds.
    drive(ahbm, range(0, 5_000, 10), 5_000)
    assert ahbm.timeout_for(ahbm.entities[1]) >= 128


def test_initial_timeout_before_learning():
    ahbm = make()
    ahbm.register(1, 0)
    entity = ahbm.entities[1]
    assert ahbm.timeout_for(entity) == ahbm.initial_timeout
    entity.observe_beat(100)
    assert ahbm.timeout_for(entity) == ahbm.initial_timeout  # 1 beat: still
