"""MLR: position-independent randomization and GOT/PLT relocation."""

import pytest

from repro.program.image import plt_entry_target
from repro.program.layout import MLR_RESULT_HEAP, MLR_RESULT_SHLIB, \
    MLR_RESULT_STACK, MemoryLayout
from repro.rse.check import MODULE_MLR
from repro.system import build_machine
from repro.workloads import gotplt


def run_image(image, machine=None, max_cycles=5_000_000):
    machine = machine or build_machine(with_rse=True, modules=("mlr",))
    result = machine.run_program(image, max_cycles=max_cycles)
    return machine, result


def read_words(memory, addr, count):
    return [memory.load_word(addr + 4 * i) for i in range(count)]


@pytest.mark.parametrize("entries", [8, 32])
def test_rse_version_copies_got(entries):
    image, asm = gotplt.rse_version(entries)
    machine, result = run_image(image)
    assert result.reason == "halt"
    old = read_words(machine.memory, asm.symbols["got_old"], entries)
    new = read_words(machine.memory, asm.symbols["got_new"], entries)
    assert old == new
    assert old[0] == MemoryLayout().shlib_base


@pytest.mark.parametrize("entries", [8, 32])
def test_rse_version_rewrites_plt(entries):
    image, asm = gotplt.rse_version(entries)
    machine, result = run_image(image)
    assert result.reason == "halt"
    got_new = asm.symbols["got_new"]
    plt = asm.symbols["plt"]
    for index in range(entries):
        words = read_words(machine.memory, plt + index * 16, 4)
        assert plt_entry_target(words) == got_new + index * 4


def test_software_version_matches_rse_version():
    entries = 16
    sw_image, sw_asm = gotplt.software_version(entries)
    rse_image, rse_asm = gotplt.rse_version(entries)
    sw_machine, sw_result = run_image(sw_image, build_machine())
    rse_machine, rse_result = run_image(rse_image)
    assert sw_result.reason == rse_result.reason == "halt"
    for symbols, machine in ((sw_asm, sw_machine), (rse_asm, rse_machine)):
        got_new = symbols.symbols["got_new"]
        plt = symbols.symbols["plt"]
        for index in range(entries):
            words = read_words(machine.memory, plt + index * 16, 4)
            assert plt_entry_target(words) == got_new + index * 4
    # The final PLT bytes are equal up to the different got_new addresses.
    assert (sw_asm.symbols["got_new"] == rse_asm.symbols["got_new"])
    sw_plt = sw_machine.memory.load_bytes(sw_asm.symbols["plt"], entries * 16)
    rse_plt = rse_machine.memory.load_bytes(rse_asm.symbols["plt"],
                                            entries * 16)
    assert sw_plt == rse_plt


def test_rse_version_is_faster_and_executes_fewer_instructions():
    """The Table 5 claim, at one size point."""
    entries = 256
    sw_image, __ = gotplt.software_version(entries)
    rse_image, __ = gotplt.rse_version(entries)
    sw_machine, sw_result = run_image(sw_image, build_machine())
    rse_machine, rse_result = run_image(rse_image)
    assert sw_result.reason == rse_result.reason == "halt"
    assert rse_machine.pipeline.stats.instret < sw_machine.pipeline.stats.instret
    assert rse_result.cycles < sw_result.cycles


def test_pi_randomization_writes_results():
    image, asm = gotplt.pi_rand_program()
    layout = image.layout
    machine, result = run_image(image)
    assert result.reason == "halt"
    base = layout.header_base
    shlib = machine.memory.load_word(base + MLR_RESULT_SHLIB)
    stack = machine.memory.load_word(base + MLR_RESULT_STACK)
    heap = machine.memory.load_word(base + MLR_RESULT_HEAP)
    assert shlib != layout.shlib_base and shlib % 4096 == 0
    assert stack != layout.stack_top and stack % 4096 == 0
    assert heap != layout.heap_base and heap % 4096 == 0
    assert shlib > layout.shlib_base          # offsets are added
    assert stack < layout.stack_top           # stack moves down
    # The guest read them back into s0..s2.
    assert machine.pipeline.regs[16] == shlib
    assert machine.pipeline.regs[17] == stack
    assert machine.pipeline.regs[18] == heap


def test_pi_randomization_differs_across_runs():
    """Entropy comes from the cycle counter: different timing, different
    layout (run the randomization at two different points in time)."""
    results = []
    for warmup in (0, 977):
        image, __ = gotplt.pi_rand_program()
        machine = build_machine(with_rse=True, modules=("mlr",))
        machine.pipeline.advance_cycles(warmup)
        machine, result = run_image(image, machine)
        assert result.reason == "halt"
        base = image.layout.header_base
        results.append(machine.memory.load_word(base + MLR_RESULT_SHLIB))
    assert results[0] != results[1]


def test_entropy_source_override():
    from repro.rse.modules.mlr import MLR

    machine = build_machine(with_rse=True)
    mlr = machine.rse.attach(MLR(entropy_source=lambda cycle: 0x5000))
    image, __ = gotplt.pi_rand_program()
    machine, result = run_image(image, machine)
    assert result.reason == "halt"
    assert mlr.randomized["shlib"] == image.layout.shlib_base + 0x5000


def test_mlr_stats():
    image, __ = gotplt.rse_version(8)
    machine, result = run_image(image)
    mlr = machine.module(MODULE_MLR)
    assert mlr.operations_done >= 5          # I5, I6, I7, I8, I10
    assert machine.rse.mau.requests_total >= 4
