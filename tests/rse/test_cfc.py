"""Control-Flow Checker module: CFG extraction and violation detection."""

from repro.isa.assembler import assemble
from repro.pipeline.core import EventKind
from repro.rse.modules.cfc import CFC, MODULE_CFC, build_cfg
from repro.system import build_machine

PROGRAM = """
    main:
        li $a0, 4
        jal double
        move $s0, $v0
        li $t0, 2
    loop:
        addi $t0, $t0, -1
        bnez $t0, loop
        j finish
        li $s1, 111          # dead code
    finish:
        halt
    double:
        add $v0, $a0, $a0
        jr $ra
"""


def build(source=PROGRAM):
    machine = build_machine(with_rse=True)
    cfc = machine.rse.attach(CFC())
    asm = assemble(source)
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.memory.store_bytes(asm.data_base, asm.data)
    cfc.configure(*build_cfg(machine.memory, asm.text_base, len(asm.text)))
    machine.rse.enable_module(MODULE_CFC)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.regs[29] = 0x7FFF0000
    return machine, asm, cfc


def test_cfg_extraction():
    machine, asm, cfc = build()
    branch_pc = asm.symbols["loop"] + 4          # the bnez
    assert cfc.successors[branch_pc] == frozenset(
        {asm.symbols["loop"], branch_pc + 4})
    jal_pc = asm.symbols["main"] + 4
    assert cfc.successors[jal_pc] == frozenset({asm.symbols["double"]})
    # jr legal landing sites: the function entry and both return sites.
    assert asm.symbols["double"] in cfc.indirect_targets
    assert jal_pc + 4 in cfc.indirect_targets


def test_clean_run_has_no_violations():
    machine, asm, cfc = build()
    event = machine.pipeline.run(max_cycles=100_000)
    assert event.kind is EventKind.HALT
    assert machine.pipeline.regs[16] == 8
    assert cfc.transfers_checked >= 4
    assert cfc.violations == []


def test_corrupted_branch_target_detected():
    machine, asm, cfc = build()
    # Redirect the final `j finish` to the dead code instead: decodes
    # fine, executes fine, but is not the static CFG successor.
    from repro.isa.encoding import encode
    from repro.isa.instructions import SPEC_BY_NAME

    j_pc = asm.symbols["loop"] + 8
    dead_code = j_pc + 4
    machine.memory.store_word(j_pc, encode(SPEC_BY_NAME["j"],
                                           target=dead_code >> 2))
    event = machine.pipeline.run(max_cycles=100_000)
    assert event.kind is EventKind.HALT
    assert any(v.from_pc == j_pc and v.to_pc == dead_code
               for v in cfc.violations)
    assert machine.pipeline.regs[17] == 111          # the damage it caught


def test_hijacked_return_detected():
    # A stack-smash-style hijack: $ra is corrupted so `jr $ra` lands at
    # an address that is neither a function entry nor a return site.
    machine, asm, cfc = build("""
        main:
            jal victim
            halt
        victim:
            li $t0, 0x00400100          # attacker-controlled address
            move $ra, $t0
            jr $ra
        filler:
            nop
            nop
    """)
    violations = []
    cfc.on_violation = violations.append
    machine.pipeline.run(max_cycles=100_000)
    assert violations
    assert violations[0].kind == "indirect"


def test_legal_indirect_calls_pass():
    machine, asm, cfc = build("""
        main:
            la $t0, helper
            jalr $ra, $t0
            halt
        helper:
            jr $ra
    """)
    # jalr targets are not statically known; register the helper entry.
    cfc.indirect_targets = cfc.indirect_targets | {asm.symbols["helper"]}
    event = machine.pipeline.run(max_cycles=100_000)
    assert event.kind is EventKind.HALT
    assert cfc.violations == []


def test_module_is_detection_only():
    """Asynchronous mode: the program still runs to completion."""
    machine, asm, cfc = build()
    from repro.isa.encoding import encode
    from repro.isa.instructions import SPEC_BY_NAME

    j_pc = asm.symbols["loop"] + 8
    machine.memory.store_word(j_pc, encode(SPEC_BY_NAME["j"],
                                           target=(j_pc + 4) >> 2))
    event = machine.pipeline.run(max_cycles=100_000)
    assert event.kind is EventKind.HALT          # detected, not prevented
    assert cfc.violations
