"""Round-robin scheduler unit tests."""

from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.threads import Thread, ThreadState


def make_thread(tid):
    return Thread(tid, pc=0x1000 * tid, regs=[0] * 32)


def test_fifo_order():
    scheduler = RoundRobinScheduler()
    threads = [make_thread(i) for i in (1, 2, 3)]
    for thread in threads:
        scheduler.make_ready(thread)
    assert scheduler.pick_next() is threads[0]
    assert scheduler.pick_next() is threads[1]
    scheduler.make_ready(threads[0])
    assert scheduler.pick_next() is threads[2]
    assert scheduler.pick_next() is threads[0]


def test_pick_marks_running():
    scheduler = RoundRobinScheduler()
    thread = make_thread(1)
    scheduler.make_ready(thread)
    picked = scheduler.pick_next()
    assert picked.state is ThreadState.RUNNING


def test_terminated_threads_skipped():
    scheduler = RoundRobinScheduler()
    dead = make_thread(1)
    live = make_thread(2)
    scheduler.make_ready(dead)
    scheduler.make_ready(live)
    dead.state = ThreadState.TERMINATED
    assert scheduler.pick_next() is live
    assert scheduler.pick_next() is None


def test_make_ready_ignores_terminated():
    scheduler = RoundRobinScheduler()
    dead = make_thread(1)
    dead.state = ThreadState.TERMINATED
    scheduler.make_ready(dead)
    assert scheduler.pick_next() is None


def test_no_duplicate_queue_entries():
    scheduler = RoundRobinScheduler()
    thread = make_thread(1)
    scheduler.make_ready(thread)
    scheduler.make_ready(thread)
    assert scheduler.pick_next() is thread
    assert scheduler.pick_next() is None


def test_remove():
    scheduler = RoundRobinScheduler()
    thread = make_thread(1)
    scheduler.make_ready(thread)
    scheduler.remove(thread)
    assert scheduler.pick_next() is None
    scheduler.remove(thread)          # idempotent


def test_switch_counter():
    scheduler = RoundRobinScheduler()
    for tid in (1, 2):
        scheduler.make_ready(make_thread(tid))
    scheduler.pick_next()
    scheduler.pick_next()
    assert scheduler.switches == 2
