"""Kernel: loading, syscalls, threads, scheduling, protection."""

from repro.kernel.syscalls import RECV_EXHAUSTED
from repro.kernel.threads import ThreadState
from repro.program.layout import MemoryLayout
from repro.system import build_machine
from repro.workloads.asmlib import build_workload_image


def run(source, max_cycles=2_000_000, machine=None, requests=0,
        kernel_config=None):
    machine = machine or build_machine(kernel_config=kernel_config)
    image, asm = build_workload_image(source, MemoryLayout())
    if requests:
        machine.kernel.set_request_source(requests)
    machine.kernel.load_process(image)
    result = machine.kernel.run(max_cycles=max_cycles)
    return machine, asm, result


def test_halt_ends_process():
    machine, __, result = run("main: li $t0, 3\n halt\n")
    assert result.reason == "halt"
    assert machine.pipeline.regs[8] == 3


def test_print_syscall():
    machine, __, result = run("""
        main:
            li $v0, SYS_PRINT_INT
            li $a0, 77
            syscall
            li $v0, SYS_PUTC
            li $a0, 'A'
            syscall
            halt
    """)
    assert result.reason == "halt"
    assert machine.kernel.output == [("int", 77), ("char", "A")]


def test_gettid_and_cycle():
    machine, __, result = run("""
        main:
            li $v0, SYS_GETTID
            syscall
            move $s0, $v0
            li $v0, SYS_CYCLE
            syscall
            move $s1, $v0
            halt
    """)
    assert machine.pipeline.regs[16] == 1          # main thread tid
    assert machine.pipeline.regs[17] > 0


def test_sbrk_maps_heap():
    machine, __, result = run("""
        main:
            li $v0, SYS_SBRK
            li $a0, 8192
            syscall
            move $t0, $v0
            li $t1, 1234
            sw $t1, 0($t0)
            lw $s0, 0($t0)
            halt
    """)
    assert result.reason == "halt"
    assert machine.pipeline.regs[16] == 1234


def test_write_to_text_segment_faults():
    machine, __, result = run("""
        main:
            la $t0, main
            li $t1, 0
            sw $t1, 0($t0)          # .text is r-x
            halt
    """)
    assert result.reason == "fault"
    assert machine.kernel.faults
    assert "violation" in machine.kernel.faults[0][2]


def test_unmapped_access_faults():
    machine, __, result = run("""
        main:
            li $t0, 0x60000000
            lw $t1, 0($t0)
            halt
    """)
    assert result.reason == "fault"
    assert "unmapped" in machine.kernel.faults[0][2]


def test_mprotect_changes_permissions():
    machine, __, result = run("""
        main:
            li $v0, SYS_MPROTECT
            la $a0, main
            li $a1, 4096
            li $a2, 7          # rwx
            syscall
            la $t0, main
            lw $t1, 0($t0)
            sw $t1, 0($t0)          # now allowed
            halt
    """)
    assert result.reason == "halt"


def test_spawn_and_exit():
    machine, __, result = run("""
        .data
        flag: .word 0
        .text
        main:
            li $v0, SYS_SPAWN
            la $a0, child
            li $a1, 55
            syscall
        wait:
            li $v0, SYS_YIELD
            syscall
            lw $t0, flag
            beqz $t0, wait
            lw $s0, flag
            halt
        child:
            la $t0, flag
            sw $a0, 0($t0)          # publish the spawn argument
            li $v0, SYS_EXIT
            li $a0, 0
            syscall
    """)
    assert result.reason == "halt"
    assert machine.pipeline.regs[16] == 55
    assert len(machine.kernel.threads) == 2
    child = machine.kernel.threads[2]
    assert child.state is ThreadState.TERMINATED


def test_threads_get_distinct_stacks():
    machine, __, result = run("""
        .data
        sp1: .word 0
        sp2: .word 0
        done: .word 0
        .text
        main:
            li $v0, SYS_SPAWN
            la $a0, child1
            li $a1, 0
            syscall
            li $v0, SYS_SPAWN
            la $a0, child2
            li $a1, 0
            syscall
        wait:
            li $v0, SYS_YIELD
            syscall
            lw $t0, done
            slti $at, $t0, 2
            bnez $at, wait
            halt
        child1:
            la $t0, sp1
            sw $sp, 0($t0)
            j finish
        child2:
            la $t0, sp2
            sw $sp, 0($t0)
        finish:
            la $t0, done
            lw $t1, 0($t0)
            addi $t1, $t1, 1
            sw $t1, 0($t0)
            li $v0, SYS_EXIT
            syscall
    """)
    assert result.reason == "halt"
    sp1 = machine.memory.load_word(machine.kernel.loaded.image.symbols["sp1"])
    sp2 = machine.memory.load_word(machine.kernel.loaded.image.symbols["sp2"])
    assert sp1 != 0 and sp2 != 0 and sp1 != sp2


def test_preemption_interleaves_threads():
    # Two compute-bound threads must both make progress under the timer.
    from repro.kernel.kernel import KernelConfig

    machine, asm, result = run("""
        .data
        counter1: .word 0
        counter2: .word 0
        done: .word 0
        .text
        main:
            li $v0, SYS_SPAWN
            la $a0, spin1
            li $a1, 0
            syscall
            li $v0, SYS_SPAWN
            la $a0, spin2
            li $a1, 0
            syscall
        wait:
            li $v0, SYS_YIELD
            syscall
            lw $t0, done
            slti $at, $t0, 2
            bnez $at, wait
            halt
        spin1:
            li $t1, 4000
            la $t2, counter1
            j spin
        spin2:
            li $t1, 4000
            la $t2, counter2
        spin:
            lw $t3, 0($t2)
            addi $t3, $t3, 1
            sw $t3, 0($t2)
            addi $t1, $t1, -1
            bnez $t1, spin
            la $t0, done
            lw $t1, 0($t0)
            addi $t1, $t1, 1
            sw $t1, 0($t0)
            li $v0, SYS_EXIT
            syscall
    """, kernel_config=KernelConfig(quantum_cycles=1000))
    assert result.reason == "halt"
    assert machine.kernel.scheduler.switches > 4


def test_recv_send_request_flow():
    machine, __, result = run("""
        main:
        loop:
            li $v0, SYS_RECV
            syscall
            li $t1, -1
            beq $v0, $t1, finished
            move $a0, $v0
            addi $a1, $v0, 100          # response = id + 100
            li $v0, SYS_SEND
            syscall
            j loop
        finished:
            halt
    """, requests=5)
    assert result.reason == "halt"
    assert machine.kernel.responses == {i: i + 100 for i in range(5)}


def test_recv_blocks_for_latency():
    from repro.kernel.kernel import KernelConfig

    config = KernelConfig(io_recv_latency=5000, io_recv_jitter=0)
    machine, __, result = run("""
        main:
            li $v0, SYS_RECV
            syscall
            halt
    """, requests=1, kernel_config=config)
    assert result.reason == "halt"
    assert result.cycles >= 5000


def test_unknown_syscall_faults_thread():
    machine, __, result = run("""
        main:
            li $v0, 999
            syscall
            halt
    """)
    assert result.reason == "fault"
    assert "syscall" in machine.kernel.faults[0][2]


def test_divide_fault_without_recovery_kills_process():
    machine, __, result = run("""
        main:
            li $t0, 1
            div $t1, $t0, $zero
            halt
    """)
    assert result.reason == "fault"


def test_sleep_blocks_for_requested_cycles():
    machine, __, result = run("""
        main:
            li $v0, SYS_CYCLE
            syscall
            move $s0, $v0
            li $v0, SYS_SLEEP
            li $a0, 8000
            syscall
            li $v0, SYS_CYCLE
            syscall
            move $s1, $v0
            halt
    """)
    assert result.reason == "halt"
    slept = machine.pipeline.regs[17] - machine.pipeline.regs[16]
    assert slept >= 8000


def test_join_returns_exit_code():
    machine, __, result = run("""
        main:
            li $v0, SYS_SPAWN
            la $a0, child
            li $a1, 0
            syscall
            move $a0, $v0          # child tid
            li $v0, SYS_JOIN
            syscall
            move $s0, $v0          # child's exit code
            halt
        child:
            li $t0, 2000
        spin:
            addi $t0, $t0, -1
            bnez $t0, spin
            li $v0, SYS_EXIT
            li $a0, 42
            syscall
    """)
    assert result.reason == "halt"
    assert machine.pipeline.regs[16] == 42


def test_join_unknown_tid():
    machine, __, result = run("""
        main:
            li $v0, SYS_JOIN
            li $a0, 99
            syscall
            move $s0, $v0
            halt
    """)
    assert result.reason == "halt"
    assert machine.pipeline.regs[16] == 0xFFFFFFFF
