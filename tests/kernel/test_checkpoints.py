"""Checkpoint store: histories, GC policies, recovery impossibility."""

import pytest

from repro.kernel.checkpoints import CheckpointStore, RecoveryImpossible
from repro.memory.mainmem import PAGE_SIZE


def page(byte):
    return bytes([byte]) * PAGE_SIZE


def test_save_and_rollback_single_writer():
    store = CheckpointStore()
    store.save(0x10, 100, writer=2, data=page(0xAA))
    snapshot = store.rollback_snapshot(0x10, {2})
    assert snapshot.data == page(0xAA)
    assert snapshot.cycle == 100


def test_rollback_picks_earliest_contamination():
    store = CheckpointStore()
    store.save(0x10, 100, writer=1, data=page(0x01))          # healthy write
    store.save(0x10, 200, writer=2, data=page(0x02))          # killed thread
    store.save(0x10, 300, writer=3, data=page(0x03))          # killed thread
    snapshot = store.rollback_snapshot(0x10, {2, 3})
    assert snapshot.cycle == 200          # pre-image of the first bad write


def test_rollback_none_when_page_untouched_by_kill_set():
    store = CheckpointStore()
    store.save(0x10, 100, writer=1, data=page(0x01))
    assert store.rollback_snapshot(0x10, {2, 3}) is None


def test_capacity_eviction_marks_deleted():
    store = CheckpointStore(max_snapshots=2)
    store.save(0x10, 100, writer=1, data=page(1))
    store.save(0x11, 200, writer=1, data=page(2))
    store.save(0x12, 300, writer=1, data=page(3))
    assert store.snapshot_count() == 2
    assert 0x10 in store.pages_touched()          # history remembered


def test_deleted_history_makes_recovery_impossible():
    """Section 4.2.2: "when any of the deleted pages is needed for
    recovery, the recovery algorithm terminates the entire process"."""
    store = CheckpointStore(max_snapshots=1)
    store.save(0x10, 100, writer=2, data=page(1))
    store.save(0x11, 200, writer=2, data=page(2))          # evicts 0x10
    with pytest.raises(RecoveryImpossible):
        store.rollback_snapshot(0x10, {2})


def test_time_based_gc():
    store = CheckpointStore(gc_age_cycles=1000)
    store.save(0x10, 100, writer=1, data=page(1))
    store.save(0x11, 1500, writer=1, data=page(2))
    removed = store.garbage_collect(now_cycle=2000)
    assert removed == 1
    assert store.rollback_snapshot(0x11, {1}).cycle == 1500
    with pytest.raises(RecoveryImpossible):
        store.rollback_snapshot(0x10, {1})


def test_gc_disabled_by_default():
    store = CheckpointStore()
    store.save(0x10, 100, writer=1, data=page(1))
    assert store.garbage_collect(10_000_000) == 0


def test_clear():
    store = CheckpointStore()
    store.save(0x10, 100, writer=1, data=page(1))
    store.clear()
    assert store.snapshot_count() == 0
    assert not store.pages_touched()


def test_recovery_impossible_end_to_end():
    """A tiny checkpoint budget forces the kill-all path during recovery."""
    from repro.kernel.kernel import KernelConfig
    from repro.rse.check import MODULE_DDT
    from repro.system import build_machine
    from repro.workloads import figure8

    machine = build_machine(with_rse=True, modules=("ddt",),
                            kernel_config=KernelConfig(
                                quantum_cycles=200_000,
                                checkpoint_max=1))
    machine.rse.enable_module(MODULE_DDT)
    machine.enable_ddt_recovery()
    image, __ = figure8.program()
    machine.kernel.load_process(image)
    result = machine.kernel.run(max_cycles=30_000_000)
    assert result.reason == "recovery_impossible"
    assert all(not t.alive for t in machine.kernel.threads.values())
