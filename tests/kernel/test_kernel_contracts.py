"""Kernel contract regressions: sentinel reservation, config validation,
open-loop arrivals, and the SYS_CYCLE 32-bit wrap idiom."""

import pytest

from repro.checkpoint import MachineCheckpoint
from repro.kernel.kernel import KernelConfig
from repro.kernel.syscalls import RECV_EXHAUSTED
from repro.program.layout import MemoryLayout
from repro.system import build_machine
from repro.workloads.asmlib import build_workload_image


# ------------------------------------------------- RECV_EXHAUSTED reservation

def test_request_source_reserves_the_exhaustion_sentinel():
    kernel = build_machine().kernel
    # The largest legal source stops one short of handing out the
    # sentinel as a request id.
    kernel.set_request_source(RECV_EXHAUSTED)
    with pytest.raises(ValueError):
        kernel.set_request_source(RECV_EXHAUSTED + 1)


def test_arrival_schedule_validation():
    kernel = build_machine().kernel
    with pytest.raises(ValueError):
        kernel.set_request_source(3, (10, 20))          # wrong length
    with pytest.raises(ValueError):
        kernel.set_request_source(3, (10, 5, 20))       # decreasing
    with pytest.raises(ValueError):
        kernel.set_request_source(2, (-1, 10))          # negative cycle
    kernel.set_request_source(3, (10, 10, 20))          # plateaus are fine
    assert kernel.request_arrivals == (10, 10, 20)


def test_open_loop_recv_blocks_until_arrival():
    machine = build_machine()
    image, __ = build_workload_image("""
        main:
            li $v0, SYS_RECV
            syscall
            move $s0, $v0
            li $v0, SYS_SEND
            move $a0, $s0
            li $a1, 123
            syscall
            halt
    """, MemoryLayout())
    machine.kernel.set_request_source(1, (50_000,))
    machine.kernel.load_process(image)
    result = machine.kernel.run(max_cycles=500_000)
    assert result.reason == "halt"
    # The request was not accepted before its arrival cycle.
    assert machine.pipeline.cycle >= 50_000
    assert machine.kernel.responses == {0: 123}


# --------------------------------------------------- KernelConfig validation

def test_kernel_config_rejects_bad_values():
    with pytest.raises(ValueError):
        KernelConfig(quantum_cycles=0)
    with pytest.raises(ValueError):
        KernelConfig(io_recv_jitter=-1)
    with pytest.raises(ValueError):
        KernelConfig(io_recv_latency=-5)
    with pytest.raises(ValueError):
        KernelConfig(context_switch_cost=-1)
    with pytest.raises(ValueError):
        KernelConfig(syscall_cost=-1)
    with pytest.raises(ValueError):
        KernelConfig(io_send_cost=-1)
    with pytest.raises(ValueError):
        KernelConfig(savepage_cost=-1)
    KernelConfig(savepage_cost=None)


def test_zero_jitter_serves_requests():
    # jitter=0 means "deterministic latency", not "divide by zero".
    machine = build_machine(kernel_config=KernelConfig(io_recv_jitter=0))
    image, __ = build_workload_image("""
        main:
            li $v0, SYS_RECV
            syscall
            move $a0, $v0
            li $v0, SYS_SEND
            li $a1, 7
            syscall
            halt
    """, MemoryLayout())
    machine.kernel.set_request_source(1)
    machine.kernel.load_process(image)
    assert machine.kernel.run(max_cycles=200_000).reason == "halt"
    assert machine.kernel.responses == {0: 7}


# ------------------------------------------------------- SYS_CYCLE 2^32 wrap

WRAP_TIMER = """
    main:
        li $v0, SYS_CYCLE
        syscall
        move $s0, $v0           # start (low 32 bits)
    wait:
        li $v0, SYS_SLEEP
        li $a0, 500
        syscall
        li $v0, SYS_CYCLE
        syscall
        sub $t0, $v0, $s0       # modular delta: exact across the wrap
        li $t2, 8000
        sltu $t1, $t0, $t2
        bnez $t1, wait
        move $s1, $t0           # final elapsed
        halt
"""


def run_timer_from(start_cycle):
    machine = build_machine()
    image, __ = build_workload_image(WRAP_TIMER, MemoryLayout())
    machine.kernel.load_process(image)
    machine.pipeline.advance_cycles(start_cycle)
    result = machine.kernel.run(max_cycles=start_cycle + 500_000)
    assert result.reason == "halt"
    return machine


def test_cycle_wrap_timing_loop_crosses_2_32():
    # Start ~4000 cycles shy of 2^32: the 8000-cycle window straddles
    # the wrap, so a naive (now < start) comparison would spin forever
    # or exit instantly.  The documented sub/sltu delta idiom stays
    # exact.
    wrapped = run_timer_from(2 ** 32 - 4_000)
    low = run_timer_from(0)
    assert wrapped.pipeline.cycle > 2 ** 32
    elapsed = wrapped.pipeline.regs[17]
    assert 8_000 <= elapsed < 60_000
    # Same guest behaviour on both sides of the wrap.
    assert elapsed == low.pipeline.regs[17]


def test_cycle_wrap_survives_checkpoint_restore():
    # A checkpointed high-cycle machine restores onto a spare and still
    # times correctly across 2^32 — the fleet failover path for
    # long-lived nodes.
    machine = build_machine()
    image, __ = build_workload_image(WRAP_TIMER, MemoryLayout())
    machine.kernel.load_process(image)
    machine.pipeline.advance_cycles(2 ** 32 - 4_000)
    wire = machine.checkpoint().to_bytes()

    spare = build_machine()
    spare.kernel.load_process(image)
    spare.restore(MachineCheckpoint.from_bytes(wire))
    assert spare.pipeline.cycle == 2 ** 32 - 4_000
    result = spare.kernel.run(max_cycles=2 ** 32 + 500_000)
    assert result.reason == "halt"
    assert spare.pipeline.cycle > 2 ** 32
    assert 8_000 <= spare.pipeline.regs[17] < 60_000
