"""Assembler behaviour: labels, directives, pseudo-ops, expressions."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.encoding import decode


def _words(assembly):
    return [int.from_bytes(assembly.text[i:i + 4], "little")
            for i in range(0, len(assembly.text), 4)]


def test_simple_program():
    asm = assemble("""
        main:
            addi $t0, $zero, 5
            add  $t1, $t0, $t0
            halt
    """)
    instrs = asm.instructions()
    assert [i.name for i in instrs] == ["addi", "add", "halt"]
    assert asm.entry == asm.symbols["main"] == asm.text_base


def test_branch_offset_backward():
    asm = assemble("""
        loop:
            addi $t0, $t0, -1
            bne  $t0, $zero, loop
            halt
    """)
    branch = asm.instructions()[1]
    # branch at pc+4; target = pc_branch + 4 + imm*4 == loop
    assert branch.imm == -2


def test_branch_offset_forward():
    asm = assemble("""
            beq $t0, $zero, done
            addi $t1, $zero, 1
        done:
            halt
    """)
    assert asm.instructions()[0].imm == 1


def test_labels_in_data_section():
    asm = assemble("""
        .data
        table:  .word 1, 2, 3
        msg:    .asciiz "hi"
        .text
        main:   la $t0, table
                lw $t1, 0($t0)
                halt
    """)
    assert asm.symbols["table"] == asm.data_base
    assert asm.symbols["msg"] == asm.data_base + 12
    assert asm.data[:4] == (1).to_bytes(4, "little")
    assert asm.data[12:15] == b"hi\x00"


def test_la_loads_full_address():
    asm = assemble("""
        .data
        x: .word 42
        .text
        main: la $t0, x
              halt
    """)
    lui, ori = asm.instructions()[:2]
    addr = (lui.uimm << 16) | ori.uimm
    assert addr == asm.symbols["x"]


def test_li_small_and_large():
    asm = assemble("""
        main:
            li $t0, 7
            li $t1, -9
            li $t2, 0x12345678
            halt
    """)
    names = [i.name for i in asm.instructions()]
    assert names == ["addi", "addi", "lui", "ori", "halt"]


def test_pseudo_blt_expansion():
    asm = assemble("""
        main:
            blt $t0, $t1, target
            halt
        target:
            halt
    """)
    instrs = asm.instructions()
    assert [i.name for i in instrs[:2]] == ["slt", "bne"]
    assert instrs[0].rd == 1          # uses $at


def test_label_addressed_load_pseudo():
    asm = assemble("""
        .data
        v: .word 99
        .text
        main:
            lw $t0, v
            halt
    """)
    names = [i.name for i in asm.instructions()]
    assert names == ["lui", "ori", "lw", "halt"]


def test_chk_instruction():
    asm = assemble("""
        .set ICM, 1
        main:
            chk ICM, BLK, 2, 0x10
            halt
    """)
    chk = asm.instructions()[0]
    assert chk.name == "chk"
    assert chk.module == 1 and chk.blk == 1 and chk.op == 2
    assert chk.param == 0x10


def test_chk_from_constants_dict():
    asm = assemble("chk DDT, NBLK, 0, 0\nhalt\n", constants={"DDT": 3})
    assert asm.instructions()[0].module == 3


def test_set_and_expressions():
    asm = assemble("""
        .set SIZE, 16
        .data
        buf: .space SIZE
        end: .word buf+4, end-buf
        .text
        main: halt
    """)
    assert asm.symbols["end"] == asm.data_base + 16
    word0 = int.from_bytes(asm.data[16:20], "little")
    word1 = int.from_bytes(asm.data[20:24], "little")
    assert word0 == asm.data_base + 4
    assert word1 == 16


def test_hi_lo_operators():
    asm = assemble("""
        .data
        x: .word 0
        .text
        main:
            lui $t0, hi(x)
            ori $t0, $t0, lo(x)
            halt
    """)
    lui, ori = asm.instructions()[:2]
    assert ((lui.uimm << 16) | ori.uimm) == asm.symbols["x"]


def test_align_directive():
    asm = assemble("""
        .data
        a: .byte 1
        .align 2
        b: .word 2
        .text
        main: halt
    """)
    assert asm.symbols["b"] == asm.data_base + 4


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("x: halt\nx: halt\n")


def test_undefined_symbol_rejected():
    with pytest.raises(AssemblyError):
        assemble("main: j nowhere\n")


def test_unknown_instruction_rejected():
    with pytest.raises(AssemblyError):
        assemble("main: frobnicate $t0\n")


def test_immediate_range_checked():
    with pytest.raises(AssemblyError):
        assemble("main: addi $t0, $zero, 70000\n")


def test_entry_prefers_start():
    asm = assemble("""
        helper: halt
        _start: halt
        main:   halt
    """)
    assert asm.entry == asm.symbols["_start"]


def test_comments_and_blank_lines():
    asm = assemble("""
        # leading comment
        main:   addi $t0, $zero, 1   # trailing
                ; semicolon comment
                halt
    """)
    assert [i.name for i in asm.instructions()] == ["addi", "halt"]
