"""Direct unit tests of the shared architectural semantics."""

import pytest

from repro.isa import semantics
from repro.isa.encoding import decode, encode
from repro.isa.instructions import SPEC_BY_NAME


def make(name, **fields):
    return decode(encode(SPEC_BY_NAME[name], **fields))


def test_add_wraps():
    instr = make("add", rd=1, rs=2, rt=3)
    assert semantics.alu_result(instr, 0xFFFFFFFF, 1) == 0


def test_sub_wraps():
    instr = make("sub", rd=1, rs=2, rt=3)
    assert semantics.alu_result(instr, 0, 1) == 0xFFFFFFFF


def test_signed_vs_unsigned_compare():
    slt = make("slt", rd=1, rs=2, rt=3)
    sltu = make("sltu", rd=1, rs=2, rt=3)
    assert semantics.alu_result(slt, 0xFFFFFFFF, 0) == 1          # -1 < 0
    assert semantics.alu_result(sltu, 0xFFFFFFFF, 0) == 0


def test_shift_semantics():
    assert semantics.alu_result(make("sll", rd=1, rt=2, shamt=4),
                                0, 0x1) == 0x10
    assert semantics.alu_result(make("srl", rd=1, rt=2, shamt=4),
                                0, 0x80000000) == 0x08000000
    assert semantics.alu_result(make("sra", rd=1, rt=2, shamt=4),
                                0, 0x80000000) == 0xF8000000


def test_variable_shifts_mask_amount():
    sllv = make("sllv", rd=1, rt=2, rs=3)
    assert semantics.alu_result(sllv, 33, 1) == 2          # 33 & 31 == 1


def test_lui():
    assert semantics.alu_result(make("lui", rt=1, imm=0x1234), 0, 0) \
        == 0x12340000


def test_division_truncates_toward_zero():
    div = make("div", rd=1, rs=2, rt=3)
    rem = make("rem", rd=1, rs=2, rt=3)
    neg7 = 0xFFFFFFF9
    assert semantics.to_signed(semantics.alu_result(div, neg7, 2)) == -3
    assert semantics.to_signed(semantics.alu_result(rem, neg7, 2)) == -1
    assert semantics.to_signed(semantics.alu_result(div, 7,
                                                    0xFFFFFFFE)) == -3


def test_divide_by_zero_raises():
    div = make("div", rd=1, rs=2, rt=3)
    with pytest.raises(semantics.ArithmeticFault):
        semantics.alu_result(div, 5, 0)


def test_unsigned_division():
    divu = make("divu", rd=1, rs=2, rt=3)
    assert semantics.alu_result(divu, 0xFFFFFFFF, 2) == 0x7FFFFFFF


def test_branch_conditions():
    assert semantics.branch_taken(make("beq", rs=1, rt=2, imm=0), 5, 5)
    assert not semantics.branch_taken(make("bne", rs=1, rt=2, imm=0), 5, 5)
    assert semantics.branch_taken(make("blez", rs=1, imm=0), 0, 0)
    assert semantics.branch_taken(make("blez", rs=1, imm=0), 0xFFFFFFFF, 0)
    assert semantics.branch_taken(make("bgtz", rs=1, imm=0), 1, 0)
    assert semantics.branch_taken(make("bltz", rs=1, imm=0), 0x80000000, 0)
    assert semantics.branch_taken(make("bgez", rs=1, imm=0), 0, 0)


def test_branch_target_arithmetic():
    instr = make("beq", rs=1, rt=2, imm=-2)
    assert semantics.branch_target(instr, 0x1000) == 0x1000 + 4 - 8


def test_jump_targets():
    j = make("j", target=0x100)
    assert semantics.jump_target(j, 0x00400000) == 0x00000400
    jr = make("jr", rs=5)
    assert semantics.jump_target(jr, 0, 0xCAFE0000) == 0xCAFE0000


def test_jump_region_is_pc_relative_high_bits():
    j = make("j", target=0x100)
    assert semantics.jump_target(j, 0x10000000) == 0x10000400


def test_effective_address_wraps():
    lw = make("lw", rt=1, rs=2, imm=-4)
    assert semantics.effective_address(lw, 0) == 0xFFFFFFFC


def test_access_sizes():
    assert semantics.access_size(make("lw", rt=1, rs=2, imm=0)) == 4
    assert semantics.access_size(make("lh", rt=1, rs=2, imm=0)) == 2
    assert semantics.access_size(make("sb", rt=1, rs=2, imm=0)) == 1


def test_to_signed_unsigned_roundtrip():
    for value in (0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF):
        assert semantics.to_unsigned(semantics.to_signed(value)) == value
