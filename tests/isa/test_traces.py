"""Superblock trace JIT: discovery, equivalence, and cache hygiene.

The trace JIT (:mod:`repro.isa.traces`) compiles hot straight-line
runs into single Python functions; these tests pin down the parts the
difftest fuzzer cannot reach deterministically — that hot loops really
do compile, that compiled execution is architecturally identical to
the bare interpreter (registers, instret, retired-pc stream, faults,
step budgets), and that the per-page write-version protocol
invalidates traces on text mutation.  The deopt *edges* (mid-run
attach, campaign flips, checkpoint rewinds) live in
``tests/funcsim/test_jit_deopt.py``.
"""

from repro.funcsim import FuncSim, StepResult
from repro.isa import traces
from repro.isa.assembler import assemble
from repro.memory.mainmem import MainMemory

LOOP = """
main:
    li $t0, 0
    li $t1, 200
loop:
    addi $t0, $t0, 1
    bne $t0, $t1, loop
    halt
"""

CALL_LOOP = """
main:
    li $s0, 0
    li $s1, 60
loop:
    jal bump
    bne $s0, $s1, loop
    halt
bump:
    addi $s0, $s0, 1
    jr $ra
"""

BRANCHY = """
    .data
table: .word 3, 1, 4, 1, 5, 9, 2, 6
    .text
main:
    li $s0, 0          # sum of the table values below 4
    li $t0, 0          # index
    li $t1, 8
    la $t2, table
loop:
    sll $t3, $t0, 2
    add $t3, $t3, $t2
    lw $t4, 0($t3)
    slti $t5, $t4, 4
    beq $t5, $zero, big
    add $s0, $s0, $t4
big:
    addi $t0, $t0, 1
    bne $t0, $t1, loop
    halt
"""


def build(source, **kwargs):
    asm = assemble(source)
    mem = MainMemory()
    mem.store_bytes(asm.text_base, asm.text)
    mem.store_bytes(asm.data_base, asm.data)
    return FuncSim(mem, entry=asm.entry, sp=0x7FFF0000, **kwargs), asm, mem


def step_reference(ref, max_steps):
    """Step *ref* like the difftest oracle: retired pcs + halting pc."""
    stream = []
    result = StepResult.OK
    for __ in range(max_steps):
        pc = ref.pc
        result = ref.step()
        stream.append(pc)
        if result is not StepResult.OK:
            break
    return result, stream


def run_both(source, max_steps=100_000):
    """Run *source* under the JIT and the bare interpreter, compare."""
    jit, __, ___ = build(source, jit_enabled=True)
    ref, __, ___ = build(source, predecode_enabled=False)
    jit.retire_log = stream = []
    jit_result = jit.run(max_steps)
    ref_result, ref_stream = step_reference(ref, max_steps)
    assert jit_result is ref_result
    assert jit.instret == ref.instret
    assert [jit.reg(index) for index in range(32)] == \
           [ref.reg(index) for index in range(32)]
    assert stream == ref_stream
    assert jit.fault == ref.fault
    return jit


def test_hot_loop_compiles_and_matches():
    jit = run_both(LOOP)
    stats = jit.trace_cache.stats()
    assert stats["compiled"] >= 1
    assert stats["traces_live"] >= 1


def test_call_inlining_matches():
    jit = run_both(CALL_LOOP)
    assert jit.trace_cache.stats()["compiled"] >= 1
    assert jit.reg(16) == 60


def test_internal_forward_branch_matches():
    jit = run_both(BRANCHY)
    assert jit.reg(16) == 3 + 1 + 1 + 2


def test_cold_code_never_compiles():
    # A straight-line program ends before any head gets hot.
    jit, __, ___ = build("main:\n li $t0, 7\n halt\n", jit_enabled=True)
    assert jit.run(100) is StepResult.HALTED
    assert jit.trace_cache.stats()["compiled"] == 0


def test_step_budget_is_exact_inside_a_trace():
    # Stop the run in the middle of what the JIT executes as one
    # compiled loop trace; instret and pc must match the interpreter
    # stopped at the same budget.
    for budget in (7, 50, 123, 399):
        jit, __, ___ = build(LOOP, jit_enabled=True)
        ref, __, ___ = build(LOOP, predecode_enabled=False)
        jit.run(budget)
        step_reference(ref, budget)
        assert jit.instret == ref.instret
        assert jit.pc == ref.pc


def test_fault_inside_trace_attributed_exactly():
    source = """
main:
    li $t0, 0
    li $t1, 40
loop:
    addi $t0, $t0, 1
    sub $t2, $t1, $t0
    div $t3, $t0, $t2
    bne $t0, $t1, loop
    halt
"""
    jit, __, ___ = build(source, jit_enabled=True)
    ref, __, ___ = build(source, predecode_enabled=False)
    assert jit.run(100_000) is StepResult.FAULT
    assert ref.run(100_000) is StepResult.FAULT
    assert jit.fault == ref.fault
    assert jit.instret == ref.instret


def test_store_to_text_invalidates_live_trace():
    # Warm the loop trace, patch the loop body's addi from +1 to +5 on
    # both engines at the same architectural midpoint, finish the run:
    # the JIT must re-discover, not replay the stale compiled trace.
    from repro.isa.encoding import encode
    from repro.isa.instructions import SPEC_BY_NAME

    source = """
main:
    li $t0, 0
    li $t1, 60
loop:
patch:
    addi $s0, $s0, 1
    addi $t0, $t0, 1
    bne $t0, $t1, loop
    halt
"""
    patched = encode(SPEC_BY_NAME["addi"], rs=16, rt=16, imm=5)
    mid = 2 + 3 * 20                    # setup + 20 full iterations
    jit, asm, mem = build(source, jit_enabled=True)
    ref, __, rmem = build(source, predecode_enabled=False)
    jit.run(mid)
    step_reference(ref, mid)
    assert jit.instret == ref.instret
    assert jit.trace_cache.stats()["compiled"] >= 1
    mem.store_word(asm.symbols["patch"], patched)
    rmem.store_word(asm.symbols["patch"], patched)
    assert jit.run(100_000) is StepResult.HALTED
    assert ref.run(100_000) is StepResult.HALTED
    assert jit.instret == ref.instret
    assert [jit.reg(index) for index in range(32)] == \
           [ref.reg(index) for index in range(32)]
    assert jit.reg(16) == 20 + 40 * 5   # $s0 felt the +5 patch


def test_logging_variant_matches_plain():
    jit, __, ___ = build(LOOP, jit_enabled=True)
    assert jit.run(100_000) is StepResult.HALTED

    logged, __, ___ = build(LOOP, jit_enabled=True)
    logged.retire_log = stream = []
    assert logged.run(100_000) is StepResult.HALTED
    assert logged.instret == jit.instret
    assert len(stream) == logged.instret    # every retired pc + halt pc
    assert logged.trace_cache.stats()["compiled"] >= 1


def test_trace_cache_shared_per_memory():
    jit, asm, mem = build(LOOP, jit_enabled=True)
    assert jit.run(100_000) is StepResult.HALTED
    assert traces.traces_for(mem) is jit.trace_cache
    # A second sim over the same memory reuses the compiled traces.
    again = FuncSim(mem, entry=asm.entry, sp=0x7FFF0000, jit_enabled=True)
    before = again.trace_cache.compiled
    assert again.run(100_000) is StepResult.HALTED
    assert again.trace_cache.compiled == before
