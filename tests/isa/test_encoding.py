"""Encode/decode round-trips and decode-error behaviour."""

import pytest

from repro.isa.encoding import DecodeError, decode, encode, flip_bit, is_valid
from repro.isa.instructions import SPEC_BY_NAME, SPECS, InstrClass


def test_nop_decodes_as_nop():
    instr = decode(0)
    assert instr.name == "nop"
    assert instr.iclass is InstrClass.NOP


def test_rtype_roundtrip():
    word = encode(SPEC_BY_NAME["add"], rs=9, rt=10, rd=8)
    instr = decode(word)
    assert instr.name == "add"
    assert (instr.rs, instr.rt, instr.rd) == (9, 10, 8)
    assert instr.dest == 8
    assert instr.srcs == (9, 10)


def test_itype_sign_extension():
    word = encode(SPEC_BY_NAME["addi"], rt=8, rs=9, imm=-5)
    instr = decode(word)
    assert instr.imm == -5
    assert instr.uimm == 0xFFFB


def test_load_store_reg_usage():
    load = decode(encode(SPEC_BY_NAME["lw"], rt=8, rs=29, imm=16))
    assert load.dest == 8 and load.srcs == (29,)
    store = decode(encode(SPEC_BY_NAME["sw"], rt=8, rs=29, imm=16))
    assert store.dest is None and store.srcs == (29, 8)


def test_jal_links_ra():
    instr = decode(encode(SPEC_BY_NAME["jal"], target=0x100))
    assert instr.dest == 31
    assert instr.target == 0x100


def test_regimm_branches():
    bltz = decode(encode(SPEC_BY_NAME["bltz"], rs=8, imm=4))
    assert bltz.name == "bltz"
    bgez = decode(encode(SPEC_BY_NAME["bgez"], rs=8, imm=4))
    assert bgez.name == "bgez"


def test_chk_fields_roundtrip():
    word = encode(SPEC_BY_NAME["chk"], module=3, blk=1, op=17, param=0xBEEF)
    instr = decode(word)
    assert instr.iclass is InstrClass.CHECK
    assert instr.module == 3
    assert instr.blk == 1
    assert instr.op == 17
    assert instr.param == 0xBEEF


def test_chk_payload_register_convention():
    # Operations with bit 4 set carry a register payload in a0/a1 ...
    instr = decode(encode(SPEC_BY_NAME["chk"], module=1, blk=0, op=0x12,
                          param=0))
    assert instr.srcs == (4, 5)          # a0, a1
    # ... operations without it must not create a0/a1 dependencies.
    instr = decode(encode(SPEC_BY_NAME["chk"], module=1, blk=1, op=0x02,
                          param=0))
    assert instr.srcs == ()


def test_every_spec_roundtrips():
    for spec in SPECS:
        word = encode(spec, rs=3, rt=7, rd=11, shamt=2, imm=100, target=0x40,
                      module=2, blk=1, op=5, param=9)
        instr = decode(word)
        assert instr.name == spec.name, spec.name
        assert instr.iclass is spec.iclass


def test_unknown_opcode_raises():
    with pytest.raises(DecodeError):
        decode(0x3D << 26)          # unassigned opcode


def test_unknown_funct_raises():
    with pytest.raises(DecodeError):
        decode(0x0000003E)          # R-type funct 0x3E unassigned


def test_is_valid():
    assert is_valid(0)
    assert not is_valid(0x3D << 26)


def test_flip_bit():
    assert flip_bit(0, 0) == 1
    assert flip_bit(0, 31) == 0x80000000
    assert flip_bit(flip_bit(0xDEADBEEF, 13), 13) == 0xDEADBEEF
    with pytest.raises(ValueError):
        flip_bit(0, 32)


def test_flip_bit_changes_decode_or_faults():
    word = encode(SPEC_BY_NAME["beq"], rs=8, rt=9, imm=12)
    corrupted = flip_bit(word, 26)          # hits the opcode field
    if is_valid(corrupted):
        assert decode(corrupted).name != "beq"
