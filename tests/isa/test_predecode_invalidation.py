"""Every text-mutation path must invalidate cached predecoded entries.

The predecode cache revalidates entries against
:attr:`MainMemory.write_versions`, so the contract is simple: anything
that changes memory bumps the page's counter, and the next fetch of any
pc on that page re-decodes.  These tests drive one cached instruction
through every mutation path the system has — each store variant,
``restore_page``, and the fault-injection campaign's instr-flip /
mem-flip recipe (``load_word``/``flip_bit``/``store_word``) — and
assert the *re-decoded* semantics execute.
"""

import pytest

from repro.funcsim import FuncSim, StepResult
from repro.isa.assembler import assemble
from repro.isa.encoding import encode, flip_bit
from repro.isa.instructions import SPEC_BY_NAME
from repro.isa.predecode import cache_for
from repro.memory.mainmem import PAGE_SIZE, PAGE_SHIFT, MainMemory

SOURCE = """
main:
    addi $s0, $s0, 1
    halt
"""


def build():
    asm = assemble(SOURCE)
    mem = MainMemory()
    mem.store_bytes(asm.text_base, asm.text)
    mem.store_bytes(asm.data_base, asm.data)
    return asm, mem


def run_fresh(mem, asm):
    sim = FuncSim(mem, entry=asm.entry, sp=0x7FFF0000,
                  predecode_enabled=True)
    assert sim.run(1000) is StepResult.HALTED
    return sim


def prime_cache(mem, asm):
    """Execute once so the addi at the entry pc is cached, return its pc."""
    run_fresh(mem, asm)
    pc = asm.entry
    assert pc in cache_for(mem).entries
    return pc


def addi_word(imm):
    return encode(SPEC_BY_NAME["addi"], rs=16, rt=16, imm=imm)


def mutate_store_word(mem, pc):
    mem.store_word(pc, addi_word(42))
    return 42


def mutate_store_half(mem, pc):
    # Little-endian: the low half of the word is the immediate field.
    mem.store_half(pc, 42)
    return 42


def mutate_store_byte(mem, pc):
    mem.store_byte(pc, 42)
    return 42


def mutate_store_bytes(mem, pc):
    word = addi_word(42)
    mem.store_bytes(pc, bytes([word & 0xFF, (word >> 8) & 0xFF,
                               (word >> 16) & 0xFF, (word >> 24) & 0xFF]))
    return 42


def mutate_restore_page(mem, pc):
    page_base = (pc >> PAGE_SHIFT) << PAGE_SHIFT
    payload = bytearray(mem.load_bytes(page_base, PAGE_SIZE))
    word = addi_word(42)
    offset = pc - page_base
    payload[offset:offset + 4] = bytes([word & 0xFF, (word >> 8) & 0xFF,
                                        (word >> 16) & 0xFF,
                                        (word >> 24) & 0xFF])
    mem.restore_page(pc >> PAGE_SHIFT, bytes(payload))
    return 42


def mutate_campaign_flip(mem, pc):
    # The instr-flip / mem-flip models' arm() recipe, verbatim:
    # read the word, flip a bit, store it back with store_word.
    word = flip_bit(mem.load_word(pc), 1)          # imm 1 -> 3
    mem.store_word(pc, word)
    return 3


MUTATORS = [mutate_store_word, mutate_store_half, mutate_store_byte,
            mutate_store_bytes, mutate_restore_page, mutate_campaign_flip]


@pytest.mark.parametrize("mutate", MUTATORS,
                         ids=[m.__name__ for m in MUTATORS])
def test_mutation_path_invalidates_cached_text(mutate):
    asm, mem = build()
    pc = prime_cache(mem, asm)
    cached_imm = cache_for(mem).entries[pc][3].imm
    assert cached_imm == 1
    expected = mutate(mem, pc)
    # A fresh simulator over the same memory shares the same cache; the
    # stale entry must be dropped and the new immediate must execute.
    sim = run_fresh(mem, asm)
    assert sim.regs[16] == expected
    assert cache_for(mem).entries[pc][3].imm == expected


@pytest.mark.parametrize("mutate", MUTATORS,
                         ids=[m.__name__ for m in MUTATORS])
def test_mutation_path_bumps_write_version(mutate):
    asm, mem = build()
    pc = prime_cache(mem, asm)
    page = pc >> PAGE_SHIFT
    before = mem.write_versions.get(page, 0)
    mutate(mem, pc)
    assert mem.write_versions.get(page, 0) > before


def test_cache_fetch_level_revalidation():
    # Below the simulator: PredecodeCache.fetch itself must re-decode.
    asm, mem = build()
    cache = cache_for(mem)
    pc = asm.entry
    assert cache.fetch(pc)[3].imm == 1
    mem.store_word(pc, addi_word(7))
    assert cache.fetch(pc)[3].imm == 7
