"""The predecode layer: closure-vs-oracle equivalence and cache invalidation.

The closures :func:`repro.isa.predecode.compile_instr` emits inline the
hot opcodes by hand (bias-trick compares, baked immediates); these tests
pin every inlined kernel to the table-driven semantics in
:mod:`repro.isa.semantics`, which remain the single source of truth.
"""

import pytest

from repro.isa import predecode, semantics
from repro.isa.encoding import decode, encode, flip_bit
from repro.isa.instructions import SPEC_BY_NAME
from repro.memory.mainmem import MainMemory


def make(name, **fields):
    return decode(encode(SPEC_BY_NAME[name], **fields))


class FakeSim:
    """The slice of FuncSim state the compiled closures touch."""

    def __init__(self):
        self.regs = [0] * 32
        self.trace_mem = None
        self.halted = False


def run_closure(instr, pc=0x1000, memory=None, a=0, b=0, sim=None):
    """Compile *instr* and execute it once with rs=$2=a, rt=$3=b."""
    if sim is None:
        sim = FakeSim()
    sim.regs[2] = a
    sim.regs[3] = b
    fn = predecode.compile_instr(pc, instr, memory or MainMemory())
    return fn(sim), sim


EDGE_VALUES = [0, 1, 2, 31, 32, 0x7FFF, 0x8000, 0x12345678,
               0x7FFFFFFF, 0x80000000, 0xFFFFFFFE, 0xFFFFFFFF]

R3_OPS = ["add", "sub", "and", "or", "xor", "nor", "slt", "sltu",
          "sllv", "srlv", "srav", "mul", "div", "rem", "divu", "remu"]
IMM_OPS = ["addi", "slti", "sltiu"]
UIMM_OPS = ["andi", "ori", "xori"]
SHIFT_OPS = ["sll", "srl", "sra"]
BRANCHES = ["beq", "bne", "blez", "bgtz", "bltz", "bgez"]


@pytest.mark.parametrize("name", R3_OPS)
def test_r3_closures_match_alu_result(name):
    instr = make(name, rd=4, rs=2, rt=3)
    for a in EDGE_VALUES:
        for b in EDGE_VALUES:
            try:
                expected = semantics.alu_result(instr, a, b)
            except semantics.ArithmeticFault:
                with pytest.raises(semantics.ArithmeticFault):
                    run_closure(instr, a=a, b=b)
                continue
            nxt, sim = run_closure(instr, a=a, b=b)
            assert sim.regs[4] == expected, (name, hex(a), hex(b))
            assert nxt == 0x1004


@pytest.mark.parametrize("name,signed", [(n, True) for n in IMM_OPS]
                         + [(n, False) for n in UIMM_OPS])
def test_immediate_closures_match_alu_result(name, signed):
    imms = [-32768, -1, 0, 1, 0x7FFF] if signed else [0, 1, 0x8000, 0xFFFF]
    for imm in imms:
        instr = make(name, rt=4, rs=2, imm=imm & 0xFFFF)
        for a in EDGE_VALUES:
            expected = semantics.alu_result(instr, a, 0)
            __, sim = run_closure(instr, a=a)
            assert sim.regs[4] == expected, (name, hex(a), imm)


@pytest.mark.parametrize("name", SHIFT_OPS)
def test_shift_closures_match_alu_result(name):
    for shamt in (0, 1, 4, 31):
        instr = make(name, rd=4, rt=3, shamt=shamt)
        for b in EDGE_VALUES:
            expected = semantics.alu_result(instr, 0, b)
            __, sim = run_closure(instr, b=b)
            assert sim.regs[4] == expected, (name, hex(b), shamt)


def test_lui_closure():
    instr = make("lui", rt=4, imm=0xABCD)
    __, sim = run_closure(instr)
    assert sim.regs[4] == semantics.alu_result(instr, 0, 0) == 0xABCD0000


def test_zero_dest_alu_closure_does_not_write_r0():
    instr = make("add", rd=0, rs=2, rt=3)
    __, sim = run_closure(instr, a=5, b=7)
    assert sim.regs[0] == 0


def test_zero_dest_divide_still_faults():
    instr = make("div", rd=0, rs=2, rt=3)
    with pytest.raises(semantics.ArithmeticFault):
        run_closure(instr, a=1, b=0)


@pytest.mark.parametrize("name", BRANCHES)
def test_branch_closures_match_control_target(name):
    pc = 0x2000
    for imm in (0x10, 0xFFF0):          # forward and backward offsets
        instr = make(name, rs=2, rt=3, imm=imm)
        for a in EDGE_VALUES:
            for b in (0, a, 0xFFFFFFFF):
                expected = semantics.control_target(instr, pc, a, b)
                nxt, __ = run_closure(instr, pc=pc, a=a, b=b)
                assert nxt == expected, (name, hex(a), hex(b), imm)


def test_jump_closures():
    pc = 0x40001000
    j = make("j", target=0x123)
    assert run_closure(j, pc=pc)[0] == semantics.jump_target(j, pc)
    jal = make("jal", target=0x123)
    nxt, sim = run_closure(jal, pc=pc)
    assert nxt == semantics.jump_target(jal, pc)
    assert sim.regs[31] == pc + 4
    jr = make("jr", rs=2)
    assert run_closure(jr, pc=pc, a=0x5678)[0] == 0x5678


def test_jalr_link_written_before_target_read():
    # rd == rs: the reference interpreter writes the link and then reads
    # the target register, so the jump lands on pc+4.  The closure must
    # preserve that exact (if surprising) order.
    pc = 0x3000
    instr = make("jalr", rd=2, rs=2)
    nxt, sim = run_closure(instr, pc=pc, a=0xABC0)
    assert nxt == pc + 4
    assert sim.regs[2] == pc + 4


def test_load_store_closures_and_trace_order(tmp_path):
    mem = MainMemory()
    mem.store_word(0x5000, 0x80FF8001)
    events = []
    sim = FakeSim()
    sim.trace_mem = lambda s, i, addr, st: events.append((i.name, addr, st))
    for name, expected in [("lw", 0x80FF8001), ("lhu", 0x8001),
                           ("lh", 0xFFFF8001), ("lbu", 0x80),
                           ("lb", 0xFFFFFF80)]:
        instr = make(name, rt=4, rs=2, imm=0)
        if name in ("lbu", "lb"):
            instr = make(name, rt=4, rs=2, imm=1)
        run_closure(instr, memory=mem, a=0x5000, sim=sim)
        assert sim.regs[4] == expected, name
    sw = make("sw", rt=3, rs=2, imm=8)
    run_closure(sw, memory=mem, a=0x5000, b=0xCAFEBABE, sim=sim)
    assert mem.load_word(0x5008) == 0xCAFEBABE
    assert events[0] == ("lw", 0x5000, False)
    assert events[-1] == ("sw", 0x5008, True)


def test_halt_closure_sets_halted():
    instr = make("halt")
    nxt, sim = run_closure(instr)
    assert nxt == predecode.HALT
    assert sim.halted


def test_serializing_closures_touch_nothing():
    for name, sentinel in [("syscall", predecode.SYSCALL)]:
        instr = make(name)
        nxt, sim = run_closure(instr)
        assert nxt == sentinel
        assert not sim.halted and sim.regs == [0] * 30 + [0, 0]


# ------------------------------------------------------------------- cache

def word_of(name, **fields):
    return encode(SPEC_BY_NAME[name], **fields)


def test_cache_entry_holds_version_closure_word_instr():
    mem = MainMemory()
    word = word_of("add", rd=4, rs=2, rt=3)
    mem.store_word(0x1000, word)
    cache = predecode.cache_for(mem)
    entry = cache.fetch(0x1000)
    assert entry[0] == mem.write_versions[0x1000 >> 12]
    assert callable(entry[1])
    assert entry[2] == word
    assert entry[3].name == "add"


def test_store_to_cached_text_invalidates_only_that_page():
    mem = MainMemory()
    mem.store_word(0x1000, word_of("add", rd=4, rs=2, rt=3))
    mem.store_word(0x9000, word_of("sub", rd=4, rs=2, rt=3))
    cache = predecode.cache_for(mem)
    first = cache.fetch(0x1000)
    other = cache.fetch(0x9000)
    # Corrupt the first word in place (an injected instr-flip).
    mem.store_word(0x1000, flip_bit(first[2], 1))
    fresh = cache.fetch(0x1000)
    assert fresh is not first
    assert fresh[2] == flip_bit(first[2], 1)
    # The untouched page revalidates without a refill.
    assert cache.fetch(0x9000) is other


def test_byte_and_bulk_stores_invalidate():
    mem = MainMemory()
    cache = predecode.cache_for(mem)
    mem.store_word(0x1000, word_of("add", rd=4, rs=2, rt=3))
    before = cache.fetch(0x1000)
    mem.store_byte(0x1001, 0xFF)
    assert cache.fetch(0x1000) is not before
    before = cache.fetch(0x1000)
    mem.store_bytes(0x1000, bytes(4))
    after = cache.fetch(0x1000)
    assert after is not before
    assert after[2] == 0


def test_restore_page_invalidates():
    mem = MainMemory()
    cache = predecode.cache_for(mem)
    page = 0x1000 >> 12
    mem.store_word(0x1000, word_of("add", rd=4, rs=2, rt=3))
    snap = mem.snapshot_page(page)
    before = cache.fetch(0x1000)
    mem.restore_page(page, snap)
    assert cache.fetch(0x1000) is not before


def test_cache_cap_clears_instead_of_growing():
    mem = MainMemory()
    cache = predecode.cache_for(mem)
    cache.entries = {pc: None for pc in range(cache.MAX_ENTRIES)}
    mem.store_word(0x1000, word_of("add", rd=4, rs=2, rt=3))
    cache.refill(0x1000)
    assert len(cache.entries) == 1


def test_cache_for_is_shared_per_memory():
    mem_a, mem_b = MainMemory(), MainMemory()
    assert predecode.cache_for(mem_a) is predecode.cache_for(mem_a)
    assert predecode.cache_for(mem_a) is not predecode.cache_for(mem_b)
