"""Exhaustive signed-arithmetic edge cases, pinned across engines.

Satellite of the differential-fuzzing work: the arithmetic corners that
historically drift between an interpreter and a compiled/predecoded
fast path — INT_MIN division, sign-extension masking in arithmetic
shifts, shift-amount masking — get an exhaustive grid here, checked
three ways: directly against the semantics tables, and differentially
between the reference interpreter and the predecode closures.
"""

import pytest

from repro.isa import semantics
from repro.isa.encoding import decode, encode
from repro.isa.instructions import SPEC_BY_NAME
from repro.isa.predecode import compile_instr
from repro.memory.mainmem import MainMemory

MASK32 = 0xFFFFFFFF
INT_MIN = 0x80000000
INT_MAX = 0x7FFFFFFF
EDGES = (0, 1, 2, INT_MAX - 1, INT_MAX, INT_MIN, INT_MIN + 1,
         0xFFFFFFFE, 0xFFFFFFFF)


def make(name, **fields):
    return decode(encode(SPEC_BY_NAME[name], **fields))


def every_engine_result(name, a, b, shamt=0):
    """(table, closure) results for one R-type op on operand values."""
    instr = make(name, rd=4, rs=2, rt=3, shamt=shamt)
    table = semantics.alu_result(instr, a, b)

    class _Sim:
        regs = [0] * 32
    sim = _Sim()
    sim.regs[2] = a
    sim.regs[3] = b
    fn = compile_instr(0, instr, MainMemory())
    fn(sim)
    return table, sim.regs[4]


# ------------------------------------------------------------- div/rem wrap

def test_int_min_div_minus_one_wraps():
    table, closure = every_engine_result("div", INT_MIN, 0xFFFFFFFF)
    assert table == closure == INT_MIN


def test_int_min_rem_minus_one_is_zero():
    table, closure = every_engine_result("rem", INT_MIN, 0xFFFFFFFF)
    assert table == closure == 0


@pytest.mark.parametrize("a", EDGES)
@pytest.mark.parametrize("b", EDGES)
@pytest.mark.parametrize("name", ["div", "rem", "divu", "remu"])
def test_division_grid_in_range_and_engine_identical(name, a, b):
    if b == 0:
        for variant in (semantics.alu_result,):
            with pytest.raises(semantics.ArithmeticFault):
                variant(make(name, rd=4, rs=2, rt=3), a, b)
        return
    table, closure = every_engine_result(name, a, b)
    assert table == closure
    assert 0 <= table <= MASK32          # never escapes 32 bits
    if name == "div" and not (a == INT_MIN and b == MASK32):
        # Python-exact signed quotient, truncated toward zero.
        sa, sb = semantics.to_signed(a), semantics.to_signed(b)
        expect = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            expect = -expect
        assert semantics.to_signed(table) == expect
    if name == "divu":
        assert table == a // b
    if name == "remu":
        assert table == a % b


@pytest.mark.parametrize("name", ["div", "rem"])
def test_division_identity_holds_for_wrapped_case(name):
    # INT_MIN == (INT_MIN / -1) * -1 + (INT_MIN % -1) under MASK32.
    q, __ = every_engine_result("div", INT_MIN, 0xFFFFFFFF)
    r, __ = every_engine_result("rem", INT_MIN, 0xFFFFFFFF)
    assert (q * semantics.to_signed(0xFFFFFFFF) + r) & MASK32 == INT_MIN


# ----------------------------------------------------------- shift masking

@pytest.mark.parametrize("value", EDGES)
@pytest.mark.parametrize("shamt", [0, 1, 15, 31])
def test_sra_masks_to_32_bits(value, shamt):
    table, closure = every_engine_result("sra", 0, value, shamt=shamt)
    assert table == closure
    assert 0 <= table <= MASK32
    assert table == (semantics.to_signed(value) >> shamt) & MASK32
    if value & INT_MIN:          # negative: high bits fill with ones
        assert table >> (31 - shamt) == (1 << (shamt + 1)) - 1


@pytest.mark.parametrize("value", EDGES)
@pytest.mark.parametrize("amount", [0, 1, 31, 32, 33, 63, 0xFFFFFFFF])
def test_srav_masks_amount_and_result(value, amount):
    table, closure = every_engine_result("srav", amount, value)
    assert table == closure
    assert 0 <= table <= MASK32
    assert table == (semantics.to_signed(value) >> (amount & 31)) & MASK32


@pytest.mark.parametrize("value", EDGES)
@pytest.mark.parametrize("amount", [0, 1, 31, 32, 33, 0xFFFFFFFF])
def test_sllv_srlv_mask_amount(value, amount):
    sll_t, sll_c = every_engine_result("sllv", amount, value)
    srl_t, srl_c = every_engine_result("srlv", amount, value)
    assert sll_t == sll_c == (value << (amount & 31)) & MASK32
    assert srl_t == srl_c == value >> (amount & 31)


@pytest.mark.parametrize("a", EDGES)
@pytest.mark.parametrize("b", EDGES)
def test_mul_wraps_identically(a, b):
    table, closure = every_engine_result("mul", a, b)
    assert table == closure
    assert table == (semantics.to_signed(a) * semantics.to_signed(b)) \
        & MASK32
