"""Trace-JIT deopt edges: every path that must abandon compiled traces.

The JIT's contract is that architectural state is *always* identical
to the bare interpreter, no matter what invalidates or bypasses a
trace mid-flight.  Each test here drives one edge from the issue list:
a campaign-style bit flip landing inside a compiled trace,
``Machine.restore()`` rewinding a page a live trace was compiled
from, and attach/detach of ``trace_mem`` / the assertion suite
mid-run.
"""

from repro.funcsim import FuncSim, StepResult
from repro.isa.assembler import assemble
from repro.isa.encoding import flip_bit
from repro.isa.traces import traces_for
from repro.memory.mainmem import MainMemory

LOOP = """
main:
    li $t0, 0
    li $t1, 60
loop:
body:
    addi $s0, $s0, 1
    addi $t0, $t0, 1
    bne $t0, $t1, loop
    halt
"""


def build(source, **kwargs):
    asm = assemble(source)
    mem = MainMemory()
    mem.store_bytes(asm.text_base, asm.text)
    mem.store_bytes(asm.data_base, asm.data)
    return FuncSim(mem, entry=asm.entry, sp=0x7FFF0000, **kwargs), asm, mem


def step_to(ref, budget):
    for __ in range(budget):
        if ref.step() is not StepResult.OK:
            break


def assert_same_state(jit, ref):
    assert jit.instret == ref.instret
    assert jit.pc == ref.pc
    assert jit.fault == ref.fault
    assert [jit.reg(index) for index in range(32)] == \
           [ref.reg(index) for index in range(32)]


def test_campaign_flip_inside_compiled_trace():
    # The fault-injection campaign's instr-flip recipe
    # (load_word / flip_bit / store_word) lands on an instruction in
    # the middle of a warm compiled trace; both engines must see the
    # mutated semantics from the same architectural point on.
    jit, asm, mem = build(LOOP, jit_enabled=True)
    ref, __, rmem = build(LOOP, predecode_enabled=False)
    mid = 2 + 3 * 20
    jit.run(mid)
    step_to(ref, mid)
    assert jit.trace_cache.stats()["compiled"] >= 1
    target = asm.symbols["body"]
    for memory in (mem, rmem):
        word = memory.load_word(target)
        memory.store_word(target, flip_bit(word, 1))   # addi +1 -> +3
    assert jit.run(100_000) is StepResult.HALTED
    assert ref.run(100_000) is StepResult.HALTED
    assert_same_state(jit, ref)
    assert jit.reg(16) == 20 + 40 * 3
    assert jit.trace_cache.invalidated >= 1


def test_machine_restore_rewinds_live_trace_page():
    # A trace compiled from a text page stays keyed to that page's
    # write version; Machine.restore() rewinding the page must bump
    # the version past everything the discarded timeline used, so the
    # stale trace can never revalidate.
    from repro.system import build_machine

    source = LOOP
    asm = assemble(source)
    machine = build_machine()
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.memory.store_bytes(asm.data_base, asm.data)
    checkpoint = machine.checkpoint()

    sim = FuncSim(machine.memory, entry=asm.entry, sp=0x7FFF0000,
                  jit_enabled=True)
    assert sim.run(100_000) is StepResult.HALTED
    cache = sim.trace_cache
    assert cache.stats()["compiled"] >= 1
    # Mutate the text page in this timeline, then rewind it.
    body = asm.symbols["body"]
    word = machine.memory.load_word(body)
    machine.memory.store_word(body, flip_bit(word, 1))
    machine.restore(checkpoint)

    # Post-rewind the bytes are the originals but every cached trace
    # must be version-stale; a fresh run matches the interpreter.
    again = FuncSim(machine.memory, entry=asm.entry, sp=0x7FFF0000,
                    jit_enabled=True)
    assert again.trace_cache is cache
    ref, __, ___ = build(source, predecode_enabled=False)
    assert again.run(100_000) is StepResult.HALTED
    assert ref.run(100_000) is StepResult.HALTED
    assert_same_state(again, ref)
    assert cache.invalidated >= 1 or cache.compiled >= 2


def test_trace_mem_attach_between_runs_deopts():
    events = []

    def trace(sim, instr, addr, is_store):
        events.append((instr.name, addr, is_store))

    source = """
    .data
x:  .word 0
    .text
main:
    li $t0, 0
    li $t1, 40
    la $t2, x
loop:
    lw $t3, 0($t2)
    addi $t3, $t3, 1
    sw $t3, 0($t2)
    addi $t0, $t0, 1
    bne $t0, $t1, loop
    halt
"""
    jit, asm, mem = build(source, jit_enabled=True)
    mid = 3 + 5 * 20
    jit.run(mid)
    assert jit.trace_cache.stats()["compiled"] >= 1
    jit.trace_mem = trace              # attach: every event from here on
    deopts_before = jit.trace_cache.deopt_runs
    jit.run(5 * 10)                    # ten more iterations, observed
    assert jit.trace_cache.deopt_runs > deopts_before
    x = asm.symbols["x"]
    assert events == [("lw", x, False), ("sw", x, True)] * 10
    jit.trace_mem = None               # detach: traces come back
    assert jit.run(100_000) is StepResult.HALTED
    assert mem.load_word(x) == 40
    assert jit.instret == 4 + 5 * 40 + 1   # la expands to two instrs


def test_trace_mem_attach_mid_run_deopts_tail():
    # A syscall handler attaches trace_mem *inside* a single run()
    # call: the dispatch loop must fall back for the remaining budget
    # (the _deopt_tail path), not finish the run blind.
    events = []

    def trace(sim, instr, addr, is_store):
        events.append(instr.name)

    def handler(sim):
        sim.trace_mem = trace
        return True

    source = """
    .data
x:  .word 0
    .text
main:
    li $t0, 0
    li $t1, 30
    la $t2, x
loop:
    lw $t3, 0($t2)
    addi $t3, $t3, 1
    sw $t3, 0($t2)
    addi $t0, $t0, 1
    bne $t0, $t1, warm
    halt
warm:
    slti $t4, $t0, 15
    bne $t4, $zero, loop
    beq $t0, $t1, loop
    syscall
    j loop
"""
    jit, asm, mem = build(source, jit_enabled=True,
                          syscall_handler=handler)
    ref, __, rmem = build(source, predecode_enabled=False,
                          syscall_handler=handler)
    assert jit.run(100_000) is StepResult.HALTED
    jit_events = list(events)
    events.clear()
    assert ref.run(100_000) is StepResult.HALTED
    assert_same_state(jit, ref)
    assert jit_events == events        # same observation stream
    assert jit_events                  # and the hook really fired


def test_assertions_attach_detach_mid_run():
    from repro.assertions import attach_funcsim

    jit, asm, mem = build(LOOP, jit_enabled=True)
    ref, __, ___ = build(LOOP, predecode_enabled=False)
    mid = 2 + 3 * 10
    jit.run(mid)
    step_to(ref, mid)
    assert jit.trace_cache.stats()["compiled"] >= 1

    adapter = attach_funcsim(jit)      # forces closure-at-a-time
    jit.run(3 * 10)
    step_to(ref, 3 * 10)
    adapter.detach()                   # traces come back
    assert not adapter.monitor.violations
    assert jit.run(100_000) is StepResult.HALTED
    assert ref.run(100_000) is StepResult.HALTED
    assert_same_state(jit, ref)
