"""Functional simulator: program-level semantics."""

import pytest

from repro.funcsim import FuncSim, StepResult
from repro.isa.assembler import assemble
from repro.memory.mainmem import MainMemory


def run_program(source, max_steps=100_000, syscall_handler=None):
    asm = assemble(source)
    mem = MainMemory()
    mem.store_bytes(asm.text_base, asm.text)
    mem.store_bytes(asm.data_base, asm.data)
    sim = FuncSim(mem, entry=asm.entry, sp=0x7FFF0000,
                  syscall_handler=syscall_handler)
    result = sim.run(max_steps)
    return sim, asm, result


def test_arithmetic_loop():
    sim, __, result = run_program("""
        main:
            li $t0, 0          # sum
            li $t1, 10         # counter
        loop:
            add $t0, $t0, $t1
            addi $t1, $t1, -1
            bnez $t1, loop
            halt
    """)
    assert result is StepResult.HALTED
    assert sim.reg(8) == 55


def test_memory_store_load():
    sim, asm, __ = run_program("""
        .data
        buf: .space 64
        .text
        main:
            la $t0, buf
            li $t1, 0x1234
            sw $t1, 8($t0)
            lw $t2, 8($t0)
            halt
    """)
    assert sim.reg(10) == 0x1234
    assert sim.memory.load_word(asm.symbols["buf"] + 8) == 0x1234


def test_signed_byte_load():
    sim, __, __ = run_program("""
        .data
        b: .byte 0xFF
        .text
        main:
            lb  $t0, b
            lbu $t1, b
            halt
    """)
    assert sim.reg(8) == 0xFFFFFFFF          # sign-extended -1
    assert sim.reg(9) == 0xFF


def test_function_call_and_return():
    sim, __, __ = run_program("""
        main:
            li $a0, 6
            jal double
            move $s0, $v0
            halt
        double:
            add $v0, $a0, $a0
            jr $ra
    """)
    assert sim.reg(16) == 12


def test_slt_signed_comparison():
    sim, __, __ = run_program("""
        main:
            li $t0, -1
            li $t1, 1
            slt $t2, $t0, $t1
            sltu $t3, $t0, $t1
            halt
    """)
    assert sim.reg(10) == 1          # -1 < 1 signed
    assert sim.reg(11) == 0          # 0xFFFFFFFF > 1 unsigned


def test_mul_div_rem():
    sim, __, __ = run_program("""
        main:
            li $t0, -7
            li $t1, 2
            mul $t2, $t0, $t1
            div $t3, $t0, $t1
            rem $t4, $t0, $t1
            halt
    """)
    assert sim.reg(10) == 0xFFFFFFF2          # -14
    assert sim.reg(11) == 0xFFFFFFFD          # -3 (truncating)
    assert sim.reg(12) == 0xFFFFFFFF          # -1


def test_divide_by_zero_faults():
    sim, __, result = run_program("""
        main:
            li $t0, 1
            div $t1, $t0, $zero
            halt
    """)
    assert result is StepResult.FAULT
    assert "divide" in sim.fault[1]


def test_bad_fetch_faults():
    sim, __, result = run_program("""
        main:
            li $t0, 0
            jr $t0
    """)
    # pc=0 holds word 0 (nop), keeps walking through zeroed memory without
    # end; instead jump to an unaligned target to fault immediately.
    mem = MainMemory()
    sim2 = FuncSim(mem, entry=0x2)
    assert sim2.step() is StepResult.FAULT


def test_illegal_instruction_faults():
    mem = MainMemory()
    mem.store_word(0x1000, 0x3D << 26)
    sim = FuncSim(mem, entry=0x1000)
    assert sim.step() is StepResult.FAULT


def test_syscall_dispatch():
    seen = []

    def handler(sim):
        seen.append(sim.reg(2))
        return sim.reg(2) != 99

    sim, __, __ = run_program("""
        main:
            li $v0, 1
            syscall
            li $v0, 99
            syscall
            halt
    """, syscall_handler=handler)
    assert seen == [1, 99]
    assert not sim.halted          # stopped by handler, not by halt


def test_chk_is_functional_nop():
    sim, __, result = run_program("""
        main:
            li $t0, 3
            chk 1, NBLK, 0, 0
            addi $t0, $t0, 1
            halt
    """)
    assert result is StepResult.HALTED
    assert sim.reg(8) == 4


def test_chk_handler_hook():
    captured = []
    asm = assemble("main:\n chk 2, BLK, 7, 0x55\n halt\n")
    mem = MainMemory()
    mem.store_bytes(asm.text_base, asm.text)
    sim = FuncSim(mem, entry=asm.entry,
                  chk_handler=lambda s, i: captured.append((i.module, i.op)))
    sim.run()
    assert captured == [(2, 7)]


def test_register_zero_stays_zero():
    sim, __, __ = run_program("""
        main:
            addi $zero, $zero, 5
            move $t0, $zero
            halt
    """)
    assert sim.reg(8) == 0


def test_instret_counts():
    sim, __, __ = run_program("""
        main:
            addi $t0, $zero, 1
            addi $t0, $t0, 1
            halt
    """)
    assert sim.instret == 3
