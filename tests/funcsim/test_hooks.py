"""Functional-simulator hooks: memory tracing and edge behaviour."""

from repro.funcsim import FuncSim, StepResult
from repro.isa.assembler import assemble
from repro.memory.mainmem import MainMemory


def build(source, **kwargs):
    asm = assemble(source)
    mem = MainMemory()
    mem.store_bytes(asm.text_base, asm.text)
    mem.store_bytes(asm.data_base, asm.data)
    return FuncSim(mem, entry=asm.entry, sp=0x7FFF0000, **kwargs), asm


def test_trace_mem_sees_loads_and_stores():
    events = []

    def trace(sim, instr, addr, is_store):
        events.append((instr.name, addr, is_store))

    sim, asm = build("""
        .data
        x: .word 9
        .text
        main:
            la $t0, x
            lw $t1, 0($t0)
            sw $t1, 4($t0)
            lb $t2, 0($t0)
            halt
    """, trace_mem=trace)
    assert sim.run() is StepResult.HALTED
    x = asm.symbols["x"]
    assert events == [("lw", x, False), ("sw", x + 4, True),
                      ("lb", x, False)]


def test_stepping_after_halt_is_stable():
    sim, __ = build("main: halt\n")
    assert sim.step() is StepResult.HALTED
    assert sim.step() is StepResult.HALTED
    assert sim.instret == 1


def test_fault_recorded_once():
    sim, __ = build("main: li $t0, 1\n div $t1, $t0, $zero\n halt\n")
    assert sim.run() is StepResult.FAULT
    pc, cause = sim.fault
    assert "divide" in cause
    assert sim.halted


def test_set_reg_ignores_r0_and_masks():
    sim, __ = build("main: halt\n")
    sim.set_reg(0, 123)
    assert sim.reg(0) == 0
    sim.set_reg(5, 0x1_0000_0005)
    assert sim.reg(5) == 5


def test_max_steps_returns_ok():
    sim, __ = build("main: j main\n")
    assert sim.run(max_steps=10) is StepResult.OK
    assert sim.instret == 10
