"""Predecode differential: cache-on must be bit-identical to cache-off.

The predecode cache is a pure speed layer — ``predecode_enabled=False``
selects the reference fetch/decode/dispatch interpreter, and these tests
drive both engines over the real workloads (the bare-machine sources
from :mod:`repro.workloads` used throughout the experiments) and over
text-segment corruption of the kind the fault-injection campaigns
produce, asserting identical architectural outcomes.
"""

import pytest

from repro.experiments import table4
from repro.funcsim import FuncSim, StepResult
from repro.isa.assembler import assemble
from repro.isa.encoding import encode, flip_bit
from repro.isa.instructions import SPEC_BY_NAME
from repro.memory.mainmem import MainMemory
from repro.pipeline import PipelineConfig
from tests.helpers import load_assembly, make_pipeline

WORKLOADS = table4.workload_sources(quick=True)


def build_sim(source, predecode_enabled, constants=None):
    asm = assemble(source, constants=constants)
    mem = MainMemory()
    mem.store_bytes(asm.text_base, asm.text)
    mem.store_bytes(asm.data_base, asm.data)
    sim = FuncSim(mem, entry=asm.entry, sp=0x7FFF0000,
                  predecode_enabled=predecode_enabled)
    return sim, asm


def architectural_state(sim):
    return (sim.pc, sim.instret, sim.halted, sim.fault, tuple(sim.regs))


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_funcsim_cache_on_off_identical(workload):
    source = WORKLOADS[workload]
    ref, __ = build_sim(source, predecode_enabled=False)
    fast, __ = build_sim(source, predecode_enabled=True)
    ref_result = ref.run(max_steps=2_000_000)
    fast_result = fast.run(max_steps=2_000_000)
    assert ref_result is fast_result is StepResult.HALTED
    assert architectural_state(ref) == architectural_state(fast)


def test_step_and_run_agree_through_the_cache():
    source = WORKLOADS["kmeans"]
    stepped, __ = build_sim(source, predecode_enabled=True)
    ran, __ = build_sim(source, predecode_enabled=True)
    while stepped.step() is StepResult.OK:
        pass
    assert ran.run(max_steps=2_000_000) is StepResult.HALTED
    assert architectural_state(stepped) == architectural_state(ran)


SELF_MODIFYING = """
    main:
        li $t0, 0
        la $t1, patch          # address of the instruction to overwrite
        lw $t2, new_word
        sw $t2, 0($t1)         # store into the text segment
    patch:
        addi $t0, $t0, 1       # replaced before it ever executes
        halt
    .data
    new_word: .word NEW_WORD
"""


@pytest.mark.parametrize("predecode_enabled", [False, True])
def test_self_modifying_code_executes_stored_word(predecode_enabled):
    # The store rewrites `patch` from addi+1 to addi+77 before the pc
    # reaches it; a stale decoded entry would still add 1.
    new_word = encode(SPEC_BY_NAME["addi"], rt=8, rs=8, imm=77)
    sim, __ = build_sim(SELF_MODIFYING, predecode_enabled,
                        constants={"NEW_WORD": new_word})
    assert sim.run(max_steps=100) is StepResult.HALTED
    assert sim.reg(8) == 77


COUNT_LOOP = """
    main:
        li $t0, 0
        li $t1, 200
    loop:
        addi $t0, $t0, 1
        addi $t1, $t1, -1
        bnez $t1, loop
        halt
"""


def corrupt_after(sim, asm, steps, target_label_offset, bit):
    """Run *steps* instructions, then flip *bit* of a text word — the
    shape of a campaign ``mem-flip``/``instr-flip`` landing on text."""
    for __ in range(steps):
        assert sim.step() is StepResult.OK
    addr = asm.text_base + target_label_offset
    word = sim.memory.load_word(addr)
    sim.memory.store_word(addr, flip_bit(word, bit))
    return addr, flip_bit(word, bit)


def test_corrupting_already_executed_text_changes_execution():
    # The corrupted word sits in the loop body and has already been
    # decoded, compiled and executed dozens of times when the flip
    # lands; both engines must still see the new word from then on.
    results = {}
    for predecode_enabled in (False, True):
        sim, asm = build_sim(COUNT_LOOP, predecode_enabled)
        # Text layout: li, li, addi, addi, bnez, halt -> the first addi
        # is the 3rd word.  Flip bit 1 of its immediate (+1 -> +3).
        addr, corrupted = corrupt_after(sim, asm, steps=50,
                                        target_label_offset=8, bit=1)
        result = sim.run(max_steps=10_000)
        # ICM-style binary comparison reads memory, not the cache: the
        # raw corrupted word must be what memory returns.
        assert sim.memory.load_word(addr) == corrupted
        results[predecode_enabled] = (result, architectural_state(sim))
    assert results[True] == results[False]
    # And the corruption really did change the outcome: a clean run
    # leaves $t0 == 200, the corrupted one must not.
    clean, __ = build_sim(COUNT_LOOP, predecode_enabled=True)
    clean.run(max_steps=10_000)
    assert clean.reg(8) == 200
    assert results[True][1][4][8] != 200


# --------------------------------------------------------------- pipeline

class RecordingRSE:
    """Minimal pipeline-attachment stub that records the commit trace."""

    def __init__(self):
        self.commits = []

    def on_dispatch(self, uop, cycle):
        pass

    def on_operands(self, uop, cycle, values):
        pass

    def on_execute(self, uop, cycle):
        pass

    def on_mem_load(self, uop, cycle, value):
        pass

    def ioq_gate(self, uop, cycle):
        return False

    def pre_commit_store(self, uop, cycle):
        return False

    def check_blocks_loads(self, instr):
        return False

    def on_commit(self, uop, cycle):
        self.commits.append((cycle, uop.pc, uop.instr.name))

    def on_squash(self, uops, cycle):
        pass

    def step(self, cycle):
        pass


@pytest.mark.parametrize("workload", ["vpr-route"])
def test_pipeline_commit_trace_identical_with_and_without_predecode(workload):
    traces = {}
    for predecode in (False, True):
        asm, mem = load_assembly(WORKLOADS[workload])
        rse = RecordingRSE()
        pipe = make_pipeline(mem, asm.entry,
                             config=PipelineConfig(predecode=predecode),
                             rse=rse)
        event = pipe.run(max_cycles=3_000_000)
        traces[predecode] = (event.kind.value, pipe.cycle,
                             tuple(pipe.regs), rse.commits)
    assert traces[True] == traces[False]
    assert traces[True][0] == "halt"
    assert len(traces[True][3]) > 1000
