"""Out-of-order pipeline: correctness, events, hazards, speculation."""

import pytest

from repro.pipeline.core import EventKind

from helpers import (
    assert_same_architectural_state,
    run_pipeline,
)


def test_straightline_arithmetic():
    pipe, __, event = run_pipeline("""
        main:
            li  $t0, 5
            li  $t1, 7
            add $t2, $t0, $t1
            sub $t3, $t1, $t0
            halt
    """)
    assert event.kind is EventKind.HALT
    assert pipe.regs[10] == 12
    assert pipe.regs[11] == 2


def test_raw_dependency_chain():
    pipe, __, __ = run_pipeline("""
        main:
            li  $t0, 1
            add $t0, $t0, $t0
            add $t0, $t0, $t0
            add $t0, $t0, $t0
            add $t0, $t0, $t0
            halt
    """)
    assert pipe.regs[8] == 16


def test_loop_with_branch():
    pipe, __, __ = run_pipeline("""
        main:
            li $t0, 0
            li $t1, 100
        loop:
            add $t0, $t0, $t1
            addi $t1, $t1, -1
            bnez $t1, loop
            halt
    """)
    assert pipe.regs[8] == 5050
    assert pipe.stats.branches >= 100


def test_branch_misprediction_recovers():
    # Alternating taken/not-taken defeats the bimodal predictor but must
    # still produce correct results.
    pipe, __, __ = run_pipeline("""
        main:
            li $t0, 0          # i
            li $t1, 0          # evens count
            li $t2, 20         # limit
        loop:
            andi $t3, $t0, 1
            bnez $t3, odd
            addi $t1, $t1, 1
        odd:
            addi $t0, $t0, 1
            blt $t0, $t2, loop
            halt
    """)
    assert pipe.regs[9] == 10
    assert pipe.stats.mispredicts > 0


def test_store_load_forwarding():
    pipe, __, __ = run_pipeline("""
        .data
        slot: .word 0
        .text
        main:
            la $t0, slot
            li $t1, 77
            sw $t1, 0($t0)
            lw $t2, 0($t0)
            addi $t2, $t2, 1
            halt
    """)
    assert pipe.regs[10] == 78


def test_partial_overlap_store_load():
    pipe, __, __ = run_pipeline("""
        .data
        slot: .word 0
        .text
        main:
            la $t0, slot
            li $t1, 0x11223344
            sw $t1, 0($t0)
            lb $t2, 0($t0)          # overlaps the sw: must see the stored byte
            halt
    """)
    assert pipe.regs[10] == 0x44


def test_memory_loop_differential():
    assert_same_architectural_state("""
        .data
        array: .space 40
        .text
        main:
            la $t0, array
            li $t1, 0          # i
            li $t2, 10
        fill:
            mul $t3, $t1, $t1
            sll $t4, $t1, 2
            add $t5, $t0, $t4
            sw  $t3, 0($t5)
            addi $t1, $t1, 1
            blt $t1, $t2, fill
            li $t6, 0          # sum
            li $t1, 0
        sum:
            sll $t4, $t1, 2
            add $t5, $t0, $t4
            lw  $t3, 0($t5)
            add $t6, $t6, $t3
            addi $t1, $t1, 1
            blt $t1, $t2, sum
            halt
    """, mem_words=["array"])


def test_function_calls_differential():
    assert_same_architectural_state("""
        main:
            li $sp, 0x7FFE0000
            li $a0, 10
            jal fib
            move $s0, $v0
            halt
        fib:                      # iterative fibonacci
            li $v0, 0
            li $t0, 1
            beqz $a0, fib_done
            move $t1, $a0
        fib_loop:
            add $t2, $v0, $t0
            move $v0, $t0
            move $t0, $t2
            addi $t1, $t1, -1
            bnez $t1, fib_loop
        fib_done:
            jr $ra
    """)


def test_jr_indirect_jump():
    pipe, __, __ = run_pipeline("""
        main:
            la $t0, target
            jr $t0
            li $s0, 111          # skipped
        target:
            li $s0, 222
            halt
    """)
    assert pipe.regs[16] == 222


def test_jalr_links():
    pipe, __, __ = run_pipeline("""
        main:
            la $t0, callee
            jalr $ra, $t0
            halt
        callee:
            li $s0, 5
            jr $ra
    """)
    assert pipe.regs[16] == 5


def test_mdu_latency_and_result():
    pipe, __, __ = run_pipeline("""
        main:
            li $t0, 12
            li $t1, 5
            mul $t2, $t0, $t1
            div $t3, $t0, $t1
            rem $t4, $t0, $t1
            halt
    """)
    assert pipe.regs[10] == 60
    assert pipe.regs[11] == 2
    assert pipe.regs[12] == 2


def test_divide_by_zero_precise_fault():
    pipe, __, event = run_pipeline("""
        main:
            li $s0, 1          # must be architecturally visible at fault
            li $t0, 4
            div $t1, $t0, $zero
            li $s0, 2          # must NOT commit
            halt
    """)
    assert event.kind is EventKind.FAULT
    assert "divide" in event.cause
    assert pipe.regs[16] == 1


def test_illegal_instruction_fault():
    pipe, __, event = run_pipeline("""
        main:
            la $t0, data_area
            jr $t0
        .data
        data_area: .word 0xF4000000          # unassigned opcode pattern
    """)
    assert event.kind is EventKind.FAULT


def test_wrong_path_fault_is_squashed():
    # The load behind the never-taken branch would fault (unaligned), but
    # it is only ever on the wrong path -> must not surface.
    pipe, __, event = run_pipeline("""
        main:
            li $t0, 0
            li $t2, 0x1001
            li $t3, 50
        loop:
            addi $t0, $t0, 1
            blt $t0, $t3, cont
            lw $t4, 1($t2)          # unaligned; fetched speculatively only
        cont:
            blt $t0, $t3, loop
            halt
    """)
    assert event.kind is EventKind.FAULT          # final fall-through reaches it
    # But importantly it only faults after the loop actually exits:
    assert pipe.regs[8] == 50


def test_syscall_event_surfaces():
    pipe, __, event = run_pipeline("""
        main:
            li $v0, 42
            syscall
            halt
    """)
    assert event.kind is EventKind.SYSCALL
    assert pipe.regs[2] == 42
    assert not pipe.rob and not pipe.fetch_buffer
    # Kernel-style resume: continue after the syscall.
    pipe.resume(event.pc + 4)
    event = pipe.run(max_cycles=10_000)
    assert event.kind is EventKind.HALT


def test_timer_drains_and_fires():
    pipe, asm, event = run_pipeline("""
        main:
            li $t0, 0
        loop:
            addi $t0, $t0, 1
            j loop
    """, max_cycles=100)
    assert event.kind is EventKind.MAX_CYCLES
    pipe.timer_deadline = pipe.cycle + 50
    event = pipe.run(max_cycles=10_000)
    assert event.kind is EventKind.TIMER
    assert not pipe.rob
    count_at_timer = pipe.regs[8]
    pipe.resume(event.pc)
    pipe.timer_deadline = None
    pipe.run(max_cycles=100)
    assert pipe.regs[8] > count_at_timer          # resumed where it left off


def test_mem_check_hook_blocks_store():
    def deny_writes(addr, size, kind):
        if kind == "w" and addr >= 0x10000000:
            return "write to protected page"
        return None

    pipe, __, event = run_pipeline("""
        .data
        x: .word 0
        .text
        main:
            la $t0, x
            li $t1, 1
            sw $t1, 0($t0)
            halt
    """)
    assert event.kind is EventKind.HALT          # without the hook: fine

    from helpers import load_assembly, make_pipeline
    asm, mem = load_assembly("""
        .data
        x: .word 0
        .text
        main:
            la $t0, x
            li $t1, 1
            sw $t1, 0($t0)
            halt
    """)
    pipe = make_pipeline(mem, asm.entry)
    pipe.mem_check = deny_writes
    event = pipe.run(max_cycles=10_000)
    assert event.kind is EventKind.FAULT
    assert "protected" in event.cause


def test_ipc_is_sane():
    pipe, __, __ = run_pipeline("""
        main:
            li $t0, 2000
        loop:
            addi $t1, $t0, 1
            addi $t2, $t0, 2
            addi $t3, $t0, 3
            addi $t0, $t0, -1
            bnez $t0, loop
            halt
    """)
    assert 0.3 < pipe.stats.ipc <= 4.0


def test_instret_matches_funcsim_on_branchy_code():
    assert_same_architectural_state("""
        main:
            li $t0, 0
            li $t1, 0
        outer:
            li $t2, 0
        inner:
            add $t1, $t1, $t2
            addi $t2, $t2, 1
            slti $at, $t2, 5
            bnez $at, inner
            addi $t0, $t0, 1
            slti $at, $t0, 8
            bnez $at, outer
            halt
    """)
