"""Regressions for pipeline-vs-interpreter divergences found by difftest.

Each test pins one fix made while bringing the out-of-order core into
exact architectural agreement with the reference interpreter (the
shrunk fuzzer repros live in ``tests/property/corpus/``; these are the
targeted white-box versions).
"""

from repro.funcsim import StepResult
from tests.helpers import (assert_same_architectural_state, run_func,
                           run_pipeline)


# --- jalr with rd == rs: link is written before the target is read ----------

JALR_SELF = """
main:
    li $s0, 0
    la $t9, target
    jalr $t9, $t9
    addi $s0, $s0, 5
target:
    halt
"""


def test_jalr_rd_equals_rs_falls_through_via_link():
    pipe, func = assert_same_architectural_state(JALR_SELF)
    assert func.regs[16] == 5


# --- self-modifying store landing inside the fetch window -------------------

SMC_WINDOW = """
main:
    li $s0, 0
    la $t1, patch
    lw $t2, donor
    sw $t2, 0($t1)
patch:
    addi $s0, $s0, 1
    halt
donor:
    addi $s0, $s0, 77
"""


def test_store_into_fetch_window_squashes_and_refetches():
    pipe, func = assert_same_architectural_state(SMC_WINDOW)
    assert func.regs[16] == 77


SMC_LOOP = """
main:
    li $s0, 0
    li $s7, 3
loop:
    la $t1, patch
    lw $t2, donor
    sw $t2, 0($t1)
patch:
    addi $s0, $s0, 1
    addi $s7, $s7, -1
    bgtz $s7, loop
    halt
donor:
    addi $s0, $s0, 10
"""


def test_repeated_smc_store_in_loop_stays_consistent():
    __, func = assert_same_architectural_state(SMC_LOOP)
    # First trip patches in time (+10); later trips re-store the same
    # word, which still executes the patched instruction (+10 each).
    assert func.regs[16] == 30


# --- unaligned jump target faults at the target, not at the jump ------------

UNALIGNED_JR = """
main:
    la $t0, target
    addi $t0, $t0, 2
    jr $t0
target:
    halt
"""


def test_unaligned_jump_target_faults_at_target_pc():
    func, func_asm, func_result = run_func(UNALIGNED_JR)
    pipe, pipe_asm, event = run_pipeline(UNALIGNED_JR)
    assert func_result is StepResult.FAULT
    assert event.kind.value == "fault"
    fault_pc = func_asm.symbols["target"] + 2
    assert func.fault[0] == fault_pc
    assert event.pc == fault_pc
    assert "unaligned" in func.fault[1]
    assert "unaligned" in event.cause
