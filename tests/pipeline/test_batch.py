"""Batch fast-path vs reference loop: cycle-exact equivalence.

``PipelineConfig(batch=True)`` lets :meth:`Pipeline.run` execute a
fused copy of the cycle loop and jump over provably-dead stall cycles.
The contract is *identity*: events, cycle counts, architectural state
and every stats counter must equal the one-``step()``-per-cycle
reference loop.  These tests compare complete fingerprints across the
Table 4 quick workloads and every edge that interacts with the fast
path: the timer, ``mem_check`` faults, self-modifying code, and an
attached RSE with the ICM check injector.
"""

from repro.campaign.runner import build_campaign_machine
from repro.experiments import table4
from repro.isa.assembler import assemble
from repro.pipeline import PipelineConfig
from repro.pipeline.core import EventKind

from helpers import load_assembly, make_pipeline


def fingerprint(pipeline, event):
    doc = {"kind": event.kind.value, "pc": event.pc,
           "cycle": pipeline.cycle, "regs": list(pipeline.regs)}
    doc.update(vars(pipeline.stats))
    return doc


def run_pair(source, max_cycles=2_000_000, prep=None, constants=None):
    """Run *source* under batch and step configs; return both prints."""
    prints = {}
    for batch in (False, True):
        asm, mem = load_assembly(source, constants=constants)
        pipeline = make_pipeline(mem, asm.entry,
                                 config=PipelineConfig(batch=batch))
        if prep is not None:
            prep(pipeline)
        event = pipeline.run(max_cycles=max_cycles)
        prints[batch] = fingerprint(pipeline, event)
    return prints


def assert_identical(prints):
    assert prints[True] == prints[False], {
        key: (prints[False][key], prints[True][key])
        for key in prints[False]
        if prints[False][key] != prints[True][key]}


def test_table4_workloads_cycle_exact():
    for name, source in table4.workload_sources(quick=True).items():
        prints = run_pair(source, max_cycles=50_000_000)
        assert prints[True]["kind"] == "halt", name
        assert_identical(prints)


def test_timer_fires_at_identical_cycle():
    source = """
main:
    li $t0, 0
loop:
    addi $t0, $t0, 1
    j loop
"""

    def arm(pipeline):
        pipeline.timer_deadline = 137

    prints = run_pair(source, max_cycles=10_000, prep=arm)
    assert prints[True]["kind"] == "timer"
    assert_identical(prints)


def test_mem_check_fault_is_identical():
    source = """
    .data
x:  .word 0
    .text
main:
    la $t0, x
    li $t1, 1
    sw $t1, 0($t0)
    halt
"""

    def deny(pipeline):
        pipeline.mem_check = (lambda addr, size, kind:
                              "write denied" if kind == "w"
                              and addr >= 0x10000000 else None)

    prints = run_pair(source, max_cycles=10_000, prep=deny)
    assert prints[True]["kind"] == "fault"
    assert_identical(prints)


def test_self_modifying_code_is_identical():
    from repro.isa.encoding import encode
    from repro.isa.instructions import SPEC_BY_NAME

    patched = encode(SPEC_BY_NAME["addi"], rs=16, rt=16, imm=5)
    source = """
main:
    li $t1, PATCH
    la $t0, target
    sw $t1, 0($t0)
target:
    addi $s0, $s0, 0
    addi $s0, $s0, 0
    halt
"""
    prints = run_pair(source, max_cycles=10_000,
                      constants={"PATCH": patched})
    assert prints[True]["kind"] == "halt"
    # The store really rewrote straight-line code the pipeline had
    # already fetched: both engines must refetch and see +5.
    assert prints[True]["regs"][16] == 5
    assert_identical(prints)


def test_rse_and_check_injector_are_identical():
    # The protected campaign machine carries the RSE, the ICM, and the
    # CHECK injector — the full set of external agents the fast loop
    # must disengage for.  Batch on/off must agree cycle for cycle.
    source = table4.workload_sources(quick=True)["kmeans"]
    asm = assemble(source)
    prints = {}
    for batch in (False, True):
        machine, __ = build_campaign_machine(asm, protected=True,
                                             batch=batch)
        event = machine.pipeline.run(max_cycles=50_000_000)
        prints[batch] = fingerprint(machine.pipeline, event)
    assert prints[True]["kind"] == "halt"
    assert_identical(prints)


def test_batch_false_forces_step_loop():
    source = "main:\n li $t0, 3\n halt\n"
    asm, mem = load_assembly(source)
    pipeline = make_pipeline(mem, asm.entry,
                             config=PipelineConfig(batch=False))
    event = pipeline.run(max_cycles=1_000)
    assert event.kind is EventKind.HALT


def test_shadowed_step_deopts_to_reference_loop():
    # Anything that monkeypatches step() (adapters, tests) must win:
    # run() may not take the fused path around it.
    source = "main:\n li $t0, 3\n halt\n"
    asm, mem = load_assembly(source)
    pipeline = make_pipeline(mem, asm.entry,
                             config=PipelineConfig(batch=True))
    seen = []
    original = pipeline.step

    def spy():
        seen.append(pipeline.cycle)
        return original()

    pipeline.step = spy
    event = pipeline.run(max_cycles=1_000)
    assert event.kind is EventKind.HALT
    assert len(seen) == pipeline.cycle    # every cycle went through spy
