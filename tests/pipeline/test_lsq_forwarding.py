"""LSQ store-to-load forwarding: containment, not exact match.

A pending (uncommitted) store may satisfy a younger load only when the
load's bytes are fully contained in the store's bytes — the forwarded
value is the store data shifted to the load's position.  A partial
overlap must wait for the store to commit and read memory.  Every case
is checked differentially against the in-order functional simulator,
which has no LSQ at all.
"""

import pytest

from tests.helpers import assert_same_architectural_state, run_pipeline

CONTAINED_SUBWORD = """
main:
    la $gp, scratch
    li $t0, 0x7fb3ff91
    sw $t0, 0($gp)
    lb $s0, 0($gp)
    lbu $s1, 1($gp)
    lh $s2, 0($gp)
    lhu $s3, 2($gp)
    lw $s4, 0($gp)
    halt
    .data
scratch: .word 0x11111111
"""


def test_contained_subword_loads_forward_correct_bytes():
    pipe, func = assert_same_architectural_state(CONTAINED_SUBWORD)
    assert func.regs[16] == 0xFFFFFF91          # lb, sign-extended
    assert func.regs[17] == 0x000000FF          # lbu byte 1
    assert func.regs[18] == 0xFFFFFF91          # lh, sign-extended
    assert func.regs[19] == 0x00007FB3          # lhu high half
    assert func.regs[20] == 0x7FB3FF91          # lw exact
    # At least the first load is a containment hit on the pending sw
    # (later ones may find the store already committed — that's timing,
    # and either path must produce the same values).
    assert pipe.stats.load_forwards >= 1


PARTIAL_OVERLAP = """
main:
    la $gp, scratch
    li $t0, 0xdeadbeef
    sb $t0, 1($gp)         # one byte inside the word
    lw $s0, 0($gp)         # wider than the store: stall to memory
    sh $t0, 2($gp)
    lw $s1, 0($gp)         # overlaps the sh: stall to memory
    halt
    .data
scratch: .word 0x11223344
"""


def test_partial_overlap_stalls_to_memory():
    pipe, func = assert_same_architectural_state(PARTIAL_OVERLAP)
    assert func.regs[16] == 0x1122EF44          # sb landed in byte 1
    assert func.regs[17] == 0xBEEFEF44          # then sh in bytes 2..3


SUBWORD_STORE_WIDER_LOAD = """
main:
    la $gp, scratch
    li $t0, 0x000000aa
    sb $t0, 0($gp)
    lbu $s0, 0($gp)        # exact: forwards
    lhu $s1, 0($gp)        # wider than the sb: stalls to memory
    halt
    .data
scratch: .word 0x11223344
"""


def test_wider_load_than_store_does_not_forward_garbage():
    __, func = assert_same_architectural_state(SUBWORD_STORE_WIDER_LOAD)
    assert func.regs[16] == 0x000000AA
    assert func.regs[17] == 0x000033AA


YOUNGEST_STORE_WINS = """
main:
    la $gp, scratch
    li $t0, 0x11111111
    li $t1, 0x22222222
    sw $t0, 0($gp)
    sw $t1, 0($gp)
    lw $s0, 0($gp)         # must see the younger store
    sb $t0, 0($gp)
    lbu $s1, 0($gp)        # byte from the youngest store again
    halt
    .data
scratch: .word 0
"""


def test_youngest_containing_store_wins():
    __, func = assert_same_architectural_state(YOUNGEST_STORE_WINS)
    assert func.regs[16] == 0x22222222
    assert func.regs[17] == 0x00000011


@pytest.mark.parametrize("offset", range(4))
def test_every_byte_offset_forwards_from_pending_sw(offset):
    source = """
main:
    la $gp, scratch
    li $t0, 0x44332211
    sw $t0, 0($gp)
    lbu $s0, %d($gp)
    halt
    .data
scratch: .word 0
""" % offset
    __, func = assert_same_architectural_state(source)
    assert func.regs[16] == (0x44332211 >> (8 * offset)) & 0xFF


def test_forward_count_is_reported():
    pipe, __, event = run_pipeline(CONTAINED_SUBWORD)
    assert event.kind.value == "halt"
    assert pipe.stats.load_forwards >= 1
