"""Branch predictor unit tests."""

import pytest

from repro.pipeline.predictor import BranchPredictor


def test_initial_state_weakly_taken():
    predictor = BranchPredictor()
    assert predictor.predict_direction(0x1000)


def test_counter_saturation():
    predictor = BranchPredictor()
    pc = 0x2000
    for __ in range(10):
        predictor.update(pc, taken=False, target=0)
    assert not predictor.predict_direction(pc)
    # One taken outcome must not flip a saturated not-taken counter.
    predictor.update(pc, taken=True, target=0x3000)
    assert not predictor.predict_direction(pc)
    predictor.update(pc, taken=True, target=0x3000)
    assert predictor.predict_direction(pc)


def test_btb_learns_targets():
    predictor = BranchPredictor()
    assert predictor.predict_target(0x4000) is None
    predictor.update(0x4000, taken=True, target=0xBEEF0)
    assert predictor.predict_target(0x4000) == 0xBEEF0


def test_btb_not_updated_on_not_taken():
    predictor = BranchPredictor()
    predictor.update(0x4000, taken=False, target=0xBEEF0)
    assert predictor.predict_target(0x4000) is None


def test_btb_conflict_eviction():
    predictor = BranchPredictor(btb_entries=512)
    pc_a = 0x1000
    pc_b = pc_a + 512 * 4          # same BTB index
    predictor.update(pc_a, taken=True, target=0xAAAA0)
    predictor.update(pc_b, taken=True, target=0xBBBB0)
    assert predictor.predict_target(pc_a) is None          # evicted
    assert predictor.predict_target(pc_b) == 0xBBBB0


def test_distinct_pcs_use_distinct_counters():
    predictor = BranchPredictor()
    predictor.update(0x1000, taken=False, target=0)
    predictor.update(0x1000, taken=False, target=0)
    assert not predictor.predict_direction(0x1000)
    assert predictor.predict_direction(0x1004)          # untouched


def test_sizes_must_be_powers_of_two():
    with pytest.raises(ValueError):
        BranchPredictor(bimodal_entries=1000)
    with pytest.raises(ValueError):
        BranchPredictor(btb_entries=100)


def test_accuracy_bookkeeping():
    predictor = BranchPredictor()
    predictor.predict_direction(0x1000)
    predictor.record_hit(True)
    predictor.predict_direction(0x1000)
    predictor.record_hit(False)
    assert predictor.accuracy == pytest.approx(0.5)


def test_gshare_uses_history():
    from repro.pipeline.predictor import GsharePredictor

    predictor = GsharePredictor(history_bits=4)
    pc = 0x1000
    # Train an alternating pattern; gshare's history disambiguates it.
    for __ in range(40):
        predictor.update(pc, taken=True, target=0x2000)
        predictor.update(pc, taken=False, target=0)
    # After a taken outcome the history predicts not-taken, and vice versa.
    predictor.update(pc, taken=True, target=0x2000)
    after_taken = predictor.predict_direction(pc)
    predictor.update(pc, taken=False, target=0)
    after_not_taken = predictor.predict_direction(pc)
    assert after_taken != after_not_taken


def test_gshare_beats_bimodal_on_alternating_branch():
    from helpers import load_assembly, make_pipeline
    from repro.pipeline import PipelineConfig

    source = """
        main:
            li $t0, 0
            li $t1, 0
            li $t2, 400
        loop:
            andi $t3, $t0, 1
            bnez $t3, odd          # alternates taken/not-taken
            addi $t1, $t1, 1
        odd:
            addi $t0, $t0, 1
            blt $t0, $t2, loop
            halt
    """
    results = {}
    for kind in ("bimodal", "gshare"):
        asm, mem = load_assembly(source)
        pipe = make_pipeline(mem, asm.entry,
                             config=PipelineConfig().copy(predictor=kind))
        pipe.run(max_cycles=200_000)
        assert pipe.regs[9] == 200
        results[kind] = pipe.stats.mispredicts
    assert results["gshare"] < results["bimodal"]


def test_pipeline_config_selects_predictor():
    from repro.pipeline import PipelineConfig
    from repro.pipeline.core import Pipeline
    from repro.pipeline.predictor import GsharePredictor
    from repro.memory.mainmem import MainMemory
    from repro.memory.hierarchy import MemoryHierarchy
    from repro.memory.bus import BASELINE_TIMING

    pipe = Pipeline(MainMemory(), MemoryHierarchy(BASELINE_TIMING),
                    config=PipelineConfig().copy(predictor="gshare"))
    assert isinstance(pipe.predictor, GsharePredictor)
