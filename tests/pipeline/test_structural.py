"""Structural-hazard behaviour: ROB/LSQ/fetch-buffer limits, widths."""

from repro.pipeline import PipelineConfig
from repro.pipeline.core import EventKind

from helpers import load_assembly, make_pipeline, run_pipeline


def run_with_config(source, **overrides):
    asm, mem = load_assembly(source)
    config = PipelineConfig().copy(**overrides)
    pipeline = make_pipeline(mem, asm.entry, config=config)
    event = pipeline.run(max_cycles=500_000)
    return pipeline, event


INDEPENDENT_ALU = """
    main:
        li $t0, 300
    loop:
        addi $t1, $t0, 1
        addi $t2, $t0, 2
        addi $t3, $t0, 3
        addi $t4, $t0, 4
        addi $t0, $t0, -1
        bnez $t0, loop
        halt
"""


def test_narrow_machine_still_correct_but_slower():
    wide, event_w = run_with_config(INDEPENDENT_ALU)
    narrow, event_n = run_with_config(INDEPENDENT_ALU, fetch_width=1,
                                      dispatch_width=1, issue_width=1,
                                      commit_width=1)
    assert event_w.kind is event_n.kind is EventKind.HALT
    assert wide.regs[8] == narrow.regs[8] == 0
    assert narrow.stats.cycles > 2 * wide.stats.cycles
    assert narrow.stats.instret == wide.stats.instret


def test_tiny_rob_still_correct():
    small, event = run_with_config(INDEPENDENT_ALU, rob_entries=2,
                                   lsq_entries=1)
    assert event.kind is EventKind.HALT
    assert small.stats.instret > 0


MEMORY_BURST = """
.data
buf: .space 128
.text
    main:
        la $t0, buf
        li $t1, 20
    loop:
        sw $t1, 0($t0)
        sw $t1, 4($t0)
        lw $t2, 0($t0)
        lw $t3, 4($t0)
        add $t4, $t2, $t3
        addi $t1, $t1, -1
        bnez $t1, loop
        halt
"""


def test_single_entry_lsq_correct():
    pipe, event = run_with_config(MEMORY_BURST, lsq_entries=1)
    assert event.kind is EventKind.HALT
    assert pipe.regs[12] == 2          # 1 + 1 on the last iteration


def test_single_mem_port_correct():
    pipe, event = run_with_config(MEMORY_BURST, mem_ports=1)
    assert event.kind is EventKind.HALT
    assert pipe.regs[12] == 2


def test_mdu_structural_hazard():
    # Five back-to-back independent multiplies against a single MDU.
    source = """
        main:
            li $t0, 3
            mul $t1, $t0, $t0
            mul $t2, $t0, $t0
            mul $t3, $t0, $t0
            mul $t4, $t0, $t0
            mul $t5, $t0, $t0
            halt
    """
    one_mdu, __ = run_with_config(source, mdus=1)
    many_mdu, __ = run_with_config(source, mdus=4)
    assert all(one_mdu.regs[r] == 9 for r in range(9, 14))
    assert many_mdu.stats.cycles <= one_mdu.stats.cycles


def test_long_div_latency_serialises_dependents():
    fast, __ = run_with_config("""
        main:
            li $t0, 100
            li $t1, 7
            div $t2, $t0, $t1
            addi $t3, $t2, 1
            halt
    """, div_latency=1)
    slow, __ = run_with_config("""
        main:
            li $t0, 100
            li $t1, 7
            div $t2, $t0, $t1
            addi $t3, $t2, 1
            halt
    """, div_latency=40)
    assert fast.regs[11] == slow.regs[11] == 15
    assert slow.stats.cycles > fast.stats.cycles + 30


def test_fetch_buffer_minimum():
    pipe, event = run_with_config(INDEPENDENT_ALU, fetch_buffer_entries=1)
    assert event.kind is EventKind.HALT
    assert pipe.regs[8] == 0


def test_config_copy_rejects_unknown_field():
    import pytest

    with pytest.raises(AttributeError):
        PipelineConfig().copy(bogus_field=1)


def test_stats_dict_shape():
    pipe, __, event = run_pipeline("main: li $t0, 1\n halt\n")
    stats = pipe.stats.snapshot()
    for field in ("cycles", "instret", "branches", "mispredicts",
                  "squashed", "fetch_stall_cycles"):
        assert field in stats
