"""Property: the OoO pipeline and the functional simulator agree.

Hypothesis generates random (but always-terminating) programs — ALU
chains, memory traffic to a scratch buffer, and bounded counted loops —
and every architectural result must match between the two engines, as
must the retired-instruction count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import run_func, run_pipeline

SCRATCH_WORDS = 16

ALU_OPS = ["add", "sub", "and", "or", "xor", "nor", "slt", "sltu", "mul"]
IMM_OPS = ["addi", "slti", "andi", "ori", "xori"]
SHIFT_OPS = ["sll", "srl", "sra"]
# t0..t7, s0..s5 as working registers (avoid $at and ABI registers).
WORK_REGS = ["$t%d" % i for i in range(8)] + ["$s%d" % i for i in range(6)]

reg = st.sampled_from(WORK_REGS)
simm = st.integers(min_value=-0x7FF, max_value=0x7FF)
uimm = st.integers(min_value=0, max_value=0xFFF)
shamt = st.integers(min_value=0, max_value=31)
slot = st.integers(min_value=0, max_value=SCRATCH_WORDS - 1)


def alu_line(draw_data):
    op, rd, rs, rt = draw_data
    return "    %s %s, %s, %s" % (op, rd, rs, rt)


instruction = st.one_of(
    st.tuples(st.sampled_from(ALU_OPS), reg, reg, reg).map(
        lambda t: "    %s %s, %s, %s" % t),
    st.tuples(st.sampled_from(IMM_OPS), reg, reg, simm).map(
        lambda t: "    %s %s, %s, %d"
        % (t[0], t[1], t[2], t[3] if t[0] not in ("andi", "ori", "xori")
           else abs(t[3]))),
    st.tuples(st.sampled_from(SHIFT_OPS), reg, reg, shamt).map(
        lambda t: "    %s %s, %s, %d" % t),
    st.tuples(reg, slot).map(
        lambda t: "    sw %s, %d($gp)" % (t[0], t[1] * 4)),
    st.tuples(reg, slot).map(
        lambda t: "    lw %s, %d($gp)" % (t[0], t[1] * 4)),
)


def build_program(body_lines, loop_count):
    body = "\n".join(body_lines)
    return """
.data
scratch: .space %d
.text
main:
    la $gp, scratch
    li $s7, %d
outer:
%s
    addi $s7, $s7, -1
    bnez $s7, outer
    halt
""" % (SCRATCH_WORDS * 4, loop_count, body)


@given(body=st.lists(instruction, min_size=1, max_size=24),
       loops=st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_pipeline_matches_funcsim(body, loops):
    source = build_program(body, loops)
    func_sim, __, func_result = run_func(source)
    assert func_result.value == "halted", func_result
    pipe, __, event = run_pipeline(source, max_cycles=500_000)
    assert event.kind.value == "halt"
    for index in range(2, 32):
        assert pipe.regs[index] == func_sim.regs[index], (
            "reg %d differs:\n%s" % (index, source))
    assert pipe.stats.instret == func_sim.instret


@given(values=st.lists(st.integers(min_value=-1000, max_value=1000),
                       min_size=1, max_size=10))
@settings(max_examples=30, deadline=None)
def test_divides_and_remainders_agree(values):
    lines = []
    for index, value in enumerate(values):
        lines.append("    li $t0, %d" % value)
        lines.append("    li $t1, %d" % (index + 1))
        lines.append("    div $t2, $t0, $t1")
        lines.append("    rem $t3, $t0, $t1")
        lines.append("    add $s0, $s0, $t2")
        lines.append("    xor $s1, $s1, $t3")
    source = "main:\n%s\n    halt\n" % "\n".join(lines)
    func_sim, __, func_result = run_func(source)
    pipe, __, event = run_pipeline(source)
    assert func_result.value == "halted" and event.kind.value == "halt"
    assert pipe.regs[16] == func_sim.regs[16]
    assert pipe.regs[17] == func_sim.regs[17]


# ---------------------------------------------------------------- branches

# Random forward-branch structure: each block optionally skips the next
# instruction based on a data-dependent condition — always terminating,
# heavy on mispredictions and flush paths.
branch_kind = st.sampled_from(["beqz", "bnez", "bgez", "bltz"])
branch_block = st.tuples(branch_kind, reg, reg, simm)


@given(blocks=st.lists(branch_block, min_size=1, max_size=16),
       loops=st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_branchy_programs_match_funcsim(blocks, loops):
    lines = []
    for index, (kind, cond_reg, work_reg, imm) in enumerate(blocks):
        lines.append("    %s %s, skip_%d" % (kind, cond_reg, index))
        lines.append("    addi %s, %s, %d" % (work_reg, work_reg, imm))
        lines.append("skip_%d:" % index)
        lines.append("    addi %s, %s, 1" % (cond_reg, cond_reg))
    source = """
main:
    li $s7, %d
outer:
%s
    addi $s7, $s7, -1
    bnez $s7, outer
    halt
""" % (loops, "\n".join(lines))
    func_sim, __, func_result = run_func(source)
    assert func_result.value == "halted"
    pipe, __, event = run_pipeline(source, max_cycles=500_000)
    assert event.kind.value == "halt"
    for index in range(2, 32):
        assert pipe.regs[index] == func_sim.regs[index], (index, source)
    assert pipe.stats.instret == func_sim.instret
