# difftest repro (pinned in this tree): INT_MIN / -1 overflows a 32-bit
# quotient; every engine must wrap it to 0x80000000 with remainder 0
# under MASK32 — no trap, no Python bignum escaping into the register
# file.  Also pins sra/srav sign-extension masking parity.
main:
    lui $t0, 0x8000        # INT_MIN
    addi $t1, $zero, -1
    div $s0, $t0, $t1      # 0x80000000 (wrapped quotient)
    rem $s1, $t0, $t1      # 0 (the wrapped quotient is exact)
    sra $s2, $t0, 31       # 0xffffffff
    srav $s3, $t0, $t1     # shift = -1 & 31 = 31 -> 0xffffffff
    halt
