# difftest repro (fixed in this tree): jalr with rd == rs must write the
# link register BEFORE reading the jump target, matching the reference
# interpreter.  The pipeline used to read the stale rs value and jump to
# `target`, skipping the marker addi, leaving $s0 = 0 instead of 5.
main:
    li $s0, 0
    la $t9, target
    jalr $t9, $t9          # link $t9 = pc+4, then jump to the link
    addi $s0, $s0, 5       # must execute (fall-through via the link)
target:
    halt
