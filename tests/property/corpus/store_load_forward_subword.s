# difftest repro (fixed in this tree): LSQ store-to-load forwarding must
# honour containment.  Sub-word loads fully inside a pending sw forward
# the correct bytes (shifted to the load's position); partially
# overlapping accesses wait for the store to commit and read memory.
# The pipeline used to forward only exact (address, size) matches and
# read stale memory for contained sub-word loads.
main:
    la $gp, scratch
    li $t0, 0x7fb3ff91
    sw $t0, 0($gp)
    lb $s0, 0($gp)         # contained: 0xffffff91 (sign-extended byte 0)
    lbu $s1, 3($gp)        # contained: 0x0000007f (byte 3)
    lhu $s2, 2($gp)        # contained: 0x00007fb3 (high half)
    sb $t0, 5($gp)
    lw $s3, 4($gp)         # partial overlap: must stall to memory
    halt
    .data
scratch:
    .word 0x11111111
    .word 0x22222222
