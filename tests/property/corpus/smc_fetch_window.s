# difftest repro (fixed in this tree): a committed store that rewrites
# an instruction already inside the pipeline's fetch window must squash
# the younger in-flight instructions and refetch, like the in-order
# reference.  The pipeline used to execute the stale decoded addi+1 and
# end with $s0 = 1 instead of 77.
main:
    li $s0, 0
    la $t1, patch
    lw $t2, donor          # encoded `addi $s0, $s0, 77`
    sw $t2, 0($t1)         # lands while `patch` is already fetched
patch:
    addi $s0, $s0, 1       # rewritten just in time
    halt
donor:
    addi $s0, $s0, 77      # never executed in place; donor word only
