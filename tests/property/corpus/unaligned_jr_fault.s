# difftest repro (fixed in this tree): a jump to an unaligned target
# must redirect control and fault at the *target* pc during fetch,
# exactly like the interpreter.  The pipeline used to raise the fault on
# the jr itself, reporting the wrong faulting pc.
main:
    la $t0, target
    addi $t0, $t0, 2       # misalign the target
    jr $t0                 # engines must agree: unaligned fault at target+2
target:
    halt
