"""Property: the cache behaves exactly like a reference LRU model."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import Cache


class ReferenceLRU:
    """Obviously-correct set-associative LRU write-back model."""

    def __init__(self, num_sets, assoc, block_shift):
        self.num_sets = num_sets
        self.assoc = assoc
        self.block_shift = block_shift
        self.sets = [OrderedDict() for __ in range(num_sets)]

    def access(self, addr, is_write):
        block = addr >> self.block_shift
        lru = self.sets[block % self.num_sets]
        if block in lru:
            dirty = lru.pop(block)
            lru[block] = dirty or is_write
            return True, None
        writeback = None
        if len(lru) >= self.assoc:
            victim, dirty = lru.popitem(last=False)
            if dirty:
                writeback = victim << self.block_shift
        lru[block] = is_write
        return False, writeback


accesses = st.lists(
    st.tuples(st.integers(min_value=0, max_value=0x3FFF),
              st.booleans()),
    min_size=1, max_size=300)


@given(ops=accesses,
       geometry=st.sampled_from([(512, 1, 32), (1024, 2, 32),
                                 (2048, 4, 64), (256, 1, 16)]))
@settings(max_examples=150, deadline=None)
def test_cache_matches_reference(ops, geometry):
    size, assoc, block = geometry
    cache = Cache("dut", size, assoc, block)
    reference = ReferenceLRU(cache.num_sets, assoc, block.bit_length() - 1)
    for addr, is_write in ops:
        got = cache.access(addr, is_write)
        want = reference.access(addr, is_write)
        assert got == want, (hex(addr), is_write)


@given(ops=accesses)
@settings(max_examples=80, deadline=None)
def test_stats_are_consistent(ops):
    cache = Cache("dut", 1024, 2, 32)
    for addr, is_write in ops:
        cache.access(addr, is_write)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses == len(ops)
    assert 0.0 <= stats.miss_rate <= 1.0
    assert stats.writebacks <= stats.misses


@given(ops=accesses)
@settings(max_examples=50, deadline=None)
def test_probe_never_mutates(ops):
    cache = Cache("dut", 512, 1, 32)
    for addr, is_write in ops:
        cache.access(addr, is_write)
    before = cache.stats.accesses
    for addr, __ in ops:
        cache.probe(addr)
    assert cache.stats.accesses == before
