"""Property tests for main memory, layouts, and the checkpoint store."""

from hypothesis import given, settings
from hypothesis import strategies as st

import random

from repro.kernel.checkpoints import CheckpointStore
from repro.memory.mainmem import PAGE_SIZE, MainMemory
from repro.program.layout import MemoryLayout


@given(writes=st.lists(
    st.tuples(st.integers(min_value=0, max_value=0xFFFF0),
              st.binary(min_size=1, max_size=64)),
    min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_memory_matches_flat_model(writes):
    mem = MainMemory()
    model = {}
    for addr, payload in writes:
        mem.store_bytes(addr, payload)
        for offset, byte in enumerate(payload):
            model[addr + offset] = byte
    for addr, payload in writes:
        got = mem.load_bytes(addr, len(payload))
        want = bytes(model.get(addr + i, 0) for i in range(len(payload)))
        assert got == want


@given(addr=st.integers(min_value=0, max_value=0xFFFF0).map(lambda a: a & ~3),
       value=st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_word_byte_agreement(addr, value):
    mem = MainMemory()
    mem.store_word(addr, value)
    reassembled = int.from_bytes(
        bytes(mem.load_byte(addr + i) for i in range(4)), "little")
    assert reassembled == value


@given(seed=st.integers(min_value=0, max_value=10_000))
def test_randomized_layout_invariants(seed):
    layout = MemoryLayout()
    randomized = layout.randomize(random.Random(seed))
    # Page-aligned, moved, and position-dependent regions untouched.
    for base in (randomized.heap_base, randomized.shlib_base,
                 randomized.stack_top):
        assert base % PAGE_SIZE == 0
    assert randomized.text_base == layout.text_base
    assert randomized.data_base == layout.data_base
    assert randomized.heap_base > layout.heap_base
    assert randomized.stack_top < layout.stack_top
    assert randomized.shlib_base > layout.shlib_base
    # The stack never collides with the heap or shared libraries.
    assert randomized.stack_base > randomized.shlib_base


save_events = st.lists(
    st.tuples(st.integers(min_value=1, max_value=6),       # page
              st.integers(min_value=1, max_value=4)),      # writer
    min_size=1, max_size=40)


@given(events=save_events,
       kill=st.sets(st.integers(min_value=1, max_value=4), min_size=1))
@settings(max_examples=150, deadline=None)
def test_rollback_snapshot_is_earliest_contamination(events, kill):
    store = CheckpointStore()
    reference = {}          # page -> list of (cycle, writer)
    for cycle, (page, writer) in enumerate(events):
        store.save(page, cycle, writer, bytes([cycle % 256]) * PAGE_SIZE)
        reference.setdefault(page, []).append((cycle, writer))
    for page, history in reference.items():
        expected = next((cycle for cycle, writer in history
                         if writer in kill), None)
        snapshot = store.rollback_snapshot(page, kill)
        if expected is None:
            assert snapshot is None
        else:
            assert snapshot is not None and snapshot.cycle == expected


@given(events=save_events)
@settings(max_examples=80, deadline=None)
def test_capacity_bound_is_respected(events):
    store = CheckpointStore(max_snapshots=10)
    for cycle, (page, writer) in enumerate(events):
        store.save(page, cycle, writer, b"\x00" * PAGE_SIZE)
    assert store.snapshot_count() <= 10
    assert store.gc_removed == max(0, len(events) - 10)
