"""Every shrunk difftest repro in the corpus stays fixed.

Each ``corpus/*.s`` file is a minimal program that once exposed a real
cross-engine divergence (see the header comment in each file).  Running
them back through the three-engine oracle pins the fixes: any
regression shows up as a non-None divergence with a full report.
"""

import glob
import os

import pytest

from repro.difftest import run_source

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.s")))


def test_corpus_is_populated():
    assert len(CORPUS) >= 3


@pytest.mark.parametrize("path", CORPUS,
                         ids=[os.path.basename(p) for p in CORPUS])
def test_corpus_program_agrees_across_engines(path):
    with open(path) as handle:
        source = handle.read()
    result = run_source(source)
    assert result.ok, result.divergence.report()
    assert not result.limited


def test_jalr_self_link_expected_values():
    with open(os.path.join(CORPUS_DIR, "jalr_self_link.s")) as handle:
        result = run_source(handle.read())
    for run in result.runs.values():
        assert run.stop == "halt"
        assert run.regs[16] == 5, run.engine          # $s0: marker ran


def test_smc_fetch_window_expected_values():
    with open(os.path.join(CORPUS_DIR, "smc_fetch_window.s")) as handle:
        result = run_source(handle.read())
    for run in result.runs.values():
        assert run.stop == "halt"
        assert run.regs[16] == 77, run.engine         # $s0: patched addi


def test_unaligned_jr_faults_at_target():
    with open(os.path.join(CORPUS_DIR, "unaligned_jr_fault.s")) as handle:
        result = run_source(handle.read())
    pcs = {run.fault_pc for run in result.runs.values()}
    assert len(pcs) == 1
    for run in result.runs.values():
        assert run.stop == "fault"
        assert run.fault_cause == "unaligned", run.engine


def test_store_load_forward_expected_values():
    path = os.path.join(CORPUS_DIR, "store_load_forward_subword.s")
    with open(path) as handle:
        result = run_source(handle.read())
    for run in result.runs.values():
        assert run.regs[16] == 0xFFFFFF91, run.engine   # $s0 lb
        assert run.regs[17] == 0x0000007F, run.engine   # $s1 lbu
        assert run.regs[18] == 0x00007FB3, run.engine   # $s2 lhu
        assert run.regs[19] == 0x22229122, run.engine   # $s3 lw after sb


def test_divmin_wrap_expected_values():
    with open(os.path.join(CORPUS_DIR, "divmin_wrap.s")) as handle:
        result = run_source(handle.read())
    for run in result.runs.values():
        assert run.regs[16] == 0x80000000, run.engine   # div
        assert run.regs[17] == 0, run.engine            # rem
        assert run.regs[18] == 0xFFFFFFFF, run.engine   # sra
        assert run.regs[19] == 0xFFFFFFFF, run.engine   # srav
