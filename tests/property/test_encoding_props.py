"""Property-based tests of the binary encoding layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.encoding import DecodeError, decode, encode, flip_bit
from repro.isa.instructions import SPECS

regs = st.integers(min_value=0, max_value=31)
imm16 = st.integers(min_value=-0x8000, max_value=0x7FFF)
words = st.integers(min_value=0, max_value=0xFFFFFFFF)


@given(spec=st.sampled_from(SPECS), rs=regs, rt=regs, rd=regs,
       shamt=st.integers(min_value=0, max_value=31), imm=imm16,
       target=st.integers(min_value=0, max_value=0x03FFFFFF),
       module=st.integers(min_value=0, max_value=15),
       blk=st.integers(min_value=0, max_value=1),
       op=st.integers(min_value=0, max_value=31),
       param=st.integers(min_value=0, max_value=0xFFFF))
@settings(max_examples=300)
def test_encode_decode_roundtrip(spec, rs, rt, rd, shamt, imm, target,
                                 module, blk, op, param):
    word = encode(spec, rs=rs, rt=rt, rd=rd, shamt=shamt, imm=imm,
                  target=target, module=module, blk=blk, op=op, param=param)
    instr = decode(word)
    # "sll r0, r0, 0" *is* the canonical NOP encoding; everything else
    # must decode back to the same mnemonic with the same fields.
    if word == 0:
        assert instr.name == "nop"
        return
    assert instr.name == spec.name
    assert instr.word == word
    if spec.fmt == "R":
        assert (instr.rs, instr.rt, instr.rd, instr.shamt) == \
            (rs, rt, rd, shamt)
    elif spec.fmt == "J":
        assert instr.target == target
    elif spec.fmt == "CHK":
        assert (instr.module, instr.blk, instr.op, instr.param) == \
            (module, blk, op, param)
    else:
        assert instr.imm == imm
        assert instr.rs == rs


@given(word=words)
@settings(max_examples=500)
def test_decode_total_function(word):
    """Every word either decodes consistently or raises DecodeError."""
    try:
        instr = decode(word)
    except DecodeError:
        return
    assert instr.word == word
    assert decode(word) is instr          # memoised: stable identity


@given(word=words, bit=st.integers(min_value=0, max_value=31))
def test_flip_bit_involution(word, bit):
    assert flip_bit(flip_bit(word, bit), bit) == word
    assert flip_bit(word, bit) != word


@given(word=words)
@settings(max_examples=200)
def test_register_extraction_in_range(word):
    try:
        instr = decode(word)
    except DecodeError:
        return
    if instr.dest is not None:
        assert 0 <= instr.dest < 32
    for reg in instr.srcs:
        assert 0 <= reg < 32
