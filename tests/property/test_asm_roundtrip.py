"""Property: assemble(disassemble(word)) == word for plain instructions.

Branches/jumps disassemble with resolved numeric targets (the assembler
expects labels there), and CHK renders a diagnostic form; everything
else must survive the round trip bit-for-bit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.encoding import decode, encode
from repro.isa.instructions import SPECS, InstrClass

ROUNDTRIP_SPECS = [spec for spec in SPECS
                   if spec.iclass in (InstrClass.ALU, InstrClass.MDU,
                                      InstrClass.LOAD, InstrClass.STORE)]

regs = st.integers(min_value=0, max_value=31)


@given(spec=st.sampled_from(ROUNDTRIP_SPECS), rs=regs, rt=regs, rd=regs,
       shamt=st.integers(min_value=0, max_value=31),
       imm=st.integers(min_value=-0x8000, max_value=0x7FFF))
@settings(max_examples=400)
def test_disassembly_reassembles_identically(spec, rs, rt, rd, shamt, imm):
    if spec.name in ("andi", "ori", "xori"):
        imm &= 0x7FFF          # unsigned-immediate forms
    # Zero architecturally don't-care fields: the disassembly does not
    # (and should not) render them, so they cannot round-trip.
    if spec.syntax == "rrs":
        rs = 0
    elif spec.syntax in ("rrr", "rrv"):
        shamt = 0
    elif spec.syntax == "ri":
        rs = 0
    word = encode(spec, rs=rs, rt=rt, rd=rd, shamt=shamt, imm=imm)
    if word == 0:
        return          # canonical NOP renders as "nop"
    text = decode(word).disassemble()
    assembled = assemble("main: %s\nhalt\n" % text)
    reassembled = int.from_bytes(assembled.text[0:4], "little")
    assert reassembled == word, (spec.name, text)


@given(spec=st.sampled_from(SPECS), rs=regs, rt=regs, rd=regs)
@settings(max_examples=200)
def test_disassembly_never_crashes(spec, rs, rt, rd):
    word = encode(spec, rs=rs, rt=rt, rd=rd, imm=5, target=0x40,
                  module=1, op=2, param=3)
    text = decode(word).disassemble()
    assert isinstance(text, str) and text
