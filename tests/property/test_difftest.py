"""Unit tests for the differential fuzzer itself.

Covers: generator determinism and structural guarantees, oracle
divergence detection with a deliberately broken predecode closure
(correct pc, correct disassembly in the report), the idiom shrinker,
and the resumable runner.
"""

import json

import pytest

import repro.isa.predecode as predecode
from repro.difftest import MODES, fuzz, generate, run_source, shrink
from repro.difftest.runner import derive_seed
from repro.isa.assembler import assemble


# ---------------------------------------------------------------- generator

@pytest.mark.parametrize("mode", MODES)
def test_generator_is_deterministic(mode):
    a = generate(1234, mode=mode)
    b = generate(1234, mode=mode)
    assert a.source == b.source


def test_generator_seeds_differ():
    assert generate(1, mode="all").source != generate(2, mode="all").source


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("seed", range(0, 40, 7))
def test_generated_programs_assemble_and_terminate(mode, seed):
    program = generate(seed, mode=mode)
    assemble(program.source)          # must not raise
    result = run_source(program.source)
    assert not result.limited, "seed %d did not terminate" % seed


def test_any_idiom_subset_assembles():
    program = generate(77, mode="all", size=20)
    for start in range(0, len(program.idioms), 5):
        subset = program.idioms[:start] + program.idioms[start + 5:]
        assemble(program.replace(idioms=subset).source)


def test_mode_gates_special_idioms():
    kinds = {idiom.kind
             for seed in range(30)
             for idiom in generate(seed, mode="basic").idioms}
    assert "chk" not in kinds and "smc_patch" not in kinds
    kinds = {idiom.kind
             for seed in range(30)
             for idiom in generate(seed, mode="all").idioms}
    assert "chk" in kinds and "smc_patch" in kinds


# ------------------------------------------------------------------- oracle
#
# Satellite: a deliberately broken closure must be caught at the correct
# pc with correct disassembly in the report.  The break is applied to
# the predecode compiler only, so the reference interpreter stays right.

BROKEN_XOR_SOURCE = """
main:
    li $t0, 5
    li $t1, 3
    li $t3, 7
    xor $t2, $t0, $t1      # 6 -- the broken closure produces 7
    beq $t2, $t3, wrong
    li $s0, 111
    halt
wrong:
    li $s0, 222
    halt
"""


@pytest.fixture
def broken_xor_closure(monkeypatch):
    real = predecode._compile_alu

    def broken(pc, instr, next_pc):
        fn = real(pc, instr, next_pc)
        if instr.name != "xor" or not instr.dest:
            return fn
        dest = instr.dest

        def bad(sim):
            nxt = fn(sim)
            sim.regs[dest] |= 1
            return nxt
        return bad

    monkeypatch.setattr(predecode, "_compile_alu", broken)


def test_oracle_catches_broken_closure_at_correct_pc(broken_xor_closure):
    result = run_source(BROKEN_XOR_SOURCE)
    divergence = result.divergence
    assert divergence is not None
    assert divergence.kind == "stream"
    assert divergence.engines == ("interp", "predecode")
    # The paths split right after the beq: the reference falls through
    # to `li $s0, 111` at main+0x14; the broken engine branches away.
    asm = assemble(BROKEN_XOR_SOURCE)
    split_pc = asm.entry + 0x14
    assert divergence.pc == split_pc
    report = divergence.report()
    assert "0x%08x" % split_pc in report
    # The disassembled window marks the split and shows real text.
    assert ">> %08x" % split_pc in report
    assert "addi $s0, $zero, 111" in report
    assert "beq" in report


def test_oracle_passes_when_closures_are_honest():
    assert run_source(BROKEN_XOR_SOURCE).ok


def test_oracle_reports_register_divergence(broken_xor_closure):
    # Without a branch on the poisoned value the streams agree and the
    # divergence surfaces at the register comparison instead.
    source = """
main:
    li $t0, 5
    li $t1, 3
    xor $t2, $t0, $t1
    halt
"""
    divergence = run_source(source).divergence
    assert divergence is not None
    assert divergence.kind == "regs"
    assert "r10" in divergence.detail          # $t2


def test_oracle_divergence_to_dict_roundtrips(broken_xor_closure):
    divergence = run_source(BROKEN_XOR_SOURCE).divergence
    payload = json.loads(json.dumps(divergence.to_dict()))
    assert payload["kind"] == "stream"
    assert payload["engines"] == ["interp", "predecode"]
    assert payload["index"] is not None


# ------------------------------------------------------------------ shrinker

def test_shrinker_minimizes_to_single_idiom(broken_xor_closure):
    # Find a generated program whose xor feeds a visible divergence,
    # then shrink: only idioms keeping the divergence may survive.
    program = None
    for seed in range(200):
        candidate = generate(seed, mode="basic", size=16)
        if any("xor" in line for idiom in candidate.idioms
               for line in idiom.body) \
                and run_source(candidate.source).divergence is not None:
            program = candidate
            break
    assert program is not None, "no diverging program found to shrink"
    result = shrink(program,
                    lambda p: run_source(p.source).divergence)
    assert result.divergence is not None
    assert len(result.program.idioms) < len(program.idioms)
    assert run_source(result.program.source).divergence is not None
    # 1-minimal: dropping any remaining idiom loses the divergence.
    if len(result.program.idioms) > 1:
        for index in range(len(result.program.idioms)):
            subset = (result.program.idioms[:index]
                      + result.program.idioms[index + 1:])
            candidate = result.program.replace(idioms=subset)
            assert run_source(candidate.source).divergence is None


# -------------------------------------------------------------------- runner

def test_fuzz_smoke_is_clean():
    report = fuzz(seed=4321, count=15, mode="all")
    assert report.ok
    assert report.executed == 15
    assert report.limited == 0


def test_fuzz_finds_shrinks_and_persists_divergence(tmp_path,
                                                    broken_xor_closure):
    corpus = tmp_path / "corpus"
    # Hunt a seed window guaranteed to contain xor-using programs.
    report = fuzz(seed=4321, count=15, mode="all",
                  corpus_dir=str(corpus))
    assert not report.ok
    entry = report.divergences[0]
    assert entry["shrunk_source"]
    path = entry["corpus_file"]
    with open(path) as handle:
        text = handle.read()
    assert text.startswith("# difftest repro")
    assert "DIVERGENCE" in text
    # The persisted repro still assembles.
    assemble("\n".join(line for line in text.splitlines()
                       if not line.startswith("#")))


def test_fuzz_store_resumes(tmp_path):
    store = str(tmp_path / "difftest.jsonl")
    first = fuzz(seed=11, count=6, mode="basic", store=store)
    assert first.executed == 6
    second = fuzz(seed=11, count=10, mode="basic", store=store)
    assert second.resumed == 6
    assert second.executed == 4
    with open(store) as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    assert lines[0]["kind"] == "difftest"
    assert len(lines) == 11          # header + one record per program


def test_fuzz_store_rejects_mismatched_run(tmp_path):
    store = str(tmp_path / "difftest.jsonl")
    fuzz(seed=11, count=2, mode="basic", store=store)
    with pytest.raises(ValueError):
        fuzz(seed=12, count=2, mode="basic", store=store)


def test_derived_seeds_are_distinct():
    seeds = {derive_seed(1234, index) for index in range(1000)}
    assert len(seeds) == 1000


# ----------------------------------------------------------- jit engine

HOT_XOR_SOURCE = """
main:
    li $t0, 0
    li $t1, 20
    li $s2, 0
loop:
    xor $s2, $s2, $t0
    addi $t0, $t0, 1
    bne $t0, $t1, loop
    halt
"""


@pytest.fixture
def broken_xor_trace(monkeypatch):
    """Corrupt xor only in the *trace* compiler; closures stay honest."""
    import repro.isa.traces as traces

    real = traces._Emitter._alu_expr

    def broken(self, instr):
        expr = real(self, instr)
        if instr.name == "xor":
            return "((%s) | 1)" % expr
        return expr

    monkeypatch.setattr(traces._Emitter, "_alu_expr", broken)


def test_jit_engine_runs_and_agrees():
    result = run_source(HOT_XOR_SOURCE, jit=True)
    assert result.ok
    assert set(result.runs) == {"interp", "predecode", "jit", "pipeline"}
    jit_run = result.runs["jit"]
    assert jit_run.stop == "halt"
    assert jit_run.stream == result.runs["interp"].stream


def test_oracle_catches_broken_trace_compiler(broken_xor_trace):
    # The predecode closures are untouched, so without the jit engine
    # the oracle is blind to the bug ...
    assert run_source(HOT_XOR_SOURCE).ok
    # ... and with it the divergence names the jit engine.
    divergence = run_source(HOT_XOR_SOURCE, jit=True).divergence
    assert divergence is not None
    assert divergence.engines == ("interp", "jit")


def test_fuzz_jit_smoke_is_clean():
    report = fuzz(seed=4321, count=10, mode="all", jit=True)
    assert report.ok
    assert report.executed == 10
    assert report.to_dict()["jit"] is True


def test_fuzz_store_separates_jit_runs(tmp_path):
    store = str(tmp_path / "difftest.jsonl")
    fuzz(seed=11, count=2, mode="basic", store=store)
    with pytest.raises(ValueError):
        fuzz(seed=11, count=2, mode="basic", store=store, jit=True)
