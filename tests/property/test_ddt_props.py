"""Property tests of DDT invariants against a reference tracker."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rse.modules.ddt import DDT


class _FakeEngine:
    def __init__(self):
        self.current_tid = 1


class _FakeUop:
    class _I:
        def __init__(self, kind):
            self.is_load = kind == "load"
            self.is_store = kind == "store"

    def __init__(self, kind, addr):
        self.instr = self._I(kind)
        self.eff_addr = addr


def make_ddt():
    ddt = DDT()
    ddt.engine = _FakeEngine()
    ddt.save_page_handler = lambda page, tid, cycle: 0
    for tid in (1, 2, 3, 4):
        ddt.register_thread(tid)
    return ddt


class ReferenceTracker:
    """Straight transcription of Section 4.2.1's four outcomes."""

    def __init__(self):
        self.owners = {}          # page -> [write_owner, read_owner]
        self.deps = set()         # (producer, consumer)
        self.saves = []

    def load(self, tid, page):
        owners = self.owners.setdefault(page, [None, None])
        if owners[1] == tid:
            return
        owners[1] = tid
        if owners[0] is not None and owners[0] != tid:
            self.deps.add((owners[0], tid))

    def store(self, tid, page):
        owners = self.owners.setdefault(page, [None, None])
        if owners[0] == tid:
            return
        self.saves.append((page, tid))
        owners[0] = tid
        owners[1] = tid


events = st.lists(
    st.tuples(st.sampled_from([1, 2, 3, 4]),
              st.sampled_from(["load", "store"]),
              st.integers(min_value=0x100, max_value=0x107)),   # 8 pages
    min_size=1, max_size=120)


def apply_events(ddt, reference, ops):
    saves = []
    ddt.save_page_handler = lambda page, tid, cycle: saves.append(
        (page, tid)) or 0
    for cycle, (tid, kind, page) in enumerate(ops):
        ddt.engine.current_tid = tid
        addr = page << 12
        if kind == "load":
            ddt.on_commit(_FakeUop("load", addr), cycle)
            reference.load(tid, page)
        else:
            ddt.pre_commit_store(_FakeUop("store", addr), cycle)
            reference.store(tid, page)
    return saves


@given(ops=events)
@settings(max_examples=150, deadline=None)
def test_ddt_matches_reference(ops):
    ddt = make_ddt()
    reference = ReferenceTracker()
    saves = apply_events(ddt, reference, ops)
    # Same SavePage sequence.
    assert saves == reference.saves
    # Same owner state for every touched page.
    for page, owners in reference.owners.items():
        assert list(ddt.pst[page]) == owners, hex(page)
    # Same dependency edges.
    got = {(producer, consumer)
           for producer, consumers in ddt.ddm.items()
           for consumer in consumers}
    assert got == reference.deps


@given(ops=events)
@settings(max_examples=100, deadline=None)
def test_dependency_closure_properties(ops):
    ddt = make_ddt()
    apply_events(ddt, ReferenceTracker(), ops)
    for tid in (1, 2, 3, 4):
        closure = ddt.dependents_of(tid)
        assert tid not in closure
        # Closure is really closed: dependents of dependents are included.
        for dependent in closure:
            assert ddt.dependents_of(dependent) <= closure | {tid}


@given(ops=events, victim=st.sampled_from([1, 2, 3, 4]))
@settings(max_examples=80, deadline=None)
def test_forget_thread_removes_all_traces(ops, victim):
    ddt = make_ddt()
    apply_events(ddt, ReferenceTracker(), ops)
    ddt.forget_thread(victim)
    assert victim not in ddt.ddm
    for consumers in ddt.ddm.values():
        assert victim not in consumers
    for owners in ddt.pst.values():
        assert victim not in owners
