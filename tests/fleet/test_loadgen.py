"""Load generator unit tests: shape, determinism, validation."""

import pytest

from repro.fleet.loadgen import LoadSpec, generate


def test_schedules_are_deterministic():
    spec = LoadSpec(requests=100, seed=42)
    assert generate(spec, 3) == generate(spec, 3)


def test_request_count_conserved_and_sorted():
    spec = LoadSpec(requests=97, fanout="random", seed=5)
    schedules = generate(spec, 4)
    assert len(schedules) == 4
    assert sum(len(s) for s in schedules) == 97
    for schedule in schedules:
        assert list(schedule) == sorted(schedule)
        assert all(cycle >= spec.start_cycle for cycle in schedule)


def test_roundrobin_fanout_is_even():
    schedules = generate(LoadSpec(requests=90, fanout="roundrobin"), 3)
    assert [len(s) for s in schedules] == [30, 30, 30]


def test_bursts_compress_gaps():
    bursty = LoadSpec(requests=200, mean_gap=500, burst_percent=100,
                      burst_len=10, burst_gap=2, seed=9)
    smooth = LoadSpec(requests=200, mean_gap=500, burst_percent=0, seed=9)
    bursty_span = generate(bursty, 1)[0][-1]
    smooth_span = generate(smooth, 1)[0][-1]
    # With every arrival opening a burst, 9 of every 10 gaps are the
    # 2-cycle burst gap: the schedule is far denser than the smooth one.
    assert bursty_span < smooth_span / 3


def test_seed_changes_schedule():
    assert generate(LoadSpec(seed=1), 2) != generate(LoadSpec(seed=2), 2)


def test_validation():
    with pytest.raises(ValueError):
        LoadSpec(requests=-1)
    with pytest.raises(ValueError):
        LoadSpec(burst_percent=101)
    with pytest.raises(ValueError):
        LoadSpec(burst_len=0)
    with pytest.raises(ValueError):
        LoadSpec(fanout="broadcast")
    with pytest.raises(ValueError):
        LoadSpec(mean_gap=-5)
    with pytest.raises(ValueError):
        generate(LoadSpec(), 0)


def test_zero_mean_gap_arrives_back_to_back():
    schedule = generate(LoadSpec(requests=10, mean_gap=0, burst_percent=0,
                                 start_cycle=100), 1)[0]
    assert schedule == tuple(range(101, 111))
