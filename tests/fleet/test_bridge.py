"""Cycle bridge determinism: same spec, byte-identical fleet results."""

import pytest

from repro.fleet.run import FleetSpec, run_fleet


def spec(**overrides):
    base = dict(nodes=3, requests=60, workers=2, max_cycles=8_000_000)
    base.update(overrides)
    return FleetSpec(**base)


@pytest.fixture(scope="module")
def clean_run():
    return run_fleet(spec())


def test_fleet_serves_every_request(clean_run):
    assert [node.status for node in clean_run.nodes] == ["halted"] * 3
    assert clean_run.served() == 60
    # Request ids are dense per node (each kernel numbers its own stream).
    for node in clean_run.nodes:
        assert sorted(node.kernel.responses) \
            == list(range(len(node.kernel.responses)))
    assert not clean_run.device.has_pending()


def test_gossip_traffic_flowed(clean_run):
    # Every served request triggers one SYS_NSEND to the next node.
    doc = clean_run.device.snapshot()
    assert doc["sent"] == 60
    assert doc["dropped"] == 0
    assert doc["pending"] == 0


def test_same_seed_is_byte_identical(clean_run):
    again = run_fleet(spec())
    assert again.merged_log() == clean_run.merged_log()
    assert again.node_snapshots() == clean_run.node_snapshots()
    assert again.digest() == clean_run.digest()
    assert again.bridge.slices == clean_run.bridge.slices


def test_seed_perturbs_the_run(clean_run):
    other = run_fleet(spec(seed=2))
    assert other.digest() != clean_run.digest()


def test_single_node_fleet():
    run = run_fleet(spec(nodes=1, requests=20, max_cycles=4_000_000))
    assert run.nodes[0].status == "halted"
    assert run.served() == 20


def test_deadline_marks_unfinished_nodes_timeout():
    run = run_fleet(spec(nodes=2, requests=8, max_cycles=5_000))
    assert all(node.status == "timeout" for node in run.nodes)
    # Nodes stop at the deadline, modulo syscall-cost overshoot within
    # the final quantum.
    assert all(5_000 <= node.cycle < 30_000 for node in run.nodes)


def test_lookahead_invariant_holds(clean_run):
    # Conservative co-simulation: no node ever ran past another active
    # node by more than the minimum link latency while both were live.
    # The cheap end-state witness: every delivered datagram arrived at
    # or after its delivery cycle (no delivery ever landed in a node's
    # past, or the receiver kernel would have seen time go backwards).
    assert clean_run.device.snapshot()["pending"] == 0
    assert clean_run.bridge.slices > len(clean_run.nodes)


def test_json_report_is_self_consistent(clean_run):
    doc = clean_run.to_dict()
    assert doc["served"] == doc["provisioned"] == 60
    assert doc["digest"] == clean_run.digest()
    assert len(doc["nodes"]) == 3
    assert sum(node["responses"] for node in doc["nodes"]) == 60
    assert doc["net"]["nodes"] == 3
