"""Fault injection under traffic: kills, strikes, checkpoint failover."""

import pytest

from repro.fleet.run import FleetSpec, run_fleet
from repro.workloads import fleet_server


def spec(**overrides):
    base = dict(nodes=3, requests=60, workers=2, max_cycles=8_000_000)
    base.update(overrides)
    return FleetSpec(**base)


@pytest.fixture(scope="module")
def clean_run():
    return run_fleet(spec())


def test_kill_failover_converges_to_clean_served_set(clean_run):
    killed = run_fleet(spec(kills=((1, 9_000),)))
    node = killed.nodes[1]
    assert node.kills[0].done
    assert len(node.failovers) == 1
    event = node.failovers[0]
    assert event.reason == "killed"
    assert event.death_cycle >= 9_000
    assert event.resume_cycle >= event.death_cycle + killed.spec.restore_cost
    assert event.rewound_requests >= 0
    # The spare re-serves everything lost since the checkpoint: the
    # merged fleet log converges to the uninterrupted run's log.
    assert node.status == "halted"
    assert killed.served() == 60
    assert set(killed.merged_log()) == set(clean_run.merged_log())


def test_kill_failover_is_deterministic():
    first = run_fleet(spec(kills=((1, 9_000),)))
    second = run_fleet(spec(kills=((1, 9_000),)))
    assert first.digest() == second.digest()
    assert first.nodes[1].failovers[0].to_dict() \
        == second.nodes[1].failovers[0].to_dict()


def test_deterministic_fault_strike_detected_and_recovered(clean_run):
    # Flip bit 31 of the first instruction of main's poll loop on node 1
    # mid-traffic.  The corrupted loop faults; the bridge fails the node
    # over to a spare restored from its last checkpoint.
    __, asm = fleet_server.program(
        1, 3, 2, fleet_server.DEFAULT_WORK_ITERS,
        fleet_server.DEFAULT_CLASSES, fleet_server.DEFAULT_STATS_BATCH,
        fleet_server.DEFAULT_DRAIN_CYCLES,
        fleet_server.DEFAULT_DRAIN_POLL_GAP)
    strike = {"model": "mem-flip", "node": 1, "cycle": 12_000,
              "params": {"addr": asm.symbols["wait_loop"], "bit": 31,
                         "cycle": 12_000}}
    struck = run_fleet(spec(strikes=(strike,)))
    record = struck.nodes[1].strikes[0]
    assert record.fired
    assert record.outcome == "fault"      # the recorded death reason
    assert len(struck.nodes[1].failovers) == 1
    assert struck.nodes[1].status == "halted"
    assert struck.served() == 60
    assert set(struck.merged_log()) == set(clean_run.merged_log())


def test_benign_strike_leaves_run_clean(clean_run):
    # A register flip in this stack-free workload lands on state that is
    # rewritten before use: the run completes without failover and the
    # strike is classified, not dropped.
    struck = run_fleet(spec(strikes=(("reg-flip", 2, 20_000),)))
    record = struck.nodes[2].strikes[0]
    assert record.fired
    assert record.outcome in ("benign", "detected", "recovered", "faulted")
    assert struck.served() == 60


def test_protected_fleet_kill_converges():
    run = run_fleet(spec(nodes=2, requests=24, protected=True,
                         kills=((1, 20_000),)))
    assert run.served() == 24
    assert len(run.nodes[1].failovers) == 1
    assert all(node.status == "halted" for node in run.nodes)


def test_strike_after_halt_is_not_triggered():
    run = run_fleet(spec(nodes=2, requests=10, max_cycles=6_000_000,
                         strikes=(("reg-flip", 0, 5_999_999),)))
    record = run.nodes[0].strikes[0]
    assert not record.fired
    assert record.outcome == "not_triggered"
