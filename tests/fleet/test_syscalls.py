"""Guest-level SYS_NSEND/SYS_NRECV tests across real co-simulated nodes."""

from repro.fleet.bridge import CycleBridge, FleetNode
from repro.fleet.net import NetworkConfig, LinkConfig, NetworkDevice
from repro.kernel.syscalls import NRECV_EMPTY, NSEND_OK, NSEND_UNREACHABLE
from repro.program.layout import MemoryLayout
from repro.system import build_machine
from repro.workloads.asmlib import build_workload_image


def boot(source):
    machine = build_machine()
    image, asm = build_workload_image(source, MemoryLayout())
    machine.kernel.load_process(image)
    return machine, asm


def cosim(sources, max_cycles=500_000, config=None):
    device = NetworkDevice(len(sources), config or NetworkConfig())
    nodes = []
    for node_id, source in enumerate(sources):
        machine, __ = boot(source)
        device.attach(node_id, machine.kernel)
        nodes.append(FleetNode(node_id, machine, lambda: boot(source)[0]))
    CycleBridge(nodes, device, max_cycles).run()
    return nodes, device


PING = """
    main:
        li $v0, SYS_NSEND
        li $a0, 1               # dest node
        li $a1, 41
        syscall
        move $s0, $v0           # send status
        li $v0, SYS_NRECV
        li $a0, 0               # blocking
        syscall
        move $s1, $v0           # source node
        move $s2, $a1           # payload
        halt
"""

PONG = """
    main:
        li $v0, SYS_NRECV
        li $a0, 0               # blocking
        syscall
        addi $a1, $a1, 1
        li $v0, SYS_NSEND
        li $a0, 0               # reply to sender
        syscall
        halt
"""


def test_two_node_ping_pong():
    nodes, device = cosim([PING, PONG])
    assert [node.status for node in nodes] == ["halted", "halted"]
    regs = nodes[0].machine.pipeline.regs
    assert regs[16] == NSEND_OK        # $s0
    assert regs[17] == 1               # $s1: reply came from node 1
    assert regs[18] == 42              # $s2: incremented payload
    assert not device.has_pending()
    assert device.snapshot()["sent"] == 2


def test_blocking_nrecv_sleeps_until_delivery():
    # Node 1 blocks with nothing in flight; node 0 sleeps a long time
    # before sending.  The receiver must park (not spin) and still wake.
    late_ping = """
        main:
            li $v0, SYS_SLEEP
            li $a0, 30000
            syscall
            li $v0, SYS_NSEND
            li $a0, 1
            li $a1, 7
            syscall
            halt
    """
    sink = """
        main:
            li $v0, SYS_NRECV
            li $a0, 0
            syscall
            move $s2, $a1
            halt
    """
    nodes, __ = cosim([late_ping, sink])
    assert [node.status for node in nodes] == ["halted", "halted"]
    assert nodes[1].machine.pipeline.regs[18] == 7
    # Delivery cycle = send cycle + latency: the receiver halts well
    # after the sender's sleep, not at its own first poll.
    assert nodes[1].cycle > 30000


def test_nrecv_poll_on_empty_queue_returns_sentinel():
    probe = """
        main:
            li $v0, SYS_NRECV
            li $a0, NRECV_POLL
            syscall
            move $s0, $v0
            halt
    """
    nodes, __ = cosim([probe])
    assert nodes[0].status == "halted"
    assert nodes[0].machine.pipeline.regs[16] == NRECV_EMPTY


def test_nsend_to_unknown_node_reports_unreachable():
    probe = """
        main:
            li $v0, SYS_NSEND
            li $a0, 9           # no such node in a 1-node fleet
            li $a1, 5
            syscall
            move $s0, $v0
            halt
    """
    nodes, device = cosim([probe])
    assert nodes[0].machine.pipeline.regs[16] == NSEND_UNREACHABLE
    assert device.snapshot()["unreachable"] == 1


def test_net_syscalls_without_device_fault():
    for opcode in ("SYS_NSEND", "SYS_NRECV"):
        machine, __ = boot("""
            main:
                li $v0, %s
                li $a0, 0
                li $a1, 0
                syscall
                halt
        """ % opcode)
        result = machine.kernel.run(max_cycles=100_000)
        assert result.reason == "fault"
        assert "no network device" in machine.kernel.faults[0][2]
