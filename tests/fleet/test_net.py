"""Network device unit tests: validation, ordering, drops, determinism."""

import pytest

from repro.fleet.net import (LinkConfig, NetworkConfig, NetworkDevice,
                             MASK32)
from repro.kernel.syscalls import (NODE_ID_LIMIT, NSEND_OK,
                                   NSEND_UNREACHABLE)


# --------------------------------------------------------- config validation

def test_link_latency_floor():
    LinkConfig(latency=1)
    with pytest.raises(ValueError):
        LinkConfig(latency=0)
    with pytest.raises(ValueError):
        LinkConfig(latency=-5)


def test_link_jitter_zero_is_legal_negative_is_not():
    # jitter=0 means "no jitter" and must never reach a % 0.
    device = NetworkDevice(2, NetworkConfig(LinkConfig(latency=7, jitter=0)))
    assert device.send(0, 1, 0xAB, cycle=100) == NSEND_OK
    assert device.interfaces[1].next_delivery() == 107
    with pytest.raises(ValueError):
        LinkConfig(jitter=-1)


def test_drop_permille_range():
    LinkConfig(drop_permille=0)
    LinkConfig(drop_permille=999)
    for bad in (-1, 1000, 5000):
        with pytest.raises(ValueError):
            LinkConfig(drop_permille=bad)


def test_node_count_limit():
    NetworkDevice(1)
    with pytest.raises(ValueError):
        NetworkDevice(0)
    with pytest.raises(ValueError):
        # Ids >= NODE_ID_LIMIT could collide with the NRECV_EMPTY
        # sentinel; the device refuses to build such a fleet.
        NetworkDevice(NODE_ID_LIMIT + 1)


# ------------------------------------------------------------------ datapath

def test_delivery_order_same_cycle_is_send_order():
    device = NetworkDevice(2, NetworkConfig(LinkConfig(latency=10)))
    iface = device.interfaces[1]
    for payload in (5, 6, 7):
        device.send(0, 1, payload, cycle=50)
    assert iface.poll(59) is None            # latency not yet elapsed
    got = [iface.poll(60) for __ in range(3)]
    assert got == [(0, 5), (0, 6), (0, 7)]
    assert iface.poll(60) is None


def test_payloads_masked_to_32_bits():
    device = NetworkDevice(2)
    device.send(0, 1, (1 << 40) | 0xBEEF, cycle=0)
    cycle = device.interfaces[1].next_delivery()
    src, payload = device.interfaces[1].poll(cycle)
    assert src == 0
    assert payload == ((1 << 40) | 0xBEEF) & MASK32


def test_unreachable_destinations():
    device = NetworkDevice(2)
    assert device.send(0, 5, 1, cycle=0) == NSEND_UNREACHABLE
    assert device.send(0, -1, 1, cycle=0) == NSEND_UNREACHABLE
    device.mark_down(1)
    assert device.send(0, 1, 1, cycle=0) == NSEND_UNREACHABLE
    assert device.unreachable == 3
    assert not device.has_pending()


def test_seeded_drops_are_deterministic_and_silent():
    def run():
        config = NetworkConfig(LinkConfig(latency=5, drop_permille=500),
                               seed=77)
        device = NetworkDevice(2, config)
        statuses = [device.send(0, 1, n, cycle=n) for n in range(200)]
        arrived = []
        iface = device.interfaces[1]
        while iface.rx:
            arrived.append(iface.poll(1 << 40))
        return statuses, arrived, device.dropped

    first, second = run(), run()
    assert first == second
    statuses, arrived, dropped = first
    # Drops are silent: the sender always sees NSEND_OK.
    assert set(statuses) == {NSEND_OK}
    assert 0 < dropped < 200
    assert len(arrived) == 200 - dropped


def test_jitter_draws_are_deterministic_per_link():
    def delivery_cycles():
        config = NetworkConfig(LinkConfig(latency=10, jitter=30), seed=3)
        device = NetworkDevice(3, config)
        for n in range(20):
            device.send(0, 1, n, cycle=0)
            device.send(2, 1, n, cycle=0)
        return sorted(entry[0] for entry in device.interfaces[1].rx)

    first, second = delivery_cycles(), delivery_cycles()
    assert first == second
    assert all(10 <= cycle < 40 for cycle in first)


def test_snapshot_shape():
    device = NetworkDevice(2)
    device.send(0, 1, 9, cycle=0)
    doc = device.snapshot()
    assert doc == {"nodes": 2, "sent": 1, "dropped": 0, "unreachable": 0,
                   "pending": 1, "down": []}
    iface_doc = device.interfaces[1].snapshot()
    assert iface_doc == {"node": 1, "sent": 0, "delivered": 0, "pending": 1}
