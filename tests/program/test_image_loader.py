"""Program images: header format, PLT entries, layout, loading."""

import pytest

from repro.isa.assembler import assemble
from repro.memory.mainmem import PAGE_SHIFT, MainMemory
from repro.program.image import (
    HEADER_BYTES,
    ExecutableHeader,
    build_image,
    build_plt_entry,
    plt_entry_target,
    rewrite_plt_entry,
)
from repro.program.layout import MemoryLayout
from repro.program.loader import Loader


def test_header_pack_unpack_roundtrip():
    header = ExecutableHeader(code_start=0x400000, code_len=0x800,
                              data_start=0x10000000, data_len=0x100,
                              bss_len=0x40, shlib_base=0x30000000,
                              stack_base=0x7FFF0000, heap_base=0x10800000,
                              got_addr=0x10000010, got_entries=4,
                              plt_addr=0x400100, plt_entries=4)
    packed = header.pack()
    assert len(packed) == HEADER_BYTES
    parsed = ExecutableHeader.unpack(packed)
    for field in ExecutableHeader.FIELDS:
        assert getattr(parsed, field) == getattr(header, field), field


def test_header_rejects_bad_magic():
    with pytest.raises(ValueError):
        ExecutableHeader.unpack(b"\x00" * HEADER_BYTES)


def test_header_rejects_short_payload():
    with pytest.raises(ValueError):
        ExecutableHeader.unpack(b"\x01\x02")


def test_plt_entry_roundtrip():
    words = build_plt_entry(0x10000020)
    assert len(words) == 4
    assert plt_entry_target(words) == 0x10000020


def test_plt_entry_rewrite():
    words = build_plt_entry(0x10000020)
    rewritten = rewrite_plt_entry(words, 0x20AB0044)
    assert plt_entry_target(rewritten) == 0x20AB0044
    # Only the two address-carrying words change.
    assert rewritten[2:] == words[2:]


def test_plt_target_rejects_non_plt_words():
    with pytest.raises(ValueError):
        plt_entry_target([0, 0, 0, 0])


def _image():
    layout = MemoryLayout()
    asm = assemble("""
        .data
        value: .word 7
        .text
        main: halt
    """, text_base=layout.text_base, data_base=layout.data_base)
    return build_image(asm, layout), asm, layout


def test_build_image_header_fields():
    image, asm, layout = _image()
    header = image.header
    assert header.code_start == layout.text_base
    assert header.code_len == len(asm.text)
    assert header.stack_base == layout.stack_top
    assert header.heap_base == layout.heap_base


def test_build_image_checks_layout_match():
    layout = MemoryLayout()
    asm = assemble("main: halt\n")          # default bases
    other = MemoryLayout(text_base=0x00500000)
    with pytest.raises(ValueError):
        build_image(asm, other)


def test_loader_places_segments_and_perms():
    image, asm, layout = _image()
    memory = MainMemory()
    loaded = Loader(memory).load(image)
    # Text and data bytes landed.
    assert memory.load_word(layout.text_base) != 0
    assert memory.load_word(asm.symbols["value"]) == 7
    # Permissions: text r-x, data rw, stack rw.
    perms = loaded.page_perms
    assert perms[layout.text_base >> PAGE_SHIFT] == "rx"
    assert perms[layout.data_base >> PAGE_SHIFT] == "rw"
    assert perms[(layout.stack_top - 4) >> PAGE_SHIFT] == "rw"
    # Header staged at the well-known location with valid magic.
    staged = memory.load_bytes(layout.header_base, HEADER_BYTES)
    parsed = ExecutableHeader.unpack(staged)
    assert parsed.code_start == layout.text_base


def test_loader_initial_sp_aligned_below_stack_top():
    image, __, layout = _image()
    loaded = Loader(MainMemory()).load(image)
    assert loaded.initial_sp % 8 == 0
    assert layout.stack_base < loaded.initial_sp < layout.stack_top


def test_layout_randomize_deterministic_with_seed():
    import random

    layout = MemoryLayout()
    one = layout.randomize(random.Random(5))
    two = layout.randomize(random.Random(5))
    assert one.as_dict() == two.as_dict()
    three = layout.randomize(random.Random(6))
    assert one.as_dict() != three.as_dict()
