"""Multithreaded server: request completion, sharing, DDT interaction."""

import pytest

from repro.kernel.kernel import KernelConfig
from repro.rse.check import MODULE_DDT
from repro.system import build_machine
from repro.workloads import server


def run_server(workers, requests=12, with_ddt=False, work_iters=40,
               max_cycles=30_000_000):
    modules = ("ddt",) if with_ddt else ()
    machine = build_machine(with_rse=with_ddt, modules=modules,
                            kernel_config=KernelConfig(quantum_cycles=3000))
    if with_ddt:
        machine.rse.enable_module(MODULE_DDT)
    image, asm = server.program(workers, work_iters=work_iters)
    machine.kernel.set_request_source(requests)
    machine.kernel.load_process(image)
    result = machine.kernel.run(max_cycles=max_cycles)
    return machine, asm, result


@pytest.mark.parametrize("workers", [1, 3])
def test_all_requests_served(workers):
    machine, asm, result = run_server(workers, requests=10)
    assert result.reason == "halt"
    assert len(machine.kernel.responses) == 10
    stats_addr = asm.symbols["stats"]
    assert machine.memory.load_word(stats_addr) == 10          # total served


def test_responses_deterministic_across_worker_counts():
    # The request->response mapping is a pure function of the request id,
    # so any pool size must produce identical responses.
    __, __, r1 = run_server(1, requests=8)
    machine1, __, __ = run_server(1, requests=8)
    machine3, __, __ = run_server(3, requests=8)
    assert machine1.kernel.responses == machine3.kernel.responses


def test_more_threads_exploit_io_parallelism():
    __, __, one = run_server(1, requests=16)
    __, __, four = run_server(4, requests=16)
    assert four.cycles < one.cycles


def test_ddt_tracks_server_sharing():
    machine, __, result = run_server(3, requests=12, with_ddt=True)
    assert result.reason == "halt"
    ddt = machine.module(MODULE_DDT)
    assert ddt.save_pages_raised > 0
    assert machine.kernel.checkpoints.saves_total > 0
    assert ddt.dependencies_logged > 0          # stats page bounces around


def test_ddt_makes_runs_slower_not_wrong():
    machine_plain, __, plain = run_server(3, requests=12)
    machine_ddt, __, ddt_run = run_server(3, requests=12, with_ddt=True)
    assert plain.reason == ddt_run.reason == "halt"
    assert machine_plain.kernel.responses == machine_ddt.kernel.responses
    assert ddt_run.cycles > plain.cycles          # SavePage costs cycles


def test_savepage_freezes_pipeline():
    machine, __, result = run_server(2, requests=8, with_ddt=True)
    assert machine.pipeline.stats.savepage_stalls > 0
