"""vpr-place / vpr-route surrogates: functional validation."""

from repro.funcsim import FuncSim, StepResult
from repro.memory.mainmem import MainMemory
from repro.system import build_machine
from repro.workloads import vpr_place, vpr_route


def run_funcsim(image):
    mem = MainMemory()
    for segment in image.segments:
        mem.store_bytes(segment.base, segment.data)
    sim = FuncSim(mem, entry=image.entry, sp=image.layout.stack_top - 64)
    result = sim.run(max_steps=50_000_000)
    return sim, result


def test_place_reduces_wirelength():
    image, asm = vpr_place.program(cells=32, nets=48, moves=800, seed=4)
    posx, posy, nets = vpr_place.make_netlist(32, 48, seed=4)
    initial_cost = vpr_place.wirelength(posx, posy, nets)
    sim, result = run_funcsim(image)
    assert result is StepResult.HALTED
    final_cost = sim.memory.load_word(asm.symbols["final_cost"])
    accepts = sim.memory.load_word(asm.symbols["accepts"])
    assert accepts > 0
    assert final_cost < initial_cost          # annealing improved placement


def test_place_final_cost_consistent_with_positions():
    image, asm = vpr_place.program(cells=24, nets=36, moves=400, seed=8)
    sim, __ = run_funcsim(image)
    cells = 24
    posx = [sim.memory.load_word(asm.symbols["posx"] + 4 * i)
            for i in range(cells)]
    posy = [sim.memory.load_word(asm.symbols["posy"] + 4 * i)
            for i in range(cells)]
    __, __, nets = vpr_place.make_netlist(24, 36, seed=8)
    expected = vpr_place.wirelength(posx, posy, nets)
    assert sim.memory.load_word(asm.symbols["final_cost"]) == expected


def test_place_pipeline_matches_funcsim():
    image, asm = vpr_place.program(cells=16, nets=24, moves=150, seed=2)
    sim, __ = run_funcsim(image)
    machine = build_machine()
    result = machine.run_program(image, max_cycles=5_000_000)
    assert result.reason == "halt"
    for label in ("final_cost", "accepts"):
        assert (machine.memory.load_word(asm.symbols[label]) ==
                sim.memory.load_word(asm.symbols[label]))
    assert machine.pipeline.stats.instret == sim.instret


def test_route_matches_reference():
    occ, srcs, sinks, stride = vpr_route.make_maze(16, 16, routes=8, seed=6)
    expected_routed, expected_len = vpr_route.reference_route(
        occ, srcs, sinks, stride)
    image, asm = vpr_route.program(16, 16, routes=8, seed=6)
    sim, result = run_funcsim(image)
    assert result is StepResult.HALTED
    assert sim.memory.load_word(asm.symbols["routed"]) == expected_routed
    assert sim.memory.load_word(asm.symbols["total_len"]) == expected_len
    assert expected_routed > 0          # the maze is actually routable


def test_route_pipeline_matches_funcsim():
    image, asm = vpr_route.program(12, 12, routes=4, seed=13)
    sim, __ = run_funcsim(image)
    machine = build_machine()
    result = machine.run_program(image, max_cycles=5_000_000)
    assert result.reason == "halt"
    for label in ("routed", "total_len"):
        assert (machine.memory.load_word(asm.symbols[label]) ==
                sim.memory.load_word(asm.symbols[label]))


def test_paths_block_later_routes():
    # With many routes over a small grid, path marking must eventually
    # affect later nets (occupancy grows).
    occ, srcs, sinks, stride = vpr_route.make_maze(10, 10, routes=20, seed=3)
    routed, __ = vpr_route.reference_route(occ, srcs, sinks, stride)
    assert routed < 20          # some routes blocked by earlier paths
