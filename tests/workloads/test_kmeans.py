"""kMeans workload: assembly output must match the Python oracle."""

from repro.funcsim import FuncSim, StepResult
from repro.memory.mainmem import MainMemory
from repro.program.layout import MemoryLayout
from repro.system import build_machine
from repro.workloads import kmeans


def run_funcsim(image, asm):
    mem = MainMemory()
    for segment in image.segments:
        mem.store_bytes(segment.base, segment.data)
    sim = FuncSim(mem, entry=image.entry, sp=image.layout.stack_top - 64)
    result = sim.run(max_steps=20_000_000)
    return sim, result


def read_words(memory, addr, count):
    return [memory.load_word(addr + 4 * i) for i in range(count)]


def test_small_kmeans_matches_reference_funcsim():
    patterns = kmeans.generate_patterns(count=40, clusters=4, seed=3)
    image, asm = kmeans.program(patterns=patterns, clusters=4, iterations=2)
    sim, result = run_funcsim(image, asm)
    assert result is StepResult.HALTED
    expected_assign, expected_centroids = kmeans.reference_kmeans(
        patterns, clusters=4, iterations=2)
    assign = read_words(sim.memory, asm.symbols["assign"], len(patterns))
    assert assign == expected_assign
    centroids = read_words(sim.memory, asm.symbols["centroids"], 8)
    flat_expected = [v for c in expected_centroids for v in c]
    assert centroids == flat_expected


def test_paper_configuration_runs():
    """The paper's setup: 3 iterations, 200 patterns, 16 clusters."""
    image, asm = kmeans.program()
    sim, result = run_funcsim(image, asm)
    assert result is StepResult.HALTED
    expected_assign, __ = kmeans.reference_kmeans(
        kmeans.generate_patterns())
    assign = read_words(sim.memory, asm.symbols["assign"], 200)
    assert assign == expected_assign


def test_kmeans_pipeline_matches_funcsim():
    patterns = kmeans.generate_patterns(count=24, clusters=4, seed=9)
    image, asm = kmeans.program(patterns=patterns, clusters=4, iterations=1)
    sim, __ = run_funcsim(image, asm)
    machine = build_machine()
    result = machine.run_program(image, max_cycles=5_000_000)
    assert result.reason == "halt"
    for label in ("assign", "centroids"):
        count = 24 if label == "assign" else 8
        assert (read_words(machine.memory, asm.symbols[label], count) ==
                read_words(sim.memory, asm.symbols[label], count))
    assert machine.pipeline.stats.instret == sim.instret


def test_clusters_are_meaningful():
    # Patterns drawn around k centres should mostly co-cluster.
    patterns = kmeans.generate_patterns(count=80, clusters=4, seed=5)
    assignments, __ = kmeans.reference_kmeans(patterns, clusters=4,
                                              iterations=3)
    assert len(set(assignments)) > 1          # not degenerate
