"""asmlib: NOP insertion (the cache-overhead methodology) and constants."""

from repro.isa.assembler import assemble
from repro.workloads.asmlib import (
    build_workload_image,
    insert_nops_before_control,
    std_constants,
)

import sys
sys.path.insert(0, "tests")
from helpers import run_func, run_pipeline          # noqa: E402


SOURCE = """
    main:
        li $t0, 0
        li $t1, 10
    loop:
        add $t0, $t0, $t1
        addi $t1, $t1, -1
        bnez $t1, loop
        beq $t0, $zero, never
        j done
    never:
        li $t0, 999
    done:
        halt
"""


def test_nop_inserted_before_each_control_instruction():
    rewritten = insert_nops_before_control(SOURCE)
    # bnez, beq, j -> three NOPs.
    assert rewritten.count("    nop") == 3
    lines = [line.strip() for line in rewritten.splitlines() if line.strip()]
    for index, line in enumerate(lines):
        if line.split()[0] in ("bnez", "beq", "j"):
            assert lines[index - 1] == "nop", line


def test_nop_insertion_preserves_semantics():
    original, __, __ = run_func(SOURCE)
    rewritten, __, result = run_func(insert_nops_before_control(SOURCE))
    assert result.value == "halted"
    assert rewritten.regs[8] == original.regs[8] == 55


def test_nop_insertion_with_label_prefix():
    source = "main: li $t0, 1\nend: j end2\nend2: halt\n"
    rewritten = insert_nops_before_control(source)
    asm = assemble(rewritten)
    # The label binds to the NOP; NOP + j = 8 bytes before end2.
    assert asm.symbols["end"] + 8 == asm.symbols["end2"]
    __, __, result = run_func(rewritten)
    assert result.value == "halted"


def test_nop_insertion_grows_instruction_count():
    plain = assemble(SOURCE)
    padded = assemble(insert_nops_before_control(SOURCE))
    assert len(padded.text) == len(plain.text) + 3 * 4


def test_std_constants_cover_syscalls_and_modules():
    constants = std_constants()
    assert constants["SYS_EXIT"] == 1
    assert constants["ICM"] == 1
    assert constants["OP_MLR_PI_RAND"] == 2
    assert constants["HDR_BASE"] == 0x0FFF0000


def test_build_workload_image_runs():
    image, asm = build_workload_image("main: li $v0, SYS_GETTID\n halt\n")
    assert image.entry == asm.entry
    assert image.segment(".text").perms == "rx"
