"""A minimal synchronous test module used by engine/self-check tests."""

from repro.rse.module import ModuleMode, RSEModule

TEST_MODULE_ID = 7


class ProbeModule(RSEModule):
    """Synchronous module completing after a fixed delay, for gate tests."""

    MODULE_ID = TEST_MODULE_ID
    MODE = ModuleMode.SYNC

    def __init__(self, delay=3, error=False):
        super().__init__("Probe")
        self.delay = delay
        self.error = error
        self.seen = []
        self._due = []

    def on_check(self, uop, entry, cycle):
        self.seen.append((uop.instr.op, uop.instr.param, entry.payload))
        self._due.append((cycle + self.delay, entry))

    def step(self, cycle):
        still_due = []
        for due, entry in self._due:
            if cycle >= due:
                self.finish_check(entry, self.error, cycle)
            else:
                still_due.append((due, entry))
        self._due = still_due
