"""Cache model: hits, misses, LRU, writebacks, stats."""

import pytest

from repro.memory.cache import Cache


def test_cold_miss_then_hit():
    cache = Cache("t", 1024, 1, 32)
    hit, wb = cache.access(0x100)
    assert not hit and wb is None
    hit, wb = cache.access(0x104)          # same 32-byte block
    assert hit
    assert cache.stats.accesses == 2
    assert cache.stats.misses == 1


def test_direct_mapped_conflict():
    cache = Cache("t", 1024, 1, 32)          # 32 sets
    cache.access(0x0)
    cache.access(0x0 + 1024)          # same set, different tag -> evict
    hit, __ = cache.access(0x0)
    assert not hit          # first block was evicted


def test_lru_in_two_way_set():
    cache = Cache("t", 2048, 2, 32)          # 32 sets, 2-way
    set_stride = 32 * 32          # same set every stride
    a, b, c = 0, set_stride, 2 * set_stride
    cache.access(a)
    cache.access(b)
    cache.access(a)              # a is now MRU
    cache.access(c)              # evicts b (LRU)
    assert cache.probe(a)
    assert not cache.probe(b)
    assert cache.probe(c)


def test_dirty_writeback_address():
    cache = Cache("t", 64, 1, 32)          # 2 sets
    cache.access(0x0, is_write=True)
    __, wb = cache.access(0x0 + 64)          # conflicting block
    assert wb == 0x0
    assert cache.stats.writebacks == 1


def test_clean_eviction_no_writeback():
    cache = Cache("t", 64, 1, 32)
    cache.access(0x0, is_write=False)
    __, wb = cache.access(0x0 + 64)
    assert wb is None


def test_write_hit_marks_dirty():
    cache = Cache("t", 64, 1, 32)
    cache.access(0x0)                     # clean fill
    cache.access(0x4, is_write=True)      # write hit dirties the block
    __, wb = cache.access(0x0 + 64)
    assert wb == 0x0


def test_flush_reports_dirty_lines():
    cache = Cache("t", 1024, 1, 32)
    cache.access(0x0, is_write=True)
    cache.access(0x40, is_write=False)
    assert cache.flush() == 1
    assert not cache.probe(0x0)


def test_miss_rate():
    cache = Cache("t", 1024, 1, 32)
    cache.access(0x0)
    cache.access(0x0)
    cache.access(0x0)
    cache.access(0x0)
    assert cache.stats.miss_rate == pytest.approx(0.25)


def test_geometry_validation():
    with pytest.raises(ValueError):
        Cache("t", 1000, 1, 32)          # not divisible
    with pytest.raises(ValueError):
        Cache("t", 96, 1, 32)          # 3 sets: not a power of two


def test_block_addr():
    cache = Cache("t", 1024, 1, 32)
    assert cache.block_addr(0x12345) == 0x12340
