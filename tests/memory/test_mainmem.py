"""Main memory: scalar and bulk access, paging, faults."""

import pytest

from repro.memory.mainmem import PAGE_SIZE, MainMemory, MemoryFault


def test_fresh_memory_reads_zero():
    mem = MainMemory()
    assert mem.load_word(0x1000) == 0
    assert mem.load_byte(0xDEADBEEF) == 0


def test_word_roundtrip():
    mem = MainMemory()
    mem.store_word(0x2000, 0xCAFEBABE)
    assert mem.load_word(0x2000) == 0xCAFEBABE


def test_little_endian_layout():
    mem = MainMemory()
    mem.store_word(0x100, 0x11223344)
    assert mem.load_byte(0x100) == 0x44
    assert mem.load_byte(0x103) == 0x11
    assert mem.load_half(0x100) == 0x3344


def test_unaligned_word_faults():
    mem = MainMemory()
    with pytest.raises(MemoryFault):
        mem.load_word(0x1001)
    with pytest.raises(MemoryFault):
        mem.store_word(0x1002, 1)
    with pytest.raises(MemoryFault):
        mem.load_half(0x1001)


def test_bulk_crosses_page_boundary():
    mem = MainMemory()
    base = PAGE_SIZE - 3
    payload = bytes(range(10))
    mem.store_bytes(base, payload)
    assert mem.load_bytes(base, 10) == payload


def test_snapshot_and_restore_page():
    mem = MainMemory()
    mem.store_word(0x5000, 123)
    snap = mem.snapshot_page(0x5000 >> 12)
    mem.store_word(0x5000, 456)
    mem.restore_page(0x5000 >> 12, snap)
    assert mem.load_word(0x5000) == 123


def test_restore_rejects_bad_size():
    mem = MainMemory()
    with pytest.raises(ValueError):
        mem.restore_page(1, b"short")


def test_cstring():
    mem = MainMemory()
    mem.store_bytes(0x300, b"hello\x00junk")
    assert mem.load_cstring(0x300) == "hello"


def test_word_store_masks_to_32_bits():
    mem = MainMemory()
    mem.store_word(0x400, 0x1_FFFF_FFFF)
    assert mem.load_word(0x400) == 0xFFFFFFFF


def test_write_versions_bump_on_every_store_kind():
    mem = MainMemory()
    page = 0x2000 >> 12
    assert mem.write_versions.get(page, 0) == 0
    mem.store_word(0x2000, 1)
    assert mem.write_versions[page] == 1
    mem.store_half(0x2004, 2)
    mem.store_byte(0x2006, 3)
    assert mem.write_versions[page] == 3
    snap = mem.snapshot_page(page)
    mem.restore_page(page, snap)
    assert mem.write_versions[page] == 4


def test_write_versions_are_per_page_and_loads_do_not_bump():
    mem = MainMemory()
    mem.store_word(0x2000, 1)
    before = dict(mem.write_versions)
    mem.load_word(0x2000)
    mem.load_byte(0x9000)          # different (never-written) page
    mem.load_cstring(0x2000)
    assert mem.write_versions == before
    assert (0x9000 >> 12) not in mem.write_versions


def test_store_bytes_bumps_every_touched_page():
    mem = MainMemory()
    base = PAGE_SIZE - 2
    mem.store_bytes(base, bytes(6))          # straddles two pages
    assert mem.write_versions[base >> 12] >= 1
    assert mem.write_versions[(base + 5) >> 12] >= 1


def test_cstring_crosses_page_boundary():
    mem = MainMemory()
    base = PAGE_SIZE - 3
    mem.store_bytes(base, b"crossing\x00")
    assert mem.load_cstring(base) == "crossing"


def test_cstring_respects_limit_without_nul():
    mem = MainMemory()
    mem.store_bytes(0x700, b"A" * 64)
    assert mem.load_cstring(0x700, limit=16) == "A" * 16
