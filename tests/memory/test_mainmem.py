"""Main memory: scalar and bulk access, paging, faults."""

import pytest

from repro.memory.mainmem import PAGE_SIZE, MainMemory, MemoryFault


def test_fresh_memory_reads_zero():
    mem = MainMemory()
    assert mem.load_word(0x1000) == 0
    assert mem.load_byte(0xDEADBEEF) == 0


def test_word_roundtrip():
    mem = MainMemory()
    mem.store_word(0x2000, 0xCAFEBABE)
    assert mem.load_word(0x2000) == 0xCAFEBABE


def test_little_endian_layout():
    mem = MainMemory()
    mem.store_word(0x100, 0x11223344)
    assert mem.load_byte(0x100) == 0x44
    assert mem.load_byte(0x103) == 0x11
    assert mem.load_half(0x100) == 0x3344


def test_unaligned_word_faults():
    mem = MainMemory()
    with pytest.raises(MemoryFault):
        mem.load_word(0x1001)
    with pytest.raises(MemoryFault):
        mem.store_word(0x1002, 1)
    with pytest.raises(MemoryFault):
        mem.load_half(0x1001)


def test_bulk_crosses_page_boundary():
    mem = MainMemory()
    base = PAGE_SIZE - 3
    payload = bytes(range(10))
    mem.store_bytes(base, payload)
    assert mem.load_bytes(base, 10) == payload


def test_snapshot_and_restore_page():
    mem = MainMemory()
    mem.store_word(0x5000, 123)
    snap = mem.snapshot_page(0x5000 >> 12)
    mem.store_word(0x5000, 456)
    mem.restore_page(0x5000 >> 12, snap)
    assert mem.load_word(0x5000) == 123


def test_restore_rejects_bad_size():
    mem = MainMemory()
    with pytest.raises(ValueError):
        mem.restore_page(1, b"short")


def test_cstring():
    mem = MainMemory()
    mem.store_bytes(0x300, b"hello\x00junk")
    assert mem.load_cstring(0x300) == "hello"


def test_word_store_masks_to_32_bits():
    mem = MainMemory()
    mem.store_word(0x400, 0x1_FFFF_FFFF)
    assert mem.load_word(0x400) == 0xFFFFFFFF


def test_write_versions_bump_on_every_store_kind():
    mem = MainMemory()
    page = 0x2000 >> 12
    assert mem.write_versions.get(page, 0) == 0
    mem.store_word(0x2000, 1)
    assert mem.write_versions[page] == 1
    mem.store_half(0x2004, 2)
    mem.store_byte(0x2006, 3)
    assert mem.write_versions[page] == 3
    snap = mem.snapshot_page(page)
    mem.restore_page(page, snap)
    assert mem.write_versions[page] == 4


def test_write_versions_are_per_page_and_loads_do_not_bump():
    mem = MainMemory()
    mem.store_word(0x2000, 1)
    before = dict(mem.write_versions)
    mem.load_word(0x2000)
    mem.load_byte(0x9000)          # different (never-written) page
    mem.load_cstring(0x2000)
    assert mem.write_versions == before
    assert (0x9000 >> 12) not in mem.write_versions


def test_store_bytes_bumps_every_touched_page():
    mem = MainMemory()
    base = PAGE_SIZE - 2
    mem.store_bytes(base, bytes(6))          # straddles two pages
    assert mem.write_versions[base >> 12] >= 1
    assert mem.write_versions[(base + 5) >> 12] >= 1


def test_cstring_crosses_page_boundary():
    mem = MainMemory()
    base = PAGE_SIZE - 3
    mem.store_bytes(base, b"crossing\x00")
    assert mem.load_cstring(base) == "crossing"


def test_cstring_respects_limit_without_nul():
    mem = MainMemory()
    mem.store_bytes(0x700, b"A" * 64)
    assert mem.load_cstring(0x700, limit=16) == "A" * 16


def test_snapshot_page_does_not_materialise_untouched_pages():
    """Regression: snapshotting a never-written page must not allocate it."""
    mem = MainMemory()
    mem.store_word(0x1000, 7)
    before = mem.page_numbers()
    snap = mem.snapshot_page(0x9000 >> 12)
    assert snap == bytes(PAGE_SIZE)
    assert mem.page_numbers() == before
    assert (0x9000 >> 12) not in mem.write_versions


def test_capture_state_round_trip():
    mem = MainMemory()
    mem.store_word(0x1000, 0xAAAA)
    mem.store_word(0x5000, 0xBBBB)
    pages, versions = mem.capture_state()
    mem.store_word(0x1000, 1)            # dirty a captured page
    mem.store_word(0x9000, 2)            # materialise a new page
    mem.restore_state(pages, versions)
    assert (0x9000 >> 12) not in mem.page_numbers()   # dropped by restore
    assert mem.load_word(0x1000) == 0xAAAA
    assert mem.load_word(0x5000) == 0xBBBB
    assert mem.load_word(0x9000) == 0


def test_restore_state_bumps_versions_only_for_changed_pages():
    mem = MainMemory()
    mem.store_word(0x1000, 1)
    mem.store_word(0x2000, 2)
    pages, versions = mem.capture_state()
    untouched_before = mem.write_versions[0x2000 >> 12]
    mem.store_word(0x1000, 3)
    dirtied_before = mem.write_versions[0x1000 >> 12]
    mem.restore_state(pages, versions)
    # The rewound page gets a fresh, strictly larger version; the page
    # that never diverged keeps both its bytes and its version.
    assert mem.write_versions[0x1000 >> 12] > dirtied_before
    assert mem.write_versions[0x2000 >> 12] == untouched_before
