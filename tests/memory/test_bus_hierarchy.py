"""Bus timing (the 18/2 vs 19/3 configurations) and the cache hierarchy."""

import pytest

from repro.memory.bus import (
    BASELINE_TIMING,
    FRAMEWORK_TIMING,
    BusTiming,
    MemoryBus,
)
from repro.memory.hierarchy import (
    L1_HIT_LATENCY,
    L2_HIT_LATENCY,
    MemoryHierarchy,
)


def test_paper_timings():
    # Section 5.2: a 32-byte block is 4 chunks on the 8-byte bus.
    assert BASELINE_TIMING.transfer_latency(32) == 18 + 3 * 2
    assert FRAMEWORK_TIMING.transfer_latency(32) == 19 + 3 * 3


def test_transfer_latency_rounds_up_chunks():
    timing = BusTiming(10, 2, bus_width=8)
    assert timing.transfer_latency(1) == 10
    assert timing.transfer_latency(8) == 10
    assert timing.transfer_latency(9) == 12
    assert timing.transfer_latency(0) == 0


def test_bus_serialises_transfers():
    bus = MemoryBus(BusTiming(10, 2))
    done1 = bus.cpu_transfer(0, 8)
    assert done1 == 10
    done2 = bus.cpu_transfer(5, 8)          # must wait for the first
    assert done2 == 20


def test_mau_waits_for_cpu():
    bus = MemoryBus(BusTiming(10, 2))
    bus.cpu_transfer(0, 8)
    done = bus.mau_transfer(0, 8)
    assert done == 20
    assert bus.mau_wait_cycles == 10


def test_cpu_after_mau_also_waits():
    # Priority is arbitration order (CPU first in a cycle), not preemption.
    bus = MemoryBus(BusTiming(10, 2))
    bus.mau_transfer(0, 8)
    assert bus.cpu_transfer(0, 8) == 20


def test_hierarchy_l1_hit_latency():
    hier = MemoryHierarchy(BASELINE_TIMING)
    hier.ifetch(0, 0x1000)          # warm
    done = hier.ifetch(100, 0x1000)
    assert done == 100 + L1_HIT_LATENCY


def test_hierarchy_l2_hit_latency():
    hier = MemoryHierarchy(BASELINE_TIMING)
    hier.ifetch(0, 0x1000)            # fills il1 + il2
    # Evict from il1 (8KB direct-mapped): same set, different tag.
    hier.ifetch(50, 0x1000 + 8 * 1024)
    done = hier.ifetch(100, 0x1000)   # il1 miss, il2 hit
    assert done == 100 + L1_HIT_LATENCY + L2_HIT_LATENCY


def test_hierarchy_memory_latency():
    hier = MemoryHierarchy(BASELINE_TIMING)
    done = hier.ifetch(0, 0x1000)          # cold: misses both levels
    expected = L1_HIT_LATENCY + L2_HIT_LATENCY + BASELINE_TIMING.transfer_latency(32)
    assert done == expected


def test_framework_timing_is_slower():
    base = MemoryHierarchy(BASELINE_TIMING)
    framework = MemoryHierarchy(FRAMEWORK_TIMING)
    assert framework.ifetch(0, 0x1000) > base.ifetch(0, 0x1000)


def test_store_miss_allocates_dirty():
    hier = MemoryHierarchy(BASELINE_TIMING)
    hier.dstore(0, 0x2000)
    assert hier.dl1.probe(0x2000)
    # Conflict eviction should produce a writeback in the stats.
    hier.dstore(0, 0x2000 + 8 * 1024)
    assert hier.dl1.stats.writebacks == 1


def test_mau_access_bypasses_caches():
    hier = MemoryHierarchy(BASELINE_TIMING)
    hier.mau_access(0, 32)
    assert hier.il1.stats.accesses == 0
    assert hier.dl1.stats.accesses == 0
    assert hier.bus.mau_transfers == 1


def test_stats_shape():
    hier = MemoryHierarchy(BASELINE_TIMING)
    hier.ifetch(0, 0)
    stats = hier.snapshot()
    assert stats["il1"]["accesses"] == 1
    assert "miss_rate" in stats["il1"]
    hier.reset_stats()
    assert hier.snapshot()["il1"]["accesses"] == 0
