"""The shipped examples must run clean (they assert their own claims)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "examples")

EXAMPLES = [
    "quickstart.py",
    "mlr_defense.py",
    "ddt_recovery.py",
    "fault_campaign.py",
    "ahbm_liveness.py",
    "selfcheck_demo.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    completed = subprocess.run([sys.executable, path],
                               capture_output=True, text=True, timeout=600)
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert completed.stdout.strip()          # it narrated something
