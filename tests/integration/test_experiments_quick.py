"""Quick-mode smoke of every experiment harness (full runs live in
``benchmarks/``)."""

from repro.analysis.stats import overhead_pct
from repro.experiments import ablations, fig9, table4, table5


def test_table4_quick():
    results = table4.run_table4(quick=True)
    assert set(results) == {"vpr-place", "vpr-route", "kmeans"}
    for configs in results.values():
        base = configs["baseline"].cycles
        assert configs["framework"].cycles > base
        assert configs["framework+icm"].cycles > configs["framework"].cycles
        assert (configs["with-checks"].cache("il1", "accesses") >
                configs["baseline"].cache("il1", "accesses"))
    text = table4.format_table4(results)
    assert "vpr-place" in text
    fw_avg, icm_avg = table4.average_overheads(results)
    assert 0 < fw_avg < icm_avg


def test_table5_quick():
    results = table5.run_table5(quick=True)
    for entries, (trr, rse) in results.items():
        assert rse.cycles < trr.cycles, entries
    sizes = sorted(results)
    rse_instr = {results[s][1].instret for s in sizes}
    assert len(rse_instr) == 1          # constant instruction count
    assert "Table 5" in table5.format_table5(results)


def test_pi_rand_penalty_is_fixed():
    first = table5.measure_pi_rand_penalty()
    second = table5.measure_pi_rand_penalty()
    assert first == second          # a fixed penalty, as the paper says
    assert 20 <= first <= 200


def test_fig9_quick():
    results = fig9.run_fig9(quick=True)
    threads = sorted(results)
    plain = [results[t][0].cycles for t in threads]
    assert plain[-1] < plain[0]          # threads help
    ddt = [results[t][1] for t in threads]
    assert ddt[-1].saved_pages > ddt[0].saved_pages
    for t in threads:
        assert overhead_pct(results[t][0].cycles,
                            results[t][1].cycles) >= 0
    assert "Figure 9" in fig9.format_fig9(results)


def test_arbiter_ablation_quick():
    results = ablations.run_arbiter_placement(quick=True)
    assert results["memory_path"] > results["baseline"]
    assert results["l1_path"] > results["memory_path"]


def test_icm_cache_ablation_quick():
    results = ablations.run_icm_cache_sweep(sizes=(16, 256), quick=True)
    assert results[256]["hit_rate"] >= results[16]["hit_rate"]


def test_icm_checking_is_architecturally_transparent():
    """CHECK insertion must never change program results — only timing."""
    from repro.workloads import kmeans

    source = kmeans.source(pattern_count=30, clusters=4, iterations=1)
    baseline = table4.run_baseline(source)
    checked = table4.run_framework_icm(source)
    # Same retired instruction stream (CHECKs are counted separately).
    assert checked.instret == baseline.instret
    assert checked.pipeline_stats["committed_checks"] > 0

    # And byte-identical results: compare the assignment array.
    from repro.program.layout import MemoryLayout
    from repro.system import build_machine
    from repro.workloads.asmlib import build_workload_image

    outputs = []
    for with_icm in (False, True):
        machine = build_machine(
            with_rse=with_icm, modules=("icm",) if with_icm else ())
        image, asm = build_workload_image(source, MemoryLayout())
        machine.kernel.load_process(image)
        if with_icm:
            from repro.rse.check import MODULE_ICM
            from repro.rse.modules.icm import build_checker_memory, \
                make_icm_injector

            icm = machine.module(MODULE_ICM)
            text = image.segment(".text")
            checker_map = build_checker_memory(machine.memory, text.base,
                                               len(text.data))
            icm.configure(checker_map)
            machine.rse.enable_module(MODULE_ICM)
            machine.pipeline.check_injector = make_icm_injector(checker_map)
        result = machine.kernel.run(max_cycles=40_000_000)
        assert result.reason == "halt"
        outputs.append(machine.memory.load_bytes(asm.symbols["assign"],
                                                 30 * 4))
    assert outputs[0] == outputs[1]
