"""CLI smoke tests (in-process via cli.main for speed)."""

import json

import pytest

from repro.cli import main

LOOP_SOURCE = """
    main:
        li $t0, 5
    loop:
        addi $t0, $t0, -1
        bnez $t0, loop
        halt
"""


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "2560 flip-flops" in out and "12800 gates" in out


def test_run_program(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
        main:
            li $v0, SYS_PRINT_INT
            li $a0, 99
            syscall
            halt
    """)
    assert main(["run", str(source)]) == 0
    out = capsys.readouterr().out
    assert "run ended: halt" in out
    assert "guest output: 99" in out


def test_run_functional(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("main: li $t0, 1\n halt\n")
    assert main(["run", "--func", str(source)]) == 0
    out = capsys.readouterr().out
    assert "functional run (predecode): halted" in out


@pytest.mark.parametrize("engine", ["interp", "predecode", "jit"])
def test_run_engine_selector(tmp_path, capsys, engine):
    source = tmp_path / "prog.s"
    source.write_text(LOOP_SOURCE)
    assert main(["run", "--engine", engine, str(source)]) == 0
    out = capsys.readouterr().out
    assert "functional run (%s): halted" % engine in out
    if engine == "jit":
        assert "trace JIT:" in out


def test_run_engine_jit_json_reports_trace_cache(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
        main:
            li $t0, 0
            li $t1, 50
        loop:
            addi $t0, $t0, 1
            bne $t0, $t1, loop
            halt
    """)
    assert main(["run", "--engine", "jit", "--json", str(source)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["engine"] == "jit"
    assert payload["trace_cache"]["compiled"] >= 1


def test_run_no_jit_disables_traces(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text(LOOP_SOURCE)
    assert main(["run", "--engine", "jit", "--no-jit", "--json",
                 str(source)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "trace_cache" not in payload


def test_run_pipeline_no_jit_matches_batch(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text(LOOP_SOURCE)
    assert main(["run", "--json", str(source)]) == 0
    batched = json.loads(capsys.readouterr().out)
    assert main(["run", "--no-jit", "--json", str(source)]) == 0
    stepped = json.loads(capsys.readouterr().out)
    assert stepped["batch"] is False and batched["batch"] is True
    assert stepped["cycles"] == batched["cycles"]
    assert stepped["snapshot"] == batched["snapshot"]


def test_run_with_icm(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
        main:
            li $t0, 5
        loop:
            addi $t0, $t0, -1
            bnez $t0, loop
            halt
    """)
    assert main(["run", "--icm", str(source)]) == 0
    out = capsys.readouterr().out
    assert "ICM:" in out and "0 mismatches" in out


def test_run_faulting_program_exit_code(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("main: li $t0, 1\n div $t1, $t0, $zero\n halt\n")
    assert main(["run", str(source)]) == 1
    assert "fault" in capsys.readouterr().out


def test_attack_commands(capsys):
    assert main(["attack", "stack", "--defense", "none"]) == 0
    assert "hijacked" in capsys.readouterr().out
    assert main(["attack", "got", "--defense", "mlr"]) == 0
    assert "foiled" in capsys.readouterr().out


def test_attack_rejects_bad_combo(capsys):
    assert main(["attack", "got", "--defense", "trr"]) == 2


def test_experiment_quick_table5(capsys):
    assert main(["experiment", "table5", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table 5" in out and "penalty" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_disasm(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("main: li $t0, 1\n loop: j loop\n halt\n")
    assert main(["disasm", str(source)]) == 0
    out = capsys.readouterr().out
    assert "main:" in out and "<loop>" in out


def test_trace(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("main: li $t0, 7\n halt\n")
    assert main(["trace", str(source)]) == 0
    out = capsys.readouterr().out
    assert "$t0=0x00000007" in out
    assert "halt" in out


def test_report_collects_results(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    (results / "a.txt").write_text("Table A\n1 2 3\n")
    (results / "b.txt").write_text("Table B\n4 5 6\n")
    out_file = tmp_path / "report.md"
    assert main(["report", "--results-dir", str(results),
                 "--output", str(out_file)]) == 0
    report = out_file.read_text()
    assert "Table A" in report and "Table B" in report


def test_report_empty_dir(tmp_path, capsys):
    assert main(["report", "--results-dir", str(tmp_path)]) == 1


# ------------------------------------------------------ unified telemetry


def test_run_stats_json_then_stats(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text(LOOP_SOURCE)
    stats_file = tmp_path / "snap.json"
    assert main(["run", str(source), "--stats-json", str(stats_file)]) == 0
    capsys.readouterr()

    doc = json.loads(stats_file.read_text())
    assert doc["schema"] == "repro.obs/1"
    assert doc["pipeline"]["instret"] > 0

    assert main(["stats", str(stats_file)]) == 0
    out = capsys.readouterr().out
    assert "pipeline.instret" in out
    assert "memory.il1.accesses" in out


def test_stats_json_round_trip(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text(LOOP_SOURCE)
    stats_file = tmp_path / "snap.json"
    assert main(["run", str(source), "--stats-json", str(stats_file)]) == 0
    capsys.readouterr()
    assert main(["stats", str(stats_file), "--json"]) == 0
    reread = json.loads(capsys.readouterr().out)
    assert reread == json.loads(stats_file.read_text())


def test_stats_diff(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text(LOOP_SOURCE)
    bare, icm = tmp_path / "bare.json", tmp_path / "icm.json"
    assert main(["run", str(source), "--stats-json", str(bare)]) == 0
    assert main(["run", "--icm", str(source), "--stats-json", str(icm)]) == 0
    capsys.readouterr()
    assert main(["stats", str(bare), "--diff", str(icm)]) == 0
    out = capsys.readouterr().out
    assert "pipeline.cycles" in out       # ICM run takes more cycles


def test_run_json_carries_snapshot(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text(LOOP_SOURCE)
    assert main(["run", "--json", str(source)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["mode"] == "machine"
    assert doc["reason"] == "halt"
    assert doc["snapshot"]["schema"] == "repro.obs/1"


def test_run_functional_rejects_stats_json(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("main: li $t0, 1\n halt\n")
    assert main(["run", "--func", str(source),
                 "--stats-json", str(tmp_path / "x.json")]) == 2


def test_info_json(capsys):
    assert main(["info", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert "pipeline_config" in doc and "mlr_hardware_cost" in doc


def test_campaign_store_round_trips_through_stats(tmp_path, capsys):
    store = tmp_path / "campaign.jsonl"
    assert main(["campaign", "--injections", "4", "--max-cycles", "20000",
                 "--store", str(store), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["runs"] == 4
    assert summary["detection"]["detected"] == 4

    assert main(["stats", str(store)]) == 0
    assert "campaign" in capsys.readouterr().out.lower()

    assert main(["stats", str(store), "--json"]) == 0
    reread = json.loads(capsys.readouterr().out)
    assert reread["runs"] == 4
    assert reread["outcomes"] == summary["outcomes"]
    assert reread["spec"]["injections"] == 4


def test_campaign_run_subcommand_and_bare_spelling_agree(tmp_path, capsys):
    """``repro campaign <flags>`` still means ``campaign run <flags>``."""
    args = ["--model", "reg-flip", "--injections", "4",
            "--max-cycles", "20000", "--json"]
    assert main(["campaign"] + args) == 0
    bare = json.loads(capsys.readouterr().out)
    assert main(["campaign", "run"] + args) == 0
    explicit = json.loads(capsys.readouterr().out)
    assert bare == explicit
    assert explicit["options"]["workers"] == 1


def test_campaign_sharded_run_and_serve(tmp_path, capsys):
    store = tmp_path / "camp.jsonl"
    assert main(["campaign", "run", "--model", "reg-flip",
                 "--injections", "6", "--max-cycles", "20000",
                 "--shards", "2", "--store", str(store), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["runs"] == 6
    assert summary["options"]["shards"] == 2

    out_path = tmp_path / "final.json"
    assert main(["campaign", "serve", str(store), "--json",
                 "--out", str(out_path)]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["schema"] == "repro.campaign.aggregate/1"
    assert snapshot["done"] == 6
    assert snapshot["complete"] is True
    assert "ci" in snapshot["matrix"]["detection"]
    assert json.loads(out_path.read_text()) == snapshot

    # Text mode prints the final campaign report once complete.
    assert main(["campaign", "serve", str(store)]) == 0
    out = capsys.readouterr().out
    assert "detection rate:" in out


def test_campaign_serve_watch_completes(tmp_path, capsys):
    store = tmp_path / "camp.jsonl"
    assert main(["campaign", "run", "--model", "reg-flip",
                 "--injections", "4", "--max-cycles", "20000",
                 "--store", str(store), "--json"]) == 0
    capsys.readouterr()
    # The stores are already complete, so --watch returns immediately.
    assert main(["campaign", "serve", str(store), "--watch",
                 "--interval", "0.1", "--timeout", "10", "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["complete"] is True


def test_campaign_serve_incomplete_exits_nonzero(tmp_path, capsys):
    store = tmp_path / "camp.jsonl"
    assert main(["campaign", "run", "--model", "reg-flip",
                 "--injections", "4", "--max-cycles", "20000",
                 "--store", str(store), "--json"]) == 0
    capsys.readouterr()
    assert main(["campaign", "serve", str(store),
                 "--expect", "9"]) == 1
    assert "incomplete" in capsys.readouterr().out


def test_stats_rejects_unrecognised_file(tmp_path):
    bogus = tmp_path / "bogus.txt"
    bogus.write_text("not json at all\n")
    with pytest.raises(SystemExit):
        main(["stats", str(bogus)])
