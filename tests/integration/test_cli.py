"""CLI smoke tests (in-process via cli.main for speed)."""

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "2560 flip-flops" in out and "12800 gates" in out


def test_run_program(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
        main:
            li $v0, SYS_PRINT_INT
            li $a0, 99
            syscall
            halt
    """)
    assert main(["run", str(source)]) == 0
    out = capsys.readouterr().out
    assert "run ended: halt" in out
    assert "guest output: 99" in out


def test_run_functional(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("main: li $t0, 1\n halt\n")
    assert main(["run", "--func", str(source)]) == 0
    out = capsys.readouterr().out
    assert "functional run: halted" in out


def test_run_with_icm(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
        main:
            li $t0, 5
        loop:
            addi $t0, $t0, -1
            bnez $t0, loop
            halt
    """)
    assert main(["run", "--icm", str(source)]) == 0
    out = capsys.readouterr().out
    assert "ICM:" in out and "0 mismatches" in out


def test_run_faulting_program_exit_code(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("main: li $t0, 1\n div $t1, $t0, $zero\n halt\n")
    assert main(["run", str(source)]) == 1
    assert "fault" in capsys.readouterr().out


def test_attack_commands(capsys):
    assert main(["attack", "stack", "--defense", "none"]) == 0
    assert "hijacked" in capsys.readouterr().out
    assert main(["attack", "got", "--defense", "mlr"]) == 0
    assert "foiled" in capsys.readouterr().out


def test_attack_rejects_bad_combo(capsys):
    assert main(["attack", "got", "--defense", "trr"]) == 2


def test_experiment_quick_table5(capsys):
    assert main(["experiment", "table5", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table 5" in out and "penalty" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_disasm(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("main: li $t0, 1\n loop: j loop\n halt\n")
    assert main(["disasm", str(source)]) == 0
    out = capsys.readouterr().out
    assert "main:" in out and "<loop>" in out


def test_trace(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("main: li $t0, 7\n halt\n")
    assert main(["trace", str(source)]) == 0
    out = capsys.readouterr().out
    assert "$t0=0x00000007" in out
    assert "halt" in out


def test_report_collects_results(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    (results / "a.txt").write_text("Table A\n1 2 3\n")
    (results / "b.txt").write_text("Table B\n4 5 6\n")
    out_file = tmp_path / "report.md"
    assert main(["report", "--results-dir", str(results),
                 "--output", str(out_file)]) == 0
    report = out_file.read_text()
    assert "Table A" in report and "Table B" in report


def test_report_empty_dir(tmp_path, capsys):
    assert main(["report", "--results-dir", str(tmp_path)]) == 1
