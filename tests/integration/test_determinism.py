"""Simulation determinism: identical inputs, identical cycle counts.

Everything in the reproduction is seeded and nothing consults wall-clock
time, so two runs of the same configuration must agree bit-for-bit —
cycle counts, cache statistics, saved pages, even the MLR's
"random" layout (its entropy is the deterministic cycle counter).
"""

from repro.program.layout import MLR_RESULT_SHLIB
from repro.system import build_machine
from repro.workloads import gotplt, kmeans, server


def run_kmeans():
    image, __ = kmeans.program(pattern_count=60, clusters=8, iterations=1)
    machine = build_machine()
    machine.run_program(image)
    return machine


def test_pipeline_runs_are_reproducible():
    one = run_kmeans()
    two = run_kmeans()
    assert one.pipeline.stats.snapshot() == two.pipeline.stats.snapshot()
    assert one.hierarchy.snapshot() == two.hierarchy.snapshot()


def test_threaded_runs_are_reproducible():
    def run():
        machine = build_machine(with_rse=True, modules=("ddt",))
        machine.rse.enable_module(3)
        image, __ = server.program(3, work_iters=50)
        machine.kernel.set_request_source(8)
        machine.kernel.load_process(image)
        result = machine.kernel.run(max_cycles=20_000_000)
        return (result.cycles, machine.kernel.checkpoints.saves_total,
                dict(machine.kernel.responses))

    assert run() == run()


def test_mlr_entropy_is_deterministic_per_run():
    def run():
        machine = build_machine(with_rse=True, modules=("mlr",))
        image, __ = gotplt.pi_rand_program()
        machine.run_program(image)
        return machine.memory.load_word(
            image.layout.header_base + MLR_RESULT_SHLIB)

    assert run() == run()          # same cycle counter -> same "random" base
