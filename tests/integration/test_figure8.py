"""End-to-end reproduction of the Figure 8 scenario.

Five worker threads; paper names in parentheses (our tids in brackets):

* W1 (t2) [tid 2] writes page p1, then later crashes;
* W2 (t1) [tid 3] reads p1 (=> t2->t1) and writes p2; later reads p3
  (=> t0->t1);
* W3 (t0) [tid 4] reads p2 (=> t1->t0) and writes p3;
* W4 (t3) [tid 5] and W5 (t4) [tid 6] work on private pages only.

When W1 crashes, recovery must terminate exactly {W1, W2, W3}, undo
their page updates, and let W4/W5 (and the main thread) run to
completion — "the recovery line in this case is only for the two
surviving threads".

Phase ordering is achieved purely with cooperative round-robin yielding:
each worker keeps a private turn counter, so the synchronization itself
adds no inter-thread data dependencies.
"""

from repro.kernel.kernel import KernelConfig
from repro.rse.check import MODULE_DDT
from repro.system import build_machine
from repro.workloads import figure8




def run_scenario():
    machine = build_machine(
        with_rse=True, modules=("ddt",),
        kernel_config=KernelConfig(quantum_cycles=200_000))
    machine.rse.enable_module(MODULE_DDT)
    machine.enable_ddt_recovery()
    image, asm = figure8.program()
    machine.kernel.load_process(image)
    result = machine.kernel.run(max_cycles=30_000_000)
    return machine, asm, result


def test_figure8_recovery():
    machine, asm, result = run_scenario()
    assert result.reason == "halt"          # survivors completed

    # Exactly one recovery pass, for W1 (tid 2).
    assert len(machine.kernel.recovery_reports) == 1
    report = machine.kernel.recovery_reports[0]
    assert report.faulty_tid == 2
    # Kill set: W1 plus its transitive dependents W2, W3.
    assert report.kill_set == {2, 3, 4}
    # Main (1), W4 (5) and W5 (6) survive.
    assert {5, 6}.issubset(report.survivors)
    assert 1 in report.survivors

    # The killed threads' page updates were undone ...
    symbols = asm.symbols
    assert machine.memory.load_word(symbols["p1"]) == 0
    assert machine.memory.load_word(symbols["p2"]) == 0
    assert machine.memory.load_word(symbols["p3"]) == 0
    # ... while the healthy threads' pages are intact.
    assert machine.memory.load_word(symbols["p4"]) == 0x0A110004
    assert machine.memory.load_word(symbols["p5"]) == 0x0A110004
    assert machine.memory.load_word(symbols["p4"] + 8) == 1
    assert machine.memory.load_word(symbols["p5"] + 8) == 1

    # Thread states after the dust settles.
    threads = machine.kernel.threads
    assert threads[2].fault is not None
    for tid in (3, 4):
        assert threads[tid].killed_by_recovery
    for tid in (5, 6):
        assert not threads[tid].killed_by_recovery
        assert threads[tid].exit_code == 0


def test_dependency_chain_matches_paper():
    machine, __, __ = run_scenario()
    ddt = machine.module(MODULE_DDT)
    # The recovery pass calls forget_thread for the kill set, so inspect
    # the report instead of live DDM state: W1's dependents were W2, W3.
    report = machine.kernel.recovery_reports[0]
    assert report.kill_set - {2} == {3, 4}


def test_without_recovery_everything_dies():
    machine = build_machine(
        with_rse=True, modules=("ddt",),
        kernel_config=KernelConfig(quantum_cycles=200_000))
    machine.rse.enable_module(MODULE_DDT)
    # No recovery manager: the paper's kill-all baseline.
    image, __ = figure8.program()
    machine.kernel.load_process(image)
    result = machine.kernel.run(max_cycles=30_000_000)
    assert result.reason == "fault"
    assert all(not t.alive for t in machine.kernel.threads.values())
