"""Checkpoint wire format: serialize, ship, restore into a fresh machine.

The sharded campaign service's correctness rests on one property: a
checkpoint serialized with :meth:`MachineCheckpoint.to_bytes`, carried
across a process boundary, and restored into a *different* machine of
the same shape behaves exactly like the machine it was captured from.
These tests prove that over the Table 4 workloads (quick configuration)
on the full protected machine — kernel, out-of-order pipeline, RSE with
the ICM enabled — plus the loud-failure paths: stale format versions,
foreign blobs, and shape mismatches must all raise
:class:`CheckpointError` instead of corrupting anything.
"""

import pytest

from repro.checkpoint import (CampaignImage, CheckpointError,
                              MachineCheckpoint, WIRE_MAGIC, _HEADER)
from repro.experiments.table4 import workload_sources
from repro.program.layout import MemoryLayout
from repro.rse.check import MODULE_ICM
from repro.rse.modules.icm import build_checker_memory, make_icm_injector
from repro.system import build_machine
from repro.workloads.asmlib import build_workload_image

BUDGET = 5_000_000


def build_workload_machine(source, protected=True):
    """Full machine (kernel + pipeline + RSE/ICM) running *source*."""
    machine = build_machine(with_rse=protected,
                            modules=("icm",) if protected else ())
    image, __ = build_workload_image(source, MemoryLayout())
    machine.kernel.load_process(image)
    if protected:
        icm = machine.module(MODULE_ICM)
        text = image.segment(".text")
        checker_map = build_checker_memory(machine.memory, text.base,
                                           len(text.data))
        icm.configure(checker_map)
        machine.rse.enable_module(MODULE_ICM)
        machine.pipeline.check_injector = make_icm_injector(checker_map)
    return machine


@pytest.mark.parametrize("name", sorted(workload_sources(quick=True)))
def test_wire_round_trip_matches_live_machine(name):
    """Serialized checkpoint -> fresh machine == the captured machine.

    Runs each Table 4 workload halfway, serializes the checkpoint,
    deserializes it into a brand-new machine, then runs both (and a
    cold reference) to completion.  Registers, cycle counts, guest
    output and the full telemetry snapshot must agree.
    """
    source = workload_sources(quick=True)[name]

    cold = build_workload_machine(source)
    cold_result = cold.kernel.run(max_cycles=BUDGET)
    assert cold_result.reason in ("halt", "all_exited")
    total = cold.pipeline.cycle
    split = total // 2

    donor = build_workload_machine(source)
    donor.kernel.run(max_cycles=split)
    assert donor.pipeline.cycle == split
    payload = donor.checkpoint().to_bytes()

    fresh = build_workload_machine(source)
    fresh.restore(MachineCheckpoint.from_bytes(payload))
    assert fresh.pipeline.cycle == split

    donor_result = donor.kernel.run(max_cycles=BUDGET - split)
    fresh_result = fresh.kernel.run(max_cycles=BUDGET - split)

    assert fresh_result.reason == donor_result.reason == cold_result.reason
    assert fresh.pipeline.cycle == donor.pipeline.cycle == total
    assert list(fresh.pipeline.regs) == list(donor.pipeline.regs) \
        == list(cold.pipeline.regs)
    assert fresh.kernel.output == donor.kernel.output == cold.kernel.output
    assert fresh.snapshot() == donor.snapshot()


def test_wire_rejects_stale_version():
    machine = build_workload_machine(
        workload_sources(quick=True)["kmeans"])
    payload = machine.checkpoint().to_bytes()
    stale = _HEADER.pack(WIRE_MAGIC, 99) + payload[_HEADER.size:]
    with pytest.raises(CheckpointError, match="version"):
        MachineCheckpoint.from_bytes(stale)


def test_wire_rejects_foreign_and_truncated_payloads():
    with pytest.raises(CheckpointError):
        MachineCheckpoint.from_bytes(b"\x00\x01")           # truncated
    with pytest.raises(CheckpointError):
        MachineCheckpoint.from_bytes(b"XXXX\x01\x00rest")   # wrong magic


def test_wire_rejects_shape_mismatch():
    """A protected-machine image must not graft onto a bare machine."""
    source = workload_sources(quick=True)["kmeans"]
    protected = build_workload_machine(source, protected=True)
    protected.kernel.run(max_cycles=500)
    payload = protected.checkpoint().to_bytes()

    bare = build_workload_machine(source, protected=False)
    with pytest.raises(CheckpointError):
        bare.restore(MachineCheckpoint.from_bytes(payload))


def test_campaign_image_round_trip():
    from repro.campaign import CampaignSpec, DEMO_WORKLOAD
    from repro.campaign.service import build_campaign_image

    spec = CampaignSpec(DEMO_WORKLOAD, model="reg-flip", injections=4,
                        seed=3, max_cycles=20_000)
    image = build_campaign_image(spec)
    clone = CampaignImage.from_bytes(image.to_bytes())
    assert clone.fingerprint == spec.fingerprint()
    assert clone.digest() == image.digest()
    assert clone.meta["golden"] == image.meta["golden"]
    assert clone.checkpoint().cycle == image.meta["cycle"]
    clone.verify(spec.fingerprint())
    with pytest.raises(CheckpointError, match="fingerprint"):
        clone.verify("0" * 16)
