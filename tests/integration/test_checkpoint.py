"""Checkpoint/restore determinism over a difftest-generated corpus.

For every generated program three pipeline executions must be
indistinguishable, judged by the difftest oracle's own comparator
(retired-pc stream, stop state, registers, instret, dirtied pages):

* **cold** — one uninterrupted run;
* **segmented** — run K cycles, take a checkpoint, keep running;
* **restored** — rewind the segmented machine to the checkpoint and run
  the tail again.

The segmented run proves taking a checkpoint perturbs nothing; the
restored run proves a checkpoint replays the exact timeline, which is
what the campaign fork engine stakes correctness on.
"""

import pytest

from repro.difftest import generate
from repro.difftest.oracle import CommitRecorder, EngineRun, _compare
from repro.isa.assembler import assemble
from repro.pipeline.core import EventKind
from repro.system import build_machine

STACK_TOP = 0x7FFF0000
BUDGET = 200_000
SEEDS = (2, 11, 23, 38, 47)


def build_recorded_machine(asm):
    machine = build_machine(with_rse=False)
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.memory.store_bytes(asm.data_base, asm.data)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.regs[29] = STACK_TOP
    recorder = CommitRecorder()
    machine.pipeline.rse = recorder
    return machine, recorder


def engine_run(label, machine, stream, event):
    kind = event.kind
    stop = {EventKind.HALT: "halt", EventKind.FAULT: "fault",
            EventKind.MAX_CYCLES: "limit"}.get(kind, kind.value)
    fault_pc = event.pc if stop == "fault" else None
    cause = event.cause if stop == "fault" else None
    return EngineRun(label, list(stream), list(machine.pipeline.regs),
                     machine.pipeline.stats.instret, stop, fault_pc,
                     cause, machine.memory)


def assert_identical(asm, ref, other):
    divergence = _compare(asm, ref, other)
    assert divergence is None, divergence.report()


@pytest.mark.parametrize("seed", SEEDS)
def test_checkpoint_replays_generated_program_exactly(seed):
    program = generate(seed)
    asm = assemble(program.source)

    # Cold reference run.
    cold_machine, cold_recorder = build_recorded_machine(asm)
    cold_event = cold_machine.pipeline.run(max_cycles=BUDGET)
    cold = engine_run("cold", cold_machine, cold_recorder.stream, cold_event)
    total = cold_machine.pipeline.cycle
    if total < 40:
        pytest.skip("program too short to segment (%d cycles)" % total)

    # Segmented run: checkpoint mid-flight, then continue to the end.
    machine, recorder = build_recorded_machine(asm)
    split = total // 2
    event = machine.pipeline.run(max_cycles=split)
    assert event.kind is EventKind.MAX_CYCLES
    assert machine.pipeline.cycle == split
    checkpoint = machine.checkpoint()
    prefix_stream = list(recorder.stream)

    event = machine.pipeline.run(max_cycles=BUDGET - split)
    segmented = engine_run("segmented", machine, recorder.stream, event)
    assert_identical(asm, cold, segmented)

    # Restore and replay the tail — twice, since one checkpoint must
    # support any number of restores (the fork engine restores per
    # injection).
    for attempt in ("restored", "restored-again"):
        machine.restore(checkpoint)
        assert machine.pipeline.cycle == split
        tail = CommitRecorder()
        machine.pipeline.rse = tail
        event = machine.pipeline.run(max_cycles=BUDGET - split)
        replayed = engine_run(attempt, machine,
                              prefix_stream + tail.stream, event)
        assert_identical(asm, cold, replayed)
