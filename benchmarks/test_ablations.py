"""Ablations of the design choices the paper argues for (Table 3, §4).

* Arbiter placement: memory-path arbitration (the paper's choice) vs the
  rejected L1-path arbitration — the latter must hurt far more.
* ICM cache size: smaller Icm_Caches lower the hit rate and raise
  commit stalls.
* DDT 1-cycle logging lag: how many dependencies the imperfection from
  Section 4.2.1 actually loses.
"""

import pytest

from conftest import write_result
from repro.analysis.stats import overhead_pct
from repro.experiments import ablations

pytestmark = pytest.mark.benchmark(group="ablations")


def test_arbiter_placement(benchmark):
    results = benchmark.pedantic(ablations.run_arbiter_placement,
                                 rounds=1, iterations=1)
    write_result("ablation_arbiter.txt",
                 ablations.format_arbiter_placement(results))
    memory_path = overhead_pct(results["baseline"], results["memory_path"])
    l1_path = overhead_pct(results["baseline"], results["l1_path"])
    # Table 3's rationale: "any delay introduced in this [L1] path ...
    # will be very prominent (Amdahl's law)".
    assert l1_path > 2 * memory_path
    assert memory_path < 10


def test_icm_cache_sweep(benchmark):
    results = benchmark.pedantic(ablations.run_icm_cache_sweep,
                                 rounds=1, iterations=1)
    write_result("ablation_icm_cache.txt",
                 ablations.format_icm_cache_sweep(results))
    sizes = sorted(results)
    hit_rates = [results[size]["hit_rate"] for size in sizes]
    cycles = [results[size]["cycles"] for size in sizes]
    # Bigger caches never hurt; the hit rate is monotone non-decreasing.
    assert all(b >= a - 1e-9 for a, b in zip(hit_rates, hit_rates[1:]))
    assert cycles[-1] <= cycles[0]


def test_ddt_lag(benchmark):
    results = benchmark.pedantic(ablations.run_ddt_lag,
                                 rounds=1, iterations=1)
    write_result("ablation_ddt_lag.txt", ablations.format_ddt_lag(results))
    assert results["ideal"]["missed"] == 0
    assert results["ideal"]["logged"] == 6          # one edge per producer
    assert results["lagged"]["missed"] > 0          # the window really bites
    assert (results["lagged"]["logged"] + results["lagged"]["missed"]
            == results["ideal"]["logged"])


def test_icm_coverage_scope(benchmark):
    results = benchmark.pedantic(ablations.run_icm_coverage,
                                 rounds=1, iterations=1)
    write_result("ablation_icm_coverage.txt",
                 ablations.format_icm_coverage(results))
    base = results["none"]["cycles"]
    control = results["control-flow"]["cycles"]
    everything = results["all instructions"]["cycles"]
    # Wider coverage costs more; full coverage costs the most.
    assert base < control < everything
    assert results["all instructions"]["checks"] > \
        results["control-flow"]["checks"]


def test_icm_footprint(benchmark):
    results = benchmark.pedantic(ablations.run_icm_footprint,
                                 rounds=1, iterations=1)
    write_result("ablation_icm_footprint.txt",
                 ablations.format_icm_footprint(results))
    sites = sorted(results)
    hit_rates = [results[s]["hit_rate"] for s in sites]
    # Footprints within capacity enjoy high hit rates; beyond capacity
    # the LRU sweep collapses.
    assert hit_rates[0] > 0.85
    assert hit_rates[-1] < 0.60


def test_predictor_comparison(benchmark):
    results = benchmark.pedantic(ablations.run_predictor_comparison,
                                 rounds=1, iterations=1)
    write_result("ablation_predictor.txt",
                 ablations.format_predictor_comparison(results))
    # Both front ends finish the same work; report, don't prejudge the
    # winner (annealing's data-dependent branches are near-random).
    assert results["bimodal"]["mispredicts"] > 0
    assert results["gshare"]["mispredicts"] > 0
