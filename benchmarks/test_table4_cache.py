"""Regenerates Table 4 (rows 7-14): il1/il2 pressure of CHECK insertion.

The paper measures the I-cache cost of the CHECK footprint by rewriting
the code segment with NOPs in CHECK positions and running the baseline
simulator (Section 5.1).  Expected shape: #il1 accesses grow by roughly
the fraction of control-flow instructions (paper: ~20-25%), and the il1
miss rate moves with the larger footprint.
"""

import pytest

from conftest import write_result
from repro.analysis.tables import format_table
from repro.experiments import table4

RECORDS = {}
SOURCES = table4.workload_sources()
WORKLOADS = list(SOURCES)

pytestmark = pytest.mark.benchmark(group="table4-cache")


@pytest.mark.parametrize("workload", WORKLOADS)
def test_cache_baseline(benchmark, workload):
    record = benchmark.pedantic(table4.run_baseline,
                                args=(SOURCES[workload],),
                                rounds=1, iterations=1)
    RECORDS.setdefault(workload, {})["baseline"] = record


@pytest.mark.parametrize("workload", WORKLOADS)
def test_cache_with_checks(benchmark, workload):
    record = benchmark.pedantic(table4.run_with_check_nops,
                                args=(SOURCES[workload],),
                                rounds=1, iterations=1)
    RECORDS.setdefault(workload, {})["with-checks"] = record


def test_z_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for workload, configs in RECORDS.items():
        base = configs["baseline"]
        checks = configs["with-checks"]
        base_accesses = base.cache("il1", "accesses")
        check_accesses = checks.cache("il1", "accesses")
        rows.append([
            workload,
            base_accesses, check_accesses,
            "%.1f%%" % (100.0 * (check_accesses - base_accesses)
                        / base_accesses),
            "%.3f%%" % (100 * base.cache("il1", "miss_rate")),
            "%.3f%%" % (100 * checks.cache("il1", "miss_rate")),
            base.cache("il2", "accesses"),
            checks.cache("il2", "accesses"),
        ])
        # Shape: the CHECK/NOP footprint inflates fetch traffic ...
        assert check_accesses > base_accesses
        # ... in proportion to the control-flow density (10-40%).
        growth = (check_accesses - base_accesses) / base_accesses
        assert 0.05 < growth < 0.50, (workload, growth)
    table = format_table(
        ["Benchmark", "il1 acc (base)", "il1 acc (+CHK)", "growth",
         "il1 miss (base)", "il1 miss (+CHK)", "il2 acc (base)",
         "il2 acc (+CHK)"],
        rows, title="Table 4 (cache rows): CHECK instruction cache pressure")
    write_result("table4_cache.txt", table)
