"""Regenerates Table 5: TRR (software) vs RSE (MLR) randomization.

Paper reference: cycle improvement 18-30% growing with GOT size;
TRR instruction counts grow linearly with entries while the RSE
version's stay constant; position-independent randomization costs a
fixed ~56 cycles.
"""

import pytest

from conftest import write_result
from repro.analysis.stats import improvement_pct
from repro.experiments import table5

RECORDS = {}

pytestmark = pytest.mark.benchmark(group="table5")


@pytest.mark.parametrize("entries", table5.PAPER_GOT_SIZES)
def test_randomization_pair(benchmark, entries):
    trr, rse = benchmark.pedantic(table5.run_pair, args=(entries,),
                                  rounds=1, iterations=1)
    RECORDS[entries] = (trr, rse)
    assert rse.cycles < trr.cycles          # the RSE version always wins


def test_pi_rand_penalty(benchmark):
    penalty = benchmark.pedantic(table5.measure_pi_rand_penalty,
                                 rounds=1, iterations=1)
    # Paper: a fixed 56-cycle penalty.  Ours is dominated by the MAU's
    # header load + result store; assert the same order of magnitude.
    assert 20 <= penalty <= 200
    write_result("table5_pi_penalty.txt",
                 "Position-independent randomization penalty: %d cycles "
                 "(paper: 56)" % penalty)


def test_z_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(RECORDS) == len(table5.PAPER_GOT_SIZES)
    write_result("table5.txt", table5.format_table5(RECORDS))

    sizes = sorted(RECORDS)
    trr_cycles = [RECORDS[s][0].cycles for s in sizes]
    rse_cycles = [RECORDS[s][1].cycles for s in sizes]
    trr_instr = [RECORDS[s][0].instret for s in sizes]
    rse_instr = [RECORDS[s][1].instret for s in sizes]

    # TRR's instruction count grows linearly with GOT size ...
    assert all(b > a for a, b in zip(trr_instr, trr_instr[1:]))
    # ... the RSE version's is constant (a few CHECKs do all the work).
    assert max(rse_instr) == min(rse_instr)
    # Cycle improvement is positive everywhere and grows with size.
    improvements = [improvement_pct(t, r)
                    for t, r in zip(trr_cycles, rse_cycles)]
    assert all(imp > 5 for imp in improvements)
    assert improvements[-1] > improvements[0]
