"""Benchmark-suite plumbing: imports and the results directory."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")


def write_result(name, text):
    """Persist a formatted table under ``benchmarks/results/`` and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return path
