"""Fleet co-simulation throughput: requests/s vs node count.

Runs the same seeded open-loop request stream against 1-, 2- and
3-node fleets and records wall-clock requests/second for each, plus one
kill-failover run to price the checkpoint-restore path.  Only
correctness is asserted (every provisioned request served, deterministic
digest); absolute throughput is reported, never gated — CI boxes are
noisy.

Results land in ``benchmarks/results/BENCH_fleet.json``.
"""

import json
import os
import subprocess
import time

from conftest import RESULTS_DIR
from repro.fleet import FleetSpec, run_fleet

REQUESTS = 120
MAX_CYCLES = 20_000_000
RECORDS = []


def commit_hash():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            text=True).strip()
    except Exception:
        return "unknown"


def fleet_spec(nodes, **overrides):
    base = dict(nodes=nodes, requests=REQUESTS, workers=2, seed=3,
                max_cycles=MAX_CYCLES)
    base.update(overrides)
    return FleetSpec(**base)


def record(name, nodes, run, elapsed, **extra):
    peak_cycle = max(node.cycle for node in run.nodes)
    entry = {
        "benchmark": name, "commit": commit_hash(),
        "nodes": nodes, "requests": REQUESTS,
        "served": run.served(),
        "seconds": round(elapsed, 3),
        "requests_per_second": round(run.served() / elapsed, 1),
        "sim_cycles": peak_cycle,
        "bridge_slices": run.bridge.slices,
        "digest": run.digest(),
    }
    entry.update(extra)
    RECORDS.append(entry)
    return entry


def test_fleet_scaling(benchmark):
    runs = {}
    for nodes in (1, 2):
        start = time.perf_counter()
        runs[nodes] = run_fleet(fleet_spec(nodes))
        record("fleet-scaling", nodes, runs[nodes],
               time.perf_counter() - start)

    start = time.perf_counter()
    runs[3] = benchmark.pedantic(run_fleet, args=(fleet_spec(3),),
                                 rounds=1, iterations=1)
    record("fleet-scaling", 3, runs[3], time.perf_counter() - start)

    for nodes, run in runs.items():
        assert run.served() == REQUESTS, \
            "%d-node fleet served %d/%d" % (nodes, run.served(), REQUESTS)
        assert all(node.status == "halted" for node in run.nodes)


def test_fleet_failover_cost(benchmark):
    start = time.perf_counter()
    run = benchmark.pedantic(
        run_fleet, args=(fleet_spec(3, kills=((1, 9_000),)),),
        rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    assert run.served() == REQUESTS
    assert len(run.nodes[1].failovers) == 1
    record("fleet-kill-failover", 3, run, elapsed,
           failovers=1,
           rewound_requests=run.nodes[1].failovers[0].rewound_requests)


def test_z_write_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert RECORDS, "no fleet benchmark records collected"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_fleet.json")
    with open(path, "w") as handle:
        json.dump(RECORDS, handle, indent=2)
    print("\nwrote %s" % path)
    for entry in RECORDS:
        print(entry)
