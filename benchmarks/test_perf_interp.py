"""Interpreter throughput: instructions/sec for every execution engine.

Measures the functional simulator (bare interpreter, predecode, and
the superblock trace JIT) in retired instructions per wall-clock
second and the pipeline (predecode on) in cycles per second, on the
kMeans and VPR workloads, and writes the records to
``benchmarks/results/BENCH_interp.json``.  The funcsim rows are
cold-start (caches built inside the timed run); see
``test_perf_traces.py`` for the steady-state, thresholded numbers.

``PERF_INTERP_QUICK=1`` shrinks the workloads to a CI-sized budget.
The numbers are reported, not asserted against a threshold — a shared
1-CPU CI container is far too noisy for that; the differential tests
under ``tests/`` carry the correctness burden, this file carries the
evidence for the speedup claims in README.md.
"""

import json
import os
import subprocess
import time

import pytest

from conftest import RESULTS_DIR
from repro.experiments import table4
from repro.funcsim import FuncSim, StepResult
from repro.isa.assembler import assemble
from repro.memory.mainmem import MainMemory
from repro.pipeline import Pipeline, PipelineConfig
from repro.memory.bus import BASELINE_TIMING
from repro.memory.hierarchy import MemoryHierarchy

QUICK = os.environ.get("PERF_INTERP_QUICK") == "1"
SOURCES = table4.workload_sources(quick=QUICK)
WORKLOADS = ["kmeans", "vpr-place", "vpr-route"]
RECORDS = []


def commit_hash():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            text=True).strip()
    except Exception:
        return "unknown"


COMMIT = commit_hash()


def loaded_memory(source):
    asm = assemble(source)
    mem = MainMemory()
    mem.store_bytes(asm.text_base, asm.text)
    mem.store_bytes(asm.data_base, asm.data)
    return asm, mem


def record(engine, workload, **fields):
    entry = {"engine": engine, "workload": workload, "commit": COMMIT,
             "quick": QUICK}
    entry.update(fields)
    RECORDS.append(entry)
    return entry


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("engine", ["funcsim-nocache", "funcsim",
                                    "funcsim-jit"])
def test_funcsim_throughput(benchmark, workload, engine):
    asm, mem = loaded_memory(SOURCES[workload])
    sim = FuncSim(mem, entry=asm.entry, sp=0x7FFF0000,
                  predecode_enabled=(engine != "funcsim-nocache"),
                  jit_enabled=(engine == "funcsim-jit"))
    start = time.perf_counter()
    result = benchmark.pedantic(sim.run, args=(50_000_000,),
                                rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    assert result is StepResult.HALTED
    record(engine, workload,
           instrs=sim.instret,
           instrs_per_sec=round(sim.instret / elapsed))


@pytest.mark.parametrize("workload", WORKLOADS)
def test_pipeline_throughput(benchmark, workload):
    asm, mem = loaded_memory(SOURCES[workload])
    pipeline = Pipeline(mem, MemoryHierarchy(BASELINE_TIMING),
                        config=PipelineConfig())
    pipeline.reset_at(asm.entry)
    pipeline.regs[29] = 0x7FFF0000
    start = time.perf_counter()
    event = benchmark.pedantic(pipeline.run,
                               kwargs={"max_cycles": 50_000_000},
                               rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    assert event.kind.value == "halt"
    snap = pipeline.snapshot()          # after timing: not on the hot path
    record("pipeline", workload,
           cycles=pipeline.cycle,
           cycles_per_sec=round(pipeline.cycle / elapsed),
           instrs_per_sec=round(snap["instret"] / elapsed))


def test_z_write_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert RECORDS, "no throughput records collected"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_interp.json")
    with open(path, "w") as handle:
        json.dump(RECORDS, handle, indent=2)
    print("\nwrote %s" % path)
    for entry in RECORDS:
        print(entry)
