"""Assertion-layer overhead on the Table 4 kMeans workload.

The zero-cost-when-off contract is a correctness claim, so it IS
asserted: a FuncSim that had the assertion adapter attached and then
detached must run within 2% of a sim that never saw the adapter —
detach restores the bare class methods, so the two runs execute the
same code and only scheduling noise separates them.  Min-of-N damps
that noise.

The attached-monitor cost is reported (not asserted): it is an
absolute-speed number and a shared CI box is too noisy to gate on it.

Results go to ``benchmarks/results/BENCH_assertions.json``.
``PERF_ASSERTIONS_QUICK=1`` shrinks the workload to a CI-sized budget.
"""

import json
import os
import subprocess
import time

from conftest import RESULTS_DIR
from repro.assertions.adapters import attach_funcsim
from repro.experiments import table4
from repro.funcsim import FuncSim, StepResult
from repro.isa.assembler import assemble
from repro.memory.mainmem import MainMemory

QUICK = os.environ.get("PERF_ASSERTIONS_QUICK") == "1"
KMEANS = table4.workload_sources(quick=QUICK)["kmeans"]
ROUNDS = 7
#: The quick workload retires only a few thousand instructions — far
#: too short for one run to out-resolve timer granularity, so each
#: timed sample runs a batch of fresh sims back to back.
BATCH = 60 if QUICK else 1
MAX_OVERHEAD = 0.02


def commit_hash():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            text=True).strip()
    except Exception:
        return "unknown"


ASM = assemble(KMEANS)


def fresh_sim():
    mem = MainMemory()
    mem.store_bytes(ASM.text_base, ASM.text)
    mem.store_bytes(ASM.data_base, ASM.data)
    return FuncSim(mem, entry=ASM.entry, sp=0x7FFF0000,
                   predecode_enabled=True)


def baseline_sim():
    return fresh_sim()


def detached_sim():
    sim = fresh_sim()
    adapter = attach_funcsim(sim)
    adapter.detach()
    assert sim.step.__func__ is type(sim).step  # bare bound method again
    return sim


def attached_sim():
    sim = fresh_sim()
    sim._assert_adapter = attach_funcsim(sim)  # keep the adapter alive
    return sim


def timed_run(prepare):
    """One timed sample (a batch of fresh sims); returns (s, instret)."""
    sims = [prepare() for _ in range(BATCH)]
    start = time.perf_counter()
    for sim in sims:
        result = sim.run(50_000_000)
    elapsed = time.perf_counter() - start
    assert result is StepResult.HALTED
    return elapsed, sim.instret


def best_times(variants):
    """Min-of-N per variant, with the variants interleaved inside each
    round — and the order rotated per round — so clock-frequency drift
    and follow-on effects (GC pressure from a slow neighbour) land on
    all of them equally."""
    order = list(variants.items())
    best = {name: float("inf") for name in variants}
    instrs = {}
    for round_index in range(ROUNDS):
        for shift in range(len(order)):
            name, prepare = order[(round_index + shift) % len(order)]
            elapsed, instret = timed_run(prepare)
            assert instrs.setdefault(name, instret) == instret
            best[name] = min(best[name], elapsed)
    assert len(set(instrs.values())) == 1      # same retired stream
    return best, instrs["baseline"]


def test_detached_overhead_is_noise(benchmark):
    best, base_instrs = benchmark.pedantic(
        best_times, args=({"baseline": baseline_sim,
                           "detached": detached_sim,
                           "attached": attached_sim},),
        rounds=1, iterations=1)
    base_s = best["baseline"]
    detached_s = best["detached"]
    attached_s = best["attached"]

    detached_overhead = detached_s / base_s - 1.0
    attached_overhead = attached_s / base_s - 1.0
    record = {
        "benchmark": "assertions-overhead",
        "commit": commit_hash(),
        "workload": "kmeans",
        "quick": QUICK,
        "rounds": ROUNDS,
        "instrs": base_instrs,
        "baseline_seconds": round(base_s, 4),
        "detached_seconds": round(detached_s, 4),
        "attached_seconds": round(attached_s, 4),
        "detached_overhead_pct": round(detached_overhead * 100, 2),
        "attached_overhead_pct": round(attached_overhead * 100, 2),
        "detached_overhead_budget_pct": MAX_OVERHEAD * 100,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_assertions.json")
    with open(path, "w") as handle:
        json.dump([record], handle, indent=2)
    print("\nwrote %s" % path)
    print(record)

    assert detached_overhead <= MAX_OVERHEAD, \
        "detached assertion layer costs %.2f%% (budget %.0f%%)" % (
            detached_overhead * 100, MAX_OVERHEAD * 100)
