"""Campaign throughput: cold per-injection runs vs fork-at-trigger.

Runs the same seeded 200-injection register-flip campaign twice — once
rebuilding and re-simulating the warmup prefix for every injection, once
sharing prefixes through machine checkpoints (``fork=True``) — and
writes both timings to ``benchmarks/results/BENCH_campaign.json``.

Two things ARE asserted here, because they are correctness claims, not
absolute-speed claims:

* the two runs produce byte-identical records (fork is an execution
  detail);
* fork mode is at least 1.5x faster.  The ratio compares the same
  machine against itself in the same process, so it holds even on a
  noisy shared CI box; absolute instrs/sec numbers are only reported.

The workload runs the demo checksum loop for 64 passes so each run
carries a few thousand warmup cycles — the cost fork mode exists to
amortise — and the cycle budget is about twice the golden run, keeping
HUNG runs (which cost the full budget in *both* modes) from flattening
the measured ratio.  Unprotected machine: register flips don't need the
ICM, and the trigger window then spans the whole run instead of the
shorter unprotected-golden fraction of a protected one.
"""

import json
import os
import subprocess
import time

from conftest import RESULTS_DIR
from repro.campaign import (CampaignSpec, DEMO_WORKLOAD, ExecutionOptions,
                            run_campaign)

#: 64 passes instead of 16: a longer shared prefix per trigger.
WORKLOAD = DEMO_WORKLOAD.replace("li $t5, 16", "li $t5, 64")
assert WORKLOAD != DEMO_WORKLOAD

INJECTIONS = 200
MAX_CYCLES = 8_000
RECORDS = []


def commit_hash():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            text=True).strip()
    except Exception:
        return "unknown"


def campaign_spec():
    return CampaignSpec(source=WORKLOAD, model="reg-flip", protected=False,
                        injections=INJECTIONS, seed=7, max_cycles=MAX_CYCLES)


def test_fork_speedup(benchmark):
    spec = campaign_spec()

    start = time.perf_counter()
    cold = run_campaign(spec, options=ExecutionOptions(fork=False))
    cold_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    forked = benchmark.pedantic(
        run_campaign, args=(spec,),
        kwargs={"options": ExecutionOptions(fork=True)},
        rounds=1, iterations=1)
    fork_elapsed = time.perf_counter() - start

    assert cold.records == forked.records
    speedup = cold_elapsed / fork_elapsed
    RECORDS.append({
        "benchmark": "campaign-fork", "commit": commit_hash(),
        "workload": "demo-checksum-64pass", "model": spec.model,
        "injections": spec.injections, "max_cycles": spec.max_cycles,
        "cold_seconds": round(cold_elapsed, 3),
        "fork_seconds": round(fork_elapsed, 3),
        "speedup": round(speedup, 2),
        "outcomes": cold.summary(),
        "records_identical": True,
    })
    assert speedup >= 1.5, \
        "fork mode %.2fx vs cold (%.2fs vs %.2fs); expected >= 1.5x" \
        % (speedup, fork_elapsed, cold_elapsed)


def test_z_write_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert RECORDS, "no campaign benchmark records collected"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_campaign.json")
    with open(path, "w") as handle:
        json.dump(RECORDS, handle, indent=2)
    print("\nwrote %s" % path)
    for entry in RECORDS:
        print(entry)
