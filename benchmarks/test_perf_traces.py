"""Trace-JIT throughput gate: jit vs predecode, batch vs step.

Measures steady-state throughput of the superblock trace JIT
(``repro.isa.traces``) against the predecode baseline on the Table 4
workloads, and the pipeline's batch fast-path against the
one-``step()``-per-cycle reference loop on kMeans, writing the records
to ``benchmarks/results/BENCH_traces.json``.

Unlike ``test_perf_interp.py`` these ARE thresholded: each ratio
compares the same process against itself, so it survives a noisy
shared CI runner (the same argument ``test_perf_campaign.py`` makes
for the fork speedup).  Absolute instrs/sec are recorded, not
asserted.

Steady state means warm caches: the predecode and trace caches are
shared per ``MainMemory`` (``cache_for`` / ``traces_for``), so one
warm-up run compiles every hot trace and the measured runs see the
amortised cost — the regime every long campaign, experiment rerun and
fuzz batch actually runs in.  ``PERF_TRACES_QUICK=1`` shrinks the
workloads to a CI-sized budget.
"""

import json
import os
import subprocess
import time

import pytest

from conftest import RESULTS_DIR
from repro.experiments import table4
from repro.funcsim import FuncSim, StepResult
from repro.isa.assembler import assemble
from repro.memory.mainmem import MainMemory
from repro.memory.bus import BASELINE_TIMING
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline import Pipeline, PipelineConfig

QUICK = os.environ.get("PERF_TRACES_QUICK") == "1"
SOURCES = table4.workload_sources(quick=QUICK)
WORKLOADS = ["kmeans", "vpr-place", "vpr-route"]
JIT_SPEEDUP_FLOOR = 2.0
BATCH_SPEEDUP_FLOOR = 1.3
RECORDS = []


def commit_hash():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            text=True).strip()
    except Exception:
        return "unknown"


COMMIT = commit_hash()


def loaded_memory(source):
    asm = assemble(source)
    mem = MainMemory()
    mem.store_bytes(asm.text_base, asm.text)
    mem.store_bytes(asm.data_base, asm.data)
    return asm, mem


def record(engine, workload, **fields):
    entry = {"engine": engine, "workload": workload, "commit": COMMIT,
             "quick": QUICK}
    entry.update(fields)
    RECORDS.append(entry)
    return entry


def funcsim_rate(workload, jit, rounds=2):
    """Best instrs/sec over *rounds* warm-cache runs of *workload*."""
    asm, mem = loaded_memory(SOURCES[workload])
    warm = FuncSim(mem, entry=asm.entry, sp=0x7FFF0000, jit_enabled=jit)
    assert warm.run(50_000_000) is StepResult.HALTED
    golden = warm.instret
    best = 0.0
    for __ in range(rounds):
        # Restore the data segment the previous run dirtied; text pages
        # are untouched, so the shared predecode/trace caches stay warm.
        mem.store_bytes(asm.data_base, asm.data)
        sim = FuncSim(mem, entry=asm.entry, sp=0x7FFF0000, jit_enabled=jit)
        start = time.perf_counter()
        result = sim.run(50_000_000)
        elapsed = time.perf_counter() - start
        assert result is StepResult.HALTED
        assert sim.instret == golden
        best = max(best, sim.instret / elapsed)
    return golden, best


def pipeline_rate(workload, batch, rounds=2):
    """Best cycles/sec over *rounds* fresh pipeline runs of *workload*."""
    best = 0.0
    cycles = 0
    for __ in range(rounds):
        asm, mem = loaded_memory(SOURCES[workload])
        pipeline = Pipeline(mem, MemoryHierarchy(BASELINE_TIMING),
                            config=PipelineConfig(batch=batch))
        pipeline.reset_at(asm.entry)
        pipeline.regs[29] = 0x7FFF0000
        start = time.perf_counter()
        event = pipeline.run(max_cycles=50_000_000)
        elapsed = time.perf_counter() - start
        assert event.kind.value == "halt"
        cycles = pipeline.cycle
        best = max(best, pipeline.cycle / elapsed)
    return cycles, best


@pytest.mark.parametrize("workload", WORKLOADS)
def test_jit_speedup(benchmark, workload):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    instrs, base = funcsim_rate(workload, jit=False)
    __, jitted = funcsim_rate(workload, jit=True)
    speedup = jitted / base
    record("funcsim", workload, instrs=instrs,
           instrs_per_sec=round(base))
    record("funcsim-jit", workload, instrs=instrs,
           instrs_per_sec=round(jitted), speedup=round(speedup, 2))
    assert speedup >= JIT_SPEEDUP_FLOOR, (
        "trace JIT only %.2fx over predecode on %s (floor %.1fx)"
        % (speedup, workload, JIT_SPEEDUP_FLOOR))


def test_pipeline_batch_speedup(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cycles, step_rate = pipeline_rate("kmeans", batch=False)
    __, batch_rate = pipeline_rate("kmeans", batch=True)
    speedup = batch_rate / step_rate
    record("pipeline", "kmeans", cycles=cycles,
           cycles_per_sec=round(step_rate))
    record("pipeline-batch", "kmeans", cycles=cycles,
           cycles_per_sec=round(batch_rate), speedup=round(speedup, 2))
    assert speedup >= BATCH_SPEEDUP_FLOOR, (
        "batch fast-path only %.2fx over the step loop (floor %.1fx)"
        % (speedup, BATCH_SPEEDUP_FLOOR))


def test_z_write_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert RECORDS, "no throughput records collected"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_traces.json")
    with open(path, "w") as handle:
        json.dump(RECORDS, handle, indent=2)
    print("\nwrote %s" % path)
    for entry in RECORDS:
        print(entry)
