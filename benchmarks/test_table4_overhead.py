"""Regenerates Table 4 (rows 2-6): baseline vs framework vs framework+ICM.

Paper reference points: framework overhead 3.47% / 3.64% / 4.99%
(average 4.03%); framework+ICM overhead 11.04% / 7.73% / 5.44%
(average 8.1%).  We check the *shape*: the framework alone costs low
single digits (it is just the memory arbiter), adding the ICM costs
more, and both stay far below the cost of software-only checking.
"""

import pytest

from conftest import write_result
from repro.analysis.stats import overhead_pct
from repro.experiments import table4

RECORDS = {}
SOURCES = table4.workload_sources()
WORKLOADS = list(SOURCES)

pytestmark = pytest.mark.benchmark(group="table4-overhead")


@pytest.mark.parametrize("workload", WORKLOADS)
def test_baseline(benchmark, workload):
    record = benchmark.pedantic(table4.run_baseline,
                                args=(SOURCES[workload],),
                                rounds=1, iterations=1)
    RECORDS.setdefault(workload, {})["baseline"] = record
    assert record.instret > 0


@pytest.mark.parametrize("workload", WORKLOADS)
def test_framework(benchmark, workload):
    record = benchmark.pedantic(table4.run_framework,
                                args=(SOURCES[workload],),
                                rounds=1, iterations=1)
    RECORDS.setdefault(workload, {})["framework"] = record


@pytest.mark.parametrize("workload", WORKLOADS)
def test_framework_icm(benchmark, workload):
    record = benchmark.pedantic(table4.run_framework_icm,
                                args=(SOURCES[workload],),
                                rounds=1, iterations=1)
    RECORDS.setdefault(workload, {})["framework+icm"] = record
    assert record.extra["icm_checks"] > 0


@pytest.mark.parametrize("workload", WORKLOADS)
def test_with_check_nops(benchmark, workload):
    record = benchmark.pedantic(table4.run_with_check_nops,
                                args=(SOURCES[workload],),
                                rounds=1, iterations=1)
    RECORDS.setdefault(workload, {})["with-checks"] = record


def test_z_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all(len(configs) == 4 for configs in RECORDS.values())
    write_result("table4.txt", table4.format_table4(RECORDS))

    for workload, configs in RECORDS.items():
        base = configs["baseline"]
        framework = configs["framework"]
        icm = configs["framework+icm"]
        fw_overhead = overhead_pct(base.cycles, framework.cycles)
        icm_overhead = overhead_pct(base.cycles, icm.cycles)
        # Shape checks against the paper's Table 4:
        assert 0 < fw_overhead < 10, (workload, fw_overhead)
        assert icm_overhead > fw_overhead, (workload, icm_overhead)
        assert icm_overhead < 25, (workload, icm_overhead)
        # The simulated-instruction stream is identical across configs.
        assert framework.instret == base.instret
        # The CHECK/NOP footprint inflates il1 traffic.
        checks = configs["with-checks"]
        assert (checks.cache("il1", "accesses") >
                base.cache("il1", "accesses"))
