"""Regenerates Figure 9: server runtime (with/without DDT) and saved
pages vs thread-pool size.

Paper reference shapes: runtime falls as threads are added (I/O
parallelism) and stabilises around four threads; DDT overhead starts
near zero and climbs to roughly 7-8% once parallelism is exhausted,
"mainly due to saving memory pages"; the saved-page count grows with
the thread count.
"""

import pytest

from conftest import write_result
from repro.analysis.stats import overhead_pct
from repro.experiments import fig9

RECORDS = {}

pytestmark = pytest.mark.benchmark(group="fig9")


@pytest.mark.parametrize("threads", fig9.PAPER_THREAD_COUNTS)
def test_server_without_ddt(benchmark, threads):
    run = benchmark.pedantic(fig9.run_server, args=(threads, False),
                             rounds=1, iterations=1)
    RECORDS.setdefault(threads, {})["plain"] = run


@pytest.mark.parametrize("threads", fig9.PAPER_THREAD_COUNTS)
def test_server_with_ddt(benchmark, threads):
    run = benchmark.pedantic(fig9.run_server, args=(threads, True),
                             rounds=1, iterations=1)
    RECORDS.setdefault(threads, {})["ddt"] = run


def test_z_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    results = {threads: (data["plain"], data["ddt"])
               for threads, data in RECORDS.items()}
    write_result("fig9.txt", fig9.format_fig9(results) + "\n\n"
                 + fig9.chart_fig9(results))

    threads = sorted(results)
    plain = [results[t][0].cycles for t in threads]
    ddt = [results[t][1].cycles for t in threads]
    saves = [results[t][1].saved_pages for t in threads]

    # Responses identical everywhere (the DDT never changes results).
    golden = results[threads[0]][0].responses
    for t in threads:
        assert results[t][0].responses == golden
        assert results[t][1].responses == golden

    # Shape 1: adding threads helps, then the curve flattens (the knee).
    assert plain[1] < plain[0]
    tail = plain[4:]          # five or more threads
    assert max(tail) < plain[0]
    assert max(tail) - min(tail) < 0.25 * plain[0]          # flat tail

    # Shape 2: DDT costs nearly nothing single-threaded, then climbs into
    # the high-single-digit/low-teens range as sharing appears.
    first_overhead = overhead_pct(plain[0], ddt[0])
    late_overheads = [overhead_pct(p, d) for p, d in zip(plain, ddt)][3:]
    assert first_overhead < 4.0
    assert all(2.0 < o < 25.0 for o in late_overheads)
    assert max(late_overheads) > first_overhead

    # Shape 3: saved pages grow with the thread count.
    assert saves[-1] > saves[0]
    assert max(saves) == max(saves[2:])          # the peak is not at 1-2
