"""Self-checking mechanisms of the RSE framework (Section 3.4, Table 2).

A watchdog monitors the transitions on the ``check``/``checkValid`` bits
of every IOQ entry:

* if a 0->1 transition does not occur in ``checkValid`` within the
  watchdog timeout, the module executing that entry's CHECK makes no
  progress, or ``checkValid`` is stuck at 0;
* if freshly allocated CHECK entries repeatedly show ``checkValid`` = 1
  (no 1->0 transition on reuse), ``checkValid`` is stuck at 1;
* a counter per module tracks 0->1 transitions of the ``check`` (error)
  bit; more than a threshold number within the watchdog interval means
  the module is erroneous (false alarm, an error burst, or a stuck-at-1
  ``check`` bit).

When any rule trips, the framework is *decoupled*: it switches to a safe
mode in which its output always lets the pipeline commit (constant
``checkValid``/``check`` = '1'/'0').

The remaining Table 2 scenario — a false negative / ``check`` stuck at 0
— is, as the paper observes, indistinguishable from healthy operation at
this interface: the application simply loses protection.  It is covered
by the fault-injection tests, which verify the absence of false trips.
"""

from collections import deque


class SelfCheckTrip:
    """Record of one self-check activation."""

    __slots__ = ("cycle", "reason", "module_name")

    def __init__(self, cycle, reason, module_name=None):
        self.cycle = cycle
        self.reason = reason
        self.module_name = module_name

    def __repr__(self):
        return "SelfCheckTrip(cycle=%d, %r)" % (self.cycle, self.reason)


class SelfChecker:
    """Watchdog + error-burst monitor driving safe-mode decoupling."""

    def __init__(self, engine, watchdog_timeout=500, error_threshold=8,
                 stuck1_threshold=4, scan_period=16):
        self.engine = engine
        self.watchdog_timeout = watchdog_timeout
        self.error_threshold = error_threshold
        self.stuck1_threshold = stuck1_threshold
        self.scan_period = scan_period
        self.trips = []
        self._stuck1_streak = 0
        self._error_cycles = {}          # module name -> deque of cycles

    # ------------------------------------------------------------ observers

    def observe_alloc(self, entry):
        """Called when an IOQ entry is allocated.

        A CHECK entry must start with ``checkValid`` = 0; seeing 1 at
        allocation time means the written 0 never landed (stuck-at-1).
        """
        if not entry.uop.instr.is_check:
            return
        if entry.effective_check_valid == 1 and entry.valid_set_cycle is None:
            self._stuck1_streak += 1
            if self._stuck1_streak >= self.stuck1_threshold:
                self._trip(entry.alloc_cycle,
                           "checkValid stuck-at-1 (no 1->0 transition)")
        else:
            self._stuck1_streak = 0

    def record_error(self, module, cycle):
        """Called on every 0->1 transition of a check (error) bit."""
        window = self._error_cycles.setdefault(module.name, deque())
        window.append(cycle)
        horizon = cycle - self.watchdog_timeout
        while window and window[0] < horizon:
            window.popleft()
        if len(window) > self.error_threshold:
            self._trip(cycle,
                       "error burst from module (false alarm or check "
                       "bit stuck-at-1)", module.name)

    # ----------------------------------------------------------------- step

    def step(self, cycle):
        if self.engine.safe_mode or cycle % self.scan_period:
            return
        for entry in self.engine.ioq.pending_checks():
            if cycle - entry.alloc_cycle > self.watchdog_timeout:
                self._trip(cycle,
                           "no checkValid 0->1 transition within timeout "
                           "(module makes no progress or stuck-at-0)")
                return

    # ------------------------------------------------------------- tripping

    def _trip(self, cycle, reason, module_name=None):
        trip = SelfCheckTrip(cycle, reason, module_name)
        self.trips.append(trip)
        self.engine.decouple(reason)
