"""The RSE framework engine: input interface, IOQ, MAU, module routing.

The engine is the object the pipeline talks to (Figure 1).  It owns the
five input queues, the Instruction Output Queue, the Memory Access Unit
and the registered hardware modules, and it implements:

* IOQ allocation at dispatch and the Table 1 commit gate;
* the module enable/disable unit (disabled modules' IOQ paths are
  desensitised to constant '10');
* CHECK routing — including deferring payload-carrying CHECKs until
  ``Regfile_Data`` has delivered their a0/a1 values;
* squash handling (queues flushed, no speculative module state);
* safe-mode decoupling driven by the self-checker.
"""

from collections import deque

from repro.rse.check import OP_DISABLE, OP_ENABLE, op_reads_payload
from repro.rse.ioq import IOQ
from repro.rse.mau import MemoryAccessUnit
from repro.rse.module import RSEModule
from repro.rse.queues import InputInterface
from repro.rse.selfcheck import SelfChecker


class RSE:
    """The Reliability and Security Engine."""

    def __init__(self, memory, hierarchy, rob_entries=16):
        self.memory = memory
        self.hierarchy = hierarchy
        self.queues = InputInterface(rob_entries)
        self.ioq = IOQ()
        self.mau = MemoryAccessUnit(memory, hierarchy)
        self.selfcheck = SelfChecker(self)
        self.modules = {}             # module number -> RSEModule
        self.safe_mode = False
        self.safe_mode_reason = None
        self.current_tid = 0
        self.cycle = 0
        self.checks_seen = 0
        self.kernel = None            # set by the kernel for exception paths
        # Blocking CHECKs are delivered to each module strictly in program
        # order (the hardware module scans Fetch_Out in order); a CHECK
        # whose a0/a1 payload has not yet issued holds younger same-module
        # CHECKs behind it.
        self._blk_queues = {}             # module id -> deque of (uop, entry)
        # Non-blocking (asynchronous) CHECKs mutate module state only at
        # commit — "the module ... on receiving the commit signal from the
        # pipeline, logs the permanent state" (Section 3.2).  Squashed
        # ones are dropped without ever reaching the module.
        self._commit_deferred = {}        # seq -> (module, uop, entry)

    # -------------------------------------------------------------- modules

    def attach(self, module):
        """Plug *module* into the framework (initially disabled)."""
        if module.MODULE_ID in self.modules:
            raise ValueError("module id %d already attached"
                             % module.MODULE_ID)
        self.modules[module.MODULE_ID] = module
        module.attached(self)
        return module

    def module(self, module_id):
        return self.modules[module_id]

    def enable_module(self, module_id):
        """Direct (kernel-side) enable, equivalent to an OP_ENABLE CHECK."""
        module = self.modules[module_id]
        module.enabled = True
        module.on_enable()

    def disable_module(self, module_id):
        module = self.modules[module_id]
        module.enabled = False
        module.on_disable()

    def _enabled_modules(self):
        return [m for m in self.modules.values() if m.enabled]

    # ------------------------------------------------- pipeline attachment

    def on_dispatch(self, uop, cycle):
        """Fetch_Out: instruction enters the window; allocate its IOQ entry."""
        entry = self.ioq.allocate(uop, cycle)
        self.queues.fetch_out.push(cycle, (uop.seq, uop))
        self.selfcheck.observe_alloc(entry)

    def on_operands(self, uop, cycle, values):
        """Regfile_Data: operand values read at issue."""
        self.queues.regfile_data.push(cycle, (uop.seq, values))
        entry = self.ioq.get(uop.seq)
        if entry is not None:
            entry.payload = values

    def on_execute(self, uop, cycle):
        """Execute_Out: result / effective address available."""
        self.queues.execute_out.push(cycle, (uop.seq, uop))

    def on_mem_load(self, uop, cycle, value):
        """Memory_Out: load data arrived."""
        self.queues.memory_out.push(cycle, (uop.seq, uop, value))

    def on_commit(self, uop, cycle):
        """Commit_Out: *uop* retired.

        The running thread id is stamped at commit time: delivery happens
        a latch-cycle later, possibly after a context switch, and modules
        reading ``current_tid`` must see the committing thread.
        """
        self.queues.commit_out.push(cycle, ("commit", uop, self.current_tid))
        self.ioq.free(uop.seq)

    def on_squash(self, uops, cycle):
        """Commit_Out: the pipeline squashed *uops* (flush/mispredict)."""
        seqs = {uop.seq for uop in uops}
        for seq in seqs:
            self.ioq.free(seq)
        self.queues.discard_squashed(seqs)
        self.queues.commit_out.push(cycle, ("squash", seqs))

    def pre_commit_store(self, uop, cycle):
        """Synchronous pre-retire hook for stores; returns stall cycles."""
        if self.safe_mode:
            return 0
        stall = 0
        for module in self._enabled_modules():
            stall += module.pre_commit_store(uop, cycle)
        return stall

    def check_blocks_loads(self, instr):
        """True when a blocking CHECK for this module is a load barrier.

        Modules that write memory through the MAU (the MLR's GOT copy and
        PLT rewrite, its randomized-base results) must not be overtaken by
        younger loads, which would read the pre-update values: synchronous
        mode means "the pipeline can commit only when the check ...
        completes", and loads reading module output must also wait.
        """
        if instr.blk == 0:
            return False
        module = self.modules.get(instr.module)
        return bool(module is not None and module.enabled
                    and getattr(module, "WRITES_MEMORY", False))

    def ioq_gate(self, uop, cycle):
        """Commit gate for CHECK instructions (Table 1 semantics).

        Returns ``"wait"``, ``"ok"`` or ``"error"``.
        """
        if self.safe_mode:
            return "ok"          # decoupled: constant checkValid=1, check=0
        entry = self.ioq.get(uop.seq)
        if entry is None:
            return "ok"
        if entry.effective_check_valid == 0:
            return "wait"
        return "error" if entry.effective_check else "ok"

    # ------------------------------------------------------------------ step

    def step(self, cycle):
        """Advance the framework one machine cycle."""
        self.cycle = cycle
        enabled = self._enabled_modules()

        for seq, uop in self.queues.fetch_out.pop_ready(cycle):
            if uop.instr.is_check:
                self._handle_check(uop, cycle)
            else:
                for module in enabled:
                    module.on_fetch(uop, cycle)

        # Regfile_Data entries already annotated the IOQ at on_operands();
        # draining keeps queue occupancy bounded and the stats meaningful.
        self.queues.regfile_data.pop_ready(cycle)

        for seq, uop in self.queues.execute_out.pop_ready(cycle):
            for module in enabled:
                module.on_execute(uop, cycle)

        for seq, uop, value in self.queues.memory_out.pop_ready(cycle):
            for module in enabled:
                module.on_mem_load(uop, cycle, value)

        for item in self.queues.commit_out.pop_ready(cycle):
            if item[0] == "commit":
                __, committed, commit_tid = item
                deferred = self._commit_deferred.pop(committed.seq, None)
                live_tid = self.current_tid
                self.current_tid = commit_tid
                try:
                    if deferred is not None:
                        # Enabled-ness was decided at scan time (the
                        # module acquired the CHECK then); commit makes
                        # the state change permanent.
                        module, uop, entry = deferred
                        module.on_check(uop, entry, cycle)
                    for module in enabled:
                        module.on_commit(committed, cycle)
                finally:
                    self.current_tid = live_tid
            else:
                for kill in item[1]:
                    self._commit_deferred.pop(kill, None)
                for module in enabled:
                    module.on_squash(item[1], cycle)

        self._drain_blk_queues(cycle)
        for module in self.modules.values():
            module.step(cycle)
        self.mau.step(cycle)
        self.selfcheck.step(cycle)

    def quiescent(self):
        """Can the next :meth:`step` calls be pure cycle stamps?

        True only when every queue, blocked-CHECK backlog, deferred
        commit, IOQ entry and the MAU are empty/idle AND no registered
        module overrides :meth:`RSEModule.step` (AHBM heartbeats, ICM
        in-flight checks and MLR pending stores are cycle-sensitive
        even with nothing queued).  The pipeline's batch fast-path uses
        this to prove skipped stall cycles cannot change RSE state.
        """
        if (self.mau.busy or len(self.ioq) or self._commit_deferred
                or any(self._blk_queues.values())):
            return False
        for queue in self.queues.all_queues():
            if len(queue):
                return False
        base_step = RSEModule.step
        for module in self.modules.values():
            if type(module).step is not base_step:
                return False
        return True

    def drain(self, cycles=4):
        """Step the framework past the latch delay with the pipeline idle.

        After a ``halt`` the pipeline stops stepping the engine, but
        queued Commit_Out entries (latched one cycle earlier) still hold
        the final instructions; asynchronous modules must see them to
        finish their permanent-state logging.
        """
        for __ in range(cycles):
            self.cycle += 1
            self.step(self.cycle)

    # -------------------------------------------------------- CHECK routing

    def _handle_check(self, uop, cycle):
        instr = uop.instr
        entry = self.ioq.get(uop.seq)
        if entry is None:
            return          # squashed before the latch delivered it
        self.checks_seen += 1
        module = self.modules.get(instr.module)
        if module is None:
            # No such module: nothing can gate the instruction; let it
            # commit (the safe default the enable/disable unit produces).
            entry.complete(False, cycle)
            return
        if instr.op == OP_ENABLE:
            module.enabled = True
            module.on_enable()
            entry.complete(False, cycle)
            return
        if instr.op == OP_DISABLE:
            module.enabled = False
            module.on_disable()
            entry.complete(False, cycle)
            return
        if not module.enabled or self.safe_mode:
            # Desensitised path: constant checkValid=1 / check=0.
            entry.complete(False, cycle)
            return
        module.checks_received += 1
        if instr.blk == 0:
            # Asynchronous mode: checkValid is set "immediately after [the
            # module] scans the Fetch_Out queue"; the module's permanent
            # state changes only when the commit signal arrives.
            entry.complete(False, cycle)
            self._commit_deferred[uop.seq] = (module, uop, entry)
            return
        queue = self._blk_queues.setdefault(instr.module, deque())
        queue.append((uop, entry))
        self._drain_blk_queues(cycle)

    def _drain_blk_queues(self, cycle):
        """Deliver blocking CHECKs in per-module program order."""
        for module_id, queue in self._blk_queues.items():
            while queue:
                uop, entry = queue[0]
                if self.ioq.get(uop.seq) is not entry:
                    queue.popleft()          # squashed meanwhile
                    continue
                if op_reads_payload(uop.instr.op) and entry.payload is None:
                    break          # hold younger CHECKs behind this one
                queue.popleft()
                module = self.modules.get(module_id)
                if module is not None and module.enabled:
                    module.on_check(uop, entry, cycle)
                else:
                    entry.complete(False, cycle)

    def note_error_transition(self, module, entry, cycle):
        """A module set an IOQ check (error) bit; feed the self-checker."""
        self.selfcheck.record_error(module, cycle)

    # ------------------------------------------------------------ safe mode

    def decouple(self, reason):
        """Switch to safe mode: the framework no longer gates the pipeline."""
        self.safe_mode = True
        self.safe_mode_reason = reason

    def recouple(self):
        """Re-attach the framework (after repair / for testing)."""
        self.safe_mode = False
        self.safe_mode_reason = None

    # -------------------------------------------------------- kernel facing

    def set_current_thread(self, tid):
        """Kernel notifies the framework of the running thread (context switch)."""
        self.current_tid = tid

    def snapshot(self):
        """The RSE's section of the machine snapshot document."""
        return {
            "checks_seen": self.checks_seen,
            "safe_mode": self.safe_mode,
            "ioq": {
                "allocated": self.ioq.allocated_total,
                "occupancy": len(self.ioq),
            },
            "mau": {
                "requests": self.mau.requests_total,
                "bytes_loaded": self.mau.bytes_loaded,
                "bytes_stored": self.mau.bytes_stored,
            },
            "queues": {queue.name: {"pushed": queue.pushed_total,
                                    "dropped": queue.dropped_overflow}
                       for queue in self.queues.all_queues()},
            "selfcheck_trips": len(self.selfcheck.trips),
            "modules": {m.name: m.snapshot()
                        for m in self.modules.values()},
        }

    def reset_stats(self):
        """Zero framework counters (machine-wide warm-up reset).

        Architectural state (enabled bits, safe mode, IOQ contents,
        module tables) is untouched; only the reporting counters go
        back to zero.
        """
        self.checks_seen = 0
        self.ioq.allocated_total = 0
        self.mau.requests_total = 0
        self.mau.bytes_loaded = 0
        self.mau.bytes_stored = 0
        for queue in self.queues.all_queues():
            queue.pushed_total = 0
            queue.dropped_overflow = 0
        self.selfcheck.trips.clear()
        for module in self.modules.values():
            module.reset_stats()

