"""Memory Access Unit (MAU) — Section 3.2.

The MAU performs memory accesses on behalf of RSE modules, eliminating a
per-module bus interface.  A request names the address, access type
(load/store), byte count and a completion callback (the hardware
equivalent: a pointer to the module's buffer).  Requests queue and are
serviced in cyclic (FIFO across modules) order; the MAU shares the bus
interface unit with the pipeline and always loses arbitration to it
(modelled by :meth:`MemoryHierarchy.mau_access`, which also keeps MAU
traffic out of the processor caches).
"""

from collections import deque


class MAURequest:
    """One queued module request.

    Completion is delivered one of two ways:

    * ``module``/``tag`` — the MAU calls ``module.on_mau_complete(request)``
      with the finished request; *tag* is an opaque continuation token the
      module stashed at submit time (an in-flight check, an IOQ entry).
      This is the preferred form: the request is plain data, so a pending
      request survives :meth:`Machine.checkpoint` / ``restore`` intact.
    * ``callback`` — a bare Python callable, kept for ad-hoc consumers.
      A closure captures live objects the checkpoint layer cannot see
      through, so a machine with a pending callback request refuses to
      checkpoint.
    """

    __slots__ = ("module_name", "kind", "addr", "nbytes", "data", "callback",
                 "module", "tag", "done_cycle", "result")

    def __init__(self, module_name, kind, addr, nbytes, data=None,
                 callback=None, module=None, tag=None):
        if kind not in ("load", "store"):
            raise ValueError("kind must be 'load' or 'store'")
        self.module_name = module_name
        self.kind = kind
        self.addr = addr
        self.nbytes = nbytes
        self.data = data              # payload for stores
        self.callback = callback      # called as callback(result_bytes|None)
        self.module = module          # delivery target for tag-based requests
        self.tag = tag                # opaque continuation token
        self.done_cycle = None
        self.result = None


class MemoryAccessUnit:
    """FIFO service of module memory requests over the shared bus."""

    def __init__(self, memory, hierarchy):
        self.memory = memory
        self.hierarchy = hierarchy
        self._queue = deque()
        self._active = None
        self.requests_total = 0
        self.bytes_loaded = 0
        self.bytes_stored = 0

    # ---------------------------------------------------------------- submit

    def load(self, module_name, addr, nbytes, callback=None,
             module=None, tag=None):
        """Queue a load of *nbytes* from *addr*.

        Completion either calls *callback(bytes)* or, for checkpointable
        tag-based requests, ``module.on_mau_complete(request)``.
        """
        request = MAURequest(module_name, "load", addr, nbytes,
                             callback=callback, module=module, tag=tag)
        self._queue.append(request)
        self.requests_total += 1
        return request

    def store(self, module_name, addr, data, callback=None,
              module=None, tag=None):
        """Queue a store of *data* to *addr* (completion as for :meth:`load`)."""
        request = MAURequest(module_name, "store", addr, len(data),
                             data=bytes(data), callback=callback,
                             module=module, tag=tag)
        self._queue.append(request)
        self.requests_total += 1
        return request

    # ------------------------------------------------------------------ step

    def step(self, cycle):
        """Advance the MAU one cycle: finish/start requests as the bus allows."""
        active = self._active
        if active is not None:
            if cycle < active.done_cycle:
                return
            # Transfer completes this cycle: move the data functionally.
            if active.kind == "load":
                active.result = self.memory.load_bytes(active.addr,
                                                       active.nbytes)
                self.bytes_loaded += active.nbytes
            else:
                self.memory.store_bytes(active.addr, active.data)
                self.bytes_stored += active.nbytes
            self._active = None
            if active.callback is not None:
                active.callback(active.result)
            elif active.module is not None:
                active.module.on_mau_complete(active)
        if self._active is None and self._queue:
            request = self._queue.popleft()
            request.done_cycle = self.hierarchy.mau_access(cycle,
                                                           request.nbytes)
            self._active = request

    @property
    def busy(self):
        return self._active is not None or bool(self._queue)

    def pending(self):
        return len(self._queue) + (1 if self._active else 0)
