"""Base class for RSE hardware modules.

A module (Section 3.2) has, irrespective of functionality:

* a mechanism to scan ``Fetch_Out`` for CHECK instructions addressed to
  it (the engine routes them to :meth:`on_check`);
* a memory buffer, filled through the MAU;
* module-specific checking logic.

Modules operate synchronously (the pipeline commits only after the check
completes — e.g. the ICM) or asynchronously (the module lags the pipeline
and logs permanent state at commit — e.g. the DDT).

``fault_mode`` implements the error scenarios of Table 2 for the
self-checking experiments:

* ``"no_progress"``   — the module never produces a result;
* ``"false_alarm"``   — the module always declares an error;
* ``"false_negative"``— the module always declares no error.
"""

import enum


class ModuleMode(enum.Enum):
    SYNC = "synchronous"
    ASYNC = "asynchronous"


FAULT_MODES = (None, "no_progress", "false_alarm", "false_negative")


class RSEModule:
    """Common behaviour for ICM / MLR / DDT / AHBM (and test modules)."""

    #: Module number on the CHECK interface; subclasses override.
    MODULE_ID = 0
    #: Default operating mode; subclasses override.
    MODE = ModuleMode.ASYNC

    def __init__(self, name=None):
        self.name = name or type(self).__name__
        self.engine = None          # set by RSE.attach()
        self.enabled = False
        self.fault_mode = None
        self.checks_received = 0
        self.errors_raised = 0

    # ----------------------------------------------------------- lifecycle

    def attached(self, engine):
        """Called once when the module is plugged into the framework."""
        self.engine = engine

    def on_enable(self):
        """Hook: module was enabled via a CHECK instruction."""

    def on_disable(self):
        """Hook: module was disabled via a CHECK instruction."""

    # ------------------------------------------------------- input routing

    def on_check(self, uop, entry, cycle):
        """A CHECK instruction addressed to this module arrived.

        *entry* is the instruction's IOQ entry; ``entry.payload`` holds
        the (a0, a1) values for payload-carrying operations.  The module
        must eventually call :meth:`finish_check` for blocking checks.
        """

    def on_fetch(self, uop, cycle):
        """A (non-CHECK) instruction passed through Fetch_Out."""

    def on_execute(self, uop, cycle):
        """Execute_Out: result or effective address became available."""

    def on_mem_load(self, uop, cycle, value):
        """Memory_Out: a load's value arrived from the memory stage."""

    def on_commit(self, uop, cycle):
        """Commit_Out: the pipeline committed *uop*."""

    def on_squash(self, seqs, cycle):
        """Commit_Out: the pipeline squashed the given sequence numbers."""

    def pre_commit_store(self, uop, cycle):
        """Synchronous hook before a store retires; return stall cycles."""
        return 0

    def step(self, cycle):
        """Advance module-internal state one machine cycle."""

    def on_mau_complete(self, request):
        """A tag-based MAU request submitted by this module finished.

        *request* is the :class:`~repro.rse.mau.MAURequest`; its ``tag``
        is whatever continuation token the module attached at submit
        time and ``result`` holds the loaded bytes (loads only).  The
        default is a no-op so fire-and-forget stores need no handler.
        """

    # ---------------------------------------------------------------- stats

    def snapshot(self):
        """This module's entry in the machine snapshot document.

        Subclasses add counters via :meth:`_snapshot_extra` rather than
        overriding, so the common key set stays uniform across modules.
        """
        doc = {
            "enabled": self.enabled,
            "checks": self.checks_received,
            "errors": self.errors_raised,
        }
        doc.update(self._snapshot_extra())
        return doc

    def _snapshot_extra(self):
        """Module-specific counters merged into :meth:`snapshot`."""
        return {}

    def reset_stats(self):
        """Zero the module's counters (machine-wide warm-up reset)."""
        self.checks_received = 0
        self.errors_raised = 0

    # -------------------------------------------------------------- results

    def finish_check(self, entry, error, cycle):
        """Write a check result to the IOQ, honouring ``fault_mode``."""
        if self.fault_mode == "no_progress":
            return          # never completes: the watchdog must catch this
        if self.fault_mode == "false_alarm":
            error = True
        elif self.fault_mode == "false_negative":
            error = False
        if error:
            self.errors_raised += 1
        entry.complete(error, cycle)
        if error and self.engine is not None:
            self.engine.note_error_transition(self, entry, cycle)

    def __repr__(self):
        return "<%s module=%d %s%s>" % (
            self.name, self.MODULE_ID, self.MODE.value,
            " enabled" if self.enabled else "")
