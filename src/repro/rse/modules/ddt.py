"""Data Dependency Tracker (DDT) module — Section 4.2 / Figures 4 and 5.

The DDT tracks page-granularity data dependencies between the threads of
a process so that, after a (possibly malicious) thread crashes, the
healthy threads — those not data-dependent on the faulty one — can keep
running while contaminated pages are rolled back.

Two hardware structures (Figure 4):

* **PST** (page status table): ``PageID -> (write-owner, read-owner)``,
  kept small by LRU replacement ("due to memory access locality, only a
  small number of 'hot' pages need to be kept in the PST");
* **DDM** (data dependency matrix): bit (x, y) set means thread *y* is
  data-dependent on thread *x*; the relation is transitive but not
  symmetric.

Transition rules (the four outcomes enumerated in Section 4.2.1, with
*t* the current thread, *t'* the read-owner, *t''* the write-owner):

1. load,  t == t'  — no action;
2. load,  t != t'  — read-owner := t, log dependency t'' -> t;
3. store, t == t'' — no action;
4. store, t != t'' — SavePage exception: the OS handler checkpoints the
   page (pre-image) while the process is suspended; then both owners
   become t.

Loads are processed from the asynchronous ``Commit_Out`` path (the
module "can lag behind the pipeline in completing the logging of the
dependencies").  Stores use the synchronous :meth:`pre_commit_store`
hook, because the pre-image must be captured before the store retires —
the hardware analogue of the MMU raising the copy-on-write exception.

``model_lag=True`` reproduces the paper's noted imperfection: the module
"may lag behind the pipeline by at most 1 cycle.  If a new load which
creates a new dependency arrives within this time the module fails to
log the dependency" — used by the ablation benchmark.
"""

from repro.memory.mainmem import PAGE_SHIFT
from repro.rse.check import MODULE_DDT, OP_DDT_DUMP
from repro.rse.module import ModuleMode, RSEModule


class DDT(RSEModule):
    """The Data Dependency Tracker."""

    MODULE_ID = MODULE_DDT
    MODE = ModuleMode.ASYNC

    def __init__(self, pst_capacity=4096, model_lag=False):
        super().__init__("DDT")
        self.pst_capacity = pst_capacity
        self.model_lag = model_lag
        self.pst = {}                 # page -> [write_owner, read_owner]
        self.ddm = {}                 # producer tid -> set of consumer tids
        self.threads = set()
        self.save_page_handler = None     # set by the kernel
        self.dependencies_logged = 0
        self.dependencies_missed = 0
        self.save_pages_raised = 0
        self.pst_evictions = 0
        self._last_log_cycle = None

    def _snapshot_extra(self):
        return {
            "dependencies_logged": self.dependencies_logged,
            "dependencies_missed": self.dependencies_missed,
            "save_pages_raised": self.save_pages_raised,
            "pst_evictions": self.pst_evictions,
        }

    def reset_stats(self):
        super().reset_stats()
        self.dependencies_logged = 0
        self.dependencies_missed = 0
        self.save_pages_raised = 0
        self.pst_evictions = 0

    # ------------------------------------------------------------- kernel API

    def register_thread(self, tid):
        self.threads.add(tid)
        self.ddm.setdefault(tid, set())

    def forget_thread(self, tid):
        """Drop a terminated thread from the PST and DDM."""
        self.threads.discard(tid)
        self.ddm.pop(tid, None)
        for consumers in self.ddm.values():
            consumers.discard(tid)
        for owners in self.pst.values():
            if owners[0] == tid:
                owners[0] = None
            if owners[1] == tid:
                owners[1] = None

    def dependents_of(self, tid):
        """Transitive closure of threads data-dependent on *tid*."""
        closure = set()
        frontier = [tid]
        while frontier:
            producer = frontier.pop()
            for consumer in self.ddm.get(producer, ()):
                if consumer != tid and consumer not in closure:
                    closure.add(consumer)
                    frontier.append(consumer)
        return closure

    def reset_tracking(self):
        self.pst.clear()
        for consumers in self.ddm.values():
            consumers.clear()

    # ------------------------------------------------------------- PST access

    def _pst_entry(self, page):
        entry = self.pst.get(page)
        if entry is not None:
            # LRU touch: move to MRU position.
            del self.pst[page]
            self.pst[page] = entry
            return entry
        if len(self.pst) >= self.pst_capacity:
            self.pst.pop(next(iter(self.pst)))
            self.pst_evictions += 1
        entry = [None, None]
        self.pst[page] = entry
        return entry

    # ---------------------------------------------------------------- inputs

    def on_commit(self, uop, cycle):
        """Asynchronous dependency logging for committed loads."""
        if not uop.instr.is_load or uop.eff_addr is None:
            return
        tid = self.engine.current_tid
        page = uop.eff_addr >> PAGE_SHIFT
        entry = self._pst_entry(page)
        write_owner, read_owner = entry
        if read_owner == tid:
            return          # outcome (1): no action
        entry[1] = tid
        if write_owner is None or write_owner == tid:
            return
        if self.model_lag and self._last_log_cycle is not None \
                and cycle - self._last_log_cycle <= 1:
            self.dependencies_missed += 1
            return
        self._last_log_cycle = cycle
        if tid not in self.ddm.setdefault(write_owner, set()):
            self.ddm[write_owner].add(tid)
            self.dependencies_logged += 1

    def pre_commit_store(self, uop, cycle):
        """Synchronous SavePage path for stores (outcome 4)."""
        if not uop.instr.is_store or uop.eff_addr is None:
            return 0
        tid = self.engine.current_tid
        page = uop.eff_addr >> PAGE_SHIFT
        entry = self._pst_entry(page)
        if entry[0] == tid:
            return 0          # outcome (3): already the write-owner
        self.save_pages_raised += 1
        stall = 0
        if self.save_page_handler is not None:
            stall = self.save_page_handler(page, tid, cycle)
        entry[0] = tid
        entry[1] = tid
        return stall

    def on_check(self, uop, entry, cycle):
        if uop.instr.op == OP_DDT_DUMP:
            self._dump(entry, cycle)
        else:
            self.finish_check(entry, False, cycle)

    # ------------------------------------------------------------------ dump

    def _dump(self, entry, cycle):
        """The "size query and retrieval" CHECK: serialise DDM to memory.

        Format at a0: word count N of registered threads, then N thread
        ids, then N*N dependency bits packed one byte per cell (row =
        producer, column = consumer).
        """
        dest = (entry.payload or (0, 0))[0]
        tids = sorted(self.threads)
        blob = bytearray()
        blob += len(tids).to_bytes(4, "little")
        for tid in tids:
            blob += tid.to_bytes(4, "little")
        for producer in tids:
            consumers = self.ddm.get(producer, set())
            for consumer in tids:
                blob.append(1 if consumer in consumers else 0)
        # Tag-based completion (no closure) so a pending dump survives a
        # machine checkpoint/restore.
        self.engine.mau.store(self.name, dest, bytes(blob),
                              module=self, tag=entry)

    def on_mau_complete(self, request):
        """The serialised DDM reached memory: release the waiting CHECK."""
        self.finish_check(request.tag, False, self.engine.cycle)
