"""Instruction Checker Module (ICM) — Section 4.3.

The ICM "preemptively checks for errors in an instruction just at the
time the instruction is dispatched, by comparing the binary of the
instruction in the pipeline with a redundant copy of the instruction
fetched from memory", covering multi-bit errors anywhere between memory
and dispatch (including residency in the on-chip caches).

Implementation points reproduced from the paper:

* the program is statically parsed and all checked instructions are
  stored **contiguously** in a separate chunk of memory (the
  *CheckerMemory*) — :func:`build_checker_memory`;
* a dedicated cache (*Icm_Cache*, default 256 entries) inside the ICM
  reduces CheckerMemory traffic; LRU replacement with a replacement
  group of 8 entries — contiguous placement makes a single fetch bring
  in 8 neighbouring checked instructions (spatial locality);
* the module is a three-stage pipeline (ICM_IDLE scans Fetch_Out,
  ICM_MEMREQ awaits the redundant copy, ICM_COMP compares and writes
  the IOQ);
* Figure 6 timeline: on an Icm_Cache hit the comparison result reaches
  the IOQ two cycles after the CHECK is seen, so it is available to the
  commit stage at t+5 — normally before the instruction is ready to
  retire;
* on a miss the redundant copy comes through the MAU at main-memory
  latency, which is when the pipeline can stall at commit.
"""

from repro.isa.encoding import encode
from repro.isa.instructions import SPEC_BY_NAME
from repro.rse.check import MODULE_ICM, OP_ICM_CHECK
from repro.rse.module import ModuleMode, RSEModule

#: Default base address of the CheckerMemory region.
CHECKER_MEMORY_BASE = 0x20000000

#: Figure 6: cache access + comparison, in cycles, after the CHECK (and
#: the checked instruction) have been seen in Fetch_Out.
HIT_PIPELINE_CYCLES = 2
#: Comparison stage alone (applied after a missing copy arrives).
COMPARE_CYCLES = 1


# Coverage predicates: Section 4.3 — "the instruction checked can be a
# control flow, load/store or a critical code section of the application".

def cover_control(instr):
    """Check all control-flow instructions (the Table 4 configuration)."""
    return instr.is_control


def cover_memory(instr):
    """Check all loads and stores."""
    return instr.is_mem


def cover_all(instr):
    """Check every instruction (maximum coverage, maximum cost)."""
    return not instr.is_check


def cover_region(lo, hi):
    """Check a critical code section: every instruction in [lo, hi).

    Region predicates receive ``(instr, pc)``; :func:`build_checker_memory`
    detects the two-argument form automatically.
    """
    def predicate(instr, pc):
        return lo <= pc < hi

    return predicate


def build_checker_memory(memory, text_base, text_length, base=CHECKER_MEMORY_BASE,
                         predicate=None):
    """Statically parse a text segment and build the CheckerMemory.

    Every instruction selected by *predicate* (default: all control-flow
    instructions, the configuration evaluated in Table 4) has its word
    copied to a contiguous slot starting at *base*.  Returns the
    ``pc -> checker_address`` map the ICM is configured with.
    """
    import inspect

    from repro.isa.encoding import DecodeError, decode

    if predicate is None:
        predicate = cover_control
    wants_pc = len(inspect.signature(predicate).parameters) == 2
    checker_map = {}
    slot = base
    for offset in range(0, text_length, 4):
        pc = text_base + offset
        word = memory.load_word(pc)
        try:
            instr = decode(word)
        except DecodeError:
            continue
        selected = predicate(instr, pc) if wants_pc else predicate(instr)
        if selected:
            memory.store_word(slot, word)
            checker_map[pc] = slot
            slot += 4
    return checker_map


def make_icm_injector(checker_map):
    """Runtime CHECK-insertion policy for the pipeline (Section 5.1).

    Returns a callable for ``Pipeline.check_injector`` that inserts a
    blocking ICM CHECK before every instruction whose PC has a
    CheckerMemory slot.
    """
    from repro.isa.encoding import decode

    chk_word = encode(SPEC_BY_NAME["chk"], module=MODULE_ICM, blk=1,
                      op=OP_ICM_CHECK)
    chk_instr = decode(chk_word)

    def injector(pc, instr):
        if pc in checker_map:
            return chk_instr
        return None

    return injector


class _InflightCheck:
    """One check moving through the ICM's internal pipeline."""

    __slots__ = ("entry", "pc", "pipeline_word", "checker_addr", "due_cycle",
                 "redundant_word", "seq")

    def __init__(self, entry, seq, pc, pipeline_word, checker_addr):
        self.entry = entry
        self.seq = seq
        self.pc = pc
        self.pipeline_word = pipeline_word
        self.checker_addr = checker_addr
        self.due_cycle = None
        self.redundant_word = None


class ICM(RSEModule):
    """The Instruction Checker Module."""

    MODULE_ID = MODULE_ICM
    MODE = ModuleMode.SYNC

    def __init__(self, cache_entries=256, replacement_group=8):
        super().__init__("ICM")
        self.cache_entries = cache_entries
        self.replacement_group = replacement_group
        self.checker_map = {}
        # Icm_Cache: checker word address -> word; dict order is LRU order.
        self._cache = {}
        self._waiting = {}            # seq of checked instr -> (chk uop, entry)
        self._inflight = []
        self.cache_hits = 0
        self.cache_misses = 0
        self.checks_completed = 0
        self.mismatches = 0
        self.unmapped_checks = 0

    def configure(self, checker_map):
        """Install the pc -> CheckerMemory-slot map from the static parse."""
        self.checker_map = dict(checker_map)

    # --------------------------------------------------------------- inputs

    def on_check(self, uop, entry, cycle):
        if uop.instr.op != OP_ICM_CHECK:
            entry.complete(False, cycle)
            return
        # The instruction to check follows the CHECK in the stream; its
        # Fetch_Out entry carries the binary as fetched by the pipeline.
        self._waiting[uop.seq + 1] = (uop, entry)

    def on_fetch(self, uop, cycle):
        pending = self._waiting.pop(uop.seq, None)
        if pending is None:
            return
        chk_uop, entry = pending
        checker_addr = self.checker_map.get(uop.pc)
        if checker_addr is None:
            # No redundant copy was provisioned for this PC; nothing to
            # compare against — treat as unchecked.
            self.unmapped_checks += 1
            self.finish_check(entry, False, cycle)
            return
        check = _InflightCheck(entry, chk_uop.seq, uop.pc, uop.instr.word,
                               checker_addr)
        if checker_addr in self._cache:
            word = self._cache.pop(checker_addr)
            self._cache[checker_addr] = word          # LRU touch
            self.cache_hits += 1
            check.redundant_word = word
            check.due_cycle = cycle + HIT_PIPELINE_CYCLES
        else:
            self.cache_misses += 1
            self._request_fill(check, cycle)
        self._inflight.append(check)

    def _request_fill(self, check, cycle):
        """ICM_MEMREQ: fetch a replacement group through the MAU.

        The request carries the in-flight check as its *tag* (no closure)
        so a machine checkpointed mid-miss restores with the fill still
        pending and deliverable.
        """
        group_bytes = self.replacement_group * 4
        group_base = check.checker_addr - (check.checker_addr % group_bytes)
        self.engine.mau.load(self.name, group_base, group_bytes,
                             module=self, tag=check)

    def on_mau_complete(self, request):
        """A replacement group arrived: install it and start the compare."""
        check = request.tag
        data = request.result
        # Install the whole group (contiguous checked instructions).
        for index in range(self.replacement_group):
            addr = request.addr + index * 4
            word = int.from_bytes(data[index * 4:index * 4 + 4], "little")
            self._cache.pop(addr, None)
            self._cache[addr] = word
        self._evict_to_capacity()
        check.redundant_word = self._cache[check.checker_addr]
        check.due_cycle = self.engine.cycle + COMPARE_CYCLES

    def _evict_to_capacity(self):
        """Drop least-recently-used entries, a replacement group at a time."""
        while len(self._cache) > self.cache_entries:
            for __ in range(min(self.replacement_group,
                                len(self._cache) - self.cache_entries)):
                self._cache.pop(next(iter(self._cache)))

    # ----------------------------------------------------------------- step

    def step(self, cycle):
        if not self._inflight:
            return
        remaining = []
        for check in self._inflight:
            if check.due_cycle is None or check.due_cycle > cycle:
                remaining.append(check)
                continue
            error = check.redundant_word != check.pipeline_word
            if error:
                self.mismatches += 1
            self.checks_completed += 1
            self.finish_check(check.entry, error, cycle)
        self._inflight = remaining

    def on_squash(self, seqs, cycle):
        self._waiting = {seq: pending for seq, pending in self._waiting.items()
                         if pending[0].seq not in seqs and seq not in seqs}
        self._inflight = [check for check in self._inflight
                          if check.seq not in seqs]

    # ---------------------------------------------------------------- stats

    @property
    def cache_hit_rate(self):
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def _snapshot_extra(self):
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "checks_completed": self.checks_completed,
            "mismatches": self.mismatches,
            "unmapped_checks": self.unmapped_checks,
        }

    def reset_stats(self):
        super().reset_stats()
        self.cache_hits = 0
        self.cache_misses = 0
        self.checks_completed = 0
        self.mismatches = 0
        self.unmapped_checks = 0
