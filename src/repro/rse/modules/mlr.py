"""Memory Layout Randomization (MLR) module — Section 4.1 / Figure 3.

The randomization task is split between the program loader and this
module.  The loader assembles a *special header* (segment locations and
sizes, stack/heap/shared-library bases) and drives the module with the
CHECK sequence I0..I11 of Figure 3(A):

====  ==================  ================================================
I1    OP_MLR_EXEC_HDR     a0 = header location, a1 = header size
I2    OP_MLR_PI_RAND      randomize position-independent regions: parse
                          the header, add a value derived from the clock
                          cycle counter to each base, write the results
                          to predefined memory locations
I5    OP_MLR_GOT_OLD      a0 = old GOT address, a1 = GOT size (bytes)
I6    OP_MLR_GOT_NEW      a0 = new GOT address
I7    OP_MLR_COPY_GOT     hardware copy old GOT -> GOT buffer -> new GOT
I8    OP_MLR_PLT_INFO     a0 = PLT address, a1 = PLT size (bytes)
I10   OP_MLR_WRITE_PLT    copy PLT into the PLT buffer, rewrite every
                          entry to point into the new GOT (four adders
                          update 4 entries in parallel), write back
====  ==================  ================================================

All memory traffic goes through the framework's MAU.  The entropy source
is the clock cycle counter, exactly as in Figure 3(B); tests may inject
a deterministic source.
"""

from repro.memory.mainmem import PAGE_SIZE
from repro.program.image import (
    ExecutableHeader,
    PLT_ENTRY_BYTES,
    plt_entry_target,
    rewrite_plt_entry,
)
from repro.program.layout import (
    MLR_RESULT_HEAP,
    MLR_RESULT_SHLIB,
    MLR_RESULT_STACK,
)
from repro.rse.check import (
    MODULE_MLR,
    OP_MLR_COPY_GOT,
    OP_MLR_EXEC_HDR,
    OP_MLR_GOT_NEW,
    OP_MLR_GOT_OLD,
    OP_MLR_PI_RAND,
    OP_MLR_PLT_INFO,
    OP_MLR_WRITE_PLT,
)
from repro.rse.module import ModuleMode, RSEModule

#: Register-transfer cycles for parsing the header and the three parallel
#: adds of Figure 3(B) (one cycle to parse/latch, one for the adders).
PARSE_AND_ADD_CYCLES = 2
#: Adders available for parallel PLT entry updates (Section 5.3: "4
#: adders are used to update the PLT Table entries in parallel").
PLT_ADDERS = 4

MASK32 = 0xFFFFFFFF


def cycle_counter_entropy(cycle):
    """Derive a page-aligned random offset from the clock cycle counter.

    The paper "computes the randomized address values ... by adding the
    value from the clock cycle counter".  Adding the raw counter would
    break alignment, so the hardware masks it to whole pages; the
    multiplier spreads low-entropy early-boot counter values across the
    offset range.
    """
    pages = ((cycle * 2654435761) >> 8) & 0x3FF          # up to 1023 pages
    return (pages | 1) * PAGE_SIZE


class MLR(RSEModule):
    """The Memory Layout Randomization module."""

    MODULE_ID = MODULE_MLR
    MODE = ModuleMode.SYNC
    #: MLR writes memory through the MAU; blocking MLR CHECKs are load
    #: barriers in the pipeline (see RSE.check_blocks_loads).
    WRITES_MEMORY = True

    def __init__(self, entropy_source=cycle_counter_entropy):
        super().__init__("MLR")
        self.entropy_source = entropy_source
        # Latched CHECK parameters (Figure 3(B) registers).
        self.hdr_addr = 0
        self.hdr_size = 0
        self.got_old = 0
        self.got_size = 0
        self.got_new = 0
        self.plt_addr = 0
        self.plt_size = 0
        # Internal buffers.
        self.header = None
        self.got_buffer = b""
        self.plt_buffer = b""
        # Results of the last PI randomization (also written to memory).
        self.randomized = {}
        self.operations_done = 0
        self._pending_store = None
        # Measured latency of the last position-independent randomization
        # (the Section 5.3 "penalty for position independent regions").
        self.pi_rand_started = None
        self.pi_rand_finished = None

    def _snapshot_extra(self):
        started, finished = self.pi_rand_started, self.pi_rand_finished
        return {
            "operations_done": self.operations_done,
            "pi_rand_started": started,
            "pi_rand_finished": finished,
            "pi_rand_cycles": (finished - started
                               if started is not None
                               and finished is not None else None),
        }

    def reset_stats(self):
        super().reset_stats()
        self.operations_done = 0

    # --------------------------------------------------------------- checks

    def on_check(self, uop, entry, cycle):
        op = uop.instr.op
        payload = entry.payload or (0, 0)
        if op == OP_MLR_EXEC_HDR:
            self.hdr_addr, self.hdr_size = payload
            self._done(entry, cycle)
        elif op == OP_MLR_GOT_OLD:
            self.got_old, self.got_size = payload
            self._done(entry, cycle)
        elif op == OP_MLR_GOT_NEW:
            self.got_new = payload[0]
            self._done(entry, cycle)
        elif op == OP_MLR_PLT_INFO:
            self.plt_addr, self.plt_size = payload
            self._done(entry, cycle)
        elif op == OP_MLR_PI_RAND:
            self._pi_randomize(entry, cycle)
        elif op == OP_MLR_COPY_GOT:
            self._copy_got(entry, cycle)
        elif op == OP_MLR_WRITE_PLT:
            self._write_plt(entry, cycle)
        else:
            self._done(entry, cycle)

    def _done(self, entry, cycle, error=False):
        self.operations_done += 1
        self.finish_check(entry, error, cycle)

    # --------------------------------- position-independent randomization

    def _pi_randomize(self, entry, cycle):
        """I2: parse the header, randomize stack/heap/shlib bases."""
        mau = self.engine.mau
        self.pi_rand_started = cycle
        self.pi_rand_finished = None

        def header_loaded(data):
            try:
                header = ExecutableHeader.unpack(data)
            except ValueError:
                self._done(entry, self.engine.cycle, error=True)
                return
            self.header = header
            now = self.engine.cycle + PARSE_AND_ADD_CYCLES
            shlib = (header.shlib_base + self.entropy_source(now)) & MASK32
            heap = (header.heap_base +
                    self.entropy_source(now + 1)) & MASK32
            stack = (header.stack_base -
                     self.entropy_source(now + 2)) & MASK32
            self.randomized = {"shlib": shlib, "stack": stack, "heap": heap}
            results = (shlib.to_bytes(4, "little") +
                       stack.to_bytes(4, "little") +
                       heap.to_bytes(4, "little"))
            # One store covers the three adjacent predefined locations.
            assert (MLR_RESULT_STACK == MLR_RESULT_SHLIB + 4 and
                    MLR_RESULT_HEAP == MLR_RESULT_SHLIB + 8)
            def stored(__):
                self.pi_rand_finished = self.engine.cycle
                self._done(entry, self.engine.cycle)

            mau.store(self.name, self.hdr_addr + MLR_RESULT_SHLIB, results,
                      stored)

        mau.load(self.name, self.hdr_addr, self.hdr_size or 64, header_loaded)

    # ------------------------------------------------------------ GOT copy

    def _copy_got(self, entry, cycle):
        """I7: copy the old GOT into the GOT buffer, then to its new home."""
        if not self.got_size or not self.got_new:
            self._done(entry, cycle, error=True)
            return
        mau = self.engine.mau

        def got_loaded(data):
            self.got_buffer = data
            mau.store(self.name, self.got_new, data,
                      lambda __: self._done(entry, self.engine.cycle))

        mau.load(self.name, self.got_old, self.got_size, got_loaded)

    # ----------------------------------------------------------- PLT rewrite

    def _write_plt(self, entry, cycle):
        """I10: rewrite the PLT so entries indirect through the new GOT."""
        if not self.plt_size or not self.got_new:
            self._done(entry, cycle, error=True)
            return
        mau = self.engine.mau
        delta = (self.got_new - self.got_old) & MASK32

        def plt_loaded(data):
            self.plt_buffer = data
            entries = len(data) // PLT_ENTRY_BYTES
            rewritten = bytearray(data)
            bad = False
            for index in range(entries):
                offset = index * PLT_ENTRY_BYTES
                words = [int.from_bytes(data[offset + i * 4:offset + i * 4 + 4],
                                        "little") for i in range(4)]
                try:
                    target = plt_entry_target(words)
                except ValueError:
                    bad = True
                    continue
                new_words = rewrite_plt_entry(words, (target + delta) & MASK32)
                for i, word in enumerate(new_words):
                    rewritten[offset + i * 4:offset + i * 4 + 4] = \
                        word.to_bytes(4, "little")
            # Four adders update four entries per cycle (footnote in 5.3).
            rewrite_cycles = -(-entries // PLT_ADDERS)
            self._schedule_store(entry, rewritten, rewrite_cycles, bad)

        mau.load(self.name, self.plt_addr, self.plt_size, plt_loaded)

    def _schedule_store(self, entry, rewritten, delay_cycles, bad):
        """Charge the adder latency, then write the PLT buffer back."""
        due = self.engine.cycle + delay_cycles
        self._pending_store = (due, entry, bytes(rewritten), bad)

    def step(self, cycle):
        pending = self._pending_store
        if pending is None:
            return
        due, entry, data, bad = pending
        if cycle < due:
            return
        self._pending_store = None
        self.engine.mau.store(
            self.name, self.plt_addr, data,
            lambda __: self._done(entry, self.engine.cycle, error=bad))
