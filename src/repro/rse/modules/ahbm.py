"""Adaptive Heartbeat Monitor (AHBM) — Section 4.4 / Figure 7.

Hardware structures from the block diagram:

* ``ENTITY_IDX``   — a content-addressable memory holding the IDs of the
  monitored processes (or the OS);
* ``COUNTER_RAM``  — per-entity heartbeat counters, incremented by the
  *Increment Counter Value* CHECK instruction (or, for the OS, by a
  kernel driver writing directly);
* ``TIMEOUT_MEM``  — per-entity dynamic timeout values.

The *Adaptive Timeout Monitor* samples the counters at a fixed interval
and recomputes each timeout dynamically.  The paper omits its algorithm
"due to space limitations"; we implement a Jacobson-style estimator
(documented in DESIGN.md as our substitution): on every observed
heartbeat the inter-beat gap updates an EWMA mean and mean deviation,
and the timeout is ``mean + 4*dev + sample_period``.  An entity whose
counter has not advanced for longer than its timeout is declared failed
and the failure callback fires once.
"""

from repro.rse.check import (
    MODULE_AHBM,
    OP_AHBM_HEARTBEAT,
    OP_AHBM_REGISTER,
    OP_AHBM_UNREGISTER,
)
from repro.rse.module import ModuleMode, RSEModule

#: EWMA gains (Jacobson/Karels style).
GAIN_MEAN = 0.125
GAIN_DEV = 0.25
DEVIATION_FACTOR = 4


class MonitoredEntity:
    """State for one monitored process/thread/OS id."""

    __slots__ = ("entity_id", "counter", "last_change_cycle", "mean_gap",
                 "gap_dev", "beats_seen", "alive", "registered_cycle")

    def __init__(self, entity_id, cycle):
        self.entity_id = entity_id
        self.counter = 0
        self.last_change_cycle = cycle
        self.mean_gap = None
        self.gap_dev = 0.0
        self.beats_seen = 0
        self.alive = True
        self.registered_cycle = cycle

    def observe_beat(self, cycle):
        gap = cycle - self.last_change_cycle
        self.last_change_cycle = cycle
        self.counter += 1
        self.beats_seen += 1
        if self.mean_gap is None:
            self.mean_gap = float(gap)
            self.gap_dev = gap / 2.0
        else:
            error = gap - self.mean_gap
            self.mean_gap += GAIN_MEAN * error
            self.gap_dev += GAIN_DEV * (abs(error) - self.gap_dev)


class AHBM(RSEModule):
    """The Adaptive Heartbeat Monitor."""

    MODULE_ID = MODULE_AHBM
    MODE = ModuleMode.ASYNC

    def __init__(self, sample_period=256, initial_timeout=20_000,
                 min_timeout=512):
        super().__init__("AHBM")
        self.sample_period = sample_period
        self.initial_timeout = initial_timeout
        self.min_timeout = min_timeout
        self.entities = {}          # ENTITY_IDX + COUNTER_RAM + TIMEOUT_MEM
        self.failures = []          # (cycle, entity_id)
        self.on_failure = None      # callback(entity_id, cycle)
        self.beats_total = 0

    def _snapshot_extra(self):
        return {
            "beats_total": self.beats_total,
            "entities_monitored": len(self.entities),
            "failures": len(self.failures),
        }

    def reset_stats(self):
        super().reset_stats()
        self.beats_total = 0

    # ------------------------------------------------------------- direct API

    def register(self, entity_id, cycle=None):
        """Start monitoring *entity_id* (kernel driver path)."""
        cycle = self.engine.cycle if cycle is None else cycle
        self.entities[entity_id] = MonitoredEntity(entity_id, cycle)

    def unregister(self, entity_id):
        self.entities.pop(entity_id, None)

    def beat(self, entity_id, cycle=None):
        """Increment *entity_id*'s counter (kernel driver heartbeat path)."""
        cycle = self.engine.cycle if cycle is None else cycle
        entity = self.entities.get(entity_id)
        if entity is not None:
            entity.observe_beat(cycle)
            self.beats_total += 1

    def timeout_for(self, entity):
        """The TIMEOUT_MEM value: adaptive once enough beats were seen.

        ``2*mean + 4*dev + sample_period``: the doubled mean keeps a
        benign cadence slowdown (e.g. a load spike halving the heartbeat
        rate) from being declared a failure even when the observed
        deviation has converged to ~0, while a genuinely silent entity is
        still flagged within about two of its own periods.
        """
        if entity.mean_gap is None or entity.beats_seen < 2:
            return self.initial_timeout
        timeout = (2 * entity.mean_gap + DEVIATION_FACTOR * entity.gap_dev
                   + self.sample_period)
        return max(self.min_timeout, int(timeout))

    # ----------------------------------------------------------------- checks

    def on_check(self, uop, entry, cycle):
        op = uop.instr.op
        entity_id = (entry.payload or (0, 0))[0]
        if op == OP_AHBM_REGISTER:
            self.register(entity_id, cycle)
        elif op == OP_AHBM_HEARTBEAT:
            self.beat(entity_id, cycle)
        elif op == OP_AHBM_UNREGISTER:
            self.unregister(entity_id)
        self.finish_check(entry, False, cycle)

    # ------------------------------------------------------------------- step

    def step(self, cycle):
        if cycle % self.sample_period:
            return
        for entity in self.entities.values():
            if not entity.alive:
                continue
            silence = cycle - entity.last_change_cycle
            if silence > self.timeout_for(entity):
                entity.alive = False
                self.failures.append((cycle, entity.entity_id))
                if self.on_failure is not None:
                    self.on_failure(entity.entity_id, cycle)

    def is_alive(self, entity_id):
        entity = self.entities.get(entity_id)
        return entity.alive if entity is not None else None
