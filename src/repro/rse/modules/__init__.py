"""The paper's four RSE hardware modules.

* :mod:`~repro.rse.modules.icm`  — Instruction Checker Module (Section 4.3)
* :mod:`~repro.rse.modules.mlr`  — Memory Layout Randomization (Section 4.1)
* :mod:`~repro.rse.modules.ddt`  — Data Dependency Tracker (Section 4.2)
* :mod:`~repro.rse.modules.ahbm` — Adaptive Heartbeat Monitor (Section 4.4)

Plus one module of our own, demonstrating the framework's versatility:

* :mod:`~repro.rse.modules.cfc` — signature-style Control-Flow Checker
  (the Wilken & Kong technique the paper's Section 2 generalises).
"""

from repro.rse.modules.icm import ICM, build_checker_memory, make_icm_injector
from repro.rse.modules.mlr import MLR
from repro.rse.modules.ddt import DDT
from repro.rse.modules.ahbm import AHBM
from repro.rse.modules.cfc import CFC, MODULE_CFC, build_cfg

__all__ = [
    "ICM",
    "build_checker_memory",
    "make_icm_injector",
    "MLR",
    "DDT",
    "AHBM",
    "CFC",
    "MODULE_CFC",
    "build_cfg",
]
