"""Control-Flow Checker (CFC) — an additional framework module.

The paper positions the RSE as "a versatile framework, capable of
incorporating a variety of reliability as well as security checking
routines" and cites embedded signature monitoring for control-flow
checking (Wilken & Kong [15]) as the kind of dedicated mechanism the
framework generalises.  This module demonstrates that versatility: it is
*not* one of the paper's four evaluated modules, but a fifth one built
purely against the public module interface — no engine changes.

Design (derived-signature monitoring, asynchronous mode):

* a static parse of the program builds the control-flow graph: for every
  control-transfer instruction the set of legal successor PCs (branch
  target + fall-through; jump target; ``jal`` targets; ``jr``/``jalr``
  may land on any *registered* function entry or return site);
* at run time the module watches ``Commit_Out``: whenever a control
  instruction retires, the next committed PC must be a legal successor —
  anything else is a control-flow error (a corrupted target, a hijacked
  return, a wild jump);
* asynchronous mode: detection, not prevention — errors are reported
  through a callback (kernel alarm), mirroring watchdog-processor-style
  CFC.
"""

from repro.isa.encoding import DecodeError, decode
from repro.rse.module import ModuleMode, RSEModule

#: Module number on the CHECK interface (1..4 are the paper's modules).
MODULE_CFC = 5

MASK32 = 0xFFFFFFFF


def build_cfg(memory, text_base, text_length):
    """Static parse: successor sets for every control instruction.

    Returns ``(successors, indirect_targets)`` where *successors* maps a
    control instruction's PC to a frozen set of legal next PCs and
    *indirect_targets* is the set of legal landing sites for ``jr``/
    ``jalr`` (function entries = ``jal`` targets, plus every return site
    = the instruction after a call).
    """
    from repro.isa.instructions import InstrClass

    instrs = {}
    for offset in range(0, text_length, 4):
        pc = text_base + offset
        try:
            instrs[pc] = decode(memory.load_word(pc))
        except DecodeError:
            continue

    indirect_targets = set()
    for pc, instr in instrs.items():
        if instr.name == "jal":
            target = ((pc + 4) & 0xF0000000) | (instr.target << 2)
            indirect_targets.add(target)          # function entry
            indirect_targets.add((pc + 4) & MASK32)          # return site
        elif instr.name == "jalr":
            indirect_targets.add((pc + 4) & MASK32)

    successors = {}
    for pc, instr in instrs.items():
        if instr.iclass is InstrClass.BRANCH:
            taken = (pc + 4 + (instr.imm << 2)) & MASK32
            successors[pc] = frozenset({taken, (pc + 4) & MASK32})
        elif instr.name in ("j", "jal"):
            target = ((pc + 4) & 0xF0000000) | (instr.target << 2)
            successors[pc] = frozenset({target})
        elif instr.name in ("jr", "jalr"):
            successors[pc] = None          # checked against indirect_targets
    return successors, frozenset(indirect_targets)


class ControlFlowViolation:
    """One detected illegal control transfer."""

    __slots__ = ("cycle", "from_pc", "to_pc", "kind")

    def __init__(self, cycle, from_pc, to_pc, kind):
        self.cycle = cycle
        self.from_pc = from_pc
        self.to_pc = to_pc
        self.kind = kind          # "direct" or "indirect"

    def __repr__(self):
        return ("ControlFlowViolation(0x%08x -> 0x%08x, %s, cycle=%d)"
                % (self.from_pc, self.to_pc, self.kind, self.cycle))


class CFC(RSEModule):
    """The control-flow checker module."""

    MODULE_ID = MODULE_CFC
    MODE = ModuleMode.ASYNC

    def __init__(self):
        super().__init__("CFC")
        self.successors = {}
        self.indirect_targets = frozenset()
        self.violations = []
        self.on_violation = None          # callback(violation)
        self.transfers_checked = 0
        # Last committed control uop, per thread: commits interleave at
        # context switches, and the checker must not match one thread's
        # branch against another thread's next instruction.
        self._pending_control = {}

    def _snapshot_extra(self):
        return {
            "transfers_checked": self.transfers_checked,
            "violations": len(self.violations),
        }

    def reset_stats(self):
        super().reset_stats()
        self.transfers_checked = 0

    def configure(self, successors, indirect_targets):
        """Install the statically derived control-flow graph."""
        self.successors = dict(successors)
        self.indirect_targets = frozenset(indirect_targets)

    # ---------------------------------------------------------------- inputs

    def on_commit(self, uop, cycle):
        tid = self.engine.current_tid if self.engine else 0
        pending = self._pending_control.pop(tid, None)
        if pending is not None:
            self._verify(pending, uop.pc, cycle)
        if uop.instr.is_control and uop.pc in self.successors:
            self._pending_control[tid] = uop

    def on_squash(self, seqs, cycle):
        # Commits are in order and never squashed; nothing pending can be.
        pass

    def _verify(self, control_uop, next_pc, cycle):
        self.transfers_checked += 1
        allowed = self.successors.get(control_uop.pc)
        if allowed is None:          # jr/jalr: indirect transfer
            legal = next_pc in self.indirect_targets
            kind = "indirect"
        else:
            legal = next_pc in allowed
            kind = "direct"
        if not legal:
            violation = ControlFlowViolation(cycle, control_uop.pc, next_pc,
                                             kind)
            self.violations.append(violation)
            self.errors_raised += 1
            if self.on_violation is not None:
                self.on_violation(violation)
