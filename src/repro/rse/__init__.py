"""The Reliability and Security Engine (RSE) — the paper's contribution.

The RSE lives "on the same die" as the processor: hardware modules
providing error-detection and security services execute in parallel with
the core pipeline (Section 3).  This package implements:

* :mod:`repro.rse.check`     — CHECK-instruction vocabulary (module ids,
  operations, encoding helpers);
* :mod:`repro.rse.queues`    — the input interface (Fetch_Out,
  Regfile_Data, Execute_Out, Memory_Out, Commit_Out) with the one-cycle
  latch delay of Table 3;
* :mod:`repro.rse.ioq`       — the Instruction Output Queue and its
  check/checkValid semantics (Table 1);
* :mod:`repro.rse.mau`       — the Memory Access Unit shared by modules;
* :mod:`repro.rse.module`    — the module base class (sync/async modes);
* :mod:`repro.rse.selfcheck` — the watchdog-based self-checking
  mechanism and safe-mode decoupling (Table 2);
* :mod:`repro.rse.engine`    — the framework tying it all together;
* :mod:`repro.rse.modules`   — ICM, MLR, DDT and AHBM.
"""

from repro.rse import check
from repro.rse.engine import RSE
from repro.rse.module import RSEModule, ModuleMode
from repro.rse.ioq import IOQ, IOQEntry
from repro.rse.mau import MemoryAccessUnit, MAURequest
from repro.rse.selfcheck import SelfChecker

__all__ = [
    "check",
    "RSE",
    "RSEModule",
    "ModuleMode",
    "IOQ",
    "IOQEntry",
    "MemoryAccessUnit",
    "MAURequest",
    "SelfChecker",
]
