"""CHECK instruction vocabulary (Section 3.3).

A CHECK instruction carries: the module number, a blocking/non-blocking
flag (synchronous vs asynchronous operation), a 5-bit operation code and
a 16-bit immediate parameter.  Pointer-sized parameters are passed in
registers ``a0``/``a1``; operations that consume them set
:data:`~repro.isa.instructions.CHK_OP_PAYLOAD_BIT` in their op code so
the pipeline knows to deliver the values through ``Regfile_Data``.

Operation codes are interpreted *per module* (each module has its own
decoder), except ``OP_ENABLE``/``OP_DISABLE``, which every module's
enable/disable unit understands.
"""

from repro.isa.encoding import encode
from repro.isa.instructions import CHK_OP_PAYLOAD_BIT, SPEC_BY_NAME

# ----------------------------------------------------------- module numbers

MODULE_ICM = 1          # Instruction Checker Module
MODULE_MLR = 2          # Memory Layout Randomization
MODULE_DDT = 3          # Data Dependency Tracker
MODULE_AHBM = 4         # Adaptive Heartbeat Monitor

MODULE_NAMES = {
    MODULE_ICM: "ICM",
    MODULE_MLR: "MLR",
    MODULE_DDT: "DDT",
    MODULE_AHBM: "AHBM",
}

# -------------------------------------------------- generic operations

OP_ENABLE = 0x00
OP_DISABLE = 0x01

# -------------------------------------------------- ICM operations

#: Blocking check of the next instruction in the stream (Figure 2(a)).
OP_ICM_CHECK = 0x02

# -------------------------------------------------- MLR operations (Fig. 3)

#: I2: randomize position-independent regions from the parsed header.
OP_MLR_PI_RAND = 0x02
#: I1: a0 = header location, a1 = header size.
OP_MLR_EXEC_HDR = 0x10
#: I5: a0 = old GOT address, a1 = GOT size in bytes.
OP_MLR_GOT_OLD = 0x11
#: I6: a0 = new GOT address.
OP_MLR_GOT_NEW = 0x12
#: I7: copy the GOT from the old to the new location (hardware copy).
OP_MLR_COPY_GOT = 0x13
#: I8: a0 = PLT address, a1 = PLT size in bytes.
OP_MLR_PLT_INFO = 0x14
#: I10: rewrite PLT entries to reference the new GOT (4 entries/cycle).
OP_MLR_WRITE_PLT = 0x15

# -------------------------------------------------- DDT operations

#: Dump PST + DDM to memory at a0 (the "size query and retrieval"
#: instruction system software uses during recovery, Section 4.2.2).
OP_DDT_DUMP = 0x10

# -------------------------------------------------- AHBM operations

#: a0 = entity id to start monitoring.
OP_AHBM_REGISTER = 0x11
#: a0 = entity id; the Increment Counter Value heartbeat.
OP_AHBM_HEARTBEAT = 0x12
#: a0 = entity id to stop monitoring.
OP_AHBM_UNREGISTER = 0x13


def op_reads_payload(op):
    """True when CHECK operation *op* consumes the a0/a1 payload."""
    return bool(op & CHK_OP_PAYLOAD_BIT)


def encode_check(module, op, blocking=False, param=0):
    """Encode a CHK word for *module*/*op* (test and injector helper)."""
    return encode(SPEC_BY_NAME["chk"], module=module,
                  blk=1 if blocking else 0, op=op, param=param)


def asm_constants():
    """Constants dict for the assembler: module names and operation codes.

    Lets workload assembly say ``chk ICM, BLK, OP_ICM_CHECK, 0``.
    """
    return {
        "ICM": MODULE_ICM,
        "MLR": MODULE_MLR,
        "DDT": MODULE_DDT,
        "AHBM": MODULE_AHBM,
        "OP_ENABLE": OP_ENABLE,
        "OP_DISABLE": OP_DISABLE,
        "OP_ICM_CHECK": OP_ICM_CHECK,
        "OP_MLR_PI_RAND": OP_MLR_PI_RAND,
        "OP_MLR_EXEC_HDR": OP_MLR_EXEC_HDR,
        "OP_MLR_GOT_OLD": OP_MLR_GOT_OLD,
        "OP_MLR_GOT_NEW": OP_MLR_GOT_NEW,
        "OP_MLR_COPY_GOT": OP_MLR_COPY_GOT,
        "OP_MLR_PLT_INFO": OP_MLR_PLT_INFO,
        "OP_MLR_WRITE_PLT": OP_MLR_WRITE_PLT,
        "OP_DDT_DUMP": OP_DDT_DUMP,
        "OP_AHBM_REGISTER": OP_AHBM_REGISTER,
        "OP_AHBM_HEARTBEAT": OP_AHBM_HEARTBEAT,
        "OP_AHBM_UNREGISTER": OP_AHBM_UNREGISTER,
    }
