"""Instruction Output Queue (IOQ) — Table 1 semantics.

An IOQ entry is allocated for every instruction when it is forwarded to
the framework (at dispatch) and freed at commit/squash.  Two bits per
entry communicate module results back to the commit unit:

=========  ======  ==========================================================
checkValid check   meaning
=========  ======  ==========================================================
0          0       CHECK allocated, module still executing — commit may stall
1          0       non-CHECK instruction, or CHECK finished with no error
1          1       CHECK finished, error detected — pipeline is flushed
=========  ======  ==========================================================

Entries also support stuck-at fault injection on either bit (the error
scenarios of Table 2); the effective value seen by the pipeline and the
self-checking watchdog honours the stuck-at override.
"""


class IOQEntry:
    """One IOQ entry, keyed by the in-flight instruction's sequence number."""

    __slots__ = ("seq", "uop", "check_valid", "check", "alloc_cycle",
                 "payload", "stuck_check_valid", "stuck_check",
                 "valid_set_cycle", "error_transitions")

    def __init__(self, seq, uop, cycle, is_check):
        self.seq = seq
        self.uop = uop
        self.alloc_cycle = cycle
        # Table 1: CHECK instructions start '00', everything else '10'.
        self.check_valid = 0 if is_check else 1
        self.check = 0
        self.payload = None          # (a0, a1) once Regfile_Data delivers
        self.stuck_check_valid = None
        self.stuck_check = None
        self.valid_set_cycle = None
        self.error_transitions = 0

    # ------------------------------------------------------ effective bits

    @property
    def effective_check_valid(self):
        if self.stuck_check_valid is not None:
            return self.stuck_check_valid
        return self.check_valid

    @property
    def effective_check(self):
        if self.stuck_check is not None:
            return self.stuck_check
        return self.check

    # ------------------------------------------------------------- writes

    def complete(self, error, cycle):
        """Module writes its result: sets checkValid and the check bit."""
        self.check_valid = 1
        self.valid_set_cycle = cycle
        if error:
            if self.check == 0:
                self.error_transitions += 1
            self.check = 1
        else:
            self.check = 0

    def __repr__(self):
        return "IOQEntry(seq=%d, cv=%d, chk=%d)" % (
            self.seq, self.effective_check_valid, self.effective_check)


class IOQ:
    """The queue itself: allocation, result lookup, and freeing."""

    def __init__(self):
        self._entries = {}
        self.allocated_total = 0

    def allocate(self, uop, cycle):
        entry = IOQEntry(uop.seq, uop, cycle, uop.instr.is_check)
        self._entries[uop.seq] = entry
        self.allocated_total += 1
        return entry

    def get(self, seq):
        return self._entries.get(seq)

    def free(self, seq):
        self._entries.pop(seq, None)

    def pending_checks(self):
        """CHECK entries whose module has not yet produced a result."""
        return [entry for entry in self._entries.values()
                if entry.uop.instr.is_check and entry.effective_check_valid == 0]

    def entries(self):
        return list(self._entries.values())

    def __len__(self):
        return len(self._entries)
