"""The RSE input interface queues (Section 3.1).

Five queues deliver pipeline state into the framework:

* ``Fetch_Out``    — instructions entering the window;
* ``Regfile_Data`` — operand values;
* ``Execute_Out``  — ALU results / effective addresses;
* ``Memory_Out``   — values loaded from memory;
* ``Commit_Out``   — committed and squashed instructions.

Table 3: pipeline outputs are latched into a register before reaching
the framework, so "information passed by the pipeline is available to
the framework only after a delay of one cycle".  The queues implement
that latch: an item enqueued at cycle *c* becomes visible at *c + 1*.
Queue depth equals the re-order buffer size (Section 3.1).
"""

from collections import deque

LATCH_DELAY = 1


class InputQueue:
    """One latched input queue feeding the framework."""

    def __init__(self, name, depth=16):
        self.name = name
        self.depth = depth
        self._items = deque()
        self.pushed_total = 0
        self.dropped_overflow = 0

    def push(self, cycle, payload):
        """Latch *payload*; it becomes visible at ``cycle + LATCH_DELAY``."""
        if len(self._items) >= self.depth:
            # Cannot happen when depth == ROB size (at most one entry per
            # in-flight instruction), but guard against misconfiguration.
            self.dropped_overflow += 1
            self._items.popleft()
        self._items.append((cycle + LATCH_DELAY, payload))
        self.pushed_total += 1

    def pop_ready(self, cycle):
        """Return (and consume) every item visible at *cycle*, in order."""
        ready = []
        items = self._items
        while items and items[0][0] <= cycle:
            ready.append(items.popleft()[1])
        return ready

    def discard(self, predicate):
        """Drop queued items matching *predicate* (squash handling)."""
        self._items = deque(item for item in self._items
                            if not predicate(item[1]))

    def __len__(self):
        return len(self._items)


class InputInterface:
    """The full set of input queues, sized to the ROB."""

    QUEUE_NAMES = ("fetch_out", "regfile_data", "execute_out", "memory_out",
                   "commit_out")

    def __init__(self, depth=16):
        self.fetch_out = InputQueue("Fetch_Out", depth)
        self.regfile_data = InputQueue("Regfile_Data", depth)
        self.execute_out = InputQueue("Execute_Out", depth)
        self.memory_out = InputQueue("Memory_Out", depth)
        self.commit_out = InputQueue("Commit_Out", depth)

    def all_queues(self):
        return [getattr(self, name) for name in self.QUEUE_NAMES]

    def discard_squashed(self, seqs):
        """Flush queued entries belonging to squashed instructions.

        Section 3.1: "the RSE uses this information to flush the input
        queues ... no speculative state is maintained in the RSE modules."
        """
        dead = set(seqs)
        for queue in (self.fetch_out, self.regfile_data, self.execute_out,
                      self.memory_out):
            queue.discard(lambda payload: payload[0] in dead)
