"""Binary encoding and decoding of the 32-bit ISA.

Every instruction has a genuine 32-bit encoding.  This matters for the
reproduction: the Instruction Checker Module (ICM) compares the *binary*
of an in-flight instruction with a redundant copy fetched from its
CheckerMemory, and the fault-injection experiments flip individual bits
of encoded words.  A decode that merely pattern-matched Python objects
would make both meaningless.
"""

from repro.isa.instructions import (
    CHK_OP_PAYLOAD_BIT,
    CHK_PAYLOAD_REGS,
    Instr,
    InstrClass,
    InstrSpec,
    NOP_WORD,
    OP_CHK,
    OP_REGIMM,
    OP_RTYPE,
    SPECS,
    extract_regs,
)

MASK32 = 0xFFFFFFFF


class DecodeError(ValueError):
    """Raised when a 32-bit word is not a valid instruction.

    In the pipeline this surfaces as an illegal-instruction fault, which
    is exactly what a multi-bit error escaping the ICM can produce.
    """

    def __init__(self, word, reason="illegal instruction"):
        super().__init__("%s: 0x%08x" % (reason, word))
        self.word = word


def _sign_extend_16(value):
    return value - 0x10000 if value & 0x8000 else value


# Dispatch tables -----------------------------------------------------------

_RTYPE_BY_FUNCT = {}
_REGIMM_BY_RT = {}
_ITYPE_BY_OPCODE = {}
_JTYPE_BY_OPCODE = {}

for _spec in SPECS:
    if _spec.fmt == "R":
        _RTYPE_BY_FUNCT[_spec.funct] = _spec
    elif _spec.fmt == "J":
        _JTYPE_BY_OPCODE[_spec.opcode] = _spec
    elif _spec.fmt == "CHK":
        pass
    elif _spec.opcode == OP_REGIMM:
        _REGIMM_BY_RT[_spec.rt_sel] = _spec
    else:
        _ITYPE_BY_OPCODE[_spec.opcode] = _spec


def encode(spec, rs=0, rt=0, rd=0, shamt=0, imm=0, target=0,
           module=0, blk=0, op=0, param=0):
    """Encode one instruction into its 32-bit word.

    *imm* may be negative (two's complement, 16 bits).  *target* is the
    26-bit word-index field of J-type instructions.
    """
    if spec.fmt == "R":
        return ((OP_RTYPE << 26) | (rs << 21) | (rt << 16) |
                (rd << 11) | (shamt << 6) | spec.funct)
    if spec.fmt == "J":
        return (spec.opcode << 26) | (target & 0x03FFFFFF)
    if spec.fmt == "CHK":
        return ((OP_CHK << 26) | ((module & 0xF) << 22) | ((blk & 0x1) << 21) |
                ((op & 0x1F) << 16) | (param & 0xFFFF))
    # I-type; REGIMM branches place their selector in the rt field.
    if spec.opcode == OP_REGIMM:
        rt = spec.rt_sel
    return ((spec.opcode << 26) | (rs << 21) | (rt << 16) | (imm & 0xFFFF))


_CHK_SPEC = next(s for s in SPECS if s.fmt == "CHK")

# Decoding the same word repeatedly is the common case (loops); memoise.
_DECODE_CACHE = {}


def decode(word):
    """Decode a 32-bit word into an :class:`Instr`.

    Raises :class:`DecodeError` for words that match no instruction.
    Results are memoised; ``Instr`` objects are immutable so sharing is
    safe.
    """
    word &= MASK32
    cached = _DECODE_CACHE.get(word)
    if cached is not None:
        return cached
    instr = _decode_uncached(word)
    if len(_DECODE_CACHE) < 1 << 20:
        _DECODE_CACHE[word] = instr
    return instr


def _decode_uncached(word):
    if word == NOP_WORD:
        return Instr(word, "nop", InstrClass.NOP, "R")
    opcode = (word >> 26) & 0x3F
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    if opcode == OP_RTYPE:
        funct = word & 0x3F
        spec = _RTYPE_BY_FUNCT.get(funct)
        if spec is None:
            raise DecodeError(word, "unknown R-type funct 0x%02x" % funct)
        rd = (word >> 11) & 0x1F
        shamt = (word >> 6) & 0x1F
        dest, srcs = extract_regs(spec, rs, rt, rd)
        return Instr(word, spec.name, spec.iclass, "R", rs=rs, rt=rt, rd=rd,
                     shamt=shamt, dest=dest, srcs=srcs)
    if opcode == OP_CHK:
        module = (word >> 22) & 0xF
        blk = (word >> 21) & 0x1
        op = (word >> 16) & 0x1F
        param = word & 0xFFFF
        srcs = CHK_PAYLOAD_REGS if op & CHK_OP_PAYLOAD_BIT else ()
        return Instr(word, "chk", InstrClass.CHECK, "CHK", module=module,
                     blk=blk, op=op, param=param, dest=None, srcs=srcs)
    if opcode in _JTYPE_BY_OPCODE:
        spec = _JTYPE_BY_OPCODE[opcode]
        target = word & 0x03FFFFFF
        dest, srcs = extract_regs(spec, 0, 0, 0)
        return Instr(word, spec.name, spec.iclass, "J", target=target,
                     dest=dest, srcs=srcs)
    if opcode == OP_REGIMM:
        spec = _REGIMM_BY_RT.get(rt)
        if spec is None:
            raise DecodeError(word, "unknown REGIMM selector %d" % rt)
    else:
        spec = _ITYPE_BY_OPCODE.get(opcode)
        if spec is None:
            raise DecodeError(word, "unknown opcode 0x%02x" % opcode)
    uimm = word & 0xFFFF
    imm = _sign_extend_16(uimm)
    dest, srcs = extract_regs(spec, rs, rt, 0)
    return Instr(word, spec.name, spec.iclass, "I", rs=rs, rt=rt,
                 imm=imm, uimm=uimm, dest=dest, srcs=srcs)


def is_valid(word):
    """Return True when *word* decodes to a legal instruction."""
    try:
        decode(word)
    except DecodeError:
        return False
    return True


def flip_bit(word, bit):
    """Return *word* with bit index *bit* (0 = LSB) inverted.

    The fault-injection campaigns (Section 4.3: multi-bit errors between
    memory and dispatch) are built on this primitive.
    """
    if not 0 <= bit < 32:
        raise ValueError("bit index out of range: %r" % (bit,))
    return (word ^ (1 << bit)) & MASK32
