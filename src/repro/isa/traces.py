"""Superblock trace JIT layered on the predecode cache.

The predecode layer (:mod:`repro.isa.predecode`) got the functional
simulator to ~2.4M instrs/s by paying one closure call per instruction.
This module removes the per-instruction call too: straight-line runs of
instructions — ending at a branch, jump, serializing instruction
(syscall/halt/CHECK), page boundary or length cap — are compiled into a
*single* Python function via ``compile()``/``exec``, with every
architectural register the run touches promoted to a local variable and
the per-opcode expressions inlined exactly as the predecode closures
(and therefore :mod:`repro.isa.semantics`) specify them.  A run whose
terminating branch jumps back to its own head becomes a *loop trace*:
the compiled function iterates internally, retiring a whole iteration
per pass, and only returns when the loop exits, the step budget would be
exceeded, or a deopt condition occurs.

Invalidation rides the existing per-page write-version protocol:

* a trace is keyed by its head pc and records ``(page, page_version)``
  for the single text page it was compiled from (traces never cross a
  page boundary, so one pair suffices);
* the dispatcher revalidates that pair before every entry, so stores
  into cached text — self-modifying code, campaign instr/mem-flips,
  ``Machine.restore()``'s monotonic version bumps — make the trace
  unreachable exactly like a stale predecode closure;
* a store *inside* a running trace that hits the trace's own text page
  exits the trace immediately after the store retires (the remaining
  instructions were compiled from the pre-store bytes), and the caller
  resumes per-instruction, re-decoding what memory now holds.

Compiled-function protocol (the contract with
:meth:`repro.funcsim.FuncSim._run_traced`):

* ``fn(regs, budget) -> (next_pc, retired)`` executes against the
  register file list and the bound memory.  ``retired`` instructions
  have fully retired (registers and memory updated); ``next_pc`` is the
  architectural pc to continue at.  The function never retires more
  than ``budget`` instructions; the dispatcher only enters when the
  trace's minimum retirement fits the remaining budget, so step-limit
  stops land on exactly the same instruction as per-closure execution.
* on a memory/arithmetic fault the function restores every promoted
  register it holds (instructions before the faulting one have retired,
  the faulting one has not touched state — the same atomicity the
  closures guarantee) and raises :class:`TraceFault` carrying the
  retired count, the faulting pc and the original exception.
* ``regs[0]`` is read as the literal 0 and never written, which is
  sound because no engine path ever stores a nonzero value there.

Deopt is the caller's job and is complete by construction: the
dispatcher in :class:`~repro.funcsim.FuncSim` only runs traces while no
``trace_mem`` hook is attached, and :mod:`repro.assertions` replaces
``sim.run`` outright — either way execution falls back to the
per-instruction closures, which carry every observation hook.
"""

from repro.isa.encoding import DecodeError
from repro.isa.instructions import InstrClass
from repro.isa.predecode import cache_for
from repro.isa.semantics import (
    ArithmeticFault,
    _op_div,
    _op_divu,
    _op_rem,
    _op_remu,
    branch_target,
    jump_target,
)
from repro.memory.mainmem import PAGE_SHIFT, MemoryFault

MASK32 = 0xFFFFFFFF
SIGN_BIT = 0x80000000

#: Dispatches from a cold head before the trace is compiled.
HEAT_THRESHOLD = 4
#: Instructions per trace (superblocks are short; page crossing caps too).
MAX_TRACE_LEN = 128
#: Pending inlined ``jal`` calls discovery will trace through.
MAX_INLINE_DEPTH = 4
#: Straight runs shorter than this are not worth the dispatch overhead.
MIN_TRACE_LEN = 2
#: Invalidations of one head before it is blacklisted (pathological SMC).
REBUILD_LIMIT = 8
#: Trace-entry bound; overflowing clears the table (predecode-style).
MAX_TRACES = 1 << 13
#: Heat-counter bound (one counter per candidate head pc).
MAX_HEAT_ENTRIES = 1 << 16


class TraceFault(Exception):
    """A fault raised while executing inside a compiled trace.

    ``retired`` instructions of the trace completed before the fault;
    ``pc`` is the faulting instruction's address; ``exc`` is the
    original :class:`~repro.memory.mainmem.MemoryFault` or
    :class:`~repro.isa.semantics.ArithmeticFault`.  Registers were
    written back before raising, so architectural state is exactly what
    per-instruction execution would leave.
    """

    def __init__(self, retired, pc, exc):
        super().__init__("trace fault at pc=0x%08x: %s" % (pc, exc))
        self.retired = retired
        self.pc = pc
        self.exc = exc


# The division/remainder table ops take (instr, a, b) but only read the
# operands; these adapters give the generated code a two-argument form.

def _div(a, b):
    return _op_div(None, a, b)


def _rem(a, b):
    return _op_rem(None, a, b)


def _divu(a, b):
    return _op_divu(None, a, b)


def _remu(a, b):
    return _op_remu(None, a, b)


# ---------------------------------------------------------------- codegen

_WB = "__WB__"          # placeholder; replaced by the register writeback


class _Unsupported(Exception):
    """Instruction the emitter cannot lower (ends the trace before it)."""


class _Emitter:
    """Lowers one discovered run into Python source for ``exec``."""

    def __init__(self, head, pcs, instrs, logging=False):
        self.head = head
        self.pcs = pcs
        self.instrs = instrs
        self.head_page = head >> PAGE_SHIFT
        self.logging = logging
        self.reads = set()
        self.writes = set()
        self.lines = []
        self.faultable = False
        self.has_mem = False
        self._prefix = ""
        # Forward branches whose target lands back inside this trace
        # compile to *internal skips* (the skipped instructions live in
        # an ``else`` block) instead of side exits, so loop bodies with
        # if/then diamonds stay resident in one compiled function.  The
        # local ``_d`` accumulates skipped instruction counts, keeping
        # every retired-count exactly equal to per-instruction execution.
        # Inlined calls duplicate callee pcs, so targets resolve to the
        # *nearest* following occurrence; the scan stops at a jump
        # because only jumps break the pc-contiguity of the fallthrough
        # path (nested branches are fine — the region is emitted
        # recursively with full branch handling).
        self.internal = {}
        last = len(instrs) - 1
        for k, instr in enumerate(instrs):
            if instr.iclass is not InstrClass.BRANCH or k == last:
                continue
            target = branch_target(instr, pcs[k])
            if target == head:
                continue          # lowers to ``continue``, not a skip
            for j in range(k + 1, last + 1):
                if pcs[j] == target:
                    self.internal[k] = j
                    break
                if instrs[j].iclass is InstrClass.JUMP:
                    break
        self.has_skips = bool(self.internal)
        # Loop shape: the trace compiles to ``while 1:`` when any branch
        # transfers control back to the head — the terminator (classic
        # loop), or a mid-trace backward branch to the head, which
        # lowers to a literal ``continue`` (loops written with several
        # continue-style back edges stay resident in one function).
        last = instrs[-1]
        last_pc = pcs[-1]
        self.loop = False
        if last.iclass is InstrClass.BRANCH:
            taken = branch_target(last, last_pc)
            fall = (last_pc + 4) & MASK32
            if taken == head or fall == head:
                self.loop = True
        elif (last.iclass is InstrClass.JUMP and last.name in ("j", "jal")
                and jump_target(last, last_pc) == head):
            self.loop = True
        if not self.loop:
            for k, instr in enumerate(instrs[:-1]):
                if (instr.iclass is InstrClass.BRANCH
                        and branch_target(instr, pcs[k]) == head):
                    self.loop = True
                    break

    # ----------------------------------------------------------- operands

    def _ref(self, reg):
        """Expression for reading architectural register *reg*."""
        if reg == 0:
            return "0"
        self.reads.add(reg)
        return "r%d" % reg

    def _wref(self, reg):
        """Local assigned for writing *reg* (caller guarantees reg != 0)."""
        self.writes.add(reg)
        return "r%d" % reg

    def line(self, text):
        """Append one body line at the current block prefix."""
        self.lines.append(self._prefix + text)

    def _count(self, retired):
        """Retired-count expression after *retired* instrs of an iteration."""
        base = "n + %d" % retired if self.loop else "%d" % retired
        return base + " - _d" if self.has_skips else base

    # ------------------------------------------------------------- opcodes

    def _alu_expr(self, instr):
        # Move idioms (``or rd, rs, r0``, ``sll rd, rt, 0``, ``addi rd,
        # rs, 0`` …) collapse to plain copies: registers hold the
        # unsigned-32 invariant, so the identity drops the mask too.
        name = instr.name
        a = lambda: self._ref(instr.rs)
        b = lambda: self._ref(instr.rt)
        if name == "add":
            if instr.rt == 0:
                return a()
            if instr.rs == 0:
                return b()
            return "(%s + %s) & 4294967295" % (a(), b())
        if name == "addi":
            if instr.imm == 0:
                return a()
            return "(%s + %d) & 4294967295" % (a(), instr.imm)
        if name == "sub":
            if instr.rt == 0:
                return a()
            return "(%s - %s) & 4294967295" % (a(), b())
        if name == "and":
            if instr.rs == 0 or instr.rt == 0:
                return "0"
            return "%s & %s" % (a(), b())
        if name == "andi":
            if instr.uimm == 0:
                return "0"
            return "%s & %d" % (a(), instr.uimm)
        if name == "or":
            if instr.rt == 0:
                return a()
            if instr.rs == 0:
                return b()
            return "%s | %s" % (a(), b())
        if name == "ori":
            if instr.uimm == 0:
                return a()
            return "%s | %d" % (a(), instr.uimm)
        if name == "xor":
            if instr.rt == 0:
                return a()
            if instr.rs == 0:
                return b()
            return "%s ^ %s" % (a(), b())
        if name == "xori":
            if instr.uimm == 0:
                return a()
            return "%s ^ %d" % (a(), instr.uimm)
        if name == "nor":
            return "~(%s | %s) & 4294967295" % (a(), b())
        if name == "slt":
            return ("(1 if (%s ^ 2147483648) < (%s ^ 2147483648) else 0)"
                    % (a(), b()))
        if name == "slti":
            biased = (instr.imm & MASK32) ^ SIGN_BIT
            return "(1 if (%s ^ 2147483648) < %d else 0)" % (a(), biased)
        if name == "sltu":
            return "(1 if %s < %s else 0)" % (a(), b())
        if name == "sltiu":
            return "(1 if %s < %d else 0)" % (a(), instr.imm & MASK32)
        if name == "sll":
            if instr.shamt == 0:
                return b()
            return "(%s << %d) & 4294967295" % (b(), instr.shamt)
        if name == "srl":
            if instr.shamt == 0:
                return b()
            return "%s >> %d" % (b(), instr.shamt)
        if name == "sra":
            if instr.shamt == 0:
                return b()
            bb = b()
            return ("((%s - ((%s & 2147483648) << 1)) >> %d) & 4294967295"
                    % (bb, bb, instr.shamt))
        if name == "sllv":
            return "(%s << (%s & 31)) & 4294967295" % (b(), a())
        if name == "srlv":
            return "%s >> (%s & 31)" % (b(), a())
        if name == "srav":
            bb = b()
            return ("((%s - ((%s & 2147483648) << 1)) >> (%s & 31)) "
                    "& 4294967295" % (bb, bb, a()))
        if name == "lui":
            return "%d" % ((instr.uimm << 16) & MASK32)
        if name == "mul":
            aa, bb = a(), b()
            if instr.rs == instr.rt:          # square: sign-convert once
                return ("((_t := (%s - ((%s & 2147483648) << 1))) * _t) "
                        "& 4294967295" % (aa, aa))
            return ("((%s - ((%s & 2147483648) << 1)) * "
                    "(%s - ((%s & 2147483648) << 1))) & 4294967295"
                    % (aa, aa, bb, bb))
        raise _Unsupported(name)

    def _branch_cond(self, instr):
        """Taken-condition expression (mirrors the predecode closures)."""
        name = instr.name
        if name == "beq":
            return "%s == %s" % (self._ref(instr.rs), self._ref(instr.rt))
        if name == "bne":
            return "%s != %s" % (self._ref(instr.rs), self._ref(instr.rt))
        a = self._ref(instr.rs)
        if name == "blez":
            return "%s == 0 or %s & 2147483648" % (a, a)
        if name == "bgtz":
            return "not (%s == 0 or %s & 2147483648)" % (a, a)
        if name == "bltz":
            return "%s & 2147483648" % a
        if name == "bgez":
            return "not (%s & 2147483648)" % a
        raise _Unsupported(name)

    # ------------------------------------------------------- instructions

    def _emit_alu(self, index, pc, instr):
        name = instr.name
        dest = instr.dest
        if name in ("div", "rem", "divu", "remu"):
            self.faultable = True
            call = "_%s(%s, %s)" % (name, self._ref(instr.rs),
                                    self._ref(instr.rt))
            self.line("_i = %d" % index)
            if dest:
                self.line("%s = %s" % (self._wref(dest), call))
            else:
                self.line(call)          # fault side effect only
        else:
            expr = self._alu_expr(instr)
            if dest:
                self.line("%s = %s" % (self._wref(dest), expr))
            # No destination and no fault path: the instruction is a no-op.
        if self.logging:
            self.line("_lg(%d)" % pc)

    def _emit_page(self):
        """Page lookup for the address in ``_a`` (page index in ``_x``,
        page bytearray in ``_lp``).

        Inlines :meth:`MainMemory._page`'s fast path with a last-page
        cache: the common same-page-as-before access pays one integer
        compare instead of a dict probe.  Caching the bytearray is
        sound because pages are mutated in place, never replaced, for
        the memory's lifetime.  ``_mkpage`` materialises zero-filled
        pages exactly as the memory object would, so first-touch
        behaviour (visible to ``page_numbers()`` and the checkpoint
        layer) is unchanged.
        """
        self.has_mem = True
        self.line("_x = _a >> %d" % PAGE_SHIFT)
        self.line("if _x != _lx:")
        self.line("    _lp = _pages(_x)")
        self.line("    if _lp is None:")
        self.line("        _lp = _mkpage(_a)")
        self.line("    _lx = _x")

    def _fault_exit(self, index, pc, message):
        """Cold-path fault raise: write back and raise :class:`TraceFault`.

        Memory ops can only fault on the alignment check emitted right
        here, so the fault protocol is inlined at the (never-hot) raise
        site instead of paying ``_i`` bookkeeping on the hot path.
        """
        self.line("    %s" % _WB)
        self.line("    raise _TF(%s, %d, _MF(_a, '%s'))"
                  % (self._count(index), pc, message))

    def _emit_load(self, index, pc, instr):
        # Inlined MainMemory.load_word/half/byte (same alignment faults,
        # same first-touch page materialisation, little-endian bytes).
        self.line("_a = (%s + %d) & 4294967295"
                  % (self._ref(instr.rs), instr.imm))
        name = instr.name
        dest = instr.dest
        if name == "lw":
            self.line("if _a & 3:")
            self._fault_exit(index, pc, "unaligned word load")
        elif name in ("lh", "lhu"):
            self.line("if _a & 1:")
            self._fault_exit(index, pc, "unaligned halfword load")
        elif name not in ("lb", "lbu"):
            raise _Unsupported(name)
        self._emit_page()
        if name == "lw":
            self.line("_o = _a & 4095")
            value = "_fb(_lp[_o:_o + 4], 'little')"
        elif name in ("lh", "lhu"):
            self.line("_o = _a & 4095")
            value = "_fb(_lp[_o:_o + 2], 'little')"
        else:
            value = "_lp[_a & 4095]"
        if name == "lh":
            self.line("_v = %s" % value)
            value = "(_v - 65536 if _v & 32768 else _v) & 4294967295"
        elif name == "lb":
            self.line("_v = %s" % value)
            value = "(_v - 256 if _v & 128 else _v) & 4294967295"
        if dest:
            self.line("%s = %s" % (self._wref(dest), value))
        # Without a destination the alignment fault and the first-touch
        # page materialisation above are the load's only effects.
        if self.logging:
            self.line("_lg(%d)" % pc)

    def _emit_store(self, index, pc, instr):
        # Inlined MainMemory.store_word/half/byte including the per-page
        # write-version bump every cached view revalidates against.
        self.line("_a = (%s + %d) & 4294967295"
                  % (self._ref(instr.rs), instr.imm))
        name = instr.name
        if name == "sw":
            self.line("if _a & 3:")
            self._fault_exit(index, pc, "unaligned word store")
        elif name == "sh":
            self.line("if _a & 1:")
            self._fault_exit(index, pc, "unaligned halfword store")
        elif name != "sb":
            raise _Unsupported(name)
        self._emit_page()
        value = self._ref(instr.rt)
        if name == "sw":
            # Register values hold the unsigned-32 invariant, so the
            # store_word mask would be a no-op (to_bytes still range-checks).
            self.line("_o = _a & 4095")
            self.line("_lp[_o:_o + 4] = (%s).to_bytes(4, 'little')" % value)
        elif name == "sh":
            self.line("_o = _a & 4095")
            self.line("_lp[_o:_o + 2] = (%s & 65535)"
                      ".to_bytes(2, 'little')" % value)
        else:
            self.line("_lp[_a & 4095] = %s & 255" % value)
        self.line("_versions[_x] = _vget(_x, 0) + 1")
        if self.logging:
            self.line("_lg(%d)" % pc)
        # Store into the trace's own text page: everything younger in
        # this trace was compiled from the pre-store bytes.  The store
        # itself has retired; exit so the caller re-decodes the rest.
        self.line("if _x == %d:" % self.head_page)
        self.line("    %s" % _WB)
        self.line("    return (%d, %s)"
                  % ((pc + 4) & MASK32, self._count(index + 1)))

    def _emit_plain(self, index, pc, instr):
        """One non-control instruction (also used inside skip blocks)."""
        iclass = instr.iclass
        if iclass is InstrClass.ALU or iclass is InstrClass.MDU:
            self._emit_alu(index, pc, instr)
        elif iclass is InstrClass.LOAD:
            self._emit_load(index, pc, instr)
        elif iclass is InstrClass.STORE:
            self._emit_store(index, pc, instr)
        elif iclass is InstrClass.NOP:
            if self.logging:
                self.line("_lg(%d)" % pc)
        else:          # pragma: no cover - discovery excludes the rest
            raise _Unsupported(instr.name)

    def _emit_jump(self, index, pc, instr):
        """A jump traced *through* mid-trace.

        Discovery continued at the jump's destination, which is
        ``pcs[index + 1]`` by construction.  ``j`` and ``jal`` are
        unconditional, so nothing is checked at run time (``jal`` writes
        its link).  An inlined ``jr`` — the return of a traced-through
        call — guards on the value the target register actually holds:
        when it differs from the return site recorded at discovery the
        trace side-exits to the architecturally correct pc.
        """
        if self.logging:          # the jump retires on every path
            self.line("_lg(%d)" % pc)
        name = instr.name
        if name in ("j", "jal"):
            if instr.dest:
                self.line("%s = %d"
                          % (self._wref(instr.dest), (pc + 4) & MASK32))
            return
        if name != "jr":          # pragma: no cover - discovery excludes
            raise _Unsupported(name)
        reg = self._ref(instr.rs)
        self.line("if %s != %d:" % (reg, self.pcs[index + 1]))
        self.line("    %s" % _WB)
        self.line("    return (%s & 4294967295, %s)"
                  % (reg, self._count(index + 1)))

    def _emit_branch(self, index, pc, instr, end):
        """A conditional branch mid-trace (before index *end*).

        Three lowerings: a backward branch to the trace's own head is a
        literal ``continue`` (one loop iteration ends here; the while
        top re-checks the budget and resets the skip counter); a branch
        whose target resolves inside the current region compiles to an
        *internal skip* — taken adds the skipped width to ``_d``, not
        taken executes the region in the ``else`` block (recursively,
        so nested diamonds stay resident); anything else is a side exit
        retiring exactly ``index + 1`` instructions.  Returns the next
        instruction index to emit.
        """
        if self.logging:          # the branch retires on every path
            self.line("_lg(%d)" % pc)
        if branch_target(instr, pc) == self.head:
            self.line("if %s:" % self._branch_cond(instr))
            self.line("    n += %d%s"
                      % (index + 1, " - _d" if self.has_skips else ""))
            self.line("    continue")
            return index + 1
        target_index = self.internal.get(index)
        if target_index is None or target_index > end:
            self.line("if %s:" % self._branch_cond(instr))
            self.line("    %s" % _WB)
            self.line("    return (%d, %s)"
                      % (branch_target(instr, pc), self._count(index + 1)))
            return index + 1
        width = target_index - index - 1
        if width == 0:          # branch to the next pc: retires, no effect
            return index + 1
        self.line("if %s:" % self._branch_cond(instr))
        self.line("    _d += %d" % width)
        self.line("else:")
        outer = self._prefix
        self._prefix = outer + "    "
        before = len(self.lines)
        self._emit_range(index + 1, target_index)
        if len(self.lines) == before:          # skipped region was all NOPs
            self.line("pass")
        self._prefix = outer
        return target_index

    def _emit_range(self, start, end):
        """Emit instruction indices ``[start, end)`` with full control
        handling (plain instrs, branches, traced-through jumps)."""
        index = start
        while index < end:
            pc = self.pcs[index]
            instr = self.instrs[index]
            iclass = instr.iclass
            if iclass is InstrClass.BRANCH:
                index = self._emit_branch(index, pc, instr, end)
            elif iclass is InstrClass.JUMP:
                self._emit_jump(index, pc, instr)
                index += 1
            else:
                self._emit_plain(index, pc, instr)
                index += 1

    def _emit_terminator(self, pc, instr):
        """Close the trace after its last instruction.

        In loop mode every path first accounts the full iteration
        (``n += total``); a path that transfers control back to the head
        simply falls to the ``while`` top, every other path writes back
        and returns ``(next_pc, n)``.  In straight-line mode the counts
        are the usual literal prefixes.
        """
        total = len(self.instrs)
        iclass = instr.iclass
        is_control = (iclass is InstrClass.BRANCH
                      or iclass is InstrClass.JUMP)
        if self.logging and is_control:          # plain instrs logged already
            self.line("_lg(%d)" % pc)
        if self.loop:
            self.line("n += %d%s"
                      % (total, " - _d" if self.has_skips else ""))
            cnt = "n"          # the line above accounted this iteration
        else:
            cnt = self._count(total)
        if iclass is InstrClass.BRANCH:
            cond = self._branch_cond(instr)
            taken = branch_target(instr, pc)
            fall = (pc + 4) & MASK32
            if self.loop and taken == self.head and fall == self.head:
                return          # both arms re-enter: the while just loops
            if self.loop and taken == self.head:
                self.line("if not (%s):" % cond)
                self.line("    %s" % _WB)
                self.line("    return (%d, n)" % fall)
                return
            if self.loop and fall == self.head:
                self.line("if %s:" % cond)
                self.line("    %s" % _WB)
                self.line("    return (%d, n)" % taken)
                return
            self.line(_WB)
            self.line("return ((%d if %s else %d), %s)"
                      % (taken, cond, fall, cnt))
            return
        if iclass is InstrClass.JUMP:
            name = instr.name
            link = (pc + 4) & MASK32
            if name in ("j", "jal"):
                if instr.dest:
                    self.line("%s = %d" % (self._wref(instr.dest), link))
                target = jump_target(instr, pc)
                if self.loop and target == self.head:
                    return          # unconditional back edge: while loops
                self.line(_WB)
                self.line("return (%d, %s)" % (target, cnt))
                return
            # jr / jalr: link is written before the target register is
            # read (the predecode/interpreter order, visible when rd==rs).
            if instr.dest:
                self.line("%s = %d" % (self._wref(instr.dest), link))
            self.line(_WB)
            self.line("return (%s & 4294967295, %s)"
                      % (self._ref(instr.rs), cnt))
            return
        # Non-control end (page boundary / length cap / serializing next);
        # the instruction itself was already emitted (and logged) above.
        self.line(_WB)
        self.line("return (%d, %s)" % ((pc + 4) & MASK32, cnt))

    # ------------------------------------------------------------ assembly

    def emit(self):
        """Return the full function source, or raise :class:`_Unsupported`."""
        last = len(self.instrs) - 1
        last_class = self.instrs[last].iclass
        control_last = (last_class is InstrClass.BRANCH
                        or last_class is InstrClass.JUMP)
        self._emit_range(0, last if control_last else last + 1)
        self._emit_terminator(self.pcs[last], self.instrs[last])

        used = sorted(self.reads | self.writes)
        writeback = "; ".join("regs[%d] = r%d" % (reg, reg)
                              for reg in sorted(self.writes)) or "pass"
        indent = "    "
        header = "def _trace(regs, budget, _log):" if self.logging \
            else "def _trace(regs, budget):"
        out = [header]
        if self.logging:
            out.append(indent + "_lg = _log.append")
        for reg in used:
            out.append(indent + "r%d = regs[%d]" % (reg, reg))
        if self.has_mem:
            out.append(indent + "_lx = -1")          # last-page cache
        if self.loop:
            out.append(indent + "n = 0")
        if self.faultable:
            out.append(indent + "_i = 0")
        if self.has_skips:
            out.append(indent + "_d = 0")
        depth = 1
        if self.faultable:
            out.append(indent * depth + "try:")
            depth += 1
        if self.loop:
            out.append(indent * depth + "while 1:")
            depth += 1
            out.append(indent * depth + "if n + %d > budget:"
                       % len(self.instrs))
            out.append(indent * depth + "    break")
            if self.has_skips:
                out.append(indent * depth + "_d = 0")
        for line in self.lines:
            out.append(indent * depth + line.replace(_WB, writeback))
        if self.faultable:
            out.append(indent + "except (_MF, _AF) as exc:")
            out.append(indent * 2 + writeback)
            retired = "n + _i" if self.loop else "_i"
            if self.has_skips:
                retired += " - _d"
            out.append(indent * 2 + "raise _TF(%s, _PCS[_i], exc)" % retired)
        if self.loop:
            out.append(indent + writeback)
            out.append(indent + "return (%d, n)" % self.head)
        return "\n".join(out) + "\n"


def compile_trace(head, pcs, instrs, memory, logging=False):
    """Compile one discovered run into ``fn(regs, budget)``.

    With ``logging=True`` the function takes ``(regs, budget, log)`` and
    appends every retired pc to *log* as it executes — the exact stream
    a step() loop would record — at the cost of one append per retired
    instruction.  The dispatcher uses this variant whenever a retire log
    is attached (the difftest oracle), so the compared stream is
    produced by the real compiled code, not reconstructed.

    Returns None when the run contains an instruction the emitter cannot
    lower (the head is then recorded as a no-trace sentinel).
    """
    emitter = _Emitter(head, list(pcs), list(instrs), logging=logging)
    try:
        source = emitter.emit()
    except _Unsupported:
        return None
    code = compile(source, "<trace@0x%08x>" % head, "exec")
    namespace = {}
    bindings = {
        "_MF": MemoryFault, "_AF": ArithmeticFault, "_TF": TraceFault,
        "_PCS": tuple(pcs),
        # Memory internals for the inlined load/store fast paths.  The
        # _pages and write_versions *dict objects* are stable for the
        # memory's lifetime (checkpoint restore mutates them in place),
        # so binding their methods here cannot go stale.
        "_pages": memory._pages.get, "_mkpage": memory._page,
        "_versions": memory.write_versions,
        "_vget": memory.write_versions.get,
        "_fb": int.from_bytes,
        "_div": _div, "_rem": _rem, "_divu": _divu, "_remu": _remu,
    }
    exec(code, bindings, namespace)
    return namespace["_trace"]


# ------------------------------------------------------------------- cache

#: Instruction classes that end a run *before* themselves: they need the
#: caller's fully-synced architectural state (hooks, handlers, halt).
_SERIAL = (InstrClass.SYSCALL, InstrClass.HALT, InstrClass.CHECK)


class TraceCache:
    """Head-pc-indexed cache of compiled traces over one memory.

    Entries are ``(page_version, fn, max_retire, pcs, page, fn_log)``
    tuples; an entry is valid while ``memory.write_versions.get(page,
    0)`` still equals ``page_version``.  ``fn is None`` marks a head not
    worth (or not able) to trace, so the dispatcher skips rediscovery
    until the page changes.  ``max_retire`` is the most one entry (one
    loop iteration) can retire — the dispatcher only enters when it fits
    the remaining step budget, making step-limit stops exact.  ``pcs``
    is one iteration's pc sequence (fault attribution); ``fn_log`` is
    the retire-logging variant, compiled lazily on first logged
    dispatch.
    """

    __slots__ = ("memory", "predecode", "entries", "heat", "rebuilds",
                 "compiled", "invalidated", "notraces", "deopt_runs")

    def __init__(self, memory):
        self.memory = memory
        self.predecode = cache_for(memory)
        self.entries = {}
        self.heat = {}
        self.rebuilds = {}
        self.compiled = 0          # traces compiled (incl. recompiles)
        self.invalidated = 0       # dispatch-time version mismatches
        self.notraces = 0          # no-trace sentinels installed
        self.deopt_runs = 0        # run() calls forced per-instruction

    # ------------------------------------------------------------ building

    def _discover(self, head):
        """Collect the superblock starting at *head*.

        Discovery follows the expected-hot path: forward conditional
        branches become side exits or internal skips and tracing
        continues past them (the superblock bet: hot code mostly falls
        through its forward branches); a backward branch to the head
        lowers to ``continue``; ``j``/``jal`` are traced *through*
        (static targets — ``jal`` pushes its return site and a later
        ``jr`` pops it, inlining direct calls under a run-time link
        guard).  Backward branches to other blocks, dynamic jumps with
        no pending call, serializing instructions, page crossings and
        the length cap terminate the block — the length cap also bounds
        discovery through any jump cycle that avoids the head.
        """
        head_page = head >> PAGE_SHIFT
        pcs = []
        instrs = []
        pc = head
        fetch = self.predecode.fetch
        stack = []          # return sites of traced-through jal calls
        while len(instrs) < MAX_TRACE_LEN:
            if pc >> PAGE_SHIFT != head_page:
                break          # single-page traces only
            try:
                entry = fetch(pc)
            except (MemoryFault, DecodeError):
                break
            instr = entry[3]
            iclass = instr.iclass
            if iclass in _SERIAL:
                break
            pcs.append(pc)
            instrs.append(instr)
            if iclass is InstrClass.JUMP:
                name = instr.name
                if name in ("j", "jal"):
                    target = jump_target(instr, pc)
                    if target == head:
                        break          # back edge: loop terminator
                    if name == "jal":
                        if len(stack) >= MAX_INLINE_DEPTH:
                            break
                        stack.append((pc + 4) & MASK32)
                    elif target <= pc:
                        # Backward ``j``: another block's loop back
                        # edge.  Tracing through it would unroll that
                        # loop body instead of letting its own head
                        # form a resident loop trace.
                        break
                    pc = target
                    continue
                if name == "jr" and stack:
                    pc = stack.pop()          # guarded inline return
                    continue
                break          # jalr / bare jr: dynamic terminator
            if iclass is InstrClass.BRANCH:
                taken = branch_target(instr, pc)
                if taken <= pc and taken != head:
                    break      # backward to another block: terminator
            pc = (pc + 4) & MASK32
        return pcs, instrs

    def build(self, head):
        """(Re)discover and compile the trace at *head*; install the entry."""
        page = head >> PAGE_SHIFT
        version = self.memory.write_versions.get(page, 0)
        pcs, instrs = self._discover(head)
        fn = None
        if instrs and (len(instrs) >= MIN_TRACE_LEN
                       or _Emitter(head, pcs, instrs).loop):
            fn = compile_trace(head, pcs, instrs, self.memory)
        entries = self.entries
        if len(entries) >= MAX_TRACES:
            entries.clear()
        if len(self.heat) >= MAX_HEAT_ENTRIES:
            self.heat.clear()
        if fn is None:
            entry = (version, None, 0, (), page, None)
            self.notraces += 1
        else:
            entry = (version, fn, len(pcs), tuple(pcs), page, None)
            self.compiled += 1
        entries[head] = entry
        return entry

    def ensure_logging(self, head):
        """Attach the retire-logging variant to a valid entry at *head*.

        Rediscovers under the entry's (just revalidated) page version,
        so the logging function is compiled from the same instructions.
        """
        entry = self.entries[head]
        pcs, instrs = self._discover(head)
        if tuple(pcs) != entry[3]:          # pragma: no cover - paranoia
            return self.build(head)
        fn_log = compile_trace(head, pcs, instrs, self.memory, logging=True)
        entry = entry[:5] + (fn_log,)
        self.entries[head] = entry
        return entry

    def rebuild(self, head):
        """Replace a version-stale entry; blacklist pathological heads."""
        self.invalidated += 1
        count = self.rebuilds.get(head, 0) + 1
        self.rebuilds[head] = count
        if count > REBUILD_LIMIT:
            page = head >> PAGE_SHIFT
            entry = (self.memory.write_versions.get(page, 0), None, 0, (),
                     page, None)
            self.entries[head] = entry
            self.notraces += 1
            return entry
        return self.build(head)

    def invalidate_all(self):
        self.entries.clear()
        self.heat.clear()
        self.rebuilds.clear()

    # --------------------------------------------------------------- stats

    def stats(self):
        """Counters for ``repro info`` / ``--stats-json`` reporting."""
        live = sum(1 for entry in self.entries.values()
                   if entry[1] is not None)
        return {
            "traces_live": live,
            "notrace_heads": len(self.entries) - live,
            "compiled": self.compiled,
            "invalidated": self.invalidated,
            "notraces": self.notraces,
            "deopt_runs": self.deopt_runs,
            "heat_tracked": len(self.heat),
        }

    def publish(self, registry, prefix="trace"):
        """Mirror :meth:`stats` into a metrics registry as gauges."""
        for name, value in self.stats().items():
            registry.gauge("%s.%s" % (prefix, name)).set(value)


def traces_for(memory):
    """The shared :class:`TraceCache` for *memory* (created on demand).

    Attached to the memory object itself — like the predecode cache —
    so every simulator executing from the same memory shares one trace
    table and one invalidation protocol, and whole-machine checkpoint
    (which never walks memory attributes) cannot capture stale traces:
    restore's monotonic version bumps make them unreachable instead.
    """
    cache = getattr(memory, "trace_cache", None)
    if cache is None:
        cache = TraceCache(memory)
        memory.trace_cache = cache
    return cache
