"""Two-pass assembler for the reproduction ISA.

The assembler turns assembly text into an :class:`Assembly` — raw
``.text``/``.data`` segment bytes plus a symbol table — which the program
loader (:mod:`repro.program.loader`) converts into a runnable process
image.  All workloads in :mod:`repro.workloads` are written in this
assembly language (the paper compiled SPEC2000 ``vpr`` and kMeans for
SimpleScalar's MIPS-like ISA; we assemble behavioural equivalents).

Supported syntax
----------------

* Labels: ``name:`` (own line or prefixing a statement).
* Comments: ``#`` or ``;`` to end of line.
* Directives: ``.text``, ``.data``, ``.word``, ``.half``, ``.byte``,
  ``.space N``, ``.asciiz "s"``, ``.align N`` (byte alignment as 2**N),
  ``.set NAME, expr``, ``.globl`` (accepted, ignored).
* Operand expressions: integers (decimal, ``0x`` hex, ``'c'`` chars),
  symbols/constants, and ``a+b`` / ``a-b`` combinations; ``hi(sym)`` and
  ``lo(sym)`` extract halves.
* Pseudo-instructions: ``nop``, ``li``, ``la``, ``move``, ``b``, ``beqz``,
  ``bnez``, ``blt``, ``bgt``, ``ble``, ``bge``, ``neg``, ``not``, ``ret``,
  ``lw/sw rt, label`` (label-addressed memory access via ``$at``).
* ``chk MODULE, BLK|NBLK, op, param`` — the RSE CHECK instruction.
"""

import re

from repro.isa.encoding import encode
from repro.isa.instructions import (
    Instr,
    InstrClass,
    SPEC_BY_NAME,
    extract_regs,
)
from repro.isa.registers import RegisterError, reg_num

DEFAULT_TEXT_BASE = 0x00400000
DEFAULT_DATA_BASE = 0x10000000

_AT = 1          # assembler temporary register
_ZERO = 0
_RA = 31


class AssemblyError(ValueError):
    """Raised on any syntax or semantic error, with line information."""

    def __init__(self, message, lineno=None, line=None):
        location = " (line %s: %r)" % (lineno, line) if lineno else ""
        super().__init__(message + location)
        self.lineno = lineno


class Assembly:
    """Result of assembling one source unit.

    Attributes:
        text: ``bytearray`` of the text segment (encoded instructions).
        data: ``bytearray`` of the data segment.
        text_base / data_base: load addresses the symbols were resolved
            against.
        symbols: mapping of label -> absolute address.
        entry: address execution starts at (``_start`` or ``main`` label
            when present, otherwise the text base).
    """

    def __init__(self, text, data, text_base, data_base, symbols):
        self.text = text
        self.data = data
        self.text_base = text_base
        self.data_base = data_base
        self.symbols = dict(symbols)
        if "_start" in self.symbols:
            self.entry = self.symbols["_start"]
        elif "main" in self.symbols:
            self.entry = self.symbols["main"]
        else:
            self.entry = text_base

    def instructions(self):
        """Decode the text segment back into ``Instr`` objects (for tests)."""
        from repro.isa.encoding import decode

        words = []
        for offset in range(0, len(self.text), 4):
            word = int.from_bytes(self.text[offset:offset + 4], "little")
            words.append(decode(word))
        return words


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_TOKEN_RE = re.compile(r"\s*([+-])\s*")


def _parse_int(text):
    text = text.strip()
    if len(text) == 3 and text[0] == "'" and text[2] == "'":
        return ord(text[1])
    negative = text.startswith("-")
    if negative:
        text = text[1:]
    if text.lower().startswith("0x"):
        value = int(text, 16)
    elif text.isdigit():
        value = int(text, 10)
    else:
        raise ValueError(text)
    return -value if negative else value


class _Statement:
    """One parsed source statement, sized during pass 1, emitted in pass 2."""

    __slots__ = ("kind", "name", "operands", "address", "size",
                 "lineno", "line", "section")

    def __init__(self, kind, name, operands, lineno, line, section):
        self.kind = kind              # "instr" | "directive"
        self.name = name
        self.operands = operands
        self.lineno = lineno
        self.line = line
        self.section = section
        self.address = 0
        self.size = 0


class Assembler:
    """Two-pass assembler.  See the module docstring for the syntax."""

    def __init__(self, text_base=DEFAULT_TEXT_BASE, data_base=DEFAULT_DATA_BASE,
                 constants=None):
        self.text_base = text_base
        self.data_base = data_base
        self.constants = dict(constants or {})
        self.symbols = {}

    # ------------------------------------------------------------------ API

    def assemble(self, source):
        """Assemble *source* text and return an :class:`Assembly`."""
        statements = self._pass1(source)
        return self._pass2(statements)

    # --------------------------------------------------------------- pass 1

    def _pass1(self, source):
        statements = []
        section = ".text"
        offsets = {".text": 0, ".data": 0}
        pending_labels = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].split(";", 1)[0].strip()
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                pending_labels.append((match.group(1), lineno, raw))
                line = line[match.end():].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            name = parts[0].lower()
            operand_text = parts[1] if len(parts) > 1 else ""

            if name == ".text":
                section = ".text"
                self._bind_labels(pending_labels, section, offsets)
                continue
            if name == ".data":
                section = ".data"
                self._bind_labels(pending_labels, section, offsets)
                continue
            if name == ".set":
                const_name, __, expr = operand_text.partition(",")
                if not __:
                    raise AssemblyError(".set needs NAME, value", lineno, raw)
                self.constants[const_name.strip()] = self._eval(
                    expr, lineno, raw, allow_symbols=False)
                continue
            if name == ".globl" or name == ".global":
                continue

            kind = "directive" if name.startswith(".") else "instr"
            operands = self._split_operands(operand_text)
            stmt = _Statement(kind, name, operands, lineno, raw, section)
            stmt.size = self._statement_size(stmt, offsets[section])
            if name == ".align" or (kind == "directive" and
                                    name in (".word", ".half")):
                # Alignment may shift the statement start; recompute below.
                pass
            offsets[section] = self._align_for(stmt, offsets[section])
            self._bind_labels(pending_labels, section, offsets)
            stmt.address = offsets[section]
            offsets[section] += stmt.size
            statements.append(stmt)
        self._bind_labels(pending_labels, section, offsets)
        return statements

    def _bind_labels(self, pending_labels, section, offsets):
        base = self.text_base if section == ".text" else self.data_base
        for label, lineno, raw in pending_labels:
            if label in self.symbols:
                raise AssemblyError("duplicate label %r" % label, lineno, raw)
            self.symbols[label] = base + offsets[section]
        pending_labels.clear()

    def _align_for(self, stmt, offset):
        if stmt.kind == "instr" or stmt.name in (".word",):
            return (offset + 3) & ~3
        if stmt.name == ".half":
            return (offset + 1) & ~1
        if stmt.name == ".align":
            alignment = 1 << self._eval(stmt.operands[0], stmt.lineno,
                                        stmt.line, allow_symbols=False)
            return (offset + alignment - 1) & ~(alignment - 1)
        return offset

    def _statement_size(self, stmt, offset):
        if stmt.kind == "instr":
            return 4 * self._expansion_length(stmt)
        name = stmt.name
        if name == ".word":
            return 4 * len(stmt.operands)
        if name == ".half":
            return 2 * len(stmt.operands)
        if name == ".byte":
            return len(stmt.operands)
        if name == ".space":
            return self._eval(stmt.operands[0], stmt.lineno, stmt.line,
                              allow_symbols=False)
        if name == ".asciiz":
            return len(self._string_literal(stmt)) + 1
        if name == ".align":
            return 0
        raise AssemblyError("unknown directive %r" % name, stmt.lineno,
                            stmt.line)

    def _expansion_length(self, stmt):
        """Number of machine instructions a (pseudo-)instruction expands to."""
        name = stmt.name
        if name in SPEC_BY_NAME or name == "nop":
            spec = SPEC_BY_NAME.get(name)
            if (spec is not None and spec.syntax == "mem"
                    and len(stmt.operands) > 1
                    and "(" not in stmt.operands[1]):
                return 3          # label-addressed pseudo form (via $at)
            return 1
        if name in ("move", "b", "beqz", "bnez", "neg", "not", "ret", "subi"):
            return 1
        if name in ("blt", "bgt", "ble", "bge"):
            return 2
        if name == "la":
            return 2
        if name == "li":
            value = self._eval(stmt.operands[1], stmt.lineno, stmt.line,
                               allow_symbols=False)
            return 1 if -0x8000 <= value <= 0xFFFF else 2
        if name in ("lw", "sw", "lb", "sb", "lh", "sh", "lbu", "lhu"):
            # Reached only for the label-addressed pseudo form.
            return 3
        raise AssemblyError("unknown instruction %r" % name, stmt.lineno,
                            stmt.line)

    # --------------------------------------------------------------- pass 2

    def _pass2(self, statements):
        text = bytearray()
        data = bytearray()
        for stmt in statements:
            buf = text if stmt.section == ".text" else data
            if len(buf) < stmt.address:
                buf.extend(b"\x00" * (stmt.address - len(buf)))
            if stmt.kind == "instr":
                pc = self.text_base + stmt.address
                for word in self._emit(stmt, pc):
                    buf.extend(word.to_bytes(4, "little"))
            else:
                buf.extend(self._emit_directive(stmt))
        return Assembly(text, data, self.text_base, self.data_base,
                        self.symbols)

    def _emit_directive(self, stmt):
        name = stmt.name
        if name == ".word":
            out = bytearray()
            for operand in stmt.operands:
                value = self._eval(operand, stmt.lineno, stmt.line) & 0xFFFFFFFF
                out.extend(value.to_bytes(4, "little"))
            return out
        if name == ".half":
            out = bytearray()
            for operand in stmt.operands:
                value = self._eval(operand, stmt.lineno, stmt.line) & 0xFFFF
                out.extend(value.to_bytes(2, "little"))
            return out
        if name == ".byte":
            return bytes(self._eval(op, stmt.lineno, stmt.line) & 0xFF
                         for op in stmt.operands)
        if name == ".space":
            return b"\x00" * stmt.size
        if name == ".asciiz":
            return self._string_literal(stmt).encode("latin-1") + b"\x00"
        if name == ".align":
            return b""
        raise AssemblyError("unknown directive %r" % name, stmt.lineno,
                            stmt.line)

    # -------------------------------------------------------- instruction emit

    def _emit(self, stmt, pc):
        name = stmt.name
        ops = stmt.operands
        err = lambda msg: AssemblyError(msg, stmt.lineno, stmt.line)

        if name == "nop":
            return [0x00000000]

        # Pseudo-instructions -------------------------------------------------
        if name == "move":
            rd, rs = self._regs(ops, 2, err)
            return [self._enc("or", rd=rd, rs=rs, rt=_ZERO)]
        if name == "neg":
            rd, rs = self._regs(ops, 2, err)
            return [self._enc("sub", rd=rd, rs=_ZERO, rt=rs)]
        if name == "not":
            rd, rs = self._regs(ops, 2, err)
            return [self._enc("nor", rd=rd, rs=rs, rt=_ZERO)]
        if name == "ret":
            return [self._enc("jr", rs=_RA)]
        if name == "b":
            return [self._branch("beq", _ZERO, _ZERO, ops[0], pc, stmt)]
        if name == "beqz":
            rs = self._reg(ops[0], err)
            return [self._branch("beq", rs, _ZERO, ops[1], pc, stmt)]
        if name == "bnez":
            rs = self._reg(ops[0], err)
            return [self._branch("bne", rs, _ZERO, ops[1], pc, stmt)]
        if name in ("blt", "bgt", "ble", "bge"):
            rs = self._reg(ops[0], err)
            rt = self._reg(ops[1], err)
            if name in ("blt", "bge"):
                slt = self._enc("slt", rd=_AT, rs=rs, rt=rt)
            else:
                slt = self._enc("slt", rd=_AT, rs=rt, rt=rs)
            branch_name = "bne" if name in ("blt", "bgt") else "beq"
            branch = self._branch(branch_name, _AT, _ZERO, ops[2], pc + 4,
                                  stmt)
            return [slt, branch]
        if name == "subi":
            rt, rs = self._regs(ops[:2], 2, err)
            imm = self._eval(ops[2], stmt.lineno, stmt.line)
            return [self._enc("addi", rt=rt, rs=rs, imm=-imm)]
        if name == "li":
            rt = self._reg(ops[0], err)
            value = self._eval(ops[1], stmt.lineno, stmt.line,
                               allow_symbols=False)
            return self._load_imm(rt, value)
        if name == "la":
            rt = self._reg(ops[0], err)
            value = self._eval(ops[1], stmt.lineno, stmt.line)
            return [
                self._enc("lui", rt=rt, imm=(value >> 16) & 0xFFFF),
                self._enc("ori", rt=rt, rs=rt, imm=value & 0xFFFF),
            ]
        if name == "chk":
            return [self._emit_chk(stmt)]

        spec = SPEC_BY_NAME.get(name)
        if spec is None:
            raise err("unknown instruction %r" % name)
        syntax = spec.syntax

        if syntax == "mem" and "(" not in ops[1]:
            # Label-addressed pseudo form: expands through $at.
            rt = self._reg(ops[0], err)
            value = self._eval(ops[1], stmt.lineno, stmt.line)
            return [
                self._enc("lui", rt=_AT, imm=(value >> 16) & 0xFFFF),
                self._enc("ori", rt=_AT, rs=_AT, imm=value & 0xFFFF),
                self._enc(name, rt=rt, rs=_AT, imm=0),
            ]

        return [self._emit_plain(spec, stmt, pc)]

    def _emit_plain(self, spec, stmt, pc):
        ops = stmt.operands
        err = lambda msg: AssemblyError(msg, stmt.lineno, stmt.line)
        syntax = spec.syntax
        if syntax == "rrr":
            rd, rs, rt = self._regs(ops, 3, err)
            return self._enc(spec.name, rd=rd, rs=rs, rt=rt)
        if syntax == "rri":
            rt, rs = self._regs(ops[:2], 2, err)
            imm = self._eval(ops[2], stmt.lineno, stmt.line)
            self._check_imm(imm, spec.name, err)
            return self._enc(spec.name, rt=rt, rs=rs, imm=imm)
        if syntax == "rrs":
            rd, rt = self._regs(ops[:2], 2, err)
            shamt = self._eval(ops[2], stmt.lineno, stmt.line,
                               allow_symbols=False)
            if not 0 <= shamt < 32:
                raise err("shift amount out of range")
            return self._enc(spec.name, rd=rd, rt=rt, shamt=shamt)
        if syntax == "rrv":
            rd, rt, rs = self._regs(ops, 3, err)
            return self._enc(spec.name, rd=rd, rt=rt, rs=rs)
        if syntax == "ri":
            rt = self._reg(ops[0], err)
            imm = self._eval(ops[1], stmt.lineno, stmt.line)
            return self._enc(spec.name, rt=rt, imm=imm)
        if syntax == "mem":
            rt = self._reg(ops[0], err)
            offset, base = self._mem_operand(ops[1], stmt)
            return self._enc(spec.name, rt=rt, rs=base, imm=offset)
        if syntax == "br2":
            rs, rt = self._regs(ops[:2], 2, err)
            return self._branch(spec.name, rs, rt, ops[2], pc, stmt)
        if syntax == "br1":
            rs = self._reg(ops[0], err)
            return self._branch(spec.name, rs, 0, ops[1], pc, stmt)
        if syntax == "j":
            value = self._eval(ops[0], stmt.lineno, stmt.line)
            return self._enc(spec.name, target=(value >> 2) & 0x03FFFFFF)
        if syntax == "r":
            rs = self._reg(ops[0], err)
            return self._enc(spec.name, rs=rs)
        if syntax == "rr":
            rd, rs = self._regs(ops, 2, err)
            return self._enc(spec.name, rd=rd, rs=rs)
        if syntax == "none":
            return self._enc(spec.name)
        raise err("unhandled syntax %r" % syntax)

    def _emit_chk(self, stmt):
        """``chk MODULE, BLK|NBLK, op, param`` — Section 3.3 fields."""
        ops = stmt.operands
        if len(ops) != 4:
            raise AssemblyError("chk needs MODULE, BLK|NBLK, op, param",
                                stmt.lineno, stmt.line)
        module = self._eval(ops[0], stmt.lineno, stmt.line)
        mode = ops[1].strip().lower()
        if mode not in ("blk", "nblk"):
            raise AssemblyError("chk mode must be BLK or NBLK", stmt.lineno,
                                stmt.line)
        op = self._eval(ops[2], stmt.lineno, stmt.line)
        param = self._eval(ops[3], stmt.lineno, stmt.line)
        return encode(SPEC_BY_NAME["chk"], module=module,
                      blk=1 if mode == "blk" else 0, op=op, param=param)

    # ------------------------------------------------------------- helpers

    def _branch(self, name, rs, rt, target_expr, pc, stmt):
        target = self._eval(target_expr, stmt.lineno, stmt.line)
        offset = (target - (pc + 4)) >> 2
        if not -0x8000 <= offset <= 0x7FFF:
            raise AssemblyError("branch target out of range", stmt.lineno,
                                stmt.line)
        return self._enc(name, rs=rs, rt=rt, imm=offset)

    def _load_imm(self, rt, value):
        if -0x8000 <= value < 0x8000:
            return [self._enc("addi", rt=rt, rs=_ZERO, imm=value)]
        if 0 <= value <= 0xFFFF:
            return [self._enc("ori", rt=rt, rs=_ZERO, imm=value)]
        words = [self._enc("lui", rt=rt, imm=(value >> 16) & 0xFFFF)]
        words.append(self._enc("ori", rt=rt, rs=rt, imm=value & 0xFFFF))
        return words

    def _enc(self, name, **fields):
        return encode(SPEC_BY_NAME[name], **fields)

    @staticmethod
    def _check_imm(imm, name, err):
        if name in ("andi", "ori", "xori"):
            if not 0 <= imm <= 0xFFFF:
                raise err("unsigned immediate out of range: %d" % imm)
        elif not -0x8000 <= imm <= 0x7FFF:
            raise err("immediate out of range: %d" % imm)

    def _mem_operand(self, text, stmt):
        text = text.strip()
        open_paren = text.index("(")
        if not text.endswith(")"):
            raise AssemblyError("malformed memory operand %r" % text,
                                stmt.lineno, stmt.line)
        offset_text = text[:open_paren].strip()
        offset = (self._eval(offset_text, stmt.lineno, stmt.line)
                  if offset_text else 0)
        base = reg_num(text[open_paren + 1:-1])
        return offset, base

    def _reg(self, text, err):
        try:
            return reg_num(text)
        except RegisterError as exc:
            raise err(str(exc)) from None

    def _regs(self, ops, count, err):
        if len(ops) < count:
            raise err("expected %d operands" % count)
        return tuple(self._reg(op, err) for op in ops[:count])

    def _split_operands(self, text):
        """Split on commas that are not inside parens or string literals."""
        if not text:
            return []
        operands = []
        depth = 0
        in_string = False
        current = []
        for ch in text:
            if in_string:
                current.append(ch)
                if ch == '"':
                    in_string = False
                continue
            if ch == '"':
                in_string = True
                current.append(ch)
            elif ch == "(":
                depth += 1
                current.append(ch)
            elif ch == ")":
                depth -= 1
                current.append(ch)
            elif ch == "," and depth == 0:
                operands.append("".join(current).strip())
                current = []
            else:
                current.append(ch)
        operands.append("".join(current).strip())
        return operands

    def _string_literal(self, stmt):
        text = ",".join(stmt.operands).strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise AssemblyError(".asciiz needs a quoted string", stmt.lineno,
                                stmt.line)
        return (text[1:-1].replace("\\n", "\n").replace("\\t", "\t")
                .replace("\\0", "\0"))

    def _eval(self, expr, lineno, line, allow_symbols=True):
        """Evaluate an integer expression: terms joined with ``+``/``-``."""
        expr = expr.strip()
        if expr.startswith("hi(") and expr.endswith(")"):
            return (self._eval(expr[3:-1], lineno, line) >> 16) & 0xFFFF
        if expr.startswith("lo(") and expr.endswith(")"):
            return self._eval(expr[3:-1], lineno, line) & 0xFFFF
        if not expr:
            raise AssemblyError("empty expression", lineno, line)
        if expr[0] == "-":
            expr = "0" + expr          # unary minus: evaluate as 0 - term
        tokens = _TOKEN_RE.split(expr)
        total = self._term(tokens[0], lineno, line, allow_symbols)
        index = 1
        while index < len(tokens):
            operator = tokens[index]
            term = self._term(tokens[index + 1], lineno, line, allow_symbols)
            total = total + term if operator == "+" else total - term
            index += 2
        return total

    def _term(self, text, lineno, line, allow_symbols):
        text = text.strip()
        try:
            return _parse_int(text)
        except ValueError:
            pass
        if text in self.constants:
            return self.constants[text]
        if allow_symbols and text in self.symbols:
            return self.symbols[text]
        if allow_symbols:
            raise AssemblyError("undefined symbol %r" % text, lineno, line)
        raise AssemblyError("expected a constant, got %r" % text, lineno, line)


def assemble(source, text_base=DEFAULT_TEXT_BASE, data_base=DEFAULT_DATA_BASE,
             constants=None):
    """Convenience wrapper: assemble *source* and return the :class:`Assembly`."""
    return Assembler(text_base=text_base, data_base=data_base,
                     constants=constants).assemble(source)
