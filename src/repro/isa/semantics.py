"""Architectural semantics of the ISA, shared by every execution engine.

Both the functional reference simulator (:mod:`repro.funcsim`) and the
out-of-order pipeline (:mod:`repro.pipeline`) call into this module, so
"what an instruction computes" has a single source of truth; the two
engines differ only in *when* things happen.  Register values are
represented as unsigned 32-bit Python ints everywhere.
"""

from repro.isa.instructions import InstrClass

MASK32 = 0xFFFFFFFF


class ArithmeticFault(Exception):
    """Integer divide (or remainder) by zero."""

    def __init__(self, pc=None):
        super().__init__("integer divide by zero"
                         + ("" if pc is None else " at 0x%08x" % pc))
        self.pc = pc


def to_signed(value):
    """Interpret an unsigned 32-bit value as two's-complement."""
    return value - 0x100000000 if value & 0x80000000 else value


def to_unsigned(value):
    """Truncate a Python int to its unsigned 32-bit representation."""
    return value & MASK32


def alu_result(instr, a, b):
    """Result of an ALU or MDU instruction.

    *a* is the rs-operand value, *b* the rt-operand value (both unsigned
    32-bit).  Immediates are taken from the instruction itself.
    """
    name = instr.name
    if name == "add":
        return (a + b) & MASK32
    if name == "addi":
        return (a + instr.imm) & MASK32
    if name == "sub":
        return (a - b) & MASK32
    if name == "and":
        return a & b
    if name == "andi":
        return a & instr.uimm
    if name == "or":
        return a | b
    if name == "ori":
        return a | instr.uimm
    if name == "xor":
        return a ^ b
    if name == "xori":
        return a ^ instr.uimm
    if name == "nor":
        return ~(a | b) & MASK32
    if name == "slt":
        return 1 if to_signed(a) < to_signed(b) else 0
    if name == "slti":
        return 1 if to_signed(a) < instr.imm else 0
    if name == "sltu":
        return 1 if a < b else 0
    if name == "sltiu":
        return 1 if a < (instr.imm & MASK32) else 0
    if name == "sll":
        return (b << instr.shamt) & MASK32
    if name == "srl":
        return b >> instr.shamt
    if name == "sra":
        return (to_signed(b) >> instr.shamt) & MASK32
    if name == "sllv":
        return (b << (a & 31)) & MASK32
    if name == "srlv":
        return b >> (a & 31)
    if name == "srav":
        return (to_signed(b) >> (a & 31)) & MASK32
    if name == "lui":
        return (instr.uimm << 16) & MASK32
    if name == "mul":
        return (to_signed(a) * to_signed(b)) & MASK32
    if name == "div":
        if b == 0:
            raise ArithmeticFault()
        quotient = abs(to_signed(a)) // abs(to_signed(b))
        if (to_signed(a) < 0) != (to_signed(b) < 0):
            quotient = -quotient
        return quotient & MASK32
    if name == "rem":
        if b == 0:
            raise ArithmeticFault()
        sa, sb = to_signed(a), to_signed(b)
        remainder = abs(sa) % abs(sb)
        if sa < 0:
            remainder = -remainder
        return remainder & MASK32
    if name == "divu":
        if b == 0:
            raise ArithmeticFault()
        return a // b
    if name == "remu":
        if b == 0:
            raise ArithmeticFault()
        return a % b
    raise ValueError("not an ALU/MDU instruction: %r" % (instr,))


def branch_taken(instr, a, b):
    """Whether a conditional branch is taken (*a* = rs value, *b* = rt value)."""
    name = instr.name
    if name == "beq":
        return a == b
    if name == "bne":
        return a != b
    if name == "blez":
        return to_signed(a) <= 0
    if name == "bgtz":
        return to_signed(a) > 0
    if name == "bltz":
        return to_signed(a) < 0
    if name == "bgez":
        return to_signed(a) >= 0
    raise ValueError("not a branch: %r" % (instr,))


def branch_target(instr, pc):
    """Target address of a taken conditional branch at *pc*."""
    return (pc + 4 + (instr.imm << 2)) & MASK32


def jump_target(instr, pc, rs_value=0):
    """Target address of an unconditional jump at *pc*."""
    name = instr.name
    if name in ("j", "jal"):
        return ((pc + 4) & 0xF0000000) | (instr.target << 2)
    if name in ("jr", "jalr"):
        return rs_value & MASK32
    raise ValueError("not a jump: %r" % (instr,))


def control_target(instr, pc, a=0, b=0):
    """Next PC after executing control-flow *instr* with operand values."""
    if instr.iclass is InstrClass.BRANCH:
        return branch_target(instr, pc) if branch_taken(instr, a, b) \
            else (pc + 4) & MASK32
    return jump_target(instr, pc, a)


def effective_address(instr, rs_value):
    """Effective address of a load or store."""
    return (rs_value + instr.imm) & MASK32


def load_from(memory, instr, addr):
    """Perform the load described by *instr* at *addr* against *memory*."""
    name = instr.name
    if name == "lw":
        return memory.load_word(addr)
    if name == "lh":
        value = memory.load_half(addr)
        return (value - 0x10000 if value & 0x8000 else value) & MASK32
    if name == "lhu":
        return memory.load_half(addr)
    if name == "lb":
        value = memory.load_byte(addr)
        return (value - 0x100 if value & 0x80 else value) & MASK32
    if name == "lbu":
        return memory.load_byte(addr)
    raise ValueError("not a load: %r" % (instr,))


def store_to(memory, instr, addr, value):
    """Perform the store described by *instr*."""
    name = instr.name
    if name == "sw":
        memory.store_word(addr, value)
    elif name == "sh":
        memory.store_half(addr, value)
    elif name == "sb":
        memory.store_byte(addr, value)
    else:
        raise ValueError("not a store: %r" % (instr,))


def access_size(instr):
    """Bytes touched by a load/store instruction."""
    name = instr.name
    if name in ("lw", "sw"):
        return 4
    if name in ("lh", "lhu", "sh"):
        return 2
    return 1
