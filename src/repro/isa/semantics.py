"""Architectural semantics of the ISA, shared by every execution engine.

Both the functional reference simulator (:mod:`repro.funcsim`) and the
out-of-order pipeline (:mod:`repro.pipeline`) call into this module, so
"what an instruction computes" has a single source of truth; the two
engines differ only in *when* things happen.  Register values are
represented as unsigned 32-bit Python ints everywhere.

Dispatch is table-driven: each mnemonic maps to one small function in
:data:`ALU_OPS`, :data:`BRANCH_OPS`, :data:`LOAD_OPS` or
:data:`STORE_OPS`, and the public name-based entry points
(:func:`alu_result`, :func:`branch_taken`, :func:`load_from`,
:func:`store_to`) are thin wrappers over those tables.  The predecode
layer (:mod:`repro.isa.predecode`) compiles per-instruction closures
from the same tables, so an op's semantics live in exactly one place no
matter which engine — or which speed tier of an engine — executes it.
"""

from repro.isa.instructions import InstrClass

MASK32 = 0xFFFFFFFF


class ArithmeticFault(Exception):
    """Integer divide (or remainder) by zero."""

    def __init__(self, pc=None):
        super().__init__("integer divide by zero"
                         + ("" if pc is None else " at 0x%08x" % pc))
        self.pc = pc


def to_signed(value):
    """Interpret an unsigned 32-bit value as two's-complement."""
    return value - 0x100000000 if value & 0x80000000 else value


def to_unsigned(value):
    """Truncate a Python int to its unsigned 32-bit representation."""
    return value & MASK32


# ALU / MDU -----------------------------------------------------------------
#
# Every entry has the uniform signature ``op(instr, a, b) -> value`` with
# *a* the rs-operand and *b* the rt-operand (unsigned 32-bit); immediates
# and shift amounts come from *instr*.  The uniform shape is what lets
# the predecode compiler bake any of these into a closure.

def _op_div(instr, a, b):
    if b == 0:
        raise ArithmeticFault()
    if a == 0x80000000 and b == MASK32:
        # INT_MIN / -1 overflows a 32-bit quotient; it wraps to
        # INT_MIN under MASK32 (no trap), identically in every engine.
        return 0x80000000
    quotient = abs(to_signed(a)) // abs(to_signed(b))
    if (to_signed(a) < 0) != (to_signed(b) < 0):
        quotient = -quotient
    return quotient & MASK32


def _op_rem(instr, a, b):
    if b == 0:
        raise ArithmeticFault()
    if a == 0x80000000 and b == MASK32:
        return 0          # INT_MIN % -1: the wrapped quotient is exact
    sa, sb = to_signed(a), to_signed(b)
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return remainder & MASK32


def _op_divu(instr, a, b):
    if b == 0:
        raise ArithmeticFault()
    return a // b


def _op_remu(instr, a, b):
    if b == 0:
        raise ArithmeticFault()
    return a % b


#: name -> op(instr, a, b) for every ALU and MDU mnemonic.
ALU_OPS = {
    "add": lambda instr, a, b: (a + b) & MASK32,
    "addi": lambda instr, a, b: (a + instr.imm) & MASK32,
    "sub": lambda instr, a, b: (a - b) & MASK32,
    "and": lambda instr, a, b: a & b,
    "andi": lambda instr, a, b: a & instr.uimm,
    "or": lambda instr, a, b: a | b,
    "ori": lambda instr, a, b: a | instr.uimm,
    "xor": lambda instr, a, b: a ^ b,
    "xori": lambda instr, a, b: a ^ instr.uimm,
    "nor": lambda instr, a, b: ~(a | b) & MASK32,
    "slt": lambda instr, a, b: 1 if to_signed(a) < to_signed(b) else 0,
    "slti": lambda instr, a, b: 1 if to_signed(a) < instr.imm else 0,
    "sltu": lambda instr, a, b: 1 if a < b else 0,
    "sltiu": lambda instr, a, b: 1 if a < (instr.imm & MASK32) else 0,
    "sll": lambda instr, a, b: (b << instr.shamt) & MASK32,
    "srl": lambda instr, a, b: b >> instr.shamt,
    "sra": lambda instr, a, b: (to_signed(b) >> instr.shamt) & MASK32,
    "sllv": lambda instr, a, b: (b << (a & 31)) & MASK32,
    "srlv": lambda instr, a, b: b >> (a & 31),
    "srav": lambda instr, a, b: (to_signed(b) >> (a & 31)) & MASK32,
    "lui": lambda instr, a, b: (instr.uimm << 16) & MASK32,
    "mul": lambda instr, a, b: (to_signed(a) * to_signed(b)) & MASK32,
    "div": _op_div,
    "rem": _op_rem,
    "divu": _op_divu,
    "remu": _op_remu,
}


def alu_result(instr, a, b):
    """Result of an ALU or MDU instruction.

    *a* is the rs-operand value, *b* the rt-operand value (both unsigned
    32-bit).  Immediates are taken from the instruction itself.
    """
    op = ALU_OPS.get(instr.name)
    if op is None:
        raise ValueError("not an ALU/MDU instruction: %r" % (instr,))
    return op(instr, a, b)


# Control flow --------------------------------------------------------------

#: name -> taken(a, b) for every conditional branch (*a* = rs, *b* = rt).
BRANCH_OPS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blez": lambda a, b: to_signed(a) <= 0,
    "bgtz": lambda a, b: to_signed(a) > 0,
    "bltz": lambda a, b: to_signed(a) < 0,
    "bgez": lambda a, b: to_signed(a) >= 0,
}


def branch_taken(instr, a, b):
    """Whether a conditional branch is taken (*a* = rs value, *b* = rt value)."""
    op = BRANCH_OPS.get(instr.name)
    if op is None:
        raise ValueError("not a branch: %r" % (instr,))
    return op(a, b)


def branch_target(instr, pc):
    """Target address of a taken conditional branch at *pc*."""
    return (pc + 4 + (instr.imm << 2)) & MASK32


def jump_target(instr, pc, rs_value=0):
    """Target address of an unconditional jump at *pc*."""
    name = instr.name
    if name in ("j", "jal"):
        return ((pc + 4) & 0xF0000000) | (instr.target << 2)
    if name in ("jr", "jalr"):
        return rs_value & MASK32
    raise ValueError("not a jump: %r" % (instr,))


def control_target(instr, pc, a=0, b=0):
    """Next PC after executing control-flow *instr* with operand values."""
    if instr.iclass is InstrClass.BRANCH:
        return branch_target(instr, pc) if branch_taken(instr, a, b) \
            else (pc + 4) & MASK32
    return jump_target(instr, pc, a)


def effective_address(instr, rs_value):
    """Effective address of a load or store."""
    return (rs_value + instr.imm) & MASK32


# Memory --------------------------------------------------------------------

def _load_lh(memory, addr):
    value = memory.load_half(addr)
    return (value - 0x10000 if value & 0x8000 else value) & MASK32


def _load_lb(memory, addr):
    value = memory.load_byte(addr)
    return (value - 0x100 if value & 0x80 else value) & MASK32


#: name -> load(memory, addr) for every load mnemonic.
LOAD_OPS = {
    "lw": lambda memory, addr: memory.load_word(addr),
    "lh": _load_lh,
    "lhu": lambda memory, addr: memory.load_half(addr),
    "lb": _load_lb,
    "lbu": lambda memory, addr: memory.load_byte(addr),
}

#: name -> store(memory, addr, value) for every store mnemonic.
STORE_OPS = {
    "sw": lambda memory, addr, value: memory.store_word(addr, value),
    "sh": lambda memory, addr, value: memory.store_half(addr, value),
    "sb": lambda memory, addr, value: memory.store_byte(addr, value),
}


def load_from(memory, instr, addr):
    """Perform the load described by *instr* at *addr* against *memory*."""
    op = LOAD_OPS.get(instr.name)
    if op is None:
        raise ValueError("not a load: %r" % (instr,))
    return op(memory, addr)


def store_to(memory, instr, addr, value):
    """Perform the store described by *instr*."""
    op = STORE_OPS.get(instr.name)
    if op is None:
        raise ValueError("not a store: %r" % (instr,))
    op(memory, addr, value)


def access_size(instr):
    """Bytes touched by a load/store instruction."""
    name = instr.name
    if name in ("lw", "sw"):
        return 4
    if name in ("lh", "lhu", "sh"):
        return 2
    return 1
