"""PC-indexed predecode cache with closure-compiled instruction semantics.

Both execution engines used to pay for every simulated instruction
twice: ``decode(memory.load_word(pc))`` on every fetch, then a
name-string dispatch for the operation itself.  This module removes
both costs while keeping memory the single source of architectural
truth:

* :class:`PredecodeCache` maps ``pc -> (page_version, exec_closure,
  raw_word, Instr)``.  The functional simulator's step loop executes the
  closure; the pipeline's fetch stage reads the ``Instr``.  Entries
  revalidate against :attr:`MainMemory.write_versions` — the per-page
  store counters — so a store that hits cached text (self-modifying
  code, a campaign ``instr-flip``/``mem-flip`` landing in the text
  segment, a page restore) invalidates exactly the affected page and the
  engines decode what is actually in memory.

* :func:`compile_instr` lowers one decoded instruction at one pc into a
  bound closure, threaded-code style: operand register indices,
  immediates, branch targets, bound memory accessors and the operation
  are baked in at compile time, so executing the instruction is a single
  call with no dispatch.  Rare opcodes fall back to the per-opcode
  tables in :mod:`repro.isa.semantics` (``ALU_OPS`` etc.); for the hot
  opcodes the expression is inlined and pinned to those tables by
  ``tests/isa/test_semantics.py``.

Closure protocol (the contract with :class:`repro.funcsim.FuncSim`):

* ``fn(sim)`` executes the instruction against ``sim.regs`` and the
  bound memory and returns the **next pc** (a non-negative int).  It
  does not touch ``sim.pc`` or ``sim.instret`` — the caller owns those,
  keeping them in locals on the hot loop and syncing at stop points.
* Serializing cases return a negative sentinel instead: :data:`HALT`
  (closure has set ``sim.halted``), :data:`SYSCALL` or :data:`CHECK`
  (closure has done nothing; the caller runs the hook with fully synced
  architectural state, exactly like the reference interpreter).
* It may raise :class:`~repro.memory.mainmem.MemoryFault` or
  :class:`~repro.isa.semantics.ArithmeticFault`; the caller converts
  those into an architectural fault at the instruction's pc.  No
  architectural state (registers, memory) has been modified when that
  happens.
* The ``trace_mem`` hook fires from load/store closures (same event
  order as the reference interpreter); during a hot ``run()`` loop it
  may observe a stale ``sim.pc``/``sim.instret``, which no consumer
  reads.
"""

from repro.isa.encoding import decode
from repro.isa.instructions import InstrClass
from repro.isa.semantics import (
    ALU_OPS,
    BRANCH_OPS,
    LOAD_OPS,
    STORE_OPS,
    branch_target,
    jump_target,
)
from repro.memory.mainmem import PAGE_SHIFT

MASK32 = 0xFFFFFFFF
SIGN_BIT = 0x80000000

#: Sentinel next-pc values (negative, so ``nxt >= 0`` is the fast test).
HALT = -1          # closure set sim.halted; instruction retired
SYSCALL = -2       # caller must sync state and run the syscall handler
CHECK = -3         # caller must run the chk hook, then advance pc by 4


# --------------------------------------------------------------- compilers
#
# Hot opcodes get hand-inlined closures (signed compares use the
# xor-bias trick: a <s b  <=>  (a ^ 0x80000000) < (b ^ 0x80000000));
# everything else closes over the semantics tables.  The factories below
# return fn(sim) -> next_pc per the module protocol.

def _compile_alu(pc, instr, next_pc):
    name = instr.name
    dest = instr.dest
    rs = instr.rs
    rt = instr.rt
    if not dest:
        # No architectural destination: only side effects (a divide
        # fault) can matter, so always go through the semantics table.
        op = ALU_OPS[name]
        def fn(sim):
            regs = sim.regs
            op(instr, regs[rs], regs[rt])
            return next_pc
        return fn

    if name == "add":
        def fn(sim):
            regs = sim.regs
            regs[dest] = (regs[rs] + regs[rt]) & MASK32
            return next_pc
    elif name == "addi":
        imm = instr.imm & MASK32
        def fn(sim):
            regs = sim.regs
            regs[dest] = (regs[rs] + imm) & MASK32
            return next_pc
    elif name == "sub":
        def fn(sim):
            regs = sim.regs
            regs[dest] = (regs[rs] - regs[rt]) & MASK32
            return next_pc
    elif name == "and":
        def fn(sim):
            regs = sim.regs
            regs[dest] = regs[rs] & regs[rt]
            return next_pc
    elif name == "andi":
        uimm = instr.uimm
        def fn(sim):
            regs = sim.regs
            regs[dest] = regs[rs] & uimm
            return next_pc
    elif name == "or":
        def fn(sim):
            regs = sim.regs
            regs[dest] = regs[rs] | regs[rt]
            return next_pc
    elif name == "ori":
        uimm = instr.uimm
        def fn(sim):
            regs = sim.regs
            regs[dest] = regs[rs] | uimm
            return next_pc
    elif name == "xor":
        def fn(sim):
            regs = sim.regs
            regs[dest] = regs[rs] ^ regs[rt]
            return next_pc
    elif name == "xori":
        uimm = instr.uimm
        def fn(sim):
            regs = sim.regs
            regs[dest] = regs[rs] ^ uimm
            return next_pc
    elif name == "nor":
        def fn(sim):
            regs = sim.regs
            regs[dest] = ~(regs[rs] | regs[rt]) & MASK32
            return next_pc
    elif name == "slt":
        def fn(sim):
            regs = sim.regs
            regs[dest] = (1 if (regs[rs] ^ SIGN_BIT) < (regs[rt] ^ SIGN_BIT)
                          else 0)
            return next_pc
    elif name == "slti":
        biased = (instr.imm & MASK32) ^ SIGN_BIT
        def fn(sim):
            regs = sim.regs
            regs[dest] = 1 if (regs[rs] ^ SIGN_BIT) < biased else 0
            return next_pc
    elif name == "sltu":
        def fn(sim):
            regs = sim.regs
            regs[dest] = 1 if regs[rs] < regs[rt] else 0
            return next_pc
    elif name == "sltiu":
        imm = instr.imm & MASK32
        def fn(sim):
            regs = sim.regs
            regs[dest] = 1 if regs[rs] < imm else 0
            return next_pc
    elif name == "sll":
        shamt = instr.shamt
        def fn(sim):
            regs = sim.regs
            regs[dest] = (regs[rt] << shamt) & MASK32
            return next_pc
    elif name == "srl":
        shamt = instr.shamt
        def fn(sim):
            regs = sim.regs
            regs[dest] = regs[rt] >> shamt
            return next_pc
    elif name == "sra":
        shamt = instr.shamt
        def fn(sim):
            regs = sim.regs
            value = regs[rt]
            regs[dest] = ((value - ((value & SIGN_BIT) << 1)) >> shamt) \
                & MASK32
            return next_pc
    elif name == "lui":
        value = (instr.uimm << 16) & MASK32
        def fn(sim):
            sim.regs[dest] = value
            return next_pc
    elif name == "mul":
        def fn(sim):
            regs = sim.regs
            a = regs[rs]
            b = regs[rt]
            regs[dest] = ((a - ((a & SIGN_BIT) << 1)) *
                          (b - ((b & SIGN_BIT) << 1))) & MASK32
            return next_pc
    else:
        # Variable shifts, divides, remainders and anything added later.
        op = ALU_OPS[name]
        def fn(sim):
            regs = sim.regs
            regs[dest] = op(instr, regs[rs], regs[rt])
            return next_pc
    return fn


def _compile_load(pc, instr, next_pc, memory):
    dest = instr.dest
    rs = instr.rs
    imm = instr.imm
    if instr.name == "lw" and dest:
        load_word = memory.load_word
        def fn(sim):
            regs = sim.regs
            addr = (regs[rs] + imm) & MASK32
            trace = sim.trace_mem
            if trace is not None:
                trace(sim, instr, addr, False)
            regs[dest] = load_word(addr)
            return next_pc
        return fn
    op = LOAD_OPS[instr.name]
    if dest:
        def fn(sim):
            regs = sim.regs
            addr = (regs[rs] + imm) & MASK32
            trace = sim.trace_mem
            if trace is not None:
                trace(sim, instr, addr, False)
            regs[dest] = op(memory, addr)
            return next_pc
    else:
        def fn(sim):
            addr = (sim.regs[rs] + imm) & MASK32
            trace = sim.trace_mem
            if trace is not None:
                trace(sim, instr, addr, False)
            op(memory, addr)          # alignment fault still applies
            return next_pc
    return fn


def _compile_store(pc, instr, next_pc, memory):
    rs = instr.rs
    rt = instr.rt
    imm = instr.imm
    if instr.name == "sw":
        store_word = memory.store_word
        def fn(sim):
            regs = sim.regs
            addr = (regs[rs] + imm) & MASK32
            trace = sim.trace_mem
            if trace is not None:
                trace(sim, instr, addr, True)
            store_word(addr, regs[rt])
            return next_pc
        return fn
    op = STORE_OPS[instr.name]
    def fn(sim):
        regs = sim.regs
        addr = (regs[rs] + imm) & MASK32
        trace = sim.trace_mem
        if trace is not None:
            trace(sim, instr, addr, True)
        op(memory, addr, regs[rt])
        return next_pc
    return fn


def _compile_branch(pc, instr, next_pc):
    name = instr.name
    rs = instr.rs
    rt = instr.rt
    taken = branch_target(instr, pc)
    if name == "beq":
        def fn(sim):
            regs = sim.regs
            return taken if regs[rs] == regs[rt] else next_pc
    elif name == "bne":
        def fn(sim):
            regs = sim.regs
            return taken if regs[rs] != regs[rt] else next_pc
    elif name == "blez":
        def fn(sim):
            value = sim.regs[rs]
            return taken if value == 0 or value & SIGN_BIT else next_pc
    elif name == "bgtz":
        def fn(sim):
            value = sim.regs[rs]
            return next_pc if value == 0 or value & SIGN_BIT else taken
    elif name == "bltz":
        def fn(sim):
            return taken if sim.regs[rs] & SIGN_BIT else next_pc
    elif name == "bgez":
        def fn(sim):
            return next_pc if sim.regs[rs] & SIGN_BIT else taken
    else:
        cond = BRANCH_OPS[name]
        def fn(sim):
            regs = sim.regs
            return taken if cond(regs[rs], regs[rt]) else next_pc
    return fn


def _compile_jump(pc, instr, next_pc):
    name = instr.name
    dest = instr.dest
    rs = instr.rs
    if name in ("j", "jal"):
        target = jump_target(instr, pc)
        if dest:          # jal link
            def fn(sim):
                sim.regs[dest] = next_pc
                return target
        else:
            def fn(sim):
                return target
        return fn
    # jr / jalr: the link is written before the target register is read,
    # matching the reference interpreter (visible when rd == rs).
    if dest:
        def fn(sim):
            regs = sim.regs
            regs[dest] = next_pc
            return regs[rs] & MASK32
    else:
        def fn(sim):
            return sim.regs[rs] & MASK32
    return fn


def _compile_halt():
    def fn(sim):
        sim.halted = True
        return HALT
    return fn


def _compile_serial(sentinel):
    def fn(sim):
        return sentinel
    return fn


def _compile_nop(next_pc):
    def fn(sim):
        return next_pc
    return fn


def compile_instr(pc, instr, memory):
    """Compile *instr* at *pc* into an execution closure bound to *memory*."""
    iclass = instr.iclass
    next_pc = (pc + 4) & MASK32
    if iclass is InstrClass.ALU or iclass is InstrClass.MDU:
        return _compile_alu(pc, instr, next_pc)
    if iclass is InstrClass.LOAD:
        return _compile_load(pc, instr, next_pc, memory)
    if iclass is InstrClass.STORE:
        return _compile_store(pc, instr, next_pc, memory)
    if iclass is InstrClass.BRANCH:
        return _compile_branch(pc, instr, next_pc)
    if iclass is InstrClass.JUMP:
        return _compile_jump(pc, instr, next_pc)
    if iclass is InstrClass.SYSCALL:
        return _compile_serial(SYSCALL)
    if iclass is InstrClass.HALT:
        return _compile_halt()
    if iclass is InstrClass.CHECK:
        return _compile_serial(CHECK)
    if iclass is InstrClass.NOP:
        return _compile_nop(next_pc)
    raise ValueError("cannot compile %r" % (instr,))          # pragma: no cover


# ------------------------------------------------------------------- cache

class PredecodeCache:
    """PC-indexed cache of decoded + compiled instructions over one memory.

    Entries are ``(page_version, exec_closure, raw_word, instr)`` tuples.
    An entry is valid while its page's counter in
    ``memory.write_versions`` still equals ``page_version``; consumers
    on a hot path inline that check and call :meth:`refill` on a miss.
    """

    #: Entry bound; reached only by pathological self-modifying code, in
    #: which case the whole cache is dropped and rebuilt on demand.
    MAX_ENTRIES = 1 << 16

    __slots__ = ("memory", "entries")

    def __init__(self, memory):
        self.memory = memory
        self.entries = {}

    def refill(self, pc):
        """(Re)build the entry for *pc* from what memory currently holds.

        Raises :class:`~repro.memory.mainmem.MemoryFault` on a bad fetch
        address and :class:`~repro.isa.encoding.DecodeError` when the
        word is not a valid instruction; neither is cached.
        """
        memory = self.memory
        version = memory.write_versions.get(pc >> PAGE_SHIFT, 0)
        word = memory.load_word(pc)
        instr = decode(word)
        entry = (version, compile_instr(pc, instr, memory), word, instr)
        entries = self.entries
        if len(entries) >= self.MAX_ENTRIES:
            entries.clear()
        entries[pc] = entry
        return entry

    def fetch(self, pc):
        """Return the validated entry for *pc* (decode/fetch may raise)."""
        entry = self.entries.get(pc)
        if (entry is None or
                self.memory.write_versions.get(pc >> PAGE_SHIFT, 0)
                != entry[0]):
            entry = self.refill(pc)
        return entry

    def invalidate_all(self):
        self.entries.clear()


def cache_for(memory):
    """The shared :class:`PredecodeCache` for *memory* (created on demand).

    Attached to the memory object itself so every engine executing from
    the same memory — the functional simulator and the pipeline of one
    machine, say — shares one cache and one invalidation protocol.
    """
    cache = getattr(memory, "predecode_cache", None)
    if cache is None:
        cache = PredecodeCache(memory)
        memory.predecode_cache = cache
    return cache
