"""32-bit RISC instruction-set architecture used throughout the reproduction.

The ISA is MIPS/DLX-flavoured (the paper's simulator, SimpleScalar, "implements
an instruction set architecture very similar to MIPS"), extended with the
paper's ``CHK`` instruction — the application-level interface to the
Reliability and Security Engine (RSE).

Public surface:

* :mod:`repro.isa.registers` — architectural register file names/indices.
* :mod:`repro.isa.instructions` — instruction specifications and the decoded
  :class:`~repro.isa.instructions.Instr` record.
* :mod:`repro.isa.encoding` — 32-bit binary encode/decode.
* :mod:`repro.isa.assembler` — two-pass assembler producing program images.
"""

from repro.isa.instructions import Instr, InstrClass, SPEC_BY_NAME
from repro.isa.encoding import encode, decode, DecodeError
from repro.isa.registers import REG_NAMES, reg_num
from repro.isa.assembler import Assembler, AssemblyError, assemble

__all__ = [
    "Instr",
    "InstrClass",
    "SPEC_BY_NAME",
    "encode",
    "decode",
    "DecodeError",
    "REG_NAMES",
    "reg_num",
    "Assembler",
    "AssemblyError",
    "assemble",
]
