"""Disassembler: segments and program images back to readable listings."""

from repro.isa.encoding import DecodeError, decode


class DisasmLine:
    """One listing line: address, raw word, mnemonic text, label if any."""

    __slots__ = ("pc", "word", "text", "label")

    def __init__(self, pc, word, text, label=None):
        self.pc = pc
        self.word = word
        self.text = text
        self.label = label

    def render(self):
        prefix = "%s:\n" % self.label if self.label else ""
        return "%s    %08x:  %08x    %s" % (prefix, self.pc, self.word,
                                            self.text)


def disassemble_segment(memory, base, length, symbols=None):
    """Disassemble *length* bytes at *base*; returns a list of lines.

    *symbols* (label -> address) annotates branch targets and labels
    lines.  Undecodable words render as ``.word``.
    """
    by_addr = {}
    if symbols:
        for name, addr in symbols.items():
            by_addr.setdefault(addr, name)
    lines = []
    for offset in range(0, length, 4):
        pc = base + offset
        word = memory.load_word(pc)
        try:
            instr = decode(word)
            text = instr.disassemble()
            target = _control_target(instr, pc)
            if target is not None and target in by_addr:
                text += "    <%s>" % by_addr[target]
        except DecodeError:
            text = ".word 0x%08x" % word
        lines.append(DisasmLine(pc, word, text, by_addr.get(pc)))
    return lines


def _control_target(instr, pc):
    from repro.isa.instructions import InstrClass

    if instr.iclass is InstrClass.BRANCH:
        return (pc + 4 + (instr.imm << 2)) & 0xFFFFFFFF
    if instr.name in ("j", "jal"):
        return ((pc + 4) & 0xF0000000) | (instr.target << 2)
    return None


def disassemble_image(image, memory=None):
    """Disassemble a process image's text segment into one string.

    When *memory* is given the listing reflects the *current* memory
    contents (post-corruption, post-PLT-rewrite); otherwise the image's
    original bytes are used.
    """
    from repro.memory.mainmem import MainMemory

    text = image.segment(".text")
    if memory is None:
        memory = MainMemory()
        memory.store_bytes(text.base, text.data)
    lines = disassemble_segment(memory, text.base, len(text.data),
                                symbols=image.symbols)
    return "\n".join(line.render() for line in lines)
