"""Architectural register file definition.

Thirty-two 32-bit general purpose registers with MIPS-style calling
conventions.  Register 0 is hard-wired to zero.  The simulator, assembler
and the RSE all refer to registers by their numeric index; the symbolic
names exist for assembly readability.
"""

NUM_REGS = 32

#: Canonical symbolic name for each register index.
REG_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

# Register-name lookup accepts "$sp", "sp", "$29", "r29" and "29".
_NAME_TO_NUM = {name: i for i, name in enumerate(REG_NAMES)}
_NAME_TO_NUM.update({"r%d" % i: i for i in range(NUM_REGS)})
_NAME_TO_NUM.update({"%d" % i: i for i in range(NUM_REGS)})

# Convention indices used by the kernel ABI and workload generators.
REG_ZERO = 0
REG_AT = 1
REG_V0 = 2
REG_V1 = 3
REG_A0 = 4
REG_A1 = 5
REG_A2 = 6
REG_A3 = 7
REG_GP = 28
REG_SP = 29
REG_FP = 30
REG_RA = 31


class RegisterError(ValueError):
    """Raised for an unrecognised register name."""


def reg_num(name):
    """Translate a register name (``$sp``, ``sp``, ``r29``, ``29``) to its index.

    Raises :class:`RegisterError` for unknown names.
    """
    text = name.strip().lower()
    if text.startswith("$"):
        text = text[1:]
    try:
        return _NAME_TO_NUM[text]
    except KeyError:
        raise RegisterError("unknown register %r" % (name,)) from None


def reg_name(num):
    """Return the canonical symbolic name for register index *num*."""
    if not 0 <= num < NUM_REGS:
        raise RegisterError("register index out of range: %r" % (num,))
    return REG_NAMES[num]
