"""Instruction specifications and the decoded instruction record.

The ISA is a 32-bit MIPS/DLX-flavoured RISC (the paper's SimpleScalar
substrate "implements an instruction set architecture very similar to
MIPS"), plus the paper's ``CHK`` instruction — the software interface to
the Reliability and Security Engine (Section 3.3 of the paper).

Instruction formats
-------------------

======  =================================================================
R       ``opcode(6) rs(5) rt(5) rd(5) shamt(5) funct(6)``
I       ``opcode(6) rs(5) rt(5) imm(16)``
J       ``opcode(6) target(26)``
CHK     ``opcode(6)=0x3F module(4) blk(1) operation(5) param(16)``
======  =================================================================

The ``CHK`` fields mirror Section 3.3: *Module#* selects the RSE module,
*BLK/NBLK* selects blocking (synchronous) vs non-blocking (asynchronous)
operation, *Operation* selects the module-specific operation and
*Parameter* carries a 16-bit immediate.  Pointer-sized parameters are
passed by convention in registers ``a0``/``a1``, which the RSE receives
through the ``Regfile_Data`` input queue.
"""

import enum


class InstrClass(enum.Enum):
    """Coarse functional class of an instruction.

    The pipeline uses the class to pick a functional unit and the RSE
    modules use it to filter the ``Fetch_Out`` queue (e.g. the DDT module
    reacts only to loads and stores, the ICM checks control flow).
    """

    ALU = "alu"
    MDU = "mdu"          # multiply / divide unit
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"    # conditional control flow
    JUMP = "jump"        # unconditional control flow
    SYSCALL = "syscall"
    CHECK = "check"      # RSE CHK instruction
    NOP = "nop"
    HALT = "halt"


#: Classes that redirect the program counter.
CONTROL_CLASSES = frozenset({InstrClass.BRANCH, InstrClass.JUMP})
#: Classes that access data memory.
MEMORY_CLASSES = frozenset({InstrClass.LOAD, InstrClass.STORE})


class InstrSpec:
    """Static description of one opcode: format, encoding and operand syntax.

    ``syntax`` drives both the assembler (operand parsing) and the decoder
    (source/destination register extraction):

    ========  =============================  =======================
    syntax    assembly operands              register usage
    ========  =============================  =======================
    rrr       rd, rs, rt                     dest rd, src rs+rt
    rri       rt, rs, imm                    dest rt, src rs
    rrs       rd, rt, shamt                  dest rd, src rt
    rrv       rd, rt, rs                     dest rd, src rt+rs
    ri        rt, imm                        dest rt
    mem       rt, off(rs)                    load: dest rt, src rs;
                                             store: src rs+rt
    br2       rs, rt, label                  src rs+rt
    br1       rs, label                      src rs
    j         label                          (jal: dest ra)
    r         rs                             src rs
    rr        rd, rs                         dest rd, src rs
    none      (no operands)
    chk       module, blk, op, param         src a0+a1 (payload regs)
    ========  =============================  =======================
    """

    __slots__ = ("name", "fmt", "opcode", "funct", "rt_sel", "iclass", "syntax")

    def __init__(self, name, fmt, opcode, iclass, syntax, funct=0, rt_sel=None):
        self.name = name
        self.fmt = fmt
        self.opcode = opcode
        self.funct = funct
        self.rt_sel = rt_sel      # REGIMM branches select on the rt field
        self.iclass = iclass
        self.syntax = syntax

    def __repr__(self):
        return "InstrSpec(%s)" % self.name


OP_RTYPE = 0x00
OP_REGIMM = 0x01
OP_CHK = 0x3F

_C = InstrClass

#: Every real (non-pseudo) instruction in the ISA.
SPECS = [
    # --- R-type ALU --------------------------------------------------------
    InstrSpec("sll", "R", OP_RTYPE, _C.ALU, "rrs", funct=0x00),
    InstrSpec("srl", "R", OP_RTYPE, _C.ALU, "rrs", funct=0x02),
    InstrSpec("sra", "R", OP_RTYPE, _C.ALU, "rrs", funct=0x03),
    InstrSpec("sllv", "R", OP_RTYPE, _C.ALU, "rrv", funct=0x04),
    InstrSpec("srlv", "R", OP_RTYPE, _C.ALU, "rrv", funct=0x06),
    InstrSpec("srav", "R", OP_RTYPE, _C.ALU, "rrv", funct=0x07),
    InstrSpec("add", "R", OP_RTYPE, _C.ALU, "rrr", funct=0x20),
    InstrSpec("sub", "R", OP_RTYPE, _C.ALU, "rrr", funct=0x22),
    InstrSpec("and", "R", OP_RTYPE, _C.ALU, "rrr", funct=0x24),
    InstrSpec("or", "R", OP_RTYPE, _C.ALU, "rrr", funct=0x25),
    InstrSpec("xor", "R", OP_RTYPE, _C.ALU, "rrr", funct=0x26),
    InstrSpec("nor", "R", OP_RTYPE, _C.ALU, "rrr", funct=0x27),
    InstrSpec("slt", "R", OP_RTYPE, _C.ALU, "rrr", funct=0x2A),
    InstrSpec("sltu", "R", OP_RTYPE, _C.ALU, "rrr", funct=0x2B),
    # --- R-type multiply / divide (issue to the MDU) -----------------------
    InstrSpec("mul", "R", OP_RTYPE, _C.MDU, "rrr", funct=0x18),
    InstrSpec("div", "R", OP_RTYPE, _C.MDU, "rrr", funct=0x1A),
    InstrSpec("rem", "R", OP_RTYPE, _C.MDU, "rrr", funct=0x1B),
    InstrSpec("divu", "R", OP_RTYPE, _C.MDU, "rrr", funct=0x1C),
    InstrSpec("remu", "R", OP_RTYPE, _C.MDU, "rrr", funct=0x1D),
    # --- R-type control / system -------------------------------------------
    InstrSpec("jr", "R", OP_RTYPE, _C.JUMP, "r", funct=0x08),
    InstrSpec("jalr", "R", OP_RTYPE, _C.JUMP, "rr", funct=0x09),
    InstrSpec("syscall", "R", OP_RTYPE, _C.SYSCALL, "none", funct=0x0C),
    InstrSpec("halt", "R", OP_RTYPE, _C.HALT, "none", funct=0x3F),
    # --- I-type ALU ---------------------------------------------------------
    InstrSpec("addi", "I", 0x08, _C.ALU, "rri"),
    InstrSpec("slti", "I", 0x0A, _C.ALU, "rri"),
    InstrSpec("sltiu", "I", 0x0B, _C.ALU, "rri"),
    InstrSpec("andi", "I", 0x0C, _C.ALU, "rri"),
    InstrSpec("ori", "I", 0x0D, _C.ALU, "rri"),
    InstrSpec("xori", "I", 0x0E, _C.ALU, "rri"),
    InstrSpec("lui", "I", 0x0F, _C.ALU, "ri"),
    # --- loads / stores ------------------------------------------------------
    InstrSpec("lb", "I", 0x20, _C.LOAD, "mem"),
    InstrSpec("lh", "I", 0x21, _C.LOAD, "mem"),
    InstrSpec("lw", "I", 0x23, _C.LOAD, "mem"),
    InstrSpec("lbu", "I", 0x24, _C.LOAD, "mem"),
    InstrSpec("lhu", "I", 0x25, _C.LOAD, "mem"),
    InstrSpec("sb", "I", 0x28, _C.STORE, "mem"),
    InstrSpec("sh", "I", 0x29, _C.STORE, "mem"),
    InstrSpec("sw", "I", 0x2B, _C.STORE, "mem"),
    # --- branches ------------------------------------------------------------
    InstrSpec("beq", "I", 0x04, _C.BRANCH, "br2"),
    InstrSpec("bne", "I", 0x05, _C.BRANCH, "br2"),
    InstrSpec("blez", "I", 0x06, _C.BRANCH, "br1"),
    InstrSpec("bgtz", "I", 0x07, _C.BRANCH, "br1"),
    InstrSpec("bltz", "I", OP_REGIMM, _C.BRANCH, "br1", rt_sel=0x00),
    InstrSpec("bgez", "I", OP_REGIMM, _C.BRANCH, "br1", rt_sel=0x01),
    # --- jumps ----------------------------------------------------------------
    InstrSpec("j", "J", 0x02, _C.JUMP, "j"),
    InstrSpec("jal", "J", 0x03, _C.JUMP, "j"),
    # --- RSE interface ----------------------------------------------------------
    InstrSpec("chk", "CHK", OP_CHK, _C.CHECK, "chk"),
]

SPEC_BY_NAME = {spec.name: spec for spec in SPECS}

# Encoded word 0x00000000 is "sll zero, zero, 0"; it is the canonical NOP and
# decodes with its own class so the pipeline and the cache-overhead experiment
# (Section 5.1: rewrite the code segment with NOPs in place of CHECKs) can
# treat it uniformly.
NOP_WORD = 0x00000000

#: Payload registers for CHK instructions (a0, a1): pointer-sized CHECK
#: parameters travel in these registers and reach the RSE via Regfile_Data.
CHK_PAYLOAD_REGS = (4, 5)

#: CHK operations with this bit set read the payload registers.  Checks
#: that carry no register payload (e.g. the ICM's instruction check) must
#: not create artificial dependencies on a0/a1 in the pipeline.
CHK_OP_PAYLOAD_BIT = 0x10


class Instr:
    """One decoded instruction.

    Instances are immutable value objects produced by
    :func:`repro.isa.encoding.decode` (or directly by the assembler) and
    shared freely between the pipeline, the functional simulator and the
    RSE input queues.
    """

    __slots__ = (
        "word", "name", "iclass", "fmt",
        "rs", "rt", "rd", "shamt", "imm", "uimm", "target",
        "module", "blk", "op", "param",
        "dest", "srcs",
        # Class predicates, precomputed because the pipeline consults
        # them millions of times per simulated run.
        "is_control", "is_mem", "is_load", "is_store", "is_check",
        "serializing",
    )

    def __init__(self, word, name, iclass, fmt, rs=0, rt=0, rd=0, shamt=0,
                 imm=0, uimm=0, target=0, module=0, blk=0, op=0, param=0,
                 dest=None, srcs=()):
        self.word = word
        self.name = name
        self.iclass = iclass
        self.fmt = fmt
        self.rs = rs
        self.rt = rt
        self.rd = rd
        self.shamt = shamt
        self.imm = imm          # sign-extended 16-bit immediate
        self.uimm = uimm        # zero-extended 16-bit immediate
        self.target = target    # 26-bit jump target field
        self.module = module    # CHK: module number
        self.blk = blk          # CHK: 1 = blocking (synchronous)
        self.op = op            # CHK: module-specific operation
        self.param = param      # CHK: 16-bit immediate parameter
        self.dest = dest        # architectural destination register or None
        self.srcs = srcs        # architectural source registers (tuple)
        self.is_control = iclass in CONTROL_CLASSES
        self.is_mem = iclass in MEMORY_CLASSES
        self.is_load = iclass is InstrClass.LOAD
        self.is_store = iclass is InstrClass.STORE
        self.is_check = iclass is InstrClass.CHECK
        #: Syscalls and halt drain the pipeline before taking effect.
        self.serializing = (iclass is InstrClass.SYSCALL
                            or iclass is InstrClass.HALT)

    def __repr__(self):
        return "<Instr %s word=0x%08x>" % (self.disassemble(), self.word)

    def disassemble(self):
        """Render a human-readable assembly string for this instruction."""
        from repro.isa.registers import reg_name

        name = self.name
        syntax = SPEC_BY_NAME[name].syntax if name in SPEC_BY_NAME else "none"
        if name == "nop":
            return "nop"
        if syntax == "rrr":
            return "%s $%s, $%s, $%s" % (
                name, reg_name(self.rd), reg_name(self.rs), reg_name(self.rt))
        if syntax == "rri":
            return "%s $%s, $%s, %d" % (
                name, reg_name(self.rt), reg_name(self.rs), self.imm)
        if syntax == "rrs":
            return "%s $%s, $%s, %d" % (
                name, reg_name(self.rd), reg_name(self.rt), self.shamt)
        if syntax == "rrv":
            return "%s $%s, $%s, $%s" % (
                name, reg_name(self.rd), reg_name(self.rt), reg_name(self.rs))
        if syntax == "ri":
            return "%s $%s, %d" % (name, reg_name(self.rt), self.uimm)
        if syntax == "mem":
            return "%s $%s, %d($%s)" % (
                name, reg_name(self.rt), self.imm, reg_name(self.rs))
        if syntax == "br2":
            return "%s $%s, $%s, %d" % (
                name, reg_name(self.rs), reg_name(self.rt), self.imm)
        if syntax == "br1":
            return "%s $%s, %d" % (name, reg_name(self.rs), self.imm)
        if syntax == "j":
            return "%s 0x%x" % (name, self.target << 2)
        if syntax == "r":
            return "%s $%s" % (name, reg_name(self.rs))
        if syntax == "rr":
            return "%s $%s, $%s" % (name, reg_name(self.rd), reg_name(self.rs))
        if syntax == "chk":
            return "chk m=%d %s op=%d param=%d" % (
                self.module, "BLK" if self.blk else "NBLK", self.op, self.param)
        return name


def extract_regs(spec, rs, rt, rd):
    """Return ``(dest, srcs)`` for an instruction built from *spec*.

    Centralised so the decoder and the assembler produce identical
    dependency information.
    """
    syntax = spec.syntax
    iclass = spec.iclass
    if syntax == "rrr":
        return rd, (rs, rt)
    if syntax == "rri":
        return rt, (rs,)
    if syntax == "rrs":
        return rd, (rt,)
    if syntax == "rrv":
        return rd, (rt, rs)
    if syntax == "ri":
        return rt, ()
    if syntax == "mem":
        if iclass is InstrClass.LOAD:
            return rt, (rs,)
        return None, (rs, rt)
    if syntax == "br2":
        return None, (rs, rt)
    if syntax == "br1":
        return None, (rs,)
    if syntax == "j":
        return (31, ()) if spec.name == "jal" else (None, ())
    if syntax == "r":
        return None, (rs,)
    if syntax == "rr":
        return rd, (rs,)
    if syntax == "chk":
        return None, CHK_PAYLOAD_REGS
    return None, ()
