"""Fleet co-simulation: networked machines under generated load.

The north-star scenario (ROADMAP item 3): N :class:`~repro.system.Machine`
instances serve bursty request traffic over a simulated datagram network
while faults strike individual nodes mid-traffic and checkpoint-based
failover keeps the fleet serving.

* :mod:`repro.fleet.net` — the network device behind ``SYS_NSEND`` /
  ``SYS_NRECV``;
* :mod:`repro.fleet.loadgen` — open-loop bursty arrival schedules;
* :mod:`repro.fleet.bridge` — the deterministic cycle-domain bridge;
* :mod:`repro.fleet.failover` — wire-checkpoint node replacement;
* :mod:`repro.fleet.run` — ``run_fleet(FleetSpec)``, the one-call entry.
"""

from repro.fleet.bridge import CycleBridge, FleetNode, Kill, Strike
from repro.fleet.failover import FailoverEvent, fail_over, take_checkpoint
from repro.fleet.loadgen import LoadSpec, generate
from repro.fleet.net import (LinkConfig, NetworkConfig, NetworkDevice,
                             NetworkInterface)
from repro.fleet.run import FleetRun, FleetSpec, run_fleet

__all__ = [
    "CycleBridge", "FleetNode", "Kill", "Strike",
    "FailoverEvent", "fail_over", "take_checkpoint",
    "LoadSpec", "generate",
    "LinkConfig", "NetworkConfig", "NetworkDevice", "NetworkInterface",
    "FleetRun", "FleetSpec", "run_fleet",
]
