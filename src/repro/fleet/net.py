"""Simulated datagram network connecting the machines of a fleet.

One :class:`NetworkDevice` spans the fleet: each node's kernel gets a
:class:`NetworkInterface` (``kernel.netif``) backing the ``SYS_NSEND`` /
``SYS_NRECV`` syscalls.  Delivery is modelled per *directed link*: a
fixed latency, optional seeded jitter, and an optional seeded drop rate
— all integers, all driven by per-link LCGs, so the same seed produces
the same delivery schedule on every platform.

The device is fleet wiring, not machine state: checkpoints never capture
it (``checkpoint._KERNEL_SKIP``), and a failover simply re-``attach``-es
the dead node's interface to the spare kernel — datagrams queued for the
node during its downtime are delivered to the spare.
"""

import heapq

from repro.kernel.syscalls import (NODE_ID_LIMIT, NSEND_OK,
                                   NSEND_UNREACHABLE)

MASK32 = 0xFFFFFFFF


class LinkConfig:
    """Delivery model of one directed link.

    All knobs are validated here, in one place (the same discipline as
    :class:`~repro.kernel.kernel.KernelConfig`):

    * ``latency`` must be >= 1: the cycle bridge's conservative
      lookahead is the fleet-wide minimum latency, and a zero-latency
      link would let a sender affect a receiver's *current* cycle.
    * ``jitter`` >= 0 extra cycles, drawn from the link's seeded LCG;
      0 means "no jitter" and the draw is skipped (no ``% 0``).
    * ``drop_permille`` in [0, 1000): that fraction out of 1000
      datagrams is silently dropped.  An integer permille instead of a
      float probability — float thresholds invite cross-platform
      rounding drift in a determinism-critical path.
    """

    def __init__(self, latency=40, jitter=0, drop_permille=0):
        if latency < 1:
            raise ValueError("link latency must be >= 1 cycle, got %r"
                             % (latency,))
        if jitter < 0:
            raise ValueError("link jitter must be >= 0, got %r" % (jitter,))
        if not 0 <= drop_permille < 1000:
            raise ValueError("drop_permille must be in [0, 1000), got %r"
                             % (drop_permille,))
        self.latency = latency
        self.jitter = jitter
        self.drop_permille = drop_permille

    def __repr__(self):
        return ("LinkConfig(latency=%d, jitter=%d, drop_permille=%d)"
                % (self.latency, self.jitter, self.drop_permille))


class NetworkConfig:
    """Fleet-wide topology: a default link plus per-pair overrides."""

    def __init__(self, default_link=None, links=None, seed=0xF1EE7):
        self.default_link = default_link or LinkConfig()
        self.links = dict(links or {})     # (src, dst) -> LinkConfig
        self.seed = seed

    def link(self, src, dst):
        return self.links.get((src, dst), self.default_link)

    def min_latency(self):
        """Smallest latency of any configured link — the bridge lookahead."""
        latencies = [self.default_link.latency]
        latencies.extend(link.latency for link in self.links.values())
        return min(latencies)


class NetworkInterface:
    """One node's view of the device: an ordered receive queue."""

    def __init__(self, device, node_id):
        self.device = device
        self.node_id = node_id
        #: Min-heap of (deliver_cycle, seq, src, payload).  ``seq`` is a
        #: device-global monotonic counter: same-cycle deliveries pop in
        #: send order, never in heap-tiebreak order.
        self.rx = []
        self.sent = 0
        self.delivered = 0

    def send(self, dest, payload, cycle):
        self.sent += 1
        return self.device.send(self.node_id, dest, payload, cycle)

    def poll(self, cycle):
        """Pop the next datagram deliverable at *cycle*, or None."""
        if self.rx and self.rx[0][0] <= cycle:
            __, __, src, payload = heapq.heappop(self.rx)
            self.delivered += 1
            return src, payload
        return None

    def next_delivery(self):
        """Cycle of the earliest queued datagram, or None when empty."""
        return self.rx[0][0] if self.rx else None

    def snapshot(self):
        return {"node": self.node_id, "sent": self.sent,
                "delivered": self.delivered, "pending": len(self.rx)}


class NetworkDevice:
    """The fleet's shared network fabric."""

    def __init__(self, node_count, config=None):
        if not 1 <= node_count <= NODE_ID_LIMIT:
            # The ceiling is what keeps SYS_NRECV's NRECV_EMPTY sentinel
            # out of the source-id value space — same reservation rule
            # as RECV_EXHAUSTED for request ids.
            raise ValueError("node_count must be in [1, %d], got %r"
                             % (NODE_ID_LIMIT, node_count))
        self.config = config or NetworkConfig()
        self.node_count = node_count
        self.interfaces = [NetworkInterface(self, node)
                           for node in range(node_count)]
        self.kernels = [None] * node_count
        self.down = set()
        self._seq = 0
        self._link_rng = {}           # (src, dst) -> LCG state
        self.sent = 0
        self.dropped = 0
        self.unreachable = 0

    # --------------------------------------------------------------- wiring

    def attach(self, node_id, kernel):
        """Wire *kernel* as node *node_id* (initial boot or failover)."""
        kernel.netif = self.interfaces[node_id]
        self.kernels[node_id] = kernel
        self.down.discard(node_id)
        # A restored kernel may carry threads blocked in SYS_NRECV with
        # provisional wake cycles; re-aim them at whatever is queued.
        kernel.net_refresh()

    def mark_down(self, node_id):
        """Take a node off the fabric: sends to it become unreachable."""
        self.down.add(node_id)
        self.kernels[node_id] = None

    def lookahead(self):
        return self.config.min_latency()

    def has_pending(self):
        return any(iface.rx for iface in self.interfaces)

    # ------------------------------------------------------------- datapath

    def send(self, src, dst, payload, cycle):
        self.sent += 1
        if not 0 <= dst < self.node_count or dst in self.down:
            self.unreachable += 1
            return NSEND_UNREACHABLE
        link = self.config.link(src, dst)
        if link.drop_permille and self._draw(src, dst) % 1000 < \
                link.drop_permille:
            # Datagram semantics: the sender already got NSEND_OK-style
            # acceptance; the loss is silent, like the wire ate it.
            self.dropped += 1
            return NSEND_OK
        latency = link.latency
        if link.jitter:
            latency += self._draw(src, dst) % link.jitter
        self._seq += 1
        iface = self.interfaces[dst]
        heapq.heappush(iface.rx,
                       (cycle + latency, self._seq, src, payload & MASK32))
        kernel = self.kernels[dst]
        if kernel is not None:
            kernel.net_refresh()
        return NSEND_OK

    def _draw(self, src, dst):
        """Per-link LCG (seeded from the fleet seed and the endpoints)."""
        key = (src, dst)
        state = self._link_rng.get(key)
        if state is None:
            state = (self.config.seed ^ (src << 16) ^ (dst + 1)) & MASK32
            state = (state * 2654435761 + 1) & MASK32
        state = (state * 1103515245 + 12345) & MASK32
        self._link_rng[key] = state
        return state >> 8

    # ---------------------------------------------------------------- stats

    def snapshot(self):
        return {
            "nodes": self.node_count,
            "sent": self.sent,
            "dropped": self.dropped,
            "unreachable": self.unreachable,
            "pending": sum(len(iface.rx) for iface in self.interfaces),
            "down": sorted(self.down),
        }
