"""Deterministic cycle-domain bridge over N machines.

The bridge co-simulates every node in one host thread using
conservative lookahead (the classic null-message bound): it always
advances the *laggard* — the active node with the smallest cycle, ties
broken by node id — and caps its slice at

    min(other nodes' minimum cycle) + lookahead

where ``lookahead`` is the fleet's minimum link latency.  Two facts
follow by induction:

* the cycle spread across active nodes never exceeds the lookahead, and
* a datagram sent at cycle ``c`` arrives at ``c + latency >=`` every
  receiver's current cycle — no delivery ever lands in a node's past.

So the simulation is causally consistent *and* fully deterministic: the
interleaving is a pure function of simulated state, independent of host
scheduling.  Slices also stop early at a node's next scripted event
(fault strike, SIGKILL, checkpoint interval) so those fire at exact
cycles, and ``Kernel.run_slice`` never overshoots a deadline even while
idle.
"""

from repro.campaign.models import get_model
from repro.fleet.failover import fail_over, take_checkpoint

import random


class Strike:
    """One scripted fault injection against one node."""

    def __init__(self, model, node, cycle, seed=0, params=None):
        self.model = model            # campaign fault-model name
        self.node = node
        self.cycle = cycle
        self.seed = seed
        self.params = params          # sampled lazily unless given
        self.fired = False
        self.fired_cycle = None
        self.outcome = None
        self._baseline = None         # (detections, recoveries, faults)

    def to_dict(self):
        return {"model": self.model, "node": self.node, "cycle": self.cycle,
                "seed": self.seed, "params": self.params,
                "fired": self.fired, "fired_cycle": self.fired_cycle,
                "outcome": self.outcome}


class Kill:
    """One scripted SIGKILL-style node death."""

    def __init__(self, node, cycle):
        self.node = node
        self.cycle = cycle
        self.done = False

    def to_dict(self):
        return {"node": self.node, "cycle": self.cycle, "done": self.done}


class FleetNode:
    """One machine plus its fleet-side bookkeeping."""

    def __init__(self, node_id, machine, factory, data_words=()):
        self.node_id = node_id
        self.machine = machine
        #: Zero-arg callable building a same-shaped machine with the
        #: node's image loaded — the spare source for failover.
        self.factory = factory
        #: Data-segment word addresses of the node's image (mem-flip
        #: strike sample space).
        self.data_words = tuple(data_words)
        self.status = "active"        # active | halted | lost | timeout |
                                      # stalled
        self.result = None            # final RunResult reason
        self.checkpoint_bytes = None
        self.checkpoint_cycle = None
        self.next_checkpoint = None
        self.failovers = []
        self.strikes = []
        self.kills = []
        self.last_progress_cycle = 0
        self._progress_key = None

    @property
    def cycle(self):
        return self.machine.pipeline.cycle

    @property
    def kernel(self):
        return self.machine.kernel


class CycleBridge:
    """Runs a fleet of :class:`FleetNode` to completion."""

    def __init__(self, nodes, device, max_cycles, checkpoint_interval=None,
                 restore_cost=20_000, watchdog_cycles=None):
        self.nodes = nodes
        self.device = device
        self.deadline = max_cycles
        self.lookahead = max(1, device.lookahead())
        self.checkpoint_interval = checkpoint_interval
        self.restore_cost = restore_cost
        self.watchdog_cycles = watchdog_cycles
        self.slices = 0

    # ------------------------------------------------------------ main loop

    def run(self):
        for node in self.nodes:
            if self.checkpoint_interval is not None:
                node.next_checkpoint = node.cycle + self.checkpoint_interval
            node.last_progress_cycle = node.cycle
        while True:
            active = [n for n in self.nodes if n.status == "active"]
            if not active:
                break
            if self._stalled(active):
                for node in active:
                    node.status = "stalled"
                break
            node = min(active, key=lambda n: (n.cycle, n.node_id))
            limit = self._slice_limit(node, active)
            self.slices += 1
            result = node.kernel.run_slice(max(1, limit - node.cycle))
            self._absorb(node, result)
        self._close_strikes()
        return self

    def _slice_limit(self, node, active):
        others = [n.cycle for n in active if n is not node]
        limit = min(others) + self.lookahead if others else self.deadline
        limit = min(limit, self.deadline, self._next_event(node))
        return limit

    def _next_event(self, node):
        horizon = self.deadline
        if node.next_checkpoint is not None:
            horizon = min(horizon, node.next_checkpoint)
        for strike in node.strikes:
            if not strike.fired:
                horizon = min(horizon, strike.cycle)
        for kill in node.kills:
            if not kill.done:
                horizon = min(horizon, kill.cycle)
        return horizon

    def _stalled(self, active):
        """Distributed deadlock: every active node is blocked in
        SYS_NRECV with nothing in flight anywhere."""
        return (not self.device.has_pending()
                and all(n.kernel.net_idle() for n in active))

    # ------------------------------------------------------- slice results

    def _absorb(self, node, result):
        reason = result.reason
        if reason in ("halt", "all_exited"):
            node.status = "halted"
            node.result = reason
            return
        if reason in ("fault", "check_error", "recovery_impossible"):
            self._note_strike_death(node, reason)
            self._fail(node, reason)
            return
        # max_cycles: the slice ended at its horizon — fire due events.
        self._post_slice(node)

    def _post_slice(self, node):
        # Checkpoint first: a strike due at the same boundary must not
        # contaminate the image the node would fail over to.
        if (node.next_checkpoint is not None
                and node.cycle >= node.next_checkpoint):
            take_checkpoint(node)
            node.next_checkpoint = node.cycle + self.checkpoint_interval
        for strike in node.strikes:
            if not strike.fired and node.cycle >= strike.cycle:
                self._fire_strike(node, strike)
        self._classify_progress(node)
        for kill in node.kills:
            if not kill.done and node.cycle >= kill.cycle:
                kill.done = True
                if node.status == "active":
                    self._fail(node, "killed")
                    return
        if node.status == "active" and node.cycle >= self.deadline:
            node.status = "timeout"
            node.result = "max_cycles"
            return
        if self._watchdog_expired(node):
            self._note_strike_outcome(node, "hung")
            self._fail(node, "watchdog")

    def _watchdog_expired(self, node):
        if self.watchdog_cycles is None or node.status != "active":
            return False
        kernel = node.kernel
        outstanding = (kernel._next_request < kernel.requests_total
                       or len(kernel.responses) < kernel._next_request)
        return (outstanding and
                node.cycle - node.last_progress_cycle > self.watchdog_cycles)

    def _classify_progress(self, node):
        kernel = node.kernel
        key = (kernel._next_request, len(kernel.responses))
        if key != node._progress_key:
            node._progress_key = key
            node.last_progress_cycle = node.cycle
        # Resolve fired strikes against the node's counters while the
        # machine that absorbed them is still alive.
        for strike in node.strikes:
            if strike.fired and strike.outcome is None:
                detections, recoveries, faults = strike._baseline
                if len(kernel.detections) > detections:
                    strike.outcome = "detected"
                elif len(kernel.recovery_reports) > recoveries:
                    strike.outcome = "recovered"
                elif len(kernel.faults) > faults:
                    strike.outcome = "faulted"

    # --------------------------------------------------------------- events

    def _fire_strike(self, node, strike):
        model = get_model(strike.model)
        if strike.params is None:
            space = self._strike_space(node, model)
            rng = random.Random(strike.seed)
            params = model.sample(rng, space)
            params["cycle"] = strike.cycle
            strike.params = params
        kernel = node.kernel
        strike._baseline = (len(kernel.detections),
                            len(kernel.recovery_reports),
                            len(kernel.faults))
        model.fire(node.machine, None, strike.params)
        strike.fired = True
        strike.fired_cycle = node.cycle

    def _strike_space(self, node, model):
        if model.name == "mem-flip":
            if not node.data_words:
                raise ValueError("node %d image has no data words to "
                                 "strike" % node.node_id)
            return {"addrs": list(node.data_words), "max_cycle": 2}
        if model.name == "reg-flip":
            return {"regs": list(range(1, 32)), "max_cycle": 2}
        raise ValueError("fleet strikes support reg-flip and mem-flip, "
                         "not %r" % (model.name,))

    def _note_strike_death(self, node, reason):
        for strike in node.strikes:
            if strike.fired and strike.outcome is None:
                strike.outcome = reason
                return

    def _note_strike_outcome(self, node, outcome):
        for strike in node.strikes:
            if strike.fired and strike.outcome is None:
                strike.outcome = outcome
                return

    def _fail(self, node, reason):
        fail_over(node, self.device, node.cycle, self.restore_cost, reason)
        if node.status == "active":          # restored onto a spare
            node._progress_key = None
            node.last_progress_cycle = node.cycle
            if self.checkpoint_interval is not None:
                node.next_checkpoint = node.cycle + self.checkpoint_interval

    def _close_strikes(self):
        for node in self.nodes:
            for strike in node.strikes:
                if not strike.fired:
                    strike.outcome = "not_triggered"
                elif strike.outcome is None:
                    strike.outcome = "benign"
