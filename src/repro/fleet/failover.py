"""Checkpoint-based node failover.

A dead node is replaced by a *spare*: a freshly built machine of the
same shape, rewound to the node's last wire checkpoint
(:meth:`MachineCheckpoint.to_bytes` image), fast-forwarded past the
downtime, and re-attached to the network fabric in the dead node's
place.

Rewinding is what makes failover *correct* rather than merely live: the
kernel's request cursor (``_next_request``), open-loop arrival schedule
and response table are all part of the checkpoint, so the spare
re-serves every request the dead node accepted after the capture — the
fleet converges to the same served-request set an uninterrupted run
produces.
"""

from repro.checkpoint import CheckpointError, MachineCheckpoint


class FailoverEvent:
    """Record of one node replacement."""

    def __init__(self, node, reason, death_cycle, checkpoint_cycle,
                 resume_cycle, rewound_requests):
        self.node = node
        self.reason = reason              # "fault" | "check_error" |
                                          # "killed" | "watchdog" | ...
        self.death_cycle = death_cycle
        self.checkpoint_cycle = checkpoint_cycle
        self.resume_cycle = resume_cycle
        self.rewound_requests = rewound_requests

    def to_dict(self):
        return {"node": self.node, "reason": self.reason,
                "death_cycle": self.death_cycle,
                "checkpoint_cycle": self.checkpoint_cycle,
                "resume_cycle": self.resume_cycle,
                "rewound_requests": self.rewound_requests}


def take_checkpoint(node):
    """Capture *node*'s machine as a wire image; returns True on success.

    A capture can be refused (pending MAU callback requests are not
    checkpointable); the node then simply keeps its previous image and
    tries again at the next interval.
    """
    try:
        checkpoint = node.machine.checkpoint()
    except CheckpointError:
        return False
    node.checkpoint_bytes = checkpoint.to_bytes()
    node.checkpoint_cycle = checkpoint.cycle
    return True


def fail_over(node, device, death_cycle, restore_cost, reason):
    """Replace *node*'s machine with a restored spare.

    Returns the :class:`FailoverEvent`, or None when the node has no
    checkpoint image to restore from (it is then lost for good and
    marked down on the fabric).
    """
    if node.checkpoint_bytes is None:
        device.mark_down(node.node_id)
        node.status = "lost"
        return None
    served_at_death = node.machine.kernel._next_request
    spare = node.factory()
    checkpoint = MachineCheckpoint.from_bytes(node.checkpoint_bytes)
    spare.restore(checkpoint)
    # Fast-forward past the downtime: detection + spare bring-up.  The
    # spare joins the fleet "now", never in the past — its clock must
    # not run behind cycles the rest of the fleet already simulated.
    resume_cycle = max(death_cycle, spare.cycle) + restore_cost
    if resume_cycle > spare.cycle:
        spare.pipeline.advance_cycles(resume_cycle - spare.cycle)
    node.machine = spare
    device.attach(node.node_id, spare.kernel)
    event = FailoverEvent(
        node.node_id, reason, death_cycle, checkpoint.cycle, resume_cycle,
        rewound_requests=served_at_death - spare.kernel._next_request)
    node.failovers.append(event)
    return event
