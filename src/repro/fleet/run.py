"""Fleet assembly and the top-level ``run_fleet`` entry point.

A :class:`FleetSpec` describes everything — topology, traffic shape,
per-node workload, checkpoint cadence, scripted strikes and kills — and
``run_fleet`` deterministically co-simulates it: same spec, same merged
request log, byte for byte.
"""

import hashlib
import json

from repro.fleet.bridge import CycleBridge, FleetNode, Kill, Strike
from repro.fleet.failover import take_checkpoint
from repro.fleet.loadgen import LoadSpec, generate
from repro.fleet.net import LinkConfig, NetworkConfig, NetworkDevice
from repro.kernel.kernel import KernelConfig
from repro.rse.check import MODULE_DDT
from repro.system import build_machine
from repro.workloads import fleet_server


class FleetSpec:
    """One fleet run, fully specified."""

    def __init__(self,
                 nodes=3,
                 requests=120,
                 workers=2,
                 work_iters=fleet_server.DEFAULT_WORK_ITERS,
                 classes=fleet_server.DEFAULT_CLASSES,
                 stats_batch=fleet_server.DEFAULT_STATS_BATCH,
                 seed=1,
                 protected=False,
                 link_latency=40,
                 link_jitter=0,
                 link_drop_permille=0,
                 mean_gap=300,
                 burst_percent=25,
                 burst_len=6,
                 burst_gap=10,
                 fanout="roundrobin",
                 start_cycle=2000,
                 quantum_cycles=4000,
                 io_recv_latency=800,
                 io_recv_jitter=1200,
                 io_send_cost=100,
                 checkpoint_interval=50_000,
                 restore_cost=20_000,
                 watchdog_cycles=1_500_000,
                 max_cycles=20_000_000,
                 drain_cycles=fleet_server.DEFAULT_DRAIN_CYCLES,
                 drain_poll_gap=fleet_server.DEFAULT_DRAIN_POLL_GAP,
                 strikes=(),
                 kills=()):
        if nodes < 1:
            raise ValueError("nodes must be >= 1, got %r" % (nodes,))
        if workers < 1:
            raise ValueError("workers must be >= 1, got %r" % (workers,))
        self.nodes = nodes
        self.requests = requests
        self.workers = workers
        self.work_iters = work_iters
        self.classes = classes
        self.stats_batch = stats_batch
        self.seed = seed
        self.protected = protected
        self.link_latency = link_latency
        self.link_jitter = link_jitter
        self.link_drop_permille = link_drop_permille
        self.mean_gap = mean_gap
        self.burst_percent = burst_percent
        self.burst_len = burst_len
        self.burst_gap = burst_gap
        self.fanout = fanout
        self.start_cycle = start_cycle
        self.quantum_cycles = quantum_cycles
        self.io_recv_latency = io_recv_latency
        self.io_recv_jitter = io_recv_jitter
        self.io_send_cost = io_send_cost
        self.checkpoint_interval = checkpoint_interval
        self.restore_cost = restore_cost
        self.watchdog_cycles = watchdog_cycles
        self.max_cycles = max_cycles
        self.drain_cycles = drain_cycles
        self.drain_poll_gap = drain_poll_gap
        #: (model, node, cycle[, seed]) tuples.
        self.strikes = tuple(strikes)
        #: (node, cycle) tuples — SIGKILL-style mid-traffic deaths.
        self.kills = tuple(kills)

    def load_spec(self):
        return LoadSpec(requests=self.requests, mean_gap=self.mean_gap,
                        burst_percent=self.burst_percent,
                        burst_len=self.burst_len, burst_gap=self.burst_gap,
                        fanout=self.fanout, start_cycle=self.start_cycle,
                        seed=self.seed)

    def network_config(self):
        return NetworkConfig(
            default_link=LinkConfig(latency=self.link_latency,
                                    jitter=self.link_jitter,
                                    drop_permille=self.link_drop_permille),
            seed=self.seed)

    def kernel_config(self):
        return KernelConfig(quantum_cycles=self.quantum_cycles,
                            io_recv_latency=self.io_recv_latency,
                            io_recv_jitter=self.io_recv_jitter,
                            io_send_cost=self.io_send_cost)


class FleetRun:
    """Everything a finished fleet run produced."""

    def __init__(self, spec, nodes, device, bridge):
        self.spec = spec
        self.nodes = nodes
        self.device = device
        self.bridge = bridge

    # ----------------------------------------------------------- aggregates

    def merged_log(self):
        """The fleet-wide request log: sorted (node, request id, response).

        This is the determinism witness *and* the served-set witness: a
        failed-over node re-serves from its last checkpoint, so the
        merged log of a kill-and-recover run equals the uninterrupted
        run's log.
        """
        log = []
        for node in self.nodes:
            for request_id, value in node.kernel.responses.items():
                log.append((node.node_id, request_id, value))
        log.sort()
        return log

    def served(self):
        return sum(len(node.kernel.responses) for node in self.nodes)

    def node_snapshots(self):
        return [node.machine.snapshot() for node in self.nodes]

    def digest(self):
        """SHA-256 over the canonical merged log + per-node snapshots."""
        document = {"log": self.merged_log(),
                    "snapshots": self.node_snapshots()}
        payload = json.dumps(document, sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self):
        log = self.merged_log()
        return {
            "spec": {
                "nodes": self.spec.nodes,
                "requests": self.spec.requests,
                "workers": self.spec.workers,
                "seed": self.spec.seed,
                "protected": self.spec.protected,
                "max_cycles": self.spec.max_cycles,
            },
            "served": len(log),
            "provisioned": self.spec.requests,
            "digest": self.digest(),
            "net": self.device.snapshot(),
            "slices": self.bridge.slices,
            "nodes": [{
                "node": node.node_id,
                "status": node.status,
                "result": node.result,
                "cycle": node.cycle,
                "responses": len(node.kernel.responses),
                "failovers": [event.to_dict() for event in node.failovers],
                "snapshot": node.machine.snapshot(),
            } for node in self.nodes],
            "strikes": [strike.to_dict() for node in self.nodes
                        for strike in node.strikes],
            "kills": [kill.to_dict() for node in self.nodes
                      for kill in node.kills],
            "log": log,
        }


def _node_factory(spec, node_id, arrivals):
    """Build one node's machine: workload loaded, source provisioned.

    Used both for the initial fleet and for failover spares — a spare
    must have the same component shape (checkpoint pins) and the same
    image in memory as the machine it replaces.
    """
    image, asm = fleet_server.program(
        node_id, spec.nodes, spec.workers, spec.work_iters, spec.classes,
        spec.stats_batch, spec.drain_cycles, spec.drain_poll_gap)
    data_words = [asm.data_base + offset
                  for offset in range(0, len(asm.data) & ~3, 4)]

    def build():
        machine = build_machine(
            with_rse=spec.protected,
            modules=("ddt",) if spec.protected else (),
            kernel_config=spec.kernel_config())
        machine.kernel.set_request_source(len(arrivals), arrivals)
        machine.kernel.load_process(image, name="node-%d" % node_id)
        if spec.protected:
            machine.rse.enable_module(MODULE_DDT)
            machine.enable_ddt_recovery()
        return machine

    return build, data_words


def run_fleet(spec):
    """Co-simulate *spec*; returns a :class:`FleetRun`."""
    schedules = generate(spec.load_spec(), spec.nodes)
    device = NetworkDevice(spec.nodes, spec.network_config())
    nodes = []
    for node_id in range(spec.nodes):
        factory, data_words = _node_factory(spec, node_id,
                                            schedules[node_id])
        machine = factory()
        node = FleetNode(node_id, machine, factory, data_words)
        device.attach(node_id, machine.kernel)
        # Cycle-0 baseline image: failover is possible from the very
        # first cycle, before the first interval checkpoint lands.
        take_checkpoint(node)
        nodes.append(node)
    for entry in spec.strikes:
        if isinstance(entry, dict):
            node_id = entry["node"]
            strike = Strike(entry["model"], node_id, entry["cycle"],
                            entry.get("seed", spec.seed),
                            params=entry.get("params"))
        else:
            model, node_id, cycle = entry[:3]
            seed = entry[3] if len(entry) > 3 else spec.seed
            strike = Strike(model, node_id, cycle, seed)
        nodes[node_id].strikes.append(strike)
    for node_id, cycle in spec.kills:
        nodes[node_id].kills.append(Kill(node_id, cycle))
    bridge = CycleBridge(nodes, device, spec.max_cycles,
                         checkpoint_interval=spec.checkpoint_interval,
                         restore_cost=spec.restore_cost,
                         watchdog_cycles=spec.watchdog_cycles)
    bridge.run()
    return FleetRun(spec, nodes, device, bridge)
