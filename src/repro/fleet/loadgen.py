"""Open-loop client load generator for fleet runs.

Real request traffic is bursty: long quiet gaps punctuated by trains of
back-to-back arrivals.  The generator replays exactly that as an
*open-loop* schedule — absolute arrival cycles fixed up front,
independent of how fast the servers drain them — which is what makes
queueing effects (and fault-injection timing) reproducible.

Only integer draws from :class:`random.Random` are used: the Mersenne
Twister integer path is stable across platforms and Python versions,
unlike float arithmetic.
"""

import random


class LoadSpec:
    """Shape of the generated request stream.

    * ``mean_gap`` — average cycles between arrivals outside bursts
      (uniform on [1, 2*mean_gap], so the mean is ~mean_gap).
    * ``burst_percent`` — chance (per arrival, in percent) that a burst
      of ``burst_len`` requests starts, spaced ``burst_gap`` apart.
    * ``fanout`` — ``"roundrobin"`` deals requests to nodes in order;
      ``"random"`` picks a node per request.
    """

    def __init__(self, requests=120, mean_gap=300, burst_percent=25,
                 burst_len=6, burst_gap=10, fanout="roundrobin",
                 start_cycle=2000, seed=1):
        if requests < 0:
            raise ValueError("requests must be >= 0, got %r" % (requests,))
        if mean_gap < 0 or burst_gap < 0:
            raise ValueError("gaps must be >= 0")
        if not 0 <= burst_percent <= 100:
            raise ValueError("burst_percent must be in [0, 100], got %r"
                             % (burst_percent,))
        if burst_len < 1:
            raise ValueError("burst_len must be >= 1, got %r" % (burst_len,))
        if fanout not in ("roundrobin", "random"):
            raise ValueError("fanout must be 'roundrobin' or 'random', "
                             "got %r" % (fanout,))
        if start_cycle < 0:
            raise ValueError("start_cycle must be >= 0, got %r"
                             % (start_cycle,))
        self.requests = requests
        self.mean_gap = mean_gap
        self.burst_percent = burst_percent
        self.burst_len = burst_len
        self.burst_gap = burst_gap
        self.fanout = fanout
        self.start_cycle = start_cycle
        self.seed = seed


def generate(spec, nodes):
    """Per-node arrival schedules: a list of *nodes* sorted cycle tuples.

    The global arrival stream is monotone (one clock), so every node's
    slice of it is sorted — exactly what
    :meth:`Kernel.set_request_source` expects.
    """
    if nodes < 1:
        raise ValueError("need at least one node, got %r" % (nodes,))
    rng = random.Random(spec.seed)
    arrivals = [[] for __ in range(nodes)]
    cycle = spec.start_cycle
    target = 0
    burst_remaining = 0
    for __ in range(spec.requests):
        if burst_remaining:
            cycle += spec.burst_gap
            burst_remaining -= 1
        else:
            if spec.mean_gap:
                cycle += 1 + rng.randrange(2 * spec.mean_gap)
            else:
                cycle += 1
            if spec.burst_percent and \
                    rng.randrange(100) < spec.burst_percent:
                burst_remaining = spec.burst_len - 1
        if spec.fanout == "random":
            node = rng.randrange(nodes)
        else:
            node = target
            target = (target + 1) % nodes
        arrivals[node].append(cycle)
    return [tuple(per_node) for per_node in arrivals]
