"""Measurement and reporting helpers.

* :mod:`repro.analysis.stats`         — run records and overhead math;
* :mod:`repro.analysis.tables`        — paper-style ASCII tables;
* :mod:`repro.analysis.hardware_cost` — the Section 3.1 flip-flop/gate
  estimates, reproduced analytically.
"""

from repro.analysis.stats import RunRecord, overhead_pct
from repro.analysis.tables import format_table
from repro.analysis.hardware_cost import (
    framework_input_cost,
    mlr_hardware_cost,
    mux_gate_count,
)

__all__ = [
    "RunRecord",
    "overhead_pct",
    "format_table",
    "framework_input_cost",
    "mlr_hardware_cost",
    "mux_gate_count",
]
