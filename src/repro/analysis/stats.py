"""Run records and derived metrics for the benchmark harnesses."""

import math


class RunRecord:
    """Everything a benchmark wants to keep from one simulation run."""

    def __init__(self, name, cycles, instret, pipeline_stats=None,
                 cache_stats=None, extra=None, snapshot=None):
        self.name = name
        self.cycles = cycles
        self.instret = instret
        self.pipeline_stats = dict(pipeline_stats or {})
        self.cache_stats = dict(cache_stats or {})
        self.extra = dict(extra or {})
        self.snapshot = snapshot          # full Machine.snapshot() document

    @classmethod
    def from_machine(cls, name, machine, extra=None):
        snapshot = machine.snapshot()
        pipeline = snapshot["pipeline"]
        return cls(name,
                   cycles=pipeline["cycles"],
                   instret=pipeline["instret"],
                   pipeline_stats=pipeline,
                   cache_stats=snapshot["memory"],
                   extra=extra,
                   snapshot=snapshot)

    @property
    def ipc(self):
        return self.instret / self.cycles if self.cycles else 0.0

    def cache(self, level, field):
        return self.cache_stats.get(level, {}).get(field, 0)

    def __repr__(self):
        return "RunRecord(%s: %d cycles, %d instrs)" % (
            self.name, self.cycles, self.instret)


def overhead_pct(baseline_cycles, measured_cycles):
    """Percentage overhead of *measured* relative to *baseline*."""
    if baseline_cycles == 0:
        return 0.0
    return 100.0 * (measured_cycles - baseline_cycles) / baseline_cycles


def improvement_pct(baseline, improved):
    """Percentage improvement (reduction) from *baseline* to *improved*."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def rate(successes, total):
    """Plain success proportion; 0.0 on an empty sample."""
    return successes / total if total else 0.0


def wilson_interval(successes, total, z=1.96):
    """Wilson score confidence interval for a binomial proportion.

    Unlike the normal approximation, the Wilson interval stays inside
    [0, 1] and behaves sensibly at 0% and 100% observed rates — exactly
    the regime fault-detection campaigns live in (a 40/40 detection
    campaign should report an interval like [0.91, 1.0], not a point).
    Returns ``(low, high)``; ``(0.0, 1.0)`` for an empty sample, which
    is the honest statement of total ignorance.
    """
    if total == 0:
        return (0.0, 1.0)
    if not 0 <= successes <= total:
        raise ValueError("successes must be within [0, total]")
    phat = successes / total
    z2 = z * z
    denom = 1.0 + z2 / total
    centre = phat + z2 / (2.0 * total)
    margin = z * math.sqrt(phat * (1.0 - phat) / total
                           + z2 / (4.0 * total * total))
    low = (centre - margin) / denom
    high = (centre + margin) / denom
    return (max(0.0, low), min(1.0, high))
