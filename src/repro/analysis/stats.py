"""Run records and derived metrics for the benchmark harnesses."""


class RunRecord:
    """Everything a benchmark wants to keep from one simulation run."""

    def __init__(self, name, cycles, instret, pipeline_stats=None,
                 cache_stats=None, extra=None):
        self.name = name
        self.cycles = cycles
        self.instret = instret
        self.pipeline_stats = dict(pipeline_stats or {})
        self.cache_stats = dict(cache_stats or {})
        self.extra = dict(extra or {})

    @classmethod
    def from_machine(cls, name, machine, extra=None):
        stats = machine.pipeline.stats
        return cls(name,
                   cycles=stats.cycles,
                   instret=stats.instret,
                   pipeline_stats=stats.as_dict(),
                   cache_stats=machine.hierarchy.stats(),
                   extra=extra)

    @property
    def ipc(self):
        return self.instret / self.cycles if self.cycles else 0.0

    def cache(self, level, field):
        return self.cache_stats.get(level, {}).get(field, 0)

    def __repr__(self):
        return "RunRecord(%s: %d cycles, %d instrs)" % (
            self.name, self.cycles, self.instret)


def overhead_pct(baseline_cycles, measured_cycles):
    """Percentage overhead of *measured* relative to *baseline*."""
    if baseline_cycles == 0:
        return 0.0
    return 100.0 * (measured_cycles - baseline_cycles) / baseline_cycles


def improvement_pct(baseline, improved):
    """Percentage improvement (reduction) from *baseline* to *improved*."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline
