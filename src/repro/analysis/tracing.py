"""Execution tracing for guest-program debugging.

Two tracers:

* :func:`trace_functional` — instruction-by-instruction architectural
  trace on the functional simulator: disassembly, register writes,
  memory effects.  The tool to reach for when a workload misbehaves.
* :class:`CommitTracer` — an RSE observer module recording the committed
  instruction stream of the out-of-order pipeline with cycle stamps
  (a retirement trace, Commit_Out fidelity included for free).
"""

from repro.funcsim.interp import FuncSim
from repro.isa.registers import reg_name
from repro.rse.module import ModuleMode, RSEModule


class TraceEntry:
    """One retired/executed instruction in a trace."""

    __slots__ = ("index", "pc", "text", "reg_writes", "cycle")

    def __init__(self, index, pc, text, reg_writes=(), cycle=None):
        self.index = index
        self.pc = pc
        self.text = text
        self.reg_writes = reg_writes
        self.cycle = cycle

    def render(self):
        effects = "  ".join("$%s=0x%08x" % (reg_name(reg), value)
                            for reg, value in self.reg_writes)
        stamp = "" if self.cycle is None else "[%8d] " % self.cycle
        line = "%s%6d  %08x  %-36s %s" % (stamp, self.index, self.pc,
                                          self.text, effects)
        return line.rstrip()


def trace_functional(memory, entry, sp=0x7FFF0000, max_steps=10_000,
                     syscall_handler=None):
    """Run a program on the functional simulator, recording every step.

    Returns ``(entries, sim)``; each entry carries the disassembly and
    the architectural register writes it performed.
    """
    from repro.isa.encoding import DecodeError, decode
    from repro.memory.mainmem import MemoryFault

    sim = FuncSim(memory, entry=entry, sp=sp,
                  syscall_handler=syscall_handler)
    entries = []
    for index in range(max_steps):
        pc = sim.pc
        try:
            instr = decode(memory.load_word(pc))
            text = instr.disassemble()
        except (DecodeError, MemoryFault) as exc:
            text = "<fetch fault: %s>" % exc
            instr = None
        before = list(sim.regs)
        result = sim.step()
        writes = tuple((reg, sim.regs[reg]) for reg in range(32)
                       if sim.regs[reg] != before[reg])
        entries.append(TraceEntry(index, pc, text, writes))
        if result.value != "ok":
            break
    return entries, sim


class CommitTracer(RSEModule):
    """RSE module recording the pipeline's retirement stream."""

    MODULE_ID = 10
    MODE = ModuleMode.ASYNC

    def __init__(self, limit=100_000):
        super().__init__("CommitTracer")
        self.limit = limit
        self.entries = []

    def on_commit(self, uop, cycle):
        if len(self.entries) >= self.limit:
            return
        self.entries.append(TraceEntry(len(self.entries), uop.pc,
                                       uop.instr.disassemble(),
                                       cycle=cycle))

    def render(self, last=None):
        entries = self.entries if last is None else self.entries[-last:]
        return "\n".join(entry.render() for entry in entries)


def attach_commit_tracer(machine, limit=100_000):
    """Attach (and enable) a :class:`CommitTracer` to a machine's RSE."""
    if machine.rse is None:
        raise ValueError("commit tracing needs a machine with the RSE")
    tracer = machine.rse.attach(CommitTracer(limit))
    machine.rse.enable_module(CommitTracer.MODULE_ID)
    return tracer
