"""Execution tracing — moved to :mod:`repro.obs.tracer`.

This module remains as a re-export shim: the guest-program tracers
(:func:`trace_functional`, :class:`CommitTracer`) now live in the
unified telemetry layer, and ``attach_commit_tracer(machine)`` is the
historical spelling of ``machine.obs.attach("commit")``.
"""

from repro.obs.tracer import (          # noqa: F401
    CommitTracer,
    TraceEntry,
    attach_commit_tracer,
    trace_functional,
)

__all__ = ["CommitTracer", "TraceEntry", "attach_commit_tracer",
           "trace_functional"]
