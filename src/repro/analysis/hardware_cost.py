"""Analytic hardware-cost model (Section 3.1, footnote 4; Section 5.3).

The paper estimates the framework's input-side cost as::

    #flip-flops = #input queues x #entries per queue x #bits per entry
                = 5 x 16 x 32 = 2560

    gate count: 2-to-1 MUX = 4 gates, 3-to-1 = 5, 4-to-1 = 6 (with
    feedback loop); 2 inputs need 4-to-1 MUXes, 2 need 2-to-1 and 1
    needs a 3-to-1:
    (2x6 + 2x4 + 1x5) x 32 bits x 16 entries = 25 x 512 = 12,800 gates

and the MLR module's datapath (Section 5.3) as 24 + 2 word registers,
4 + 5 adders and three 4 KB buffers.  These functions reproduce the
arithmetic so configuration sweeps (bigger ROB, wider words) can report
hardware cost alongside performance.
"""

#: Gates per MUX with feedback loop, by input count (footnote 4).
MUX_GATES = {2: 4, 3: 5, 4: 6}

#: MUX fan-in needed per input queue (Figure 1): Fetch_Out and
#: Commit_Out need 4-to-1, Regfile_Data and Memory_Out need 2-to-1,
#: Execute_Out (ALU/MDU/LSU) needs 3-to-1.
QUEUE_MUX_INPUTS = {
    "fetch_out": 4,
    "commit_out": 4,
    "regfile_data": 2,
    "memory_out": 2,
    "execute_out": 3,
}


def mux_gate_count(inputs):
    """Gates for one 1-bit MUX with *inputs* data inputs."""
    try:
        return MUX_GATES[inputs]
    except KeyError:
        raise ValueError("no gate model for a %d-input MUX" % inputs) from None


def framework_input_cost(num_queues=5, entries_per_queue=16,
                         bits_per_entry=32, queue_mux_inputs=None):
    """Flip-flop and gate cost of the RSE input interface.

    Defaults reproduce the paper's numbers exactly: 2560 flip-flops and
    12,800 gates for a 32-bit processor with a 16-entry re-order buffer.
    """
    queue_mux_inputs = queue_mux_inputs or QUEUE_MUX_INPUTS
    if len(queue_mux_inputs) != num_queues:
        raise ValueError("queue/MUX description does not match queue count")
    flip_flops = num_queues * entries_per_queue * bits_per_entry
    gates_per_bit = sum(mux_gate_count(inputs)
                        for inputs in queue_mux_inputs.values())
    gates = gates_per_bit * bits_per_entry * entries_per_queue
    return {"flip_flops": flip_flops, "gates": gates,
            "gates_per_bit": gates_per_bit}


def mlr_hardware_cost(word_bits=32):
    """MLR module datapath cost (Section 5.3).

    Position-independent path: 24 word registers, 4 adders, one 4 KB
    header buffer.  Position-dependent path: 2 word registers, 5 adders,
    two 4 KB buffers (GOT and PLT).
    """
    return {
        "pi_registers": 24,
        "pi_register_bits": 24 * word_bits,
        "pi_adders": 4,
        "pi_buffer_bytes": 4096,
        "pd_registers": 2,
        "pd_register_bits": 2 * word_bits,
        "pd_adders": 5,
        "pd_buffer_bytes": 2 * 4096,
        "total_buffer_bytes": 3 * 4096,
        "total_adders": 9,
        "total_registers": 26,
    }
