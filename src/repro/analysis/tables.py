"""Plain-ASCII table rendering for benchmark output.

The benchmark harnesses print tables shaped like the paper's Table 4,
Table 5 and the Figure 9 series so results can be compared side by side
with the publication.
"""


def format_table(headers, rows, title=None, align=None):
    """Render *rows* (sequences of cells) under *headers*.

    *align* is an optional string of 'l'/'r' per column (default: first
    column left, the rest right).
    """
    cells = [[_text(cell) for cell in row] for row in rows]
    headers = [str(header) for header in headers]
    count = len(headers)
    if align is None:
        align = "l" + "r" * (count - 1)
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(row):
        out = []
        for index, cell in enumerate(row):
            if align[index] == "l":
                out.append(cell.ljust(widths[index]))
            else:
                out.append(cell.rjust(widths[index]))
        return "  ".join(out).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (count - 1)))
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def _text(cell):
    if isinstance(cell, float):
        return "%.2f" % cell
    return str(cell)
