"""Minimal ASCII line charts for benchmark output.

Figure 9 is a plot, not a table; rendering the measured series as an
ASCII chart keeps the reproduction self-contained (no plotting
dependencies) while making the paper's shapes — the knee in the runtime
curve, the rising saved-pages curve — visible at a glance in
``benchmarks/results/fig9.txt`` and the terminal.
"""


def ascii_chart(series, width=60, height=12, title=None, x_label=None):
    """Render one or more named series as an ASCII chart.

    *series* is a list of ``(name, points)`` where points is a list of
    (x, y).  Each series gets its own glyph; y-axes are normalised to a
    shared scale.
    """
    glyphs = "*o+x#@"
    points_all = [point for __, pts in series for point in pts]
    if not points_all:
        return "(no data)"
    xs = [x for x, __ in points_all]
    ys = [y for __, y in points_all]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    grid = [[" "] * width for __ in range(height)]
    for index, (name, pts) in enumerate(series):
        glyph = glyphs[index % len(glyphs)]
        for x, y in pts:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = _fmt(y_hi)
    bottom_label = _fmt(y_lo)
    pad = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(pad)
        elif row_index == height - 1:
            label = bottom_label.rjust(pad)
        else:
            label = " " * pad
        lines.append("%s |%s" % (label, "".join(row)))
    lines.append(" " * pad + " +" + "-" * width)
    axis = "%s%s" % (_fmt(x_lo), _fmt(x_hi).rjust(width - len(_fmt(x_lo))))
    lines.append(" " * (pad + 2) + axis)
    if x_label:
        lines.append(" " * (pad + 2) + x_label.center(width))
    legend = "   ".join("%s %s" % (glyphs[i % len(glyphs)], name)
                        for i, (name, __) in enumerate(series))
    lines.append(" " * (pad + 2) + legend)
    return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float) and not value.is_integer():
        return "%.2f" % value
    return "%d" % value
