"""The functional interpreter."""

import enum

from repro.isa import predecode, semantics, traces
from repro.isa.encoding import DecodeError, decode
from repro.isa.instructions import InstrClass
from repro.isa.registers import NUM_REGS
from repro.memory.mainmem import PAGE_SHIFT, MemoryFault


class StepResult(enum.Enum):
    """Outcome of executing one instruction."""

    OK = "ok"
    HALTED = "halted"
    SYSCALL = "syscall"
    FAULT = "fault"


class SimFault(Exception):
    """An architectural fault (bad fetch, illegal instruction, memory or
    arithmetic error) raised when no fault handler is installed."""

    def __init__(self, pc, cause):
        super().__init__("fault at pc=0x%08x: %s" % (pc, cause))
        self.pc = pc
        self.cause = cause




class FuncSim:
    """In-order functional simulator over a shared :class:`MainMemory`.

    Execution runs through the predecode cache
    (:mod:`repro.isa.predecode`): each pc decodes and compiles once into
    a bound closure, revalidated against the memory's per-page write
    versions so stores into cached text (self-modifying code, injected
    faults) are always honoured.  ``predecode_enabled=False`` selects the
    original fetch/decode/dispatch interpreter — the reference the
    differential tests compare the cache against.

    Hooks:

    * ``syscall_handler(sim) -> bool`` — invoked on ``syscall``; return
      True to continue, False to stop (e.g. thread blocked/exited).  The
      handler reads/writes ``sim.regs`` and ``sim.memory`` directly.
    * ``chk_handler(sim, instr)`` — invoked on CHECK instructions, so a
      functional RSE model can observe them; default is a no-op (the
      pipeline treats CHECKs as NOPs everywhere except commit).
    * ``trace_mem(sim, instr, addr, is_store)`` — observation hook used
      by functional DDT experiments.
    * ``fetch_check(pc) -> error | None`` — instruction-fetch permission
      check, consulted whenever a pc is (re)decoded: every step on the
      reference interpreter, and at predecode-cache refill otherwise.
      Refill-time checking has ITLB-fill semantics: a pc already cached
      for the current page version is not re-checked until a store to
      its page bumps the write version (which also forces a re-decode).
      Attaching it disables trace-JIT dispatch for the run — traces
      splice blocks past the refill points the check lives at — exactly
      like the documented ``trace_mem`` deopt.  A non-None return is an
      architectural fault with that cause.
    """

    def __init__(self, memory, entry=0, sp=0, gp=0, syscall_handler=None,
                 chk_handler=None, trace_mem=None, predecode_enabled=True,
                 jit_enabled=False):
        self.memory = memory
        self.regs = [0] * NUM_REGS
        self.regs[29] = sp
        self.regs[28] = gp
        self.pc = entry
        self.halted = False
        self.instret = 0          # retired instruction count
        self.syscall_handler = syscall_handler
        self.chk_handler = chk_handler
        self.trace_mem = trace_mem
        self.fetch_check = None
        self.fault = None         # (pc, cause) of the last fault, if any
        self.predecode_enabled = predecode_enabled
        self._cache = predecode.cache_for(memory) if predecode_enabled \
            else None
        # Superblock trace JIT (repro.isa.traces): only meaningful on top
        # of the predecode cache — traces are discovered through it and
        # fall back to its closures on any deopt condition.
        self.jit_enabled = bool(jit_enabled) and predecode_enabled
        self._traces = traces.traces_for(memory) if self.jit_enabled \
            else None
        # Optional list the JIT run loop appends each retired pc to;
        # mirrors the retired-pc stream a step() loop would observe (the
        # difftest oracle compares engines on exactly this stream).
        self.retire_log = None
        # Instrumentation points (repro.assertions): predeclared as
        # instance attributes so an attach/detach cycle only ever
        # *assigns* these keys.  Adding or deleting instance-dict keys
        # would convert CPython's key-sharing instance dict into a
        # combined one and permanently slow every ``self.x`` load in the
        # hot loop (~10% on kMeans; gated by
        # benchmarks/test_perf_assertions.py).
        self.step = self.step          # the bound bare methods; adapters
        self.run = self.run            # swap the values, detach restores

    @property
    def trace_cache(self):
        """The shared :class:`~repro.isa.traces.TraceCache`, or None."""
        return self._traces

    # ------------------------------------------------------------------ run

    def step(self):
        """Execute one instruction; returns a :class:`StepResult`."""
        if self.halted:
            return StepResult.HALTED
        pc = self.pc
        cache = self._cache
        if cache is None:
            if self.fetch_check is not None:
                err = self.fetch_check(pc)
                if err:
                    return self._fault(pc, err)
            try:
                word = self.memory.load_word(pc)
                instr = decode(word)
            except (MemoryFault, DecodeError) as exc:
                return self._fault(pc, str(exc))
            return self._execute(instr, pc)
        try:
            entry = cache.entries.get(pc)
            if (entry is None or
                    self.memory.write_versions.get(pc >> PAGE_SHIFT, 0)
                    != entry[0]):
                if self.fetch_check is not None:
                    err = self.fetch_check(pc)
                    if err:
                        return self._fault(pc, err)
                entry = cache.refill(pc)
        except (MemoryFault, DecodeError) as exc:
            return self._fault(pc, str(exc))
        try:
            nxt = entry[1](self)
        except (MemoryFault, semantics.ArithmeticFault) as exc:
            return self._fault(pc, str(exc))
        if nxt >= 0:
            self.pc = nxt
            self.instret += 1
            return StepResult.OK
        if nxt == predecode.HALT:
            self.instret += 1
            return StepResult.HALTED
        if nxt == predecode.SYSCALL:
            self.pc = (pc + 4) & 0xFFFFFFFF
            self.instret += 1
            if self.syscall_handler is None:
                raise SimFault(pc, "syscall with no handler")
            try:
                keep_running = self.syscall_handler(self)
            except (MemoryFault, semantics.ArithmeticFault) as exc:
                return self._fault(pc, str(exc))
            return StepResult.OK if keep_running else StepResult.SYSCALL
        # CHECK: hook runs with self.pc still at the chk instruction.
        if self.chk_handler is not None:
            try:
                self.chk_handler(self, entry[3])
            except (MemoryFault, semantics.ArithmeticFault) as exc:
                return self._fault(pc, str(exc))
        self.pc = (pc + 4) & 0xFFFFFFFF
        self.instret += 1
        return StepResult.OK

    def run(self, max_steps=10_000_000):
        """Run until halt, fault, or *max_steps*; returns the stop reason."""
        if self._cache is None:
            for __ in range(max_steps):
                result = self.step()
                if result is not StepResult.OK:
                    return result
            return StepResult.OK
        if self.halted:
            return StepResult.HALTED
        if self._traces is not None:
            if self.trace_mem is None and self.fetch_check is None:
                return self._run_traced(max_steps)
            # Per-instruction telemetry or a fetch-permission check is
            # attached: traces would skip its events / splice past its
            # refill points, so this run executes closure-at-a-time.
            self._traces.deopt_runs += 1
        return self._run_predecode(max_steps)

    def _run_predecode(self, max_steps):
        """Closure-at-a-time hot loop (predecode cache, no traces)."""
        # Hot path.  The per-step work is one dict probe, one page-version
        # compare, one closure call and an int compare; ``pc`` and the
        # retired-count delta ``n`` live in locals and are written back to
        # the simulator only at stop points (halt/syscall/chk/fault/exit),
        # none of which can observe them stale.
        entries_get = self._cache.entries.get
        refill = self._cache.refill
        versions_get = self.memory.write_versions.get
        fetch_check = self.fetch_check
        arith_fault = semantics.ArithmeticFault
        halt_marker = predecode.HALT
        syscall_marker = predecode.SYSCALL
        pc = self.pc
        n = 0
        for __ in range(max_steps):
            entry = entries_get(pc)
            if entry is None or versions_get(pc >> PAGE_SHIFT, 0) != entry[0]:
                if fetch_check is not None:
                    err = fetch_check(pc)
                    if err:
                        self.pc = pc
                        self.instret += n
                        return self._fault(pc, err)
                try:
                    entry = refill(pc)
                except (MemoryFault, DecodeError) as exc:
                    self.pc = pc
                    self.instret += n
                    return self._fault(pc, str(exc))
            try:
                nxt = entry[1](self)
            except (MemoryFault, arith_fault) as exc:
                self.pc = pc
                self.instret += n
                return self._fault(pc, str(exc))
            if nxt >= 0:
                pc = nxt
                n += 1
                continue
            if nxt == halt_marker:
                self.pc = pc
                self.instret += n + 1
                return StepResult.HALTED
            if nxt == syscall_marker:
                syscall_pc = pc
                self.pc = pc = (pc + 4) & 0xFFFFFFFF
                self.instret += n + 1
                n = 0
                handler = self.syscall_handler
                if handler is None:
                    raise SimFault(syscall_pc, "syscall with no handler")
                try:
                    keep_running = handler(self)
                except (MemoryFault, arith_fault) as exc:
                    return self._fault(syscall_pc, str(exc))
                if not keep_running:
                    return StepResult.SYSCALL
                pc = self.pc          # the handler may redirect control
                if self.halted:
                    return StepResult.HALTED
                continue
            # CHECK: hook sees self.pc at the chk instruction itself.
            self.pc = pc
            self.instret += n
            n = 0
            if self.chk_handler is not None:
                try:
                    self.chk_handler(self, entry[3])
                except (MemoryFault, arith_fault) as exc:
                    return self._fault(pc, str(exc))
                if self.halted:
                    self.pc = (pc + 4) & 0xFFFFFFFF
                    self.instret += 1
                    return StepResult.HALTED
            pc = (pc + 4) & 0xFFFFFFFF
            self.pc = pc
            self.instret += 1
        self.pc = pc
        self.instret += n
        return StepResult.OK

    def _run_traced(self, max_steps):
        """Trace-dispatching hot loop (``jit_enabled``).

        Architecturally identical to :meth:`_run_predecode`: traces are
        only entered when their whole minimum retirement fits the
        remaining step budget, fault/halt/syscall/CHECK stop points sync
        pc/instret exactly as the closure loop does, and any condition a
        trace cannot honour (stale page version, serializing
        instruction, mid-run attach of ``trace_mem``) falls back to the
        per-instruction closures.  ``probe`` limits trace-cache lookups
        and heat accounting to control-transfer targets, so traces are
        anchored at block heads instead of rotating through every pc of
        a straight-line run.
        """
        trace_cache = self._traces
        tentries_get = trace_cache.entries.get
        heat = trace_cache.heat
        heat_get = heat.get
        heat_threshold = traces.HEAT_THRESHOLD
        trace_fault = traces.TraceFault
        entries_get = self._cache.entries.get
        refill = self._cache.refill
        versions_get = self.memory.write_versions.get
        arith_fault = semantics.ArithmeticFault
        halt_marker = predecode.HALT
        syscall_marker = predecode.SYSCALL
        regs = self.regs
        rlog = self.retire_log
        pc = self.pc
        budget = max_steps
        n = 0
        probe = True
        while budget > 0:
            if probe:
                tentry = tentries_get(pc)
                if tentry is None:
                    hits = heat_get(pc, 0) + 1
                    if hits >= heat_threshold:
                        heat.pop(pc, None)
                        tentry = trace_cache.build(pc)
                    else:
                        heat[pc] = hits
                elif versions_get(tentry[4], 0) != tentry[0]:
                    tentry = trace_cache.rebuild(pc)
                if tentry is not None:
                    fn = tentry[1]
                    if fn is not None and tentry[2] <= budget:
                        if rlog is not None:
                            # The logging variant appends each retired
                            # pc itself (compiled lazily per trace).
                            fn = tentry[5]
                            if fn is None:
                                tentry = trace_cache.ensure_logging(pc)
                                fn = tentry[5]
                        if fn is not None:
                            try:
                                if rlog is None:
                                    new_pc, retired = fn(regs, budget)
                                else:
                                    new_pc, retired = fn(regs, budget, rlog)
                            except trace_fault as tf:
                                self.pc = tf.pc
                                self.instret += n + tf.retired
                                return self._fault(tf.pc, str(tf.exc))
                            budget -= retired
                            n += retired
                            pc = new_pc
                            continue
            # Per-instruction fallback: exactly the _run_predecode body,
            # plus retire logging and re-probe at control transfers.
            entry = entries_get(pc)
            if entry is None or versions_get(pc >> PAGE_SHIFT, 0) != entry[0]:
                try:
                    entry = refill(pc)
                except (MemoryFault, DecodeError) as exc:
                    self.pc = pc
                    self.instret += n
                    return self._fault(pc, str(exc))
            try:
                nxt = entry[1](self)
            except (MemoryFault, arith_fault) as exc:
                self.pc = pc
                self.instret += n
                return self._fault(pc, str(exc))
            if nxt >= 0:
                if rlog is not None:
                    rlog.append(pc)
                n += 1
                budget -= 1
                probe = nxt != ((pc + 4) & 0xFFFFFFFF)
                pc = nxt
                continue
            if nxt == halt_marker:
                if rlog is not None:
                    rlog.append(pc)
                self.pc = pc
                self.instret += n + 1
                return StepResult.HALTED
            if nxt == syscall_marker:
                syscall_pc = pc
                if rlog is not None:
                    rlog.append(pc)
                self.pc = pc = (pc + 4) & 0xFFFFFFFF
                self.instret += n + 1
                n = 0
                budget -= 1
                handler = self.syscall_handler
                if handler is None:
                    raise SimFault(syscall_pc, "syscall with no handler")
                try:
                    keep_running = handler(self)
                except (MemoryFault, arith_fault) as exc:
                    return self._fault(syscall_pc, str(exc))
                if not keep_running:
                    return StepResult.SYSCALL
                pc = self.pc          # the handler may redirect control
                if self.halted:
                    return StepResult.HALTED
                if self.trace_mem is not None:          # attached mid-run
                    trace_cache.deopt_runs += 1
                    return self._deopt_tail(budget)
                probe = True
                continue
            # CHECK: hook sees self.pc at the chk instruction itself.
            self.pc = pc
            self.instret += n
            n = 0
            if self.chk_handler is not None:
                try:
                    self.chk_handler(self, entry[3])
                except (MemoryFault, arith_fault) as exc:
                    return self._fault(pc, str(exc))
                if self.halted:
                    if rlog is not None:
                        rlog.append(pc)
                    self.pc = (pc + 4) & 0xFFFFFFFF
                    self.instret += 1
                    return StepResult.HALTED
            if rlog is not None:
                rlog.append(pc)
            pc = (pc + 4) & 0xFFFFFFFF
            self.pc = pc
            self.instret += 1
            budget -= 1
            if self.trace_mem is not None:          # attached mid-run
                trace_cache.deopt_runs += 1
                return self._deopt_tail(budget)
            probe = True
        self.pc = pc
        self.instret += n
        return StepResult.OK

    def _deopt_tail(self, remaining):
        """Finish a JIT run per-instruction after a mid-run deopt."""
        if remaining <= 0:
            return StepResult.OK
        if self.retire_log is None:
            return self._run_predecode(remaining)
        rlog = self.retire_log
        for __ in range(remaining):
            pc = self.pc
            result = self.step()
            if result is StepResult.OK:
                rlog.append(pc)
                continue
            if result is StepResult.HALTED:
                rlog.append(pc)
            return result
        return StepResult.OK

    # -------------------------------------------------------------- execute

    def _execute(self, instr, pc):
        """Reference (non-predecoded) execution of one instruction.

        This is the semantics oracle the compiled closures are tested
        against; it must stay behaviourally identical to them.
        """
        regs = self.regs
        iclass = instr.iclass
        next_pc = (pc + 4) & 0xFFFFFFFF
        try:
            if iclass is InstrClass.ALU or iclass is InstrClass.MDU:
                value = semantics.alu_result(instr, regs[instr.rs],
                                             regs[instr.rt])
                if instr.dest:
                    regs[instr.dest] = value
            elif iclass is InstrClass.LOAD:
                addr = semantics.effective_address(instr, regs[instr.rs])
                if self.trace_mem is not None:
                    self.trace_mem(self, instr, addr, False)
                value = semantics.load_from(self.memory, instr, addr)
                if instr.dest:
                    regs[instr.dest] = value
            elif iclass is InstrClass.STORE:
                addr = semantics.effective_address(instr, regs[instr.rs])
                if self.trace_mem is not None:
                    self.trace_mem(self, instr, addr, True)
                semantics.store_to(self.memory, instr, addr, regs[instr.rt])
            elif iclass is InstrClass.BRANCH:
                next_pc = semantics.control_target(instr, pc, regs[instr.rs],
                                                   regs[instr.rt])
            elif iclass is InstrClass.JUMP:
                if instr.dest:          # jal / jalr link
                    regs[instr.dest] = (pc + 4) & 0xFFFFFFFF
                next_pc = semantics.jump_target(instr, pc, regs[instr.rs])
            elif iclass is InstrClass.SYSCALL:
                self.pc = next_pc
                self.instret += 1
                if self.syscall_handler is None:
                    raise SimFault(pc, "syscall with no handler")
                keep_running = self.syscall_handler(self)
                return StepResult.OK if keep_running else StepResult.SYSCALL
            elif iclass is InstrClass.HALT:
                self.halted = True
                self.instret += 1
                return StepResult.HALTED
            elif iclass is InstrClass.CHECK:
                if self.chk_handler is not None:
                    self.chk_handler(self, instr)
            elif iclass is InstrClass.NOP:
                pass
            else:          # pragma: no cover - all classes handled above
                raise SimFault(pc, "unhandled class %s" % iclass)
        except (MemoryFault, semantics.ArithmeticFault) as exc:
            return self._fault(pc, str(exc))
        regs[0] = 0
        self.pc = next_pc
        self.instret += 1
        return StepResult.OK

    def _fault(self, pc, cause):
        self.fault = (pc, cause)
        self.halted = True
        return StepResult.FAULT

    # -------------------------------------------------------------- helpers

    def reg(self, index):
        return self.regs[index]

    def set_reg(self, index, value):
        if index:
            self.regs[index] = value & 0xFFFFFFFF
