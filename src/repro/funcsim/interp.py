"""The functional interpreter."""

import enum

from repro.isa import semantics
from repro.isa.encoding import DecodeError, decode
from repro.isa.instructions import InstrClass
from repro.isa.registers import NUM_REGS
from repro.memory.mainmem import MemoryFault


class StepResult(enum.Enum):
    """Outcome of executing one instruction."""

    OK = "ok"
    HALTED = "halted"
    SYSCALL = "syscall"
    FAULT = "fault"


class SimFault(Exception):
    """An architectural fault (bad fetch, illegal instruction, memory or
    arithmetic error) raised when no fault handler is installed."""

    def __init__(self, pc, cause):
        super().__init__("fault at pc=0x%08x: %s" % (pc, cause))
        self.pc = pc
        self.cause = cause


class FuncSim:
    """In-order functional simulator over a shared :class:`MainMemory`.

    Hooks:

    * ``syscall_handler(sim) -> bool`` — invoked on ``syscall``; return
      True to continue, False to stop (e.g. thread blocked/exited).  The
      handler reads/writes ``sim.regs`` and ``sim.memory`` directly.
    * ``chk_handler(sim, instr)`` — invoked on CHECK instructions, so a
      functional RSE model can observe them; default is a no-op (the
      pipeline treats CHECKs as NOPs everywhere except commit).
    * ``trace_mem(sim, instr, addr, is_store)`` — observation hook used
      by functional DDT experiments.
    """

    def __init__(self, memory, entry=0, sp=0, gp=0, syscall_handler=None,
                 chk_handler=None, trace_mem=None):
        self.memory = memory
        self.regs = [0] * NUM_REGS
        self.regs[29] = sp
        self.regs[28] = gp
        self.pc = entry
        self.halted = False
        self.instret = 0          # retired instruction count
        self.syscall_handler = syscall_handler
        self.chk_handler = chk_handler
        self.trace_mem = trace_mem
        self.fault = None         # (pc, cause) of the last fault, if any

    # ------------------------------------------------------------------ run

    def step(self):
        """Execute one instruction; returns a :class:`StepResult`."""
        if self.halted:
            return StepResult.HALTED
        pc = self.pc
        try:
            word = self.memory.load_word(pc)
            instr = decode(word)
        except (MemoryFault, DecodeError) as exc:
            return self._fault(pc, str(exc))
        return self._execute(instr, pc)

    def run(self, max_steps=10_000_000):
        """Run until halt, fault, or *max_steps*; returns the stop reason."""
        for __ in range(max_steps):
            result = self.step()
            if result is not StepResult.OK:
                return result
        return StepResult.OK

    # -------------------------------------------------------------- execute

    def _execute(self, instr, pc):
        regs = self.regs
        iclass = instr.iclass
        next_pc = (pc + 4) & 0xFFFFFFFF
        try:
            if iclass is InstrClass.ALU or iclass is InstrClass.MDU:
                value = semantics.alu_result(instr, regs[instr.rs],
                                             regs[instr.rt])
                if instr.dest:
                    regs[instr.dest] = value
            elif iclass is InstrClass.LOAD:
                addr = semantics.effective_address(instr, regs[instr.rs])
                if self.trace_mem is not None:
                    self.trace_mem(self, instr, addr, False)
                value = semantics.load_from(self.memory, instr, addr)
                if instr.dest:
                    regs[instr.dest] = value
            elif iclass is InstrClass.STORE:
                addr = semantics.effective_address(instr, regs[instr.rs])
                if self.trace_mem is not None:
                    self.trace_mem(self, instr, addr, True)
                semantics.store_to(self.memory, instr, addr, regs[instr.rt])
            elif iclass is InstrClass.BRANCH:
                next_pc = semantics.control_target(instr, pc, regs[instr.rs],
                                                   regs[instr.rt])
            elif iclass is InstrClass.JUMP:
                if instr.dest:          # jal / jalr link
                    regs[instr.dest] = (pc + 4) & 0xFFFFFFFF
                next_pc = semantics.jump_target(instr, pc, regs[instr.rs])
            elif iclass is InstrClass.SYSCALL:
                self.pc = next_pc
                self.instret += 1
                if self.syscall_handler is None:
                    raise SimFault(pc, "syscall with no handler")
                keep_running = self.syscall_handler(self)
                return StepResult.OK if keep_running else StepResult.SYSCALL
            elif iclass is InstrClass.HALT:
                self.halted = True
                self.instret += 1
                return StepResult.HALTED
            elif iclass is InstrClass.CHECK:
                if self.chk_handler is not None:
                    self.chk_handler(self, instr)
            elif iclass is InstrClass.NOP:
                pass
            else:          # pragma: no cover - all classes handled above
                raise SimFault(pc, "unhandled class %s" % iclass)
        except (MemoryFault, semantics.ArithmeticFault) as exc:
            return self._fault(pc, str(exc))
        regs[0] = 0
        self.pc = next_pc
        self.instret += 1
        return StepResult.OK

    def _fault(self, pc, cause):
        self.fault = (pc, cause)
        self.halted = True
        return StepResult.FAULT

    # -------------------------------------------------------------- helpers

    def reg(self, index):
        return self.regs[index]

    def set_reg(self, index, value):
        if index:
            self.regs[index] = value & 0xFFFFFFFF
