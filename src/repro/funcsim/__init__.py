"""Functional (in-order, one-instruction-per-step) reference simulator.

The reproduction's analogue of SimpleScalar's ``sim-safe``: no timing, no
speculation, just architectural semantics.  It serves three roles:

* differential-testing oracle for the out-of-order pipeline (every
  workload must produce identical architectural state on both engines);
* fast workload validation (the kMeans / vpr surrogates are checked for
  algorithmic correctness here before being timed on the pipeline);
* substrate for purely functional RSE experiments.
"""

from repro.funcsim.interp import FuncSim, SimFault, StepResult

__all__ = ["FuncSim", "SimFault", "StepResult"]
