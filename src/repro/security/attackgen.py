"""Seeded generative attack corpus (InjectV-style attack taxonomy).

Where :mod:`repro.security.attacks` holds two hand-written exploits,
this module *generates* randomized attack variants the way the difftest
generator composes random programs: a variant seed drives every choice
(frame geometry, NOP-sled layout, shellcode placement and registers,
GOT width and victim entry, write primitive, patch filler, race delays),
and the result is a fully self-contained, **self-classifying** guest
program rendered from the :mod:`repro.workloads.vulnsvc` templates —
HIJACKED / CRASHED / FOILED / DETECTED are read from architectural
state, never from heuristics.

Attack classes (:data:`ATTACK_CLASSES`):

* ``stack-smash``   — unbounded copy into a stack buffer; varied
  overflow depths, sled lengths, shellcode placement and entry points;
* ``got-hijack``    — arbitrary write over a randomized GOT entry with
  a randomized write primitive (word / byte-wise / indexed);
* ``smc-patch``     — self-modifying payload: an mprotect gadget opens
  .text and a baked patch rewrites a direct jump;
* ``thread-smash``  — a malicious sibling thread smashes the sleeping
  service thread's frame at assumed addresses;
* ``race-got``      — cross-thread TOCTOU: the service validates a GOT
  entry, yields, then calls it while a racer thread rewrites it.

Variants run under RSE module configurations
(:func:`parse_config`: ``none``/``trr``/``icm``/``mlr``/``cfc``/``ddt``
and ``+`` combinations), either directly (:func:`run_variant`) or as a
:mod:`repro.campaign` fault model (:class:`AttackCorpus`,
``model="attack"``) so corpora scale through the sharded service and
feed the :mod:`repro.security.coverage` detection matrix.
"""

import random

from repro.campaign.models import FaultModel, Outcome, register
from repro.isa.encoding import encode
from repro.isa.instructions import SPEC_BY_NAME
from repro.program.layout import MemoryLayout
from repro.rse.check import MODULE_ICM
from repro.rse.modules.cfc import CFC, MODULE_CFC, build_cfg
from repro.rse.modules.icm import build_checker_memory, make_icm_injector
from repro.security.attacks import (
    _MLR_PROLOGUE,
    PWNED_MARKER,
    AttackOutcome,
    _classify,
    _make_stack_executable,
)
from repro.security.trr import trr_randomize_layout
from repro.system import build_machine
from repro.workloads import vulnsvc
from repro.workloads.asmlib import build_workload_image

#: The corpus' attack-class vocabulary.
ATTACK_CLASSES = ("stack-smash", "got-hijack", "smc-patch",
                  "thread-smash", "race-got")

#: Classes whose programs are single-threaded and therefore runnable on
#: the functional engines through :mod:`repro.security.guestos`.
FUNCSIM_CLASSES = ("stack-smash", "got-hijack", "smc-patch")

#: Classes that attack the stack (and so model the 2004 executable stack).
_STACK_CLASSES = ("stack-smash", "thread-smash")

#: Classes whose MLR defense is the GOT-migration flow, not stack PI.
_GOT_CLASSES = ("got-hijack", "race-got")

#: RSE module configuration tokens :func:`parse_config` accepts.
CONFIG_TOKENS = ("none", "trr", "icm", "mlr", "cfc", "ddt")

#: Default per-variant cycle budget; every generated program finishes
#: (or faults) within a small fraction of this.
DEFAULT_MAX_CYCLES = 300_000

_SHELLCODE_REGS = ((8, 9), (10, 11), (24, 25))      # t0/t1, t2/t3, t8/t9


def parse_config(config):
    """``"mlr+icm"`` -> ordered tuple of validated module tokens."""
    tokens = tuple(token for token in config.split("+") if token)
    if not tokens:
        raise ValueError("empty module configuration")
    for token in tokens:
        if token not in CONFIG_TOKENS:
            raise ValueError("unknown module config token %r (have: %s)"
                             % (token, ", ".join(CONFIG_TOKENS)))
    if len(set(tokens)) != len(tokens):
        raise ValueError("duplicate token in module config %r" % config)
    return tuple(token for token in tokens if token != "none")


def shellcode_words(flag_addr, rt0=8, rt1=9, marker=PWNED_MARKER):
    """Marker-write shellcode as instruction words, registers chosen."""
    lui = SPEC_BY_NAME["lui"]
    ori = SPEC_BY_NAME["ori"]
    sw = SPEC_BY_NAME["sw"]
    halt = SPEC_BY_NAME["halt"]
    return [
        encode(lui, rt=rt0, imm=(flag_addr >> 16) & 0xFFFF),
        encode(ori, rt=rt0, rs=rt0, imm=flag_addr & 0xFFFF),
        encode(lui, rt=rt1, imm=(marker >> 16) & 0xFFFF),
        encode(ori, rt=rt1, rs=rt1, imm=marker & 0xFFFF),
        encode(sw, rt=rt1, rs=rt0, imm=0),
        encode(halt),
    ]


def _mlr_got_prologue(entries):
    """The MLR GOT-migration prologue, sized for *entries* GOT slots."""
    return """\
    chk MLR, NBLK, OP_ENABLE, 0
    la  $a0, got
    li  $a1, {got_bytes}
    chk MLR, BLK, OP_MLR_GOT_OLD, 0
    la  $a0, got_new
    li  $a1, 0
    chk MLR, BLK, OP_MLR_GOT_NEW, 0
    chk MLR, BLK, OP_MLR_COPY_GOT, 0
    la  $a0, plt0
    li  $a1, {plt_bytes}
    chk MLR, BLK, OP_MLR_PLT_INFO, 0
    li  $v0, SYS_MPROTECT
    la  $a0, plt0
    li  $a1, {plt_bytes}
    li  $a2, 7
    syscall
    chk MLR, BLK, OP_MLR_WRITE_PLT, 0
    li  $v0, SYS_MPROTECT
    la  $a0, plt0
    li  $a1, {plt_bytes}
    li  $a2, 5
    syscall
""".format(got_bytes=4 * entries, plt_bytes=16 * entries)


class AttackVariant:
    """One generated attack: program image + the choices that made it."""

    def __init__(self, attack_class, config, seed, source, image, asm,
                 layout, meta):
        self.attack_class = attack_class
        self.config = config
        self.seed = seed
        self.source = source
        self.image = image
        self.asm = asm
        self.layout = layout          # the *actual* (possibly TRR'd) layout
        self.meta = meta

    def __repr__(self):
        return ("AttackVariant(%s, config=%s, seed=%d)"
                % (self.attack_class, self.config, self.seed))


class AttackRun:
    """Outcome of one variant run, engine-independent fields only."""

    def __init__(self, variant, outcome, reason, detections, cycles,
                 machine=None):
        self.variant = variant
        self.outcome = outcome
        self.reason = reason
        self.detections = detections
        self.cycles = cycles
        self.machine = machine

    def __repr__(self):
        return "AttackRun(%s, %s)" % (self.outcome.value, self.reason)


# ------------------------------------------------------------- generation

def _assumed_frame(assumed, frame, stack_headroom=64):
    """Where the attacker believes the service frame's sp lands."""
    initial_sp = (assumed.stack_top - stack_headroom) & ~0x7
    return initial_sp - frame


#: Words in the marker-write shellcode (:func:`shellcode_words`).
_SHELLCODE_LEN = 6


def _draw_stack_geometry(rng, buf_off, ra_off):
    """All random choices of a stack payload — drawn *before* pass 1 so
    both assembly passes bake a payload of identical word count (a count
    change would shift every symbol after the request block)."""
    rt0, rt1 = rng.choice(_SHELLCODE_REGS)
    room_words = (ra_off - buf_off) // 4
    max_sled = max(0, room_words - _SHELLCODE_LEN)
    sled = rng.randrange(0, min(max_sled, 8) + 1)
    entry = rng.randrange(0, sled + 1)          # land on sled or code start
    tail = rng.randrange(0, 4)
    return {"regs": (rt0, rt1), "room_words": room_words,
            "sled": sled, "entry": entry, "tail": tail}


def _stack_payload(geometry, flag_addr, frame, buf_off, assumed):
    """Materialize sled + shellcode + padding + return-address words."""
    rt0, rt1 = geometry["regs"]
    code = shellcode_words(flag_addr, rt0=rt0, rt1=rt1)
    sled = geometry["sled"]
    pad = geometry["room_words"] - sled - len(code)
    buffer_addr = _assumed_frame(assumed, frame) + buf_off
    payload = ([0] * sled + code + [0] * pad
               + [buffer_addr + 4 * geometry["entry"]]
               + [0] * geometry["tail"])
    meta = dict(geometry, buffer_addr=buffer_addr)
    return payload, meta


def _gen_stack_smash(rng, mlr):
    frame = rng.choice((96, 112, 128))
    buf_off = rng.choice((16, 24, 32))
    ra_off = frame - 4
    prologue = _MLR_PROLOGUE if mlr else ""
    geometry = _draw_stack_geometry(rng, buf_off, ra_off)
    count = geometry["room_words"] + 1 + geometry["tail"]

    def render(flag_addr, assumed):
        payload, meta = _stack_payload(geometry, flag_addr, frame, buf_off,
                                       assumed)
        meta.update(frame=frame, buf_off=buf_off)
        return (vulnsvc.render_stack_smash(payload, frame, buf_off, ra_off,
                                           prologue=prologue), meta)

    placeholder = vulnsvc.render_stack_smash(
        [0] * count, frame, buf_off, ra_off, prologue=prologue)
    return placeholder, render


def _gen_got_hijack(rng, mlr):
    entries = rng.randrange(2, 5)
    victim = rng.randrange(entries)
    primitive = rng.choice(vulnsvc.WRITE_PRIMITIVES)
    prologue = _mlr_got_prologue(entries) if mlr else ""

    def source(write_addr, write_index, write_value):
        return vulnsvc.render_got_service(
            entries, primitive, write_addr, write_index, write_value,
            PWNED_MARKER, prologue=prologue)

    def render(symbols):
        if primitive == "indexed":
            write_addr, write_index = symbols["got"], victim
        else:
            write_addr, write_index = symbols["got"] + 4 * victim, 0
        meta = {"entries": entries, "victim": victim,
                "primitive": primitive}
        return (source(write_addr, write_index, symbols["attacker_fn"]),
                meta)

    return source(0, 0, 0), render


def _gen_smc_patch(rng, mlr):
    filler_pre = rng.randrange(0, 7)
    filler_post = rng.randrange(0, 4)
    reprotect = rng.random() < 0.5
    prologue = _MLR_PROLOGUE if mlr else ""

    def source(patch_addr, patch_word):
        return vulnsvc.render_smc_patch(
            patch_addr, patch_word, PWNED_MARKER, filler_pre=filler_pre,
            filler_post=filler_post, reprotect=reprotect, prologue=prologue)

    def render(symbols):
        victim = symbols["victim_site"]
        patch = encode(SPEC_BY_NAME["j"],
                       target=(symbols["attacker_fn"] >> 2) & 0x03FFFFFF)
        meta = {"filler_pre": filler_pre, "filler_post": filler_post,
                "reprotect": reprotect, "victim_site": victim}
        return source(victim, patch), meta

    return source(0, 0), render


def _gen_thread_smash(rng, mlr):
    frame = rng.choice((96, 112, 128))
    buf_off = rng.choice((16, 24, 32))
    ra_off = frame - 4
    nap = 20_000
    delay = rng.randrange(200, 2_000)
    prologue = _MLR_PROLOGUE if mlr else ""
    geometry = _draw_stack_geometry(rng, buf_off, ra_off)
    count = geometry["sled"] + _SHELLCODE_LEN + 1

    def source(addrs, values):
        return vulnsvc.render_thread_smash(addrs, values, frame, ra_off,
                                           nap, delay, prologue=prologue)

    def render(flag_addr, assumed):
        payload, meta = _stack_payload(geometry, flag_addr, frame, buf_off,
                                       assumed)
        # The cross-thread writer stores word-by-word: sled + shellcode
        # into the assumed buffer, the hijacked return address into the
        # assumed $ra slot.  Padding/tail words stay unwritten.
        frame_sp = _assumed_frame(assumed, frame)
        body = payload[:meta["sled"] + _SHELLCODE_LEN]
        addrs = [frame_sp + buf_off + 4 * i for i in range(len(body))]
        addrs.append(frame_sp + ra_off)
        values = body + [meta["buffer_addr"] + 4 * meta["entry"]]
        meta.update(frame=frame, buf_off=buf_off, nap=nap, delay=delay)
        return source(addrs, values), meta

    return source([0] * count, [0] * count), render


def _gen_race_got(rng, mlr):
    entries = rng.randrange(2, 4)
    victim = rng.randrange(entries)
    main_delay = rng.randrange(0, 4)
    racer_delay = rng.randrange(0, 4)
    prologue = _mlr_got_prologue(entries) if mlr else ""
    racer = vulnsvc.render_racer_thread(racer_delay)

    def source(write_addr, write_value):
        return vulnsvc.render_got_service(
            entries, "word", write_addr, 0, write_value, PWNED_MARKER,
            prologue=prologue, racer=racer, victim=victim,
            main_delay=main_delay)

    def render(symbols):
        meta = {"entries": entries, "victim": victim,
                "main_delay": main_delay, "racer_delay": racer_delay}
        return (source(symbols["got"] + 4 * victim,
                       symbols["attacker_fn"]), meta)

    return source(0, 0), render


def generate_variant(attack_class, seed, config="none"):
    """Deterministically generate one attack variant.

    The same ``(attack_class, seed, config)`` always yields a
    byte-identical program: every random choice comes from one
    ``random.Random(seed)`` stream consumed in a fixed order, and the
    attacker's baked addresses are derived from the *assumed*
    (conventional) layout regardless of the actual one.
    """
    if attack_class not in ATTACK_CLASSES:
        raise ValueError("unknown attack class %r (have: %s)"
                         % (attack_class, ", ".join(ATTACK_CLASSES)))
    tokens = parse_config(config)
    rng = random.Random(seed)
    assumed = MemoryLayout()
    mlr = "mlr" in tokens
    # The TRR draw happens unconditionally so payload geometry for a
    # given seed is identical across module configurations.
    trr_seed = rng.getrandbits(31)
    layout = (trr_randomize_layout(assumed, seed=trr_seed)
              if "trr" in tokens else MemoryLayout())

    generators = {"stack-smash": _gen_stack_smash,
                  "got-hijack": _gen_got_hijack,
                  "smc-patch": _gen_smc_patch,
                  "thread-smash": _gen_thread_smash,
                  "race-got": _gen_race_got}
    placeholder, render = generators[attack_class](rng, mlr)

    # Two-pass bake: pass 1 assembles with zero placeholders to learn the
    # symbol table; pass 2 re-renders with the real baked words.  Word
    # counts are identical between passes, so the symbols are too.
    __, pass1 = build_workload_image(placeholder, layout)
    if attack_class in ("stack-smash", "thread-smash"):
        source, meta = render(pass1.symbols["secret_flag"], assumed)
    else:
        source, meta = render(pass1.symbols)
    image, asm = build_workload_image(source, layout)
    meta["trr_seed"] = trr_seed
    return AttackVariant(attack_class, config, seed, source, image, asm,
                         layout, meta)


# -------------------------------------------------------------- execution

def _build_config_machine(variant, tokens):
    """Machine with the requested RSE modules attached and configured."""
    module_names = tuple(token for token in tokens
                         if token in ("icm", "mlr", "ddt", "cfc"))
    machine = build_machine(with_rse=bool(module_names),
                            modules=module_names)
    machine.kernel.load_process(variant.image)
    if variant.attack_class in _STACK_CLASSES:
        _make_stack_executable(machine.kernel, variant.layout)
    asm = variant.asm
    if "icm" in module_names:
        icm = machine.module(MODULE_ICM)
        checker_map = build_checker_memory(machine.memory, asm.text_base,
                                           len(asm.text))
        icm.configure(checker_map)
        machine.rse.enable_module(MODULE_ICM)
        machine.pipeline.check_injector = make_icm_injector(checker_map)
    if "cfc" in module_names:
        cfc = machine.module(MODULE_CFC)
        cfc.configure(*build_cfg(machine.memory, asm.text_base,
                                 len(asm.text)))
        machine.rse.enable_module(MODULE_CFC)
    if "ddt" in module_names:
        from repro.rse.check import MODULE_DDT
        machine.rse.enable_module(MODULE_DDT)
    # "mlr" is guest-enabled: the variant's defense prologue issues the
    # CHECK sequence itself, exactly like a real MLR-aware loader.
    return machine


def run_variant(variant, max_cycles=DEFAULT_MAX_CYCLES, engine="pipeline"):
    """Run a generated variant; returns an :class:`AttackRun`.

    ``engine="pipeline"`` is the full machine (required for module
    configurations beyond none/trr/mlr and for the threaded classes);
    the functional engines run single-threaded variants through
    :mod:`repro.security.guestos` and must classify identically.
    """
    tokens = parse_config(variant.config)
    if engine != "pipeline":
        from repro.security import guestos

        if variant.attack_class not in FUNCSIM_CLASSES:
            raise ValueError("attack class %r is threaded; it needs the "
                             "pipeline engine" % variant.attack_class)
        unsupported = [t for t in tokens if t not in ("trr", "mlr")]
        if unsupported:
            raise ValueError("module config %r needs the pipeline engine "
                             "(RSE modules: %s)"
                             % (variant.config, ", ".join(unsupported)))
        run = guestos.run_image(
            variant.image, engine, max_steps=max_cycles,
            exec_stack=variant.attack_class in _STACK_CLASSES)
        memory = run.sim.memory
        flag = memory.load_word(variant.asm.symbols["secret_flag"])
        done = memory.load_word(variant.asm.symbols["service_done"])
        outcome = _classify(flag, run.reason, done)
        return AttackRun(variant, outcome, run.reason, 0, run.sim.instret)

    machine = _build_config_machine(variant, tokens)
    result = machine.kernel.run(max_cycles=max_cycles)
    flag = machine.memory.load_word(variant.asm.symbols["secret_flag"])
    done = machine.memory.load_word(variant.asm.symbols["service_done"])
    detections = len(machine.kernel.detections)
    if result.reason == "check_error":
        detections = max(detections, 1)
    if "cfc" in tokens:
        detections += len(machine.module(MODULE_CFC).violations)
    outcome = _classify(flag, result.reason, done, detections)
    return AttackRun(variant, outcome, result.reason, detections,
                     result.cycles, machine=machine)


# --------------------------------------------------------- campaign model

#: AttackOutcome -> campaign Outcome: DETECTED maps onto the module-
#: detection outcome, a successful hijack is (security) corruption, a
#: crash surfaces as an architectural fault, a foiled attack is a benign
#: completion, and UNCLASSIFIED — always a corpus bug — lands on HUNG.
OUTCOME_TO_CAMPAIGN = {
    AttackOutcome.DETECTED: Outcome.DETECTED,
    AttackOutcome.HIJACKED: Outcome.CORRUPTED,
    AttackOutcome.CRASHED: Outcome.FAULTED,
    AttackOutcome.FOILED: Outcome.BENIGN,
    AttackOutcome.UNCLASSIFIED: Outcome.HUNG,
}


@register
class AttackCorpus(FaultModel):
    """Campaign fault model running generated attack variants.

    One campaign = one (attack class, module configuration) cell; the
    per-injection derived seed is the variant seed, so the same campaign
    seed enumerates the same corpus whatever the configuration — that is
    what makes matrix columns comparable.
    """

    name = "attack"
    arm_is_pure = False
    needs_workload = False
    owns_execution = True

    def __init__(self, attack_class="stack-smash", config="none"):
        if attack_class not in ATTACK_CLASSES:
            raise ValueError("unknown attack class %r (have: %s)"
                             % (attack_class, ", ".join(ATTACK_CLASSES)))
        parse_config(config)          # validate early, worker-side too
        self.attack_class = attack_class
        self.config = config

    def build_space(self, ctx):
        return {"attack_class": self.attack_class, "config": self.config}

    def sample(self, rng, space):
        return {"attack_class": space["attack_class"],
                "config": space["config"],
                "variant_seed": rng.getrandbits(31)}

    def execute(self, ctx, injection):
        params = injection.params
        variant = generate_variant(params["attack_class"],
                                   params["variant_seed"],
                                   config=params["config"])
        run = run_variant(variant, max_cycles=ctx.spec.max_cycles)
        outcome = OUTCOME_TO_CAMPAIGN[run.outcome]
        return {"id": injection.id, "model": injection.model,
                "seed": injection.seed, "params": params,
                "outcome": outcome.value, "event": run.reason,
                "pc": 0, "cycles": run.cycles,
                "attack": {"class": variant.attack_class,
                           "config": variant.config,
                           "outcome": run.outcome.value,
                           "detections": run.detections,
                           "hijacked": run.outcome is AttackOutcome.HIJACKED}}
