"""Runtime re-randomization (the Section 4.1 extension).

For long-running programs a layout randomized once at load time becomes
a static target again; the paper proposes periodic *re-randomization*:

    "the compiler analyzes the source code to determine which data items
    are pointer variables ... places the information in a special data
    section ...  Periodically, the process is stopped for
    re-randomization.  The re-randomization routine first locates the
    special data section, then applies a new random offset to data
    pointed to by this section.  The routine then re-maps each memory
    segment to its new address ...  Finally, the routine resumes
    execution of the process."

Our realisation (documented in DESIGN.md as a reproduction of a
*proposed*, not evaluated, mechanism):

* the compiler's "special data section" is a pointer table the program
  registers with the kernel (``register_pointer_table``) — a list of
  addresses of pointer-typed variables;
* :func:`rerandomize_heap` runs with the pipeline drained (the kernel
  only regains control at event boundaries, which is exactly the
  "process is stopped" condition): it relocates every mapped heap page
  by a fresh page-aligned offset, patches each registered pointer that
  points into the heap, updates the kernel's brk/permissions, and
  charges the copy cost in cycles.
"""

import random

from repro.memory.mainmem import PAGE_SHIFT, PAGE_SIZE


class RerandomizeReport:
    """What one re-randomization pass did."""

    def __init__(self, delta, pages_moved, pointers_patched, new_base):
        self.delta = delta
        self.pages_moved = pages_moved
        self.pointers_patched = pointers_patched
        self.new_base = new_base

    def __repr__(self):
        return ("RerandomizeReport(delta=0x%x, pages=%d, pointers=%d)"
                % (self.delta, self.pages_moved, self.pointers_patched))


class PointerTable:
    """The "special data section": addresses of pointer variables."""

    def __init__(self, table_addr, count):
        self.table_addr = table_addr
        self.count = count

    def pointer_slots(self, memory):
        """Addresses of the registered pointer variables."""
        return [memory.load_word(self.table_addr + 4 * index)
                for index in range(self.count)]


def register_pointer_table(kernel, table_addr, count):
    """Register the program's pointer table with the kernel."""
    kernel.pointer_table = PointerTable(table_addr, count)
    return kernel.pointer_table


def rerandomize_heap(kernel, rng=None, max_offset_pages=512,
                     copy_cost_per_page=1860):
    """Move the heap to a fresh random base and patch registered pointers.

    Must be called between kernel events (the pipeline is drained then).
    Returns a :class:`RerandomizeReport`.
    """
    if kernel.current is not None and kernel.pipeline.rob:
        raise RuntimeError("re-randomization requires a drained pipeline")
    rng = rng or random.Random(kernel.pipeline.cycle)
    layout = kernel.loaded.image.layout
    old_base = layout.heap_base
    old_end = kernel.brk
    delta = rng.randrange(1, max_offset_pages) * PAGE_SIZE
    new_base = old_base + delta

    # Re-map: copy every mapped heap page to its new home, retire the old
    # mapping.  (Copying through the kernel models the remap; a hardware
    # MLR assist would stream it through the MAU.)
    memory = kernel.memory
    pages_moved = 0
    first = old_base >> PAGE_SHIFT
    last = (max(old_end, old_base + PAGE_SIZE) - 1) >> PAGE_SHIFT
    for page in range(first, last + 1):
        if page not in kernel.page_perms:
            continue
        payload = memory.snapshot_page(page)
        memory.restore_page(page + (delta >> PAGE_SHIFT), payload)
        memory.restore_page(page, b"\x00" * PAGE_SIZE)
        kernel.page_perms[page + (delta >> PAGE_SHIFT)] = \
            kernel.page_perms.pop(page)
        pages_moved += 1

    # Patch every registered pointer that pointed into the old heap.
    pointers_patched = 0
    table = getattr(kernel, "pointer_table", None)
    if table is not None:
        for slot in table.pointer_slots(memory):
            value = memory.load_word(slot)
            if old_base <= value < max(old_end, old_base + PAGE_SIZE):
                memory.store_word(slot, (value + delta) & 0xFFFFFFFF)
                pointers_patched += 1

    # The kernel's own view of the heap moves with it.
    layout.heap_base = new_base
    kernel.brk = old_end + delta
    kernel.pipeline.advance_cycles(copy_cost_per_page * pages_moved)
    return RerandomizeReport(delta, pages_moved, pointers_patched, new_base)
