"""Module × attack-class detection-coverage matrix.

The paper's security story (Section 6, Tables 4/5) is qualitative: one
hand-written exploit per mechanism, one row per defense.  This module
turns the generated corpus of :mod:`repro.security.attackgen` into the
quantitative analogue: for every (RSE module configuration, attack
class) cell it runs a seeded campaign of randomized attack variants and
reports how the cell's runs split across the attack outcomes, with a
Wilson score interval on the *stopped* rate (the fraction of variants
the configuration detected, crashed, or foiled — i.e. did not let
hijack).

Every cell of one matrix shares the same campaign seed, and variant
seeds are drawn independently of the module configuration, so each row
of the matrix faces the **same corpus** — columns are comparable the way
the paper's table rows are.  The whole matrix is reproducible
byte-for-byte from ``(classes, configs, variants, seed)``.
"""

import os

from repro.analysis.stats import wilson_interval
from repro.campaign.runner import CampaignSpec, run_campaign
from repro.security.attackgen import ATTACK_CLASSES, parse_config

#: Schema tag on the JSON document (bump on shape changes).
SCHEMA = "repro.security.coverage/1"

#: Default matrix axes: every attack class against the paper-relevant
#: module configurations (``trr`` rides the loader, not the RSE).
DEFAULT_CONFIGS = ("none", "trr", "icm", "mlr", "cfc", "mlr+icm")

#: Attack outcomes in display order.
_OUTCOMES = ("hijacked", "crashed", "foiled", "detected", "unclassified")


def attack_cell(attack_class, config, variants, seed, max_cycles=300_000,
                options=None):
    """Run one matrix cell as a campaign; returns the folded cell dict."""
    spec = CampaignSpec(
        source="attack:%s" % attack_class,          # fingerprint tag only
        model="attack",
        model_options={"attack_class": attack_class, "config": config},
        injections=variants, seed=seed, max_cycles=max_cycles)
    if options is not None and options.store:
        # One matrix = many campaigns: ``store`` names a directory and
        # each cell keeps its own resumable store inside it.
        os.makedirs(options.store, exist_ok=True)
        cell_store = os.path.join(options.store, "%s--%s.jsonl"
                                  % (attack_class, config.replace("+", "_")))
        options = options.replace(store=cell_store)
    run = run_campaign(spec, options=options)
    counts = {outcome: 0 for outcome in _OUTCOMES}
    detections = 0
    for record in run.records:
        attack = record["attack"]
        counts[attack["outcome"]] += 1
        detections += attack["detections"]
    stopped = variants - counts["hijacked"] - counts["unclassified"]
    low, high = wilson_interval(stopped, variants)
    return {"class": attack_class, "config": config,
            "variants": variants, "outcomes": counts,
            "detections": detections,
            "stopped": stopped,
            "stopped_rate": stopped / variants if variants else 0.0,
            "stopped_ci": [low, high],
            "fingerprint": spec.fingerprint()}


def attack_matrix(classes=ATTACK_CLASSES, configs=DEFAULT_CONFIGS,
                  variants=40, seed=2004, max_cycles=300_000,
                  options=None, progress=None):
    """The full module × attack-class coverage matrix.

    Args:
        classes: attack classes (matrix columns).
        configs: module configurations (matrix rows).
        variants: corpus size per cell.
        seed: campaign seed shared by every cell — what makes rows face
            an identical corpus.
        options: optional :class:`~repro.campaign.options.ExecutionOptions`
            forwarded to every cell's campaign (sharding, workers, store).
        progress: optional ``callback(done_cells, total_cells)``.
    """
    classes = tuple(classes)
    configs = tuple(configs)
    for config in configs:
        parse_config(config)          # fail fast on a bad axis
    cells = []
    total = len(classes) * len(configs)
    for config in configs:
        for attack_class in classes:
            cells.append(attack_cell(attack_class, config, variants, seed,
                                     max_cycles=max_cycles, options=options))
            if progress is not None:
                progress(len(cells), total)
    return {"schema": SCHEMA,
            "classes": list(classes), "configs": list(configs),
            "variants": variants, "seed": seed, "max_cycles": max_cycles,
            "cells": cells}


def _cell_label(cell):
    outcomes = cell["outcomes"]
    dominant = max(_OUTCOMES, key=lambda o: outcomes[o])
    low, high = cell["stopped_ci"]
    return "%-9s %3d%% [%.2f,%.2f]" % (dominant, int(
        round(100 * cell["stopped_rate"])), low, high)


def format_attack_matrix(doc):
    """Human-readable table: rows = configs, columns = attack classes."""
    classes = doc["classes"]
    configs = doc["configs"]
    by_key = {(c["config"], c["class"]): c for c in doc["cells"]}
    width = max(28, max(len(c) for c in classes) + 2)
    lines = ["Attack coverage matrix (%d variants/cell, seed %d)"
             % (doc["variants"], doc["seed"]),
             "stopped = not hijacked; CI = 95% Wilson", ""]
    header = "%-10s" % "config" + "".join("%-*s" % (width, c)
                                          for c in classes)
    lines.append(header)
    lines.append("-" * len(header))
    for config in configs:
        row = "%-10s" % config
        for attack_class in classes:
            row += "%-*s" % (width, _cell_label(by_key[(config,
                                                        attack_class)]))
        lines.append(row)
    return "\n".join(lines)
