"""Attack models: layout-dependent exploits against a vulnerable service.

Both attacks here belong to the class the MLR module targets — "these
attacks ... are based on an attacker's knowledge of the memory layout of
a target application":

* **Stack smashing** (:func:`run_stack_smash`): the service copies an
  attacker-controlled request into a fixed-size stack buffer without a
  bounds check.  The payload carries shellcode and overwrites the saved
  return address with the *absolute* address where the attacker expects
  the buffer to live.  2004-era executable stacks are modelled by
  mapping the stack rwx.
* **GOT hijack** (:func:`run_got_hijack`): a format-string-style
  arbitrary-write bug lets the attacker overwrite a GOT entry at its
  *well-known* address, redirecting the next PLT call to an
  attacker-chosen function.

Under a fixed layout both succeed; under TRR or the MLR module the
hardcoded addresses go stale — the stack smash becomes a crash
("essentially converts a security attack into a program crash") and the
GOT hijack writes to abandoned memory and is foiled outright.
"""

import enum

from repro.isa.encoding import encode
from repro.isa.instructions import SPEC_BY_NAME
from repro.memory.mainmem import PAGE_SHIFT
from repro.program.layout import MemoryLayout
from repro.rse.check import MODULE_MLR
from repro.security.trr import trr_randomize_layout
from repro.system import build_machine
from repro.workloads.asmlib import build_workload_image

#: Value the shellcode / attacker function writes when the hijack works.
PWNED_MARKER = 0x31337

REQUEST_CAPACITY = 256
BUFFER_BYTES = 64
FRAME_BYTES = 96
BUFFER_FRAME_OFFSET = 16
RA_FRAME_OFFSET = 92


class AttackOutcome(enum.Enum):
    HIJACKED = "hijacked"          # attacker code ran
    CRASHED = "crashed"            # attack turned into a fault
    FOILED = "foiled"              # service completed unharmed
    DETECTED = "detected"          # an RSE module flagged the attack
    UNCLASSIFIED = "unclassified"  # none of the above (always a bug)


class AttackResult:
    """Outcome plus the run's forensic details."""

    def __init__(self, outcome, result, machine, asm):
        self.outcome = outcome
        self.result = result
        self.machine = machine
        self.asm = asm

    def __repr__(self):
        return "AttackResult(%s, %s)" % (self.outcome.value,
                                         self.result.reason)


# --------------------------------------------------------- stack smashing

_STACK_SMASH_TEMPLATE = """
.data
request:     .space {request_capacity}
request_len: .word 0
secret_flag: .word 0

.text
main:
{defense_prologue}
    jal handle_request
    halt

handle_request:
    addi $sp, $sp, -{frame}
    sw $ra, {ra_off}($sp)
    # memcpy(request, buffer) with the attacker-controlled length: the bug.
    la $t0, request
    lw $t1, request_len
    addi $t2, $sp, {buf_off}
copy_loop:
    beqz $t1, copy_done
    lb $t3, 0($t0)
    sb $t3, 0($t2)
    addi $t0, $t0, 1
    addi $t2, $t2, 1
    addi $t1, $t1, -1
    j copy_loop
copy_done:
    lw $ra, {ra_off}($sp)
    addi $sp, $sp, {frame}
    jr $ra
"""

#: MLR defense: the guest "loader library" randomizes the stack through
#: the module, maps the fresh region, and moves $sp there before any
#: request handling (Figure 3(A) I0..I3).
_MLR_PROLOGUE = """
    chk MLR, NBLK, OP_ENABLE, 0
    li $a0, HDR_BASE
    li $a1, HDR_SIZE
    chk MLR, BLK, OP_MLR_EXEC_HDR, 0
    chk MLR, BLK, OP_MLR_PI_RAND, 0
    li $t0, HDR_BASE
    lw $t9, 0x104($t0)         # randomized stack segment base
    li $v0, SYS_MMAP
    li $t1, 0x20000
    sub $a0, $t9, $t1
    li $a1, 0x20000
    syscall
    addi $sp, $t9, -64
"""


def _shellcode(flag_addr):
    """Attacker payload: set the marker flag, then halt cleanly."""
    lui = SPEC_BY_NAME["lui"]
    ori = SPEC_BY_NAME["ori"]
    sw = SPEC_BY_NAME["sw"]
    halt = SPEC_BY_NAME["halt"]
    t0, t1 = 8, 9
    words = [
        encode(lui, rt=t0, imm=(flag_addr >> 16) & 0xFFFF),
        encode(ori, rt=t0, rs=t0, imm=flag_addr & 0xFFFF),
        encode(lui, rt=t1, imm=(PWNED_MARKER >> 16) & 0xFFFF),
        encode(ori, rt=t1, rs=t1, imm=PWNED_MARKER & 0xFFFF),
        encode(sw, rt=t1, rs=t0, imm=0),
        encode(halt),
    ]
    return b"".join(word.to_bytes(4, "little") for word in words)


def expected_buffer_address(layout, stack_headroom=64):
    """The attacker's layout knowledge: where the victim's buffer lives.

    Derived from the (assumed fixed) conventional layout exactly the way
    an attacker derives it from a local copy of the binary.
    """
    initial_sp = (layout.stack_top - stack_headroom) & ~0x7
    frame_sp = initial_sp - FRAME_BYTES
    return frame_sp + BUFFER_FRAME_OFFSET


def build_stack_smash_payload(flag_addr, assumed_layout=None):
    """Shellcode + padding + return-address overwrite.

    Raises :class:`ValueError` when the shellcode no longer fits between
    the buffer start and the saved return address — padding would go
    negative and ``bytes * negative == b""`` silently truncates the
    payload into garbage instead of failing loudly.
    """
    assumed_layout = assumed_layout or MemoryLayout()
    buffer_addr = expected_buffer_address(assumed_layout)
    shellcode = _shellcode(flag_addr)
    room = RA_FRAME_OFFSET - BUFFER_FRAME_OFFSET
    if len(shellcode) > room:
        raise ValueError(
            "shellcode is %d bytes but only %d bytes fit between the "
            "buffer (frame+%d) and the saved return address (frame+%d)"
            % (len(shellcode), room, BUFFER_FRAME_OFFSET, RA_FRAME_OFFSET))
    payload = bytearray(shellcode)
    payload.extend(b"\x00" * (room - len(payload)))
    payload.extend(buffer_addr.to_bytes(4, "little"))
    return bytes(payload)


def vulnerable_service_program(layout, defense="none"):
    """Assemble the vulnerable service against *layout*."""
    prologue = _MLR_PROLOGUE if defense == "mlr" else "    # no defense"
    source = _STACK_SMASH_TEMPLATE.format(
        request_capacity=REQUEST_CAPACITY,
        frame=FRAME_BYTES,
        ra_off=RA_FRAME_OFFSET,
        buf_off=BUFFER_FRAME_OFFSET,
        defense_prologue=prologue,
    )
    return build_workload_image(source, layout)


def _make_stack_executable(kernel, layout):
    """Model the 2004-era executable stack the shellcode relies on.

    Two parts, because mapping *order* must not matter:

    * every page of the architectural stack range gets "rwx" outright —
      the old ``if page in kernel.page_perms`` guard silently left any
      not-yet-mapped stack page non-executable, misclassifying a
      working hijack as CRASHED;
    * stack-area pages mapped *after* this call (the MLR prologue's
      ``SYS_MMAP`` of the randomized region) come up executable too,
      via a map-policy wrapper, so the only thing standing between the
      attacker and the shellcode is the defense itself.
    """
    first = layout.stack_base >> PAGE_SHIFT
    last = (layout.stack_top - 1) >> PAGE_SHIFT
    for page in range(first, last + 1):
        kernel.page_perms[page] = "rwx"
    original_map = kernel._map_range

    def map_exec(addr, length, perms):
        original_map(addr, length, "rwx" if perms == "rw" else perms)

    kernel._map_range = map_exec


def _classify(flag, reason, completed, detections=0):
    """Shared, engine-independent outcome classification.

    Priority order: a module detection beats everything (the run was
    stopped *because of* the attack), then evidence the attacker's code
    ran, then a crash, then clean completion.  Anything else —
    typically a blown step budget — is UNCLASSIFIED, which the corpus
    treats as a generator/harness bug, never a legitimate result.
    """
    if detections:
        return AttackOutcome.DETECTED
    if flag == PWNED_MARKER:
        return AttackOutcome.HIJACKED
    if reason in ("fault", "recovery_impossible"):
        return AttackOutcome.CRASHED
    if reason in ("halt", "all_exited"):
        return (AttackOutcome.FOILED if completed
                else AttackOutcome.CRASHED)
    return AttackOutcome.UNCLASSIFIED


def _run_on_funcsim(image, asm, engine, flag_addr, completed_addr,
                    max_steps, exec_stack, setup):
    """Run an attack image on a functional engine via the guest shim."""
    from repro.security import guestos

    run = guestos.run_image(image, engine, max_steps=max_steps,
                            exec_stack=exec_stack, setup=setup)
    flag = run.sim.memory.load_word(flag_addr)
    completed = (run.sim.memory.load_word(completed_addr)
                 if completed_addr is not None else 1)
    outcome = _classify(flag, run.reason, completed)
    return AttackResult(outcome, run, None, asm)


def run_stack_smash(defense="none", seed=1234, max_cycles=3_000_000,
                    engine="pipeline"):
    """Run the stack-smashing attack under a defense; returns the result.

    defenses: ``"none"`` (fixed layout), ``"trr"`` (software layout
    randomization at load), ``"mlr"`` (hardware module randomization).
    engines: ``"pipeline"`` (kernel + detailed model, the default) or
    any of the functional engines (``interp`` / ``predecode`` /
    ``jit``) through :mod:`repro.security.guestos` — the outcome is a
    property of the program and must not depend on this choice.
    """
    assumed = MemoryLayout()          # what the attacker believes
    if defense == "trr":
        layout = trr_randomize_layout(assumed, seed=seed)
    else:
        layout = MemoryLayout()
    with_mlr = defense == "mlr"
    image, asm = vulnerable_service_program(layout, defense=defense)
    flag_addr = asm.symbols["secret_flag"]
    payload = build_stack_smash_payload(flag_addr, assumed_layout=assumed)

    def plant(memory, guest=None):
        memory.store_bytes(asm.symbols["request"], payload)
        memory.store_word(asm.symbols["request_len"], len(payload))

    if engine != "pipeline":
        return _run_on_funcsim(image, asm, engine, flag_addr, None,
                               max_cycles, True, plant)

    machine = build_machine(with_rse=with_mlr,
                            modules=("mlr",) if with_mlr else ())
    machine.kernel.load_process(image)
    _make_stack_executable(machine.kernel, layout)
    plant(machine.memory)

    result = machine.kernel.run(max_cycles=max_cycles)
    flag = machine.memory.load_word(flag_addr)
    outcome = _classify(flag, result.reason, 1)
    return AttackResult(outcome, result, machine, asm)


# ------------------------------------------------------------- GOT hijack

_GOT_HIJACK_TEMPLATE = """
.data
got:
    .word log_fn               # GOT entry 0: the logging function
got_new:
    .space 4
write_addr:  .word 0           # the format-string bug's target address
write_value: .word 0           # ... and value
secret_flag: .word 0
log_done:    .word 0

.text
plt0:
    lui $at, hi(got)
    ori $at, $at, lo(got)
    lw  $at, 0($at)
    jr  $at

main:
{defense_prologue}
    # --- the arbitrary-write bug (format-string analogue) ----------------
    lw $t0, write_addr
    beqz $t0, no_write
    lw $t1, write_value
    sw $t1, 0($t0)
no_write:
    # --- normal service work: call the logger through the PLT ------------
    jal plt0
    halt

log_fn:
    la $t0, log_done
    li $t1, 1
    sw $t1, 0($t0)
    jr $ra

attacker_fn:
    la $t0, secret_flag
    li $t1, {marker}
    sw $t1, 0($t0)
    jr $ra
"""

_MLR_GOT_PROLOGUE = """
    chk MLR, NBLK, OP_ENABLE, 0
    la  $a0, got
    li  $a1, 4
    chk MLR, BLK, OP_MLR_GOT_OLD, 0
    la  $a0, got_new
    li  $a1, 0
    chk MLR, BLK, OP_MLR_GOT_NEW, 0
    chk MLR, BLK, OP_MLR_COPY_GOT, 0
    la  $a0, plt0
    li  $a1, 16
    chk MLR, BLK, OP_MLR_PLT_INFO, 0
    li  $v0, SYS_MPROTECT
    la  $a0, plt0
    li  $a1, 16
    li  $a2, 7
    syscall
    chk MLR, BLK, OP_MLR_WRITE_PLT, 0
    li  $v0, SYS_MPROTECT
    la  $a0, plt0
    li  $a1, 16
    li  $a2, 5
    syscall
"""


def run_got_hijack(defense="none", max_cycles=3_000_000, engine="pipeline"):
    """GOT-overwrite attack; *defense* is ``"none"`` or ``"mlr"``.

    *engine* selects the execution engine exactly as in
    :func:`run_stack_smash`.
    """
    layout = MemoryLayout()
    with_mlr = defense == "mlr"
    prologue = _MLR_GOT_PROLOGUE if with_mlr else "    # no defense"
    source = _GOT_HIJACK_TEMPLATE.format(defense_prologue=prologue,
                                         marker=PWNED_MARKER)
    image, asm = build_workload_image(source, layout)
    flag_addr = asm.symbols["secret_flag"]
    done_addr = asm.symbols["log_done"]

    def plant(memory, guest=None):
        # The attacker overwrites the *well-known* (static) GOT slot
        # with the address of attacker_fn.
        memory.store_word(asm.symbols["write_addr"], asm.symbols["got"])
        memory.store_word(asm.symbols["write_value"],
                          asm.symbols["attacker_fn"])

    if engine != "pipeline":
        return _run_on_funcsim(image, asm, engine, flag_addr, done_addr,
                               max_cycles, False, plant)

    machine = build_machine(with_rse=with_mlr,
                            modules=("mlr",) if with_mlr else ())
    machine.kernel.load_process(image)
    plant(machine.memory)

    result = machine.kernel.run(max_cycles=max_cycles)
    flag = machine.memory.load_word(flag_addr)
    logged = machine.memory.load_word(done_addr)
    outcome = _classify(flag, result.reason, logged)
    return AttackResult(outcome, result, machine, asm)
