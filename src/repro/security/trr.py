"""Transparent Runtime Randomization (TRR) — the software baseline.

TRR (the authors' SRDS 2003 system, [30] in the paper) randomizes a
process' memory layout entirely in software at load time.  Two forms
exist in this reproduction:

* the **host-side loader path** here: the layout is randomized before
  the image is built/loaded — what the TRR-modified loader does to an
  ordinary process (used by the attack experiments);
* the **guest instruction path** in
  :func:`repro.workloads.gotplt.software_version`: the measured
  loop-based GOT copy / PLT rewrite of Table 5.
"""

import random

from repro.program.layout import MemoryLayout


def trr_randomize_layout(layout=None, seed=None, rng=None,
                         max_offset_pages=2048):
    """Return a TRR-randomized copy of *layout*.

    Page-granularity random offsets are applied to the
    position-independent regions (stack, heap, shared libraries), which
    is precisely the protection that defeats fixed-address stack
    attacks.  Pass *seed* (or an ``rng``) for deterministic tests.
    """
    layout = layout or MemoryLayout()
    if rng is None:
        rng = random.Random(seed)
    return layout.randomize(rng, max_offset_pages=max_offset_pages)
