"""Fault injection: instruction bit flips (ICM coverage campaigns).

Compatibility shim: the original serial loop here re-assembled the
workload and rebuilt the machine for every injection.  The campaign
engine (:mod:`repro.campaign`) now does the heavy lifting — one assembly
per campaign, optional worker pools, resumable stores — and this module
keeps the historical API (:func:`run_bitflip_campaign`,
:class:`CampaignResult`, :class:`BitFlipOutcome`) on top of it.
"""

import enum

from repro.campaign.models import Outcome
from repro.campaign.options import ExecutionOptions
from repro.campaign.runner import (CampaignContext, CampaignSpec,
                                   run_campaign)


class BitFlipOutcome(enum.Enum):
    DETECTED = "detected"            # ICM CHECK_ERROR before any damage
    FAULTED = "faulted"              # architectural fault surfaced instead
    CORRUPTED = "corrupted"          # ran to completion with wrong results
    BENIGN = "benign"                # ran to completion, results intact
    HUNG = "hung"                    # exceeded the cycle budget


_FROM_ENGINE = {
    Outcome.DETECTED: BitFlipOutcome.DETECTED,
    Outcome.FAULTED: BitFlipOutcome.FAULTED,
    Outcome.CORRUPTED: BitFlipOutcome.CORRUPTED,
    Outcome.BENIGN: BitFlipOutcome.BENIGN,
    Outcome.HUNG: BitFlipOutcome.HUNG,
    Outcome.CRASHED: BitFlipOutcome.FAULTED,
}


class CampaignResult:
    """Aggregate outcome counts plus per-injection records."""

    def __init__(self):
        self.runs = []          # (pc, bits, BitFlipOutcome)

    def count(self, outcome):
        return sum(1 for __, __, got in self.runs if got is outcome)

    def summary(self):
        return {outcome.value: self.count(outcome)
                for outcome in BitFlipOutcome}

    @property
    def detection_rate(self):
        detected = self.count(BitFlipOutcome.DETECTED)
        return detected / len(self.runs) if self.runs else 0.0

    def __repr__(self):
        return "CampaignResult(%s)" % self.summary()


def golden_state(source, result_regs, max_cycles):
    """Fault-free reference run; returns the golden register values."""
    spec = CampaignSpec(source=source, result_regs=tuple(result_regs),
                        max_cycles=max_cycles, injections=0)
    return CampaignContext(spec).golden_regs


def run_bitflip_campaign(source, injections=50, bits_per_injection=1,
                         with_icm=True, result_regs=(16,), seed=99,
                         max_cycles=500_000, workers=1):
    """Inject *injections* random bit-flips into checked instructions.

    Each injection runs on a fresh machine (the workload is assembled
    only once).  With *with_icm* False the campaign measures the
    unprotected baseline (faults / silent corruptions); *workers* > 1
    fans the runs out over a process pool.  Returns a
    :class:`CampaignResult`.
    """
    spec = CampaignSpec(source=source, model="instr-flip",
                        model_options={"bits": bits_per_injection},
                        protected=with_icm, injections=injections,
                        seed=seed, max_cycles=max_cycles,
                        result_regs=tuple(result_regs))
    run = run_campaign(spec, options=ExecutionOptions(workers=workers))
    result = CampaignResult()
    for record in run.records:
        result.runs.append((record["params"]["pc"],
                            tuple(record["params"]["bits"]),
                            _FROM_ENGINE[Outcome(record["outcome"])]))
    return result
