"""Fault injection: instruction bit flips (ICM coverage campaigns).

The ICM "provides coverage for the multiple bit errors in instruction
while it is being transferred from memory to the dispatch stage"
(Section 4.3).  A campaign flips 1..k bits of a checked instruction in
instruction memory *after* the CheckerMemory was provisioned — modelling
corruption anywhere on the memory -> cache -> fetch path — and
classifies what the machine does.
"""

import enum
import random

from repro.isa.assembler import assemble
from repro.isa.encoding import flip_bit
from repro.pipeline.core import EventKind
from repro.rse.check import MODULE_ICM
from repro.rse.modules.icm import build_checker_memory, make_icm_injector
from repro.system import build_machine


class BitFlipOutcome(enum.Enum):
    DETECTED = "detected"            # ICM CHECK_ERROR before any damage
    FAULTED = "faulted"              # architectural fault surfaced instead
    CORRUPTED = "corrupted"          # ran to completion with wrong results
    BENIGN = "benign"                # ran to completion, results intact
    HUNG = "hung"                    # exceeded the cycle budget


class CampaignResult:
    """Aggregate outcome counts plus per-injection records."""

    def __init__(self):
        self.runs = []          # (pc, bits, BitFlipOutcome)

    def count(self, outcome):
        return sum(1 for __, __, got in self.runs if got is outcome)

    def summary(self):
        return {outcome.value: self.count(outcome)
                for outcome in BitFlipOutcome}

    @property
    def detection_rate(self):
        detected = self.count(BitFlipOutcome.DETECTED)
        return detected / len(self.runs) if self.runs else 0.0

    def __repr__(self):
        return "CampaignResult(%s)" % self.summary()


def _fresh_machine(source, with_icm):
    modules = ("icm",) if with_icm else ()
    machine = build_machine(with_rse=with_icm, modules=modules)
    asm = assemble(source)
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.memory.store_bytes(asm.data_base, asm.data)
    checker_map = {}
    if with_icm:
        icm = machine.module(MODULE_ICM)
        checker_map = build_checker_memory(machine.memory, asm.text_base,
                                           len(asm.text))
        icm.configure(checker_map)
        machine.rse.enable_module(MODULE_ICM)
        machine.pipeline.check_injector = make_icm_injector(checker_map)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.regs[29] = 0x7FFF0000
    return machine, asm, checker_map


def golden_state(source, result_regs, max_cycles):
    """Fault-free reference run; returns the golden register values."""
    machine, __, __ = _fresh_machine(source, with_icm=False)
    event = machine.pipeline.run(max_cycles=max_cycles)
    if event.kind is not EventKind.HALT:
        raise RuntimeError("golden run did not halt: %r" % event)
    return {reg: machine.pipeline.regs[reg] for reg in result_regs}


def run_bitflip_campaign(source, injections=50, bits_per_injection=1,
                         with_icm=True, result_regs=(16,), seed=99,
                         max_cycles=500_000):
    """Inject *injections* random bit-flips into checked instructions.

    Each injection runs on a fresh machine.  With *with_icm* False the
    campaign measures the unprotected baseline (faults / silent
    corruptions).  Returns a :class:`CampaignResult`.
    """
    rng = random.Random(seed)
    golden = golden_state(source, result_regs, max_cycles)
    # Enumerate targets once (checked pcs from a scratch machine).
    __, __, checker_map = _fresh_machine(source, with_icm=True)
    targets = sorted(checker_map)
    if not targets:
        raise ValueError("workload has no checked instructions")

    campaign = CampaignResult()
    for __ in range(injections):
        pc = rng.choice(targets)
        bits = rng.sample(range(32), bits_per_injection)
        machine, asm, __ = _fresh_machine(source, with_icm=with_icm)
        word = machine.memory.load_word(pc)
        for bit in bits:
            word = flip_bit(word, bit)
        machine.memory.store_word(pc, word)
        event = machine.pipeline.run(max_cycles=max_cycles)
        if event.kind is EventKind.CHECK_ERROR:
            outcome = BitFlipOutcome.DETECTED
        elif event.kind is EventKind.FAULT:
            outcome = BitFlipOutcome.FAULTED
        elif event.kind is EventKind.MAX_CYCLES:
            outcome = BitFlipOutcome.HUNG
        elif all(machine.pipeline.regs[reg] == value
                 for reg, value in golden.items()):
            outcome = BitFlipOutcome.BENIGN
        else:
            outcome = BitFlipOutcome.CORRUPTED
        campaign.runs.append((pc, tuple(bits), outcome))
    return campaign
