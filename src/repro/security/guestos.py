"""Engine-independent guest runtime for the attack programs.

The attack outcomes (:mod:`repro.security.attacks`,
:mod:`repro.security.attackgen`) are read from architectural state —
a marker flag, a fault, a completion word — so they should be a
property of the *program*, not of the engine that ran it.  The pipeline
path gets its OS surface from :class:`repro.kernel.Kernel`; this module
provides the same surface over the functional simulator so the
identical process image classifies identically on the interp,
predecode and jit engines:

* the page-permission model the loader produces, enforced on
  instruction fetch through FuncSim's ``fetch_check`` hook (the kernel
  enforces it through ``pipeline.mem_check``) — without it a hijacked
  return into unmapped memory nop-slides through zero-filled pages to
  the step budget instead of faulting like the pipeline does;
* the few syscalls the attack programs use (exit/mmap/mprotect/sbrk/
  cycle/output), with the same :func:`~repro.kernel.syscalls
  .perm_string` mprotect semantics;
* a functional model of the MLR module's CHECK operations, mirroring
  :class:`repro.rse.modules.mlr.MLR` synchronously: same header parse,
  same entropy derivation (instruction count standing in for the cycle
  counter — the offsets differ across engines, the *outcomes* cannot),
  same GOT copy and PLT rewrite through the shared
  :mod:`repro.program.image` helpers.

Deliberately not modelled: threads (the malicious-thread attack classes
are pipeline-only) and data-access permissions (no attack program here
reads or writes a page the kernel would refuse; fetch rights are what
the classification hinges on).
"""

from repro.funcsim import FuncSim, StepResult
from repro.kernel.syscalls import (
    SYS_CYCLE,
    SYS_EXIT,
    SYS_GETTID,
    SYS_MMAP,
    SYS_MPROTECT,
    SYS_PRINT_INT,
    SYS_PUTC,
    SYS_RAND,
    SYS_SBRK,
    SYS_SLEEP,
    SYS_YIELD,
    perm_string,
)
from repro.memory.mainmem import PAGE_SHIFT, PAGE_SIZE, MainMemory, MemoryFault
from repro.program.image import (
    ExecutableHeader,
    PLT_ENTRY_BYTES,
    plt_entry_target,
    rewrite_plt_entry,
)
from repro.program.layout import MLR_RESULT_SHLIB
from repro.program.loader import Loader
from repro.rse.check import (
    MODULE_MLR,
    OP_DISABLE,
    OP_ENABLE,
    OP_MLR_COPY_GOT,
    OP_MLR_EXEC_HDR,
    OP_MLR_GOT_NEW,
    OP_MLR_GOT_OLD,
    OP_MLR_PI_RAND,
    OP_MLR_PLT_INFO,
    OP_MLR_WRITE_PLT,
)
from repro.rse.modules.mlr import cycle_counter_entropy

MASK32 = 0xFFFFFFFF

#: Engines :func:`run_image` accepts (the kernel covers "pipeline").
FUNCSIM_ENGINES = ("interp", "predecode", "jit")


class GuestRun:
    """How a guest program stopped on a functional engine.

    ``reason`` uses the kernel's :class:`~repro.kernel.kernel.RunResult`
    vocabulary ("halt" / "fault" / "max_cycles") so attack classifiers
    can share one code path across engines.
    """

    __slots__ = ("reason", "sim", "guest", "fault")

    def __init__(self, reason, sim, guest):
        self.reason = reason
        self.sim = sim
        self.guest = guest
        self.fault = sim.fault

    def __repr__(self):
        return "GuestRun(%s)" % self.reason


class GuestOS:
    """Functional-kernel shim: perms, syscalls, and a synchronous MLR."""

    def __init__(self, image, memory, exec_stack=False,
                 entropy_source=cycle_counter_entropy):
        self.loaded = Loader(memory).load(image)
        self.memory = memory
        self.page_perms = dict(self.loaded.page_perms)
        self.brk = image.layout.heap_base + PAGE_SIZE
        # 2004-era executable stack: the loaded stack range is rwx and —
        # unlike the harness bug fixed in this module's sibling — later
        # stack-area mappings (the MLR prologue's mmap of the randomized
        # region) come up rwx too, regardless of mapping order.
        self.exec_stack = exec_stack
        if exec_stack:
            layout = image.layout
            first = layout.stack_base >> PAGE_SHIFT
            last = (layout.stack_top - 1) >> PAGE_SHIFT
            for page in range(first, last + 1):
                self.page_perms[page] = "rwx"
        self.entropy_source = entropy_source
        self.output = []
        self.mlr_enabled = False
        # Latched MLR CHECK parameters (Figure 3(B) registers).
        self.hdr_addr = 0
        self.hdr_size = 0
        self.got_old = 0
        self.got_size = 0
        self.got_new = 0
        self.plt_addr = 0
        self.plt_size = 0
        self.randomized = {}

    # -------------------------------------------------------------- perms

    def map_range(self, addr, length, perms):
        if length <= 0:
            return
        if self.exec_stack and perms == "rw":
            perms = "rwx"
        first = addr >> PAGE_SHIFT
        last = (addr + length - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            self.page_perms[page] = perms

    def fetch_check(self, pc):
        """FuncSim ``fetch_check`` hook: fetch rights for *pc*."""
        perms = self.page_perms.get(pc >> PAGE_SHIFT)
        if perms is None:
            return "fetch from unmapped address 0x%08x" % pc
        if "x" not in perms:
            return "fetch violates %s page at 0x%08x" % (perms, pc)
        return None

    # ------------------------------------------------------------ syscalls

    def syscall(self, sim):
        """FuncSim syscall handler covering the attack programs' needs."""
        regs = sim.regs
        number = regs[2]
        a0, a1, a2 = regs[4], regs[5], regs[6]
        if number == SYS_EXIT:
            sim.halted = True
        elif number == SYS_MMAP:
            self.map_range(a0, a1, "rw")
        elif number == SYS_MPROTECT:
            self.map_range(a0, a1, perm_string(a2))
        elif number == SYS_SBRK:
            old = self.brk
            self.map_range(old, max(a0, 0), "rw")
            self.brk = (old + a0 + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
            regs[2] = old
        elif number == SYS_CYCLE:
            regs[2] = sim.instret & MASK32
        elif number == SYS_GETTID:
            regs[2] = 0
        elif number == SYS_PRINT_INT:
            self.output.append(("int", a0))
        elif number == SYS_PUTC:
            self.output.append(("char", chr(a0 & 0xFF)))
        elif number in (SYS_YIELD, SYS_SLEEP, SYS_RAND):
            # Single-threaded shim: yielding/sleeping is a no-op, and
            # nothing here consumes randomness.
            regs[2] = 0
        else:
            raise MemoryFault(sim.pc, "unsupported syscall %d in guest "
                                      "shim" % number)
        return True

    # ----------------------------------------------------------- MLR model

    def chk(self, sim, instr):
        """FuncSim chk handler: the MLR operations, synchronously."""
        if instr.module != MODULE_MLR:
            return
        op = instr.op
        if op == OP_ENABLE:
            self.mlr_enabled = True
            return
        if op == OP_DISABLE:
            self.mlr_enabled = False
            return
        if not self.mlr_enabled:
            return
        a0, a1 = sim.regs[4], sim.regs[5]
        if op == OP_MLR_EXEC_HDR:
            self.hdr_addr, self.hdr_size = a0, a1
        elif op == OP_MLR_GOT_OLD:
            self.got_old, self.got_size = a0, a1
        elif op == OP_MLR_GOT_NEW:
            self.got_new = a0
        elif op == OP_MLR_PLT_INFO:
            self.plt_addr, self.plt_size = a0, a1
        elif op == OP_MLR_PI_RAND:
            self._pi_randomize(sim)
        elif op == OP_MLR_COPY_GOT:
            data = self.memory.load_bytes(self.got_old, self.got_size)
            self.memory.store_bytes(self.got_new, data)
        elif op == OP_MLR_WRITE_PLT:
            self._write_plt()

    def _pi_randomize(self, sim):
        header = ExecutableHeader.unpack(
            self.memory.load_bytes(self.hdr_addr, self.hdr_size or 64))
        now = sim.instret          # the shim's monotonic "cycle counter"
        entropy = self.entropy_source
        shlib = (header.shlib_base + entropy(now)) & MASK32
        heap = (header.heap_base + entropy(now + 1)) & MASK32
        stack = (header.stack_base - entropy(now + 2)) & MASK32
        self.randomized = {"shlib": shlib, "stack": stack, "heap": heap}
        self.memory.store_bytes(
            self.hdr_addr + MLR_RESULT_SHLIB,
            shlib.to_bytes(4, "little") + stack.to_bytes(4, "little")
            + heap.to_bytes(4, "little"))

    def _write_plt(self):
        data = self.memory.load_bytes(self.plt_addr, self.plt_size)
        delta = (self.got_new - self.got_old) & MASK32
        rewritten = bytearray(data)
        for index in range(len(data) // PLT_ENTRY_BYTES):
            offset = index * PLT_ENTRY_BYTES
            words = [int.from_bytes(data[offset + i * 4:offset + i * 4 + 4],
                                    "little") for i in range(4)]
            try:
                target = plt_entry_target(words)
            except ValueError:
                continue
            for i, word in enumerate(rewrite_plt_entry(
                    words, (target + delta) & MASK32)):
                rewritten[offset + i * 4:offset + i * 4 + 4] = \
                    word.to_bytes(4, "little")
        self.memory.store_bytes(self.plt_addr, bytes(rewritten))


def run_image(image, engine, max_steps=1_000_000, exec_stack=False,
              entropy_source=cycle_counter_entropy, setup=None):
    """Load *image* and run it on a functional *engine*.

    *setup*, if given, is called as ``setup(memory, guest)`` after the
    load and before the first step — the slot where attack harnesses
    plant their request payloads, mirroring the host-side pokes the
    kernel path does between ``load_process`` and ``run``.

    Returns a :class:`GuestRun` whose ``reason`` matches the kernel's
    stop vocabulary, plus the simulator and shim for forensic reads.
    """
    if engine not in FUNCSIM_ENGINES:
        raise ValueError("unknown functional engine %r (have: %s)"
                         % (engine, ", ".join(FUNCSIM_ENGINES)))
    memory = MainMemory()
    guest = GuestOS(image, memory, exec_stack=exec_stack,
                    entropy_source=entropy_source)
    loaded = guest.loaded
    if setup is not None:
        setup(memory, guest)
    sim = FuncSim(memory, entry=loaded.entry, sp=loaded.initial_sp,
                  gp=loaded.initial_gp, syscall_handler=guest.syscall,
                  chk_handler=guest.chk,
                  predecode_enabled=(engine != "interp"),
                  jit_enabled=(engine == "jit"))
    sim.fetch_check = guest.fetch_check
    result = sim.run(max_steps)
    if result is StepResult.HALTED:
        reason = "halt"
    elif result is StepResult.FAULT:
        reason = "fault"
    else:          # OK (budget exhausted) or an unhandled SYSCALL stop
        reason = "max_cycles"
    return GuestRun(reason, sim, guest)
