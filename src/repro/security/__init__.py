"""Security substrate: attack models, fault injection, the TRR baseline.

The MLR module's security argument (Section 4.1) is that the attacks
responsible for ~60% of CERT advisories "are based on an attacker's
knowledge of the memory layout of a target application".  This package
provides that attacker:

* :mod:`repro.security.attacks` — a vulnerable guest service plus
  stack-smashing and GOT-hijack exploit builders that assume a fixed
  layout;
* :mod:`repro.security.trr`     — the host-side Transparent Runtime
  Randomization baseline (the authors' earlier software system);
* :mod:`repro.security.faults`  — instruction bit-flip injection
  campaigns for the ICM, and module fault modes for the self-checking
  experiments;
* :mod:`repro.security.guestos` — the minimal guest runtime that runs
  security workloads on the functional engines with the same fetch
  protection and CHECK semantics as the kernel/pipeline path;
* :mod:`repro.security.attackgen` — the seeded generative attack
  corpus (randomized stack smashes, GOT hijacks, self-modifying
  payloads, malicious threads, TOCTOU races) and its campaign model;
* :mod:`repro.security.coverage` — the module × attack-class
  detection-coverage matrix with Wilson confidence intervals.
"""

from repro.security.trr import trr_randomize_layout
from repro.security.attacks import (
    AttackOutcome,
    build_stack_smash_payload,
    vulnerable_service_program,
    run_stack_smash,
    run_got_hijack,
)
from repro.security.rerandomize import (
    register_pointer_table,
    rerandomize_heap,
)
from repro.security.faults import (
    BitFlipOutcome,
    run_bitflip_campaign,
)
from repro.security.attackgen import (
    ATTACK_CLASSES,
    AttackCorpus,
    generate_variant,
    run_variant,
)
from repro.security.coverage import (
    attack_matrix,
    format_attack_matrix,
)

__all__ = [
    "trr_randomize_layout",
    "AttackOutcome",
    "build_stack_smash_payload",
    "vulnerable_service_program",
    "run_stack_smash",
    "run_got_hijack",
    "register_pointer_table",
    "rerandomize_heap",
    "BitFlipOutcome",
    "run_bitflip_campaign",
    "ATTACK_CLASSES",
    "AttackCorpus",
    "generate_variant",
    "run_variant",
    "attack_matrix",
    "format_attack_matrix",
]
