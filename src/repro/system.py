"""One-call assembly of a complete simulated machine.

:class:`Machine` wires together main memory, the cache hierarchy, the
out-of-order pipeline, optionally the RSE with any subset of its modules,
and the kernel — the configuration Figure 1 draws.  Examples, tests and
benchmarks build machines through :func:`build_machine`.
"""

from repro.assertions.hub import AssertionHub
from repro.kernel.kernel import Kernel, KernelConfig
from repro.memory.bus import BASELINE_TIMING, FRAMEWORK_TIMING
from repro.obs import Observability
from repro.memory.hierarchy import MemoryHierarchy, default_cache_configs
from repro.memory.mainmem import MainMemory
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import Pipeline
from repro.recovery.recovery import RecoveryManager
from repro.rse.check import MODULE_DDT
from repro.rse.engine import RSE
from repro.rse.modules.ahbm import AHBM
from repro.rse.modules.cfc import CFC
from repro.rse.modules.ddt import DDT
from repro.rse.modules.icm import ICM
from repro.rse.modules.mlr import MLR


class Machine:
    """A fully wired simulated system."""

    def __init__(self, memory, hierarchy, pipeline, rse, kernel):
        self.memory = memory
        self.hierarchy = hierarchy
        self.pipeline = pipeline
        self.rse = rse
        self.kernel = kernel
        # The telemetry hub: every component registers its snapshot()
        # provider here, in document order.  "rse" is always present in
        # the document (None for bare machines) so the schema is stable.
        self.obs = Observability(self)
        self.obs.register("pipeline", pipeline.snapshot)
        self.obs.register("memory", hierarchy.snapshot)
        self.obs.register("rse", rse.snapshot if rse is not None else None)
        self.obs.register("kernel", kernel.snapshot)
        # The assertion hub: the standing invariant suite, opt-in like
        # obs probes ("assertions" is always a document section so the
        # schema is stable whether or not monitoring ever ran).
        self.assertions = AssertionHub(self)
        self.obs.register("assertions", self.assertions.snapshot)
        kernel.snapshot_provider = self.snapshot

    # Convenience accessors -------------------------------------------------

    @property
    def cycle(self):
        return self.pipeline.cycle

    def snapshot(self):
        """One schema-stable nested document covering every component.

        Top-level keys: ``schema``, ``cycle``, ``pipeline``, ``memory``,
        ``rse`` (None without the framework), ``kernel``,
        ``assertions``, ``obs``.
        """
        return self.obs.document()

    def reset_stats(self):
        """Zero every component's counters (warm-up / steady-state cuts).

        Architectural state — registers, memory, caches' residency, RSE
        tables, threads — is untouched; only reporting counters reset.
        """
        self.pipeline.reset_stats()
        self.hierarchy.reset_stats()
        if self.rse is not None:
            self.rse.reset_stats()
        self.kernel.reset_stats()
        self.obs.reset()

    def module(self, module_id):
        return self.rse.modules[module_id] if self.rse else None

    def checkpoint(self):
        """Snapshot the whole machine (see :mod:`repro.checkpoint`)."""
        from repro.checkpoint import capture
        return capture(self)

    def restore(self, checkpoint):
        """Rewind this machine to *checkpoint*; reusable, returns self."""
        from repro.checkpoint import restore
        return restore(self, checkpoint)

    def enable_ddt_recovery(self):
        """Attach the recovery manager (requires an attached DDT module)."""
        ddt = self.rse.modules[MODULE_DDT]
        self.kernel.recovery = RecoveryManager(self.kernel, ddt)
        return self.kernel.recovery

    def run_program(self, image, max_cycles=50_000_000):
        """Load *image* as a process and run it to completion."""
        self.kernel.load_process(image)
        return self.kernel.run(max_cycles=max_cycles)


def build_machine(with_rse=False, modules=(), pipeline_config=None,
                  kernel_config=None, cache_configs=None, bus_timing=None):
    """Construct a :class:`Machine`.

    Args:
        with_rse: attach the RSE framework.  This alone switches the
            memory bus from the baseline 18/2 timing to the 19/3 timing
            (the arbiter the framework inserts on the memory path) —
            the paper's "framework overhead" configuration.
        modules: iterable of module names to attach and leave *disabled*
            (the application enables them via CHECK or the kernel API):
            any of ``"icm"``, ``"mlr"``, ``"ddt"``, ``"ahbm"``.
        bus_timing: explicit override of the bus timing (ablations).
    """
    memory = MainMemory()
    if bus_timing is None:
        bus_timing = FRAMEWORK_TIMING if with_rse else BASELINE_TIMING
    hierarchy = MemoryHierarchy(bus_timing,
                                cache_configs or default_cache_configs())
    rse = None
    if with_rse:
        config = pipeline_config or PipelineConfig()
        rse = RSE(memory, hierarchy, rob_entries=config.rob_entries)
        factory = {"icm": ICM, "mlr": MLR, "ddt": DDT, "ahbm": AHBM,
                   "cfc": CFC}
        for name in modules:
            rse.attach(factory[name]())
    elif modules:
        raise ValueError("modules require with_rse=True")
    pipeline = Pipeline(memory, hierarchy, config=pipeline_config, rse=rse)
    kernel = Kernel(pipeline, memory, rse=rse,
                    config=kernel_config or KernelConfig())
    return Machine(memory, hierarchy, pipeline, rse, kernel)
