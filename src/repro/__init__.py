"""Reproduction of "An Architectural Framework for Providing Reliability
and Security Support" (Nakka, Xu, Kalbarczyk, Iyer - DSN 2004).

The package builds, from scratch, the paper's full stack:

* a MIPS/DLX-like 32-bit ISA with the ``CHK`` extension and an assembler
  (:mod:`repro.isa`);
* a functional reference simulator (:mod:`repro.funcsim`) and a
  cycle-level out-of-order superscalar pipeline (:mod:`repro.pipeline`)
  over a two-level cache hierarchy (:mod:`repro.memory`);
* a minimal multithreading kernel with SavePage checkpointing
  (:mod:`repro.kernel`) and the DDT-driven recovery algorithm
  (:mod:`repro.recovery`);
* the Reliability and Security Engine itself (:mod:`repro.rse`) with its
  four modules: ICM, MLR, DDT and AHBM;
* the software TRR baseline and attack/fault models
  (:mod:`repro.security`);
* the paper's workloads (:mod:`repro.workloads`) and measurement helpers
  (:mod:`repro.analysis`).

Quickstart::

    from repro.system import build_machine
    machine = build_machine(with_rse=True, modules=("icm",))
"""

__version__ = "1.0.0"

from repro.system import Machine, build_machine

__all__ = ["Machine", "build_machine", "__version__"]
