"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run FILE``
    Assemble and execute an assembly file on the full machine (kernel +
    out-of-order pipeline), printing the exit reason and pipeline/cache
    statistics.  ``--func`` uses the functional simulator instead;
    ``--icm`` attaches the RSE with the ICM checking all control flow.

``experiment {table4,table5,fig9,ablations,attack-matrix}``
    Run an experiment harness and print its paper-style table
    (``--quick`` for the reduced configuration).

``campaign run [FILE]`` / ``campaign serve PATHS``
    Fault-injection campaigns: ``run`` executes (or resumes) one —
    serially, over a worker pool, or sharded with ``--shards``; ``serve``
    tails campaign stores and aggregates live outcome counts and
    Wilson-CI detection matrices (``--watch`` to follow a campaign as
    it runs).  The bare historical spelling ``repro campaign <flags>``
    still means ``campaign run``.

``attack {stack,got,run,matrix}``
    Security harness: ``stack``/``got`` run the hand-written exploit
    demos under a chosen ``--defense`` (on any ``--engine``); ``run``
    generates and executes one seeded attack variant from the corpus
    (:mod:`repro.security.attackgen`); ``matrix`` runs the full module
    × attack-class detection-coverage matrix with Wilson CIs.

``stats FILE``
    Pretty-print (or ``--diff`` two) telemetry files: either a
    ``Machine.snapshot()`` JSON document (``repro run --stats-json``)
    or a campaign JSONL store.

``assertions list``
    Print the portable invariant catalog (:mod:`repro.assertions`);
    ``--assert`` on ``run``, ``difftest`` and ``campaign`` runs the
    same properties live against the chosen engine(s).

``info``
    Print the simulated machine configuration and the Section 3.1
    hardware-cost estimates.

Every data-producing subcommand takes ``--json``; all machine-readable
output is routed through one serializer (:func:`emit_json`).
"""

import argparse
import json
import os
import sys

from repro.analysis.hardware_cost import framework_input_cost, \
    mlr_hardware_cost
from repro.analysis.tables import format_table


# ------------------------------------------------------------- serializer

def jsonable(value):
    """Coerce *value* into plain JSON-compatible data.

    Dicts/lists/tuples recurse; objects expose themselves via
    ``snapshot()`` or their ``__dict__``; anything else falls back to
    ``str``.  This is the single normalization point every ``--json``
    flag routes through.
    """
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    snapshot = getattr(value, "snapshot", None)
    if callable(snapshot):
        return jsonable(snapshot())
    if hasattr(value, "__dict__"):
        return {key: jsonable(item)
                for key, item in vars(value).items()
                if not key.startswith("_")}
    return str(value)


def emit_json(payload, stream=None):
    """The one JSON serializer behind every ``--json`` flag."""
    stream = stream or sys.stdout
    json.dump(jsonable(payload), stream, indent=2, sort_keys=True)
    stream.write("\n")


def flatten_doc(doc, prefix=""):
    """Flatten a nested snapshot document to ordered dotted-key pairs."""
    pairs = []
    for key, value in doc.items():
        path = "%s.%s" % (prefix, key) if prefix else str(key)
        if isinstance(value, dict):
            pairs.extend(flatten_doc(value, path))
        else:
            pairs.append((path, value))
    return pairs


def _cmd_run(args):
    from repro.funcsim import FuncSim
    from repro.memory.mainmem import MainMemory
    from repro.program.layout import MemoryLayout
    from repro.rse.check import MODULE_ICM
    from repro.rse.modules.icm import build_checker_memory, make_icm_injector
    from repro.system import build_machine
    from repro.workloads.asmlib import build_workload_image, std_constants

    with open(args.file) as handle:
        source = handle.read()

    engine = args.engine or ("predecode" if args.func else "pipeline")
    if args.func and engine == "pipeline":
        print("--func contradicts --engine pipeline")
        return 2

    if engine != "pipeline":
        from repro.isa.assembler import assemble

        if args.stats_json:
            print("--stats-json needs the full machine "
                  "(use --engine pipeline)")
            return 2
        asm = assemble(source, constants=std_constants())
        memory = MainMemory()
        memory.store_bytes(asm.text_base, asm.text)
        memory.store_bytes(asm.data_base, asm.data)
        sim = FuncSim(memory, entry=asm.entry, sp=0x7FFF0000,
                      predecode_enabled=(engine != "interp"),
                      jit_enabled=(engine == "jit" and not args.no_jit))
        adapter = None
        if args.with_assertions:
            from repro.assertions import attach_funcsim

            adapter = attach_funcsim(sim)
        result = sim.run(max_steps=args.max_cycles)
        violations = []
        if adapter is not None:
            adapter.detach()          # runs the end-of-run sweeps
            violations = adapter.monitor.violations
        if args.json:
            payload = {"mode": "functional", "engine": engine,
                       "result": result.value,
                       "instret": sim.instret,
                       "fault": ("pc=0x%08x %s" % sim.fault
                                 if sim.fault else None)}
            if sim.trace_cache is not None:
                payload["trace_cache"] = sim.trace_cache.stats()
            if args.with_assertions:
                payload["assertions"] = adapter.monitor.snapshot()
            emit_json(payload)
            return 1 if violations else 0
        print("functional run (%s): %s after %d instructions"
              % (engine, result.value, sim.instret))
        if sim.trace_cache is not None:
            stats = sim.trace_cache.stats()
            print("trace JIT: %d traces live, %d compiled, "
                  "%d invalidated, %d deopt runs"
                  % (stats["traces_live"], stats["compiled"],
                     stats["invalidated"], stats["deopt_runs"]))
        if sim.fault:
            print("fault: pc=0x%08x %s" % sim.fault)
        _print_violations(violations, args.with_assertions)
        return 1 if violations else 0

    from repro.pipeline.config import PipelineConfig

    machine = build_machine(with_rse=args.icm,
                            modules=("icm",) if args.icm else (),
                            pipeline_config=(PipelineConfig(batch=False)
                                             if args.no_jit else None))
    image, asm = build_workload_image(source, MemoryLayout())
    machine.kernel.load_process(image)
    if args.with_assertions:
        machine.assertions.attach()
    if args.icm:
        icm = machine.module(MODULE_ICM)
        text = image.segment(".text")
        checker_map = build_checker_memory(machine.memory, text.base,
                                           len(text.data))
        icm.configure(checker_map)
        machine.rse.enable_module(MODULE_ICM)
        machine.pipeline.check_injector = make_icm_injector(checker_map)
    result = machine.kernel.run(max_cycles=args.max_cycles)
    snapshot = result.snapshot
    violations = []
    if args.with_assertions:
        machine.assertions.detach()       # runs the end-of-run sweeps
        violations = machine.assertions.violations()
    if args.stats_json:
        with open(args.stats_json, "w") as handle:
            emit_json(snapshot, stream=handle)
    if args.json:
        payload = {"mode": "machine", "engine": "pipeline",
                   "batch": not args.no_jit, "reason": result.reason,
                   "cycles": result.cycles,
                   "output": [value for __, value in machine.kernel.output],
                   "snapshot": snapshot}
        if args.with_assertions:
            payload["assertions"] = machine.assertions.snapshot()
        emit_json(payload)
        if violations:
            return 1
        return 0 if result.reason in ("halt", "all_exited") else 1
    pipeline = snapshot["pipeline"]
    print("run ended: %s" % result.reason)
    print("cycles: %d   instructions: %d   IPC: %.2f"
          % (pipeline["cycles"], pipeline["instret"], pipeline["ipc"]))
    print("branches: %d   mispredicts: %d   loads: %d   stores: %d"
          % (pipeline["branches"], pipeline["mispredicts"],
             pipeline["loads"], pipeline["stores"]))
    mem = snapshot["memory"]
    print("il1 miss: %.2f%%   dl1 miss: %.2f%%"
          % (100 * mem["il1"]["miss_rate"], 100 * mem["dl1"]["miss_rate"]))
    for kind, value in machine.kernel.output:
        print("guest output: %s" % value)
    if args.icm:
        icm = machine.module(MODULE_ICM)
        print("ICM: %d checks, %d mismatches, %.1f%% cache hit rate"
              % (icm.checks_completed, icm.mismatches,
                 100 * icm.cache_hit_rate))
    if args.stats_json:
        print("snapshot written to %s" % args.stats_json)
    _print_violations(violations, args.with_assertions)
    if violations:
        return 1
    return 0 if result.reason in ("halt", "all_exited") else 1


def _print_violations(violations, watched):
    """Human-readable assertion summary for ``repro run --assert``."""
    if not watched:
        return
    if not violations:
        print("assertions: all properties held")
        return
    print("assertions: %d VIOLATION(S):" % len(violations))
    for violation in violations:
        where = ("" if violation.pc is None
                 else " pc=0x%08x" % violation.pc)
        print("  [%s]%s %s" % (violation.property_id, where,
                               violation.detail))


def _cmd_experiment(args):
    from repro.experiments import ablations, fig9, table4, table5

    if args.name == "attack-matrix":
        from repro.experiments import attack_matrix as harness

        results = harness.run_attack_matrix(quick=args.quick)
        if args.json:
            emit_json({"experiment": "attack-matrix", "results": results})
            return 0
        print(harness.format_matrix(results))
        return 0
    if args.name == "table4":
        results = table4.run_table4(quick=args.quick)
        fw, icm = table4.average_overheads(results)
        if args.json:
            emit_json({"experiment": "table4", "results": results,
                       "average_overheads": {"framework": fw,
                                             "framework_icm": icm}})
            return 0
        print(table4.format_table4(results))
        print("\naverage overheads: framework %.2f%%  framework+ICM %.2f%%"
              % (fw, icm))
    elif args.name == "table5":
        results = table5.run_table5(quick=args.quick)
        penalty = table5.measure_pi_rand_penalty()
        if args.json:
            emit_json({"experiment": "table5", "results": results,
                       "pi_rand_penalty_cycles": penalty})
            return 0
        print(table5.format_table5(results))
        print("\nposition-independent penalty: %d cycles (paper: 56)"
              % penalty)
    elif args.name == "fig9":
        results = fig9.run_fig9(quick=args.quick)
        if args.json:
            emit_json({"experiment": "fig9", "results": results})
            return 0
        print(fig9.format_fig9(results))
        print()
        print(fig9.chart_fig9(results))
    else:
        sizes = (32, 256) if args.quick else (32, 64, 128, 256, 512)
        arbiter = ablations.run_arbiter_placement(quick=args.quick)
        sweep = ablations.run_icm_cache_sweep(sizes=sizes, quick=args.quick)
        lag = ablations.run_ddt_lag()
        if args.json:
            emit_json({"experiment": "ablations",
                       "arbiter_placement": arbiter,
                       "icm_cache_sweep": sweep, "ddt_lag": lag})
            return 0
        print(ablations.format_arbiter_placement(arbiter))
        print()
        print(ablations.format_icm_cache_sweep(sweep))
        print()
        print(ablations.format_ddt_lag(lag))
    return 0


def _cmd_attack(args):
    if args.attack_cmd in ("stack", "got"):
        return _cmd_attack_demo(args)
    if args.attack_cmd == "run":
        return _cmd_attack_run(args)
    return _cmd_attack_matrix(args)


def _cmd_attack_demo(args):
    from repro.security.attacks import run_got_hijack, run_stack_smash

    if args.attack_cmd == "stack":
        result = run_stack_smash(defense=args.defense, seed=args.seed,
                                 engine=args.engine)
    else:
        if args.defense == "trr":
            print("the GOT hijack demo supports defenses: none, mlr")
            return 2
        result = run_got_hijack(defense=args.defense, engine=args.engine)
    if args.json:
        emit_json({"attack": args.attack_cmd, "defense": args.defense,
                   "engine": args.engine, "outcome": result.outcome.value,
                   "reason": result.result.reason})
        return 0
    print("attack: %s   defense: %s   outcome: %s (run ended: %s)"
          % (args.attack_cmd, args.defense, result.outcome.value,
             result.result.reason))
    return 0


def _cmd_attack_run(args):
    from repro.security.attackgen import generate_variant, run_variant

    variant = generate_variant(args.attack_class, args.seed,
                               config=args.config)
    run = run_variant(variant, max_cycles=args.max_cycles,
                      engine=args.engine)
    if args.json:
        emit_json({"attack": variant.attack_class, "config": variant.config,
                   "seed": variant.seed, "engine": args.engine,
                   "outcome": run.outcome.value, "reason": run.reason,
                   "detections": run.detections, "cycles": run.cycles,
                   "meta": jsonable(variant.meta)})
        return 0
    print("attack: %s   config: %s   seed: %d   engine: %s"
          % (variant.attack_class, variant.config, variant.seed,
             args.engine))
    print("outcome: %s (run ended: %s, %d detections, %d cycles)"
          % (run.outcome.value, run.reason, run.detections, run.cycles))
    for key in sorted(variant.meta):
        print("  %s = %r" % (key, variant.meta[key]))
    return 0


def _cmd_attack_matrix(args):
    from repro.security.attackgen import ATTACK_CLASSES
    from repro.security.coverage import (DEFAULT_CONFIGS, attack_matrix,
                                         format_attack_matrix)

    classes = (tuple(t for t in args.classes.split(",") if t)
               if args.classes else ATTACK_CLASSES)
    configs = (tuple(t for t in args.configs.split(",") if t)
               if args.configs else DEFAULT_CONFIGS)
    options = None
    if args.workers > 1 or args.shards or args.store:
        from repro.campaign import ExecutionOptions

        options = ExecutionOptions(workers=args.workers,
                                   shards=args.shards, store=args.store)

    def progress(done, total):
        if not args.json:
            sys.stderr.write("\r%d/%d cells" % (done, total))
            sys.stderr.flush()
            if done == total:
                sys.stderr.write("\n")

    doc = attack_matrix(classes=classes, configs=configs,
                        variants=args.variants, seed=args.seed,
                        max_cycles=args.max_cycles, options=options,
                        progress=progress)
    if args.json:
        emit_json(doc)
        return 0
    print(format_attack_matrix(doc))
    return 0


def _campaign_options(args):
    """The one place CLI flags become an ExecutionOptions."""
    from repro.campaign import ExecutionOptions

    return ExecutionOptions(workers=args.workers, chunk_size=args.chunk,
                            fork=args.fork, batch=args.batch,
                            shards=args.shards, store=args.store)


def _cmd_campaign(args):
    from repro.campaign import (DEMO_WORKLOAD, CampaignSpec, MODELS,
                                ResultStore, format_campaign_report,
                                format_comparison, replay, resume_spec,
                                run_campaign)

    if args.file:
        with open(args.file) as handle:
            source = handle.read()
    else:
        source = DEMO_WORKLOAD

    model_options = {}
    if args.bits is not None:
        if args.model not in ("instr-flip", "cf-corrupt"):
            print("--bits only applies to instr-flip / cf-corrupt")
            return 2
        model_options["bits"] = args.bits

    spec = CampaignSpec(source=source, model=args.model,
                        model_options=model_options,
                        protected=not args.unprotected,
                        injections=args.injections, seed=args.seed,
                        max_cycles=args.max_cycles,
                        assertions=args.with_assertions)

    if args.replay is not None:
        stored = None
        if args.store and os.path.exists(args.store):
            spec = resume_spec(args.store)
            stored = ResultStore(args.store).record_for(args.replay)
            if stored is not None and not args.json:
                print("stored record: %s" % stored)
        record = replay(spec, args.replay, batch=args.batch)
        if args.json:
            emit_json({"replayed": record, "stored": stored})
            return 0
        print("replayed:      %s" % record)
        return 0

    def progress(done, total):
        stream = sys.stdout
        stream.write("\r  %d/%d injections" % (done, total))
        if done >= total:
            stream.write("\n")
        stream.flush()

    if args.json:
        progress = None          # keep stdout pure JSON

    options = _campaign_options(args)

    if args.compare:
        runs = {}
        for protected in (True, False):
            side = CampaignSpec(source=source, model=args.model,
                                model_options=model_options,
                                protected=protected,
                                injections=args.injections, seed=args.seed,
                                max_cycles=args.max_cycles,
                                assertions=args.with_assertions)
            if not args.json:
                print("%s campaign (%s, %d injections):"
                      % ("protected" if protected else "unprotected",
                         args.model, args.injections))
            # One store cannot hold two specs (the fingerprints differ),
            # so comparison runs are always store-less.
            runs[protected] = run_campaign(side,
                                           options=options.replace(store=None),
                                           progress=progress)
        if args.json:
            emit_json({"model": args.model, "seed": args.seed,
                       "compare": {
                           "protected": _campaign_summary(runs[True].records),
                           "unprotected": _campaign_summary(
                               runs[False].records)}})
            return 0
        print()
        print(format_comparison(runs[True].records, runs[False].records,
                                title="%s campaign" % args.model))
        return 0

    if not args.json:
        shard_note = (" shards=%d" % args.shards) if args.shards else ""
        print("campaign: model=%s injections=%d workers=%d%s %s"
              % (args.model, args.injections, args.workers, shard_note,
                 "protected" if spec.protected else "unprotected"))
    run = run_campaign(spec, options=options, progress=progress)
    if args.json:
        summary = _campaign_summary(run.records)
        summary.update({"model": args.model, "seed": args.seed,
                        "protected": spec.protected, "store": args.store,
                        "options": run.options.to_dict()})
        emit_json(summary)
        return 0
    print()
    print(format_campaign_report(
        run.records, title="%s campaign (seed %d)" % (args.model, args.seed)))
    if args.store:
        print()
        print("results stored in %s (resume by re-running the same "
              "command)" % args.store)
    return 0


def _campaign_summary(records):
    """Machine-readable digest of one campaign's records."""
    from repro.campaign.report import (damage_count, detection_stats,
                                       outcome_counts)

    detected, injected, det_rate, (low, high) = detection_stats(records)
    counts = outcome_counts(records)
    return {"runs": len(records), "outcomes": counts,
            "detection": {"detected": detected, "injected": injected,
                          "rate": det_rate, "ci95": [low, high]},
            "not_triggered": counts["not_triggered"],
            "damaging_runs": damage_count(records)}


def _cmd_campaign_serve(args):
    """Live aggregation over campaign stores (``repro campaign serve``).

    Tails the given stores (or everything beside a merged-store path)
    and serves live outcome counts and Wilson-CI detection matrices;
    ``--watch`` keeps polling until the campaign is complete (or
    ``--timeout`` expires), emitting one view per interval — text
    tables, or one JSON snapshot document per poll under ``--json``.
    """
    import time

    from repro.campaign.aggregate import CampaignAggregator, discover_stores

    if len(args.paths) == 1:
        paths = discover_stores(args.paths[0])
    else:
        paths = list(args.paths)
    aggregator = CampaignAggregator(paths, expected=args.expect)
    deadline = (time.monotonic() + args.timeout
                if args.timeout is not None else None)
    while True:
        aggregator.poll()
        if not args.watch or aggregator.complete():
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
        if args.json:
            emit_json(aggregator.snapshot())
        else:
            print(aggregator.render())
            print()
        time.sleep(args.interval)

    snapshot = aggregator.snapshot()
    if args.out:
        with open(args.out, "w") as handle:
            emit_json(snapshot, stream=handle)
    if args.json:
        emit_json(snapshot)
        return 0 if aggregator.complete() else 1
    print(aggregator.render())
    if aggregator.complete():
        print()
        print(aggregator.final_report(
            title="campaign %s" % (aggregator.fingerprint or "?")))
    else:
        print("campaign incomplete: %d/%s records aggregated"
              % (aggregator.done, aggregator.total
                 if aggregator.total is not None else "?"))
    if args.out:
        print("snapshot written to %s" % args.out)
    return 0 if aggregator.complete() else 1


def _parse_strike(text):
    """``MODEL@NODE:CYCLE[:SEED]`` -> strike dict."""
    try:
        model, rest = text.split("@", 1)
        parts = rest.split(":")
        strike = {"model": model, "node": int(parts[0]),
                  "cycle": int(parts[1])}
        if len(parts) > 2:
            strike["seed"] = int(parts[2])
        if len(parts) > 3:
            raise ValueError
        return strike
    except (ValueError, IndexError):
        raise SystemExit("bad --inject %r (want MODEL@NODE:CYCLE[:SEED])"
                         % text)


def _parse_kill(text):
    """``NODE:CYCLE`` -> (node, cycle)."""
    try:
        node, cycle = text.split(":")
        return int(node), int(cycle)
    except ValueError:
        raise SystemExit("bad --kill %r (want NODE:CYCLE)" % text)


def _cmd_fleet(args):
    """Co-simulate a fleet of machines (``repro fleet run``)."""
    from repro.analysis.tables import format_table
    from repro.fleet import FleetSpec, run_fleet

    spec = FleetSpec(
        nodes=args.nodes, requests=args.requests, workers=args.workers,
        seed=args.seed, protected=args.protected,
        mean_gap=args.mean_gap, burst_percent=args.burst_percent,
        fanout=args.fanout,
        link_latency=args.link_latency, link_jitter=args.link_jitter,
        link_drop_permille=args.link_drop_permille,
        checkpoint_interval=args.checkpoint_interval,
        restore_cost=args.restore_cost, max_cycles=args.max_cycles,
        strikes=tuple(_parse_strike(text) for text in args.inject),
        kills=tuple(_parse_kill(text) for text in args.kill))
    run = run_fleet(spec)
    document = run.to_dict()
    if args.out:
        with open(args.out, "w") as handle:
            emit_json(document, stream=handle)
    complete = document["served"] == spec.requests
    if args.json:
        emit_json(document)
        return 0 if complete else 1
    rows = []
    for node in document["nodes"]:
        rows.append([node["node"], node["status"], node["cycle"],
                     node["responses"], len(node["failovers"]),
                     node["snapshot"]["kernel"]["net"]["sent"],
                     node["snapshot"]["kernel"]["net"]["delivered"]])
    print(format_table(
        ["Node", "Status", "Cycle", "Responses", "Failovers",
         "Net sent", "Net rcvd"],
        rows,
        title="fleet: %d nodes, %d/%d requests served (seed %d)"
              % (spec.nodes, document["served"], spec.requests, spec.seed)))
    for strike in document["strikes"]:
        print("strike %s on node %d @%d -> %s"
              % (strike["model"], strike["node"], strike["cycle"],
                 strike["outcome"]))
    for node in document["nodes"]:
        for event in node["failovers"]:
            print("failover node %d @%d (%s): checkpoint @%d, resumed @%d, "
                  "%d request(s) re-served"
                  % (event["node"], event["death_cycle"], event["reason"],
                     event["checkpoint_cycle"], event["resume_cycle"],
                     event["rewound_requests"]))
    print("digest %s" % document["digest"])
    if args.out:
        print("report written to %s" % args.out)
    return 0 if complete else 1


def _cmd_difftest(args):
    """Differential fuzz: interp vs predecode vs pipeline commit stream."""
    from repro.difftest import fuzz

    def progress(index, count, result):
        stream = sys.stdout
        stream.write("\r  %d/%d programs%s" % (
            index + 1, count, "" if result.ok else "  (DIVERGENCE)"))
        if index + 1 >= count:
            stream.write("\n")
        stream.flush()

    if args.json:
        progress = None          # keep stdout pure JSON
    elif not sys.stdout.isatty():
        progress = None

    kwargs = {}
    if args.max_steps is not None:
        kwargs["max_steps"] = args.max_steps
    report = fuzz(seed=args.seed, count=args.count, mode=args.mode,
                  shrink_diverging=not args.no_shrink,
                  corpus_dir=args.corpus, store=args.store,
                  progress=progress, assertions=args.with_assertions,
                  jit=args.jit, **kwargs)
    payload = report.to_dict()
    if args.out:
        with open(args.out, "w") as handle:
            emit_json(payload, stream=handle)
    if args.json:
        emit_json(payload)
        return 0 if report.ok else 1
    print("difftest: seed=%d mode=%s  %d programs executed"
          % (report.seed, report.mode, report.executed)
          + (", %d resumed from store" % report.resumed
             if report.resumed else "")
          + (", assertions on" if args.with_assertions else "")
          + (", trace-JIT engine on" if args.jit else ""))
    if report.limited:
        print("  %d programs hit the step limit on every engine"
              % report.limited)
    if report.ok:
        engines = ("interp, predecode, jit and pipeline" if args.jit
                   else "interp, predecode and pipeline")
        print("  no divergences: %s agree" % engines)
        if args.with_assertions:
            print("  no assertion violations on any engine")
        return 0
    if report.divergences:
        print("  %d DIVERGENCES:" % len(report.divergences))
        for entry in report.divergences:
            print("  program %d (seed %d):"
                  % (entry["index"], entry["seed"]))
            divergence = entry["divergence"]
            print("    [%s] %s" % (divergence["kind"], divergence["detail"]))
            if entry.get("corpus_file"):
                print("    shrunk repro: %s" % entry["corpus_file"])
    for entry in report.violations:
        print("  program %d (seed %d): symmetric assertion violations:"
              % (entry["index"], entry["seed"]))
        for engine, records in sorted(entry["violations"].items()):
            for record in records:
                print("    [%s] %s: %s" % (record["property"], engine,
                                           record["detail"]))
    return 1


def _cmd_assertions(args):
    """List the portable invariant catalog."""
    from repro.assertions import catalog

    entries = catalog()
    if args.json:
        emit_json({"properties": [
            {"id": pid, "description": description, "engines": list(engines)}
            for pid, description, engines in entries]})
        return 0
    rows = [[pid, ", ".join(engines), description]
            for pid, description, engines in entries]
    print(format_table(["Property", "Engines", "Invariant"], rows,
                       title="Assertion catalog (%d properties)"
                             % len(entries)))
    return 0


def _cmd_report(args):
    """Concatenate the benchmark result tables into one report."""
    import glob

    results_dir = args.results_dir
    paths = sorted(glob.glob(os.path.join(results_dir, "*.txt")))
    if not paths:
        print("no results in %s - run: pytest benchmarks/ --benchmark-only"
              % results_dir)
        return 1
    sections = []
    for path in paths:
        with open(path) as handle:
            sections.append(handle.read().rstrip())
    if args.json:
        emit_json({"results_dir": results_dir,
                   "sections": [{"path": path, "text": text}
                                for path, text in zip(paths, sections)]})
        return 0
    report = ("# Reproduction results\n\n"
              + "\n\n".join("```\n%s\n```" % text for text in sections)
              + "\n")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print("wrote %s (%d sections)" % (args.output, len(sections)))
    else:
        print(report)
    return 0


def _cmd_disasm(args):
    from repro.isa.disasm import disassemble_image
    from repro.program.layout import MemoryLayout
    from repro.workloads.asmlib import build_workload_image

    with open(args.file) as handle:
        source = handle.read()
    image, __ = build_workload_image(source, MemoryLayout())
    print(disassemble_image(image))
    return 0


def _cmd_trace(args):
    from repro.analysis.tracing import trace_functional
    from repro.isa.assembler import assemble
    from repro.memory.mainmem import MainMemory
    from repro.workloads.asmlib import std_constants

    with open(args.file) as handle:
        source = handle.read()
    asm = assemble(source, constants=std_constants())
    memory = MainMemory()
    memory.store_bytes(asm.text_base, asm.text)
    memory.store_bytes(asm.data_base, asm.data)
    entries, sim = trace_functional(memory, asm.entry,
                                    max_steps=args.max_steps)
    for entry in entries:
        print(entry.render())
    if sim.fault:
        print("fault: pc=0x%08x %s" % sim.fault)
    return 0


def _cmd_stats(args):
    """Pretty-print or diff telemetry files (snapshots, campaign stores)."""
    doc = _load_stats_file(args.file)
    if args.diff is not None:
        other = _load_stats_file(args.diff)
        if not (isinstance(doc, dict) and "schema" in doc
                and isinstance(other, dict) and "schema" in other):
            print("--diff requires two snapshot documents")
            return 2
        left = dict(flatten_doc(doc))
        right = dict(flatten_doc(other))
        diffs = []
        for key in sorted(set(left) | set(right)):
            a, b = left.get(key), right.get(key)
            if a != b:
                diffs.append({"key": key, "a": a, "b": b})
        if args.json:
            emit_json({"a": args.file, "b": args.diff, "diff": diffs})
            return 0
        if not diffs:
            print("snapshots are identical")
            return 0
        print("%-44s %16s %16s" % ("key", "a", "b"))
        for entry in diffs:
            print("%-44s %16s %16s"
                  % (entry["key"], _stats_cell(entry["a"]),
                     _stats_cell(entry["b"])))
        return 0

    if isinstance(doc, dict) and "schema" in doc:
        if args.json:
            emit_json(doc)
            return 0
        print("snapshot %s (cycle %s)" % (doc.get("schema"),
                                          doc.get("cycle")))
        for key, value in flatten_doc(doc):
            if key in ("schema", "cycle"):
                continue
            print("  %-42s %s" % (key, _stats_cell(value)))
        return 0

    # Campaign JSONL store: regenerate the campaign report from records.
    header, records = doc
    if args.json:
        summary = _campaign_summary(records)
        summary["spec"] = header.get("spec")
        emit_json(summary)
        return 0
    from repro.campaign.report import format_campaign_report

    spec = header.get("spec", {})
    title = "campaign store %s (%s, seed %s)" % (
        os.path.basename(args.file), spec.get("model", "?"),
        spec.get("seed", "?"))
    print(format_campaign_report(records, title=title))
    return 0


def _load_stats_file(path):
    """Detect and load a telemetry file.

    Returns the parsed snapshot dict for ``Machine.snapshot()`` JSON, or
    ``(header, records)`` for a campaign JSONL store.
    """
    with open(path) as handle:
        text = handle.read()
    try:
        doc = json.loads(text)          # one pretty-printed document
    except ValueError:
        doc = None
    if isinstance(doc, dict):
        return doc
    first_line = text.split("\n", 1)[0] if text else ""
    try:
        record = json.loads(first_line)
    except ValueError:
        record = None
    if isinstance(record, dict) and record.get("kind") == "campaign":
        from repro.campaign.store import ResultStore

        header, records = ResultStore(path).load()
        return header, records
    raise SystemExit("unrecognized stats file: %s" % path)


def _stats_cell(value):
    if isinstance(value, float):
        return "%.4f" % value
    return str(value)


def _trace_jit_metrics():
    """Trace-cache gauges, published through the metrics registry.

    ``repro info`` has no long-lived machine to inspect, so it warms a
    trace cache on the built-in campaign workload (a few thousand
    instructions) and reports what :meth:`TraceCache.publish` mirrors
    into a :class:`~repro.obs.metrics.MetricsRegistry` — the same
    gauges a monitoring hook would scrape off a real run.
    """
    from repro.campaign import DEMO_WORKLOAD
    from repro.funcsim import FuncSim
    from repro.isa.assembler import assemble
    from repro.memory.mainmem import MainMemory
    from repro.obs.metrics import MetricsRegistry

    asm = assemble(DEMO_WORKLOAD)
    memory = MainMemory()
    memory.store_bytes(asm.text_base, asm.text)
    memory.store_bytes(asm.data_base, asm.data)
    sim = FuncSim(memory, entry=asm.entry, sp=0x7FFF0000,
                  jit_enabled=True)
    sim.run(max_steps=100_000)
    registry = MetricsRegistry()
    sim.trace_cache.publish(registry)
    return registry


def _cmd_info(args):
    from repro.isa import traces
    from repro.pipeline.config import PipelineConfig

    config = PipelineConfig()
    registry = _trace_jit_metrics()
    jit_params = {"heat_threshold": traces.HEAT_THRESHOLD,
                  "min_trace_len": traces.MIN_TRACE_LEN,
                  "max_trace_len": traces.MAX_TRACE_LEN,
                  "max_inline_depth": traces.MAX_INLINE_DEPTH,
                  "rebuild_limit": traces.REBUILD_LIMIT,
                  "max_traces": traces.MAX_TRACES}
    if args.json:
        emit_json({"pipeline_config": config,
                   "trace_jit": {"params": jit_params,
                                 "metrics": registry.snapshot()},
                   "framework_input_cost": framework_input_cost(),
                   "mlr_hardware_cost": mlr_hardware_cost()})
        return 0
    rows = [
        ["fetch/dispatch/issue width", "%d / %d / %d" % (
            config.fetch_width, config.dispatch_width, config.issue_width)],
        ["ROB (RUU) / LSQ entries", "%d / %d" % (config.rob_entries,
                                                 config.lsq_entries)],
        ["il1 / dl1", "8 KB 1-way / 8 KB 1-way"],
        ["il2 / dl2", "64 KB 2-way / 128 KB 2-way"],
        ["memory timing (baseline)", "18 + 2/chunk"],
        ["memory timing (with RSE)", "19 + 3/chunk"],
    ]
    print(format_table(["Parameter", "Value"], rows,
                       title="Simulated machine (paper Figure 1)"))
    print()
    jit_rows = [[name, str(value)] for name, value in jit_params.items()]
    print(format_table(["Parameter", "Value"], jit_rows,
                       title="Funcsim trace JIT (repro.isa.traces)"))
    gauges = ", ".join("%s=%d" % (name.split(".", 1)[1], doc["value"])
                       for name, doc in sorted(registry.snapshot().items()))
    print("warm-up trace-cache gauges (built-in campaign workload):")
    print("  " + gauges)
    print()
    cost = framework_input_cost()
    print("RSE input interface: %d flip-flops, %d gates (Section 3.1)"
          % (cost["flip_flops"], cost["gates"]))
    mlr = mlr_hardware_cost()
    print("MLR module: %d registers, %d adders, %d KB of buffers"
          % (mlr["total_registers"], mlr["total_adders"],
             mlr["total_buffer_bytes"] // 1024))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the DSN 2004 Reliability and "
                    "Security Engine")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_json_flag(subparser):
        subparser.add_argument("--json", action="store_true",
                               help="emit machine-readable JSON on stdout")

    def add_assert_flags(subparser):
        # dest is explicit: "assert" is a Python keyword, so the default
        # attribute name argparse would derive is unusable.
        subparser.add_argument("--assert", dest="with_assertions",
                               action="store_true",
                               help="run under the microarchitectural "
                                    "invariant suite (violations fail "
                                    "the run)")
        subparser.add_argument("--no-assert", dest="with_assertions",
                               action="store_false",
                               help="disable the invariant suite "
                                    "(the default)")
        subparser.set_defaults(with_assertions=False)

    run_parser = sub.add_parser("run", help="assemble and run a program")
    run_parser.add_argument("file")
    run_parser.add_argument("--engine", default=None,
                            choices=["interp", "predecode", "jit",
                                     "pipeline"],
                            help="execution engine (default: pipeline; "
                                 "the others use the functional "
                                 "simulator)")
    run_parser.add_argument("--func", action="store_true",
                            help="use the functional simulator "
                                 "(alias for --engine predecode)")
    run_parser.add_argument("--no-jit", action="store_true",
                            help="escape hatch: force the reference "
                                 "execution paths (per-instruction "
                                 "closures / one-step()-per-cycle "
                                 "pipeline loop)")
    run_parser.add_argument("--icm", action="store_true",
                            help="attach the RSE with the ICM enabled")
    run_parser.add_argument("--max-cycles", type=int, default=50_000_000)
    run_parser.add_argument("--stats-json", default=None, metavar="PATH",
                            help="write the Machine.snapshot() document "
                                 "to PATH")
    add_assert_flags(run_parser)
    add_json_flag(run_parser)
    run_parser.set_defaults(func_impl=_cmd_run)

    exp_parser = sub.add_parser("experiment", help="run a paper experiment")
    exp_parser.add_argument("name", choices=["table4", "table5", "fig9",
                                             "ablations", "attack-matrix"])
    exp_parser.add_argument("--quick", action="store_true")
    add_json_flag(exp_parser)
    exp_parser.set_defaults(func_impl=_cmd_experiment)

    campaign_root = sub.add_parser(
        "campaign", help="fault-injection campaigns (run, serve)")
    campaign_sub = campaign_root.add_subparsers(dest="campaign_command",
                                                required=True)
    campaign_parser = campaign_sub.add_parser(
        "run", help="run (or resume) a fault-injection campaign")
    campaign_parser.add_argument(
        "file", nargs="?", default=None,
        help="assembly workload (default: built-in demo loop)")
    campaign_parser.add_argument(
        "--model", default="instr-flip",
        choices=["instr-flip", "reg-flip", "mem-flip", "cf-corrupt"],
        help="fault model to inject")
    campaign_parser.add_argument("--injections", type=int, default=200,
                                 help="number of injections in the space")
    campaign_parser.add_argument("--workers", type=int, default=1,
                                 help="worker processes (>1 = parallel)")
    campaign_parser.add_argument("--chunk", type=int, default=16,
                                 help="injections per worker dispatch")
    campaign_parser.add_argument("--seed", type=int, default=99)
    campaign_parser.add_argument("--max-cycles", type=int, default=200_000,
                                 help="per-run cycle budget (hang timeout)")
    campaign_parser.add_argument("--bits", type=int, default=None,
                                 help="bits flipped per injection "
                                      "(instr-flip / cf-corrupt)")
    campaign_parser.add_argument("--store", default=None,
                                 help="JSONL result store; an existing "
                                      "store resumes the campaign")
    campaign_parser.add_argument("--shards", type=int, default=0,
                                 help="split the campaign into N seed-range "
                                      "shards with work-stealing workers "
                                      "and per-shard resumable stores")
    campaign_parser.add_argument("--fork", dest="fork", action="store_true",
                                 help="checkpoint each trigger prefix once "
                                      "and restore-and-strike per injection "
                                      "(identical records, less wall-clock; "
                                      "reg-flip / mem-flip)")
    campaign_parser.add_argument("--no-fork", dest="fork",
                                 action="store_false",
                                 help="always re-simulate the warmup prefix "
                                      "(the default)")
    campaign_parser.set_defaults(fork=False)
    campaign_parser.add_argument("--no-jit", dest="batch",
                                 action="store_false",
                                 help="escape hatch: run every injection "
                                      "on the pipeline's "
                                      "one-step()-per-cycle reference "
                                      "loop (records are identical)")
    campaign_parser.set_defaults(batch=True)
    campaign_parser.add_argument("--unprotected", action="store_true",
                                 help="run without the RSE/ICM (baseline)")
    campaign_parser.add_argument("--compare", action="store_true",
                                 help="run protected AND unprotected, "
                                      "print the comparison")
    campaign_parser.add_argument("--replay", type=int, default=None,
                                 metavar="ID",
                                 help="re-execute one injection by id")
    add_assert_flags(campaign_parser)
    add_json_flag(campaign_parser)
    campaign_parser.set_defaults(func_impl=_cmd_campaign)

    serve_parser = campaign_sub.add_parser(
        "serve", help="aggregate live (or finished) campaign stores")
    serve_parser.add_argument(
        "paths", nargs="+",
        help="campaign store path(s); a single merged-store path also "
             "picks up its sibling .shardNNN stores")
    serve_parser.add_argument("--watch", action="store_true",
                              help="keep polling until the campaign "
                                   "completes (or --timeout expires)")
    serve_parser.add_argument("--interval", type=float, default=1.0,
                              help="seconds between polls under --watch")
    serve_parser.add_argument("--expect", type=int, default=None,
                              metavar="N",
                              help="treat the campaign as N injections "
                                   "(default: the stored spec's count)")
    serve_parser.add_argument("--timeout", type=float, default=None,
                              help="give up watching after this many "
                                   "seconds")
    serve_parser.add_argument("--out", default=None, metavar="PATH",
                              help="also write the final snapshot "
                                   "document to PATH")
    add_json_flag(serve_parser)
    serve_parser.set_defaults(func_impl=_cmd_campaign_serve)

    fleet_root = sub.add_parser(
        "fleet", help="co-simulate a fleet of networked machines")
    fleet_sub = fleet_root.add_subparsers(dest="fleet_command",
                                          required=True)
    fleet_parser = fleet_sub.add_parser(
        "run", help="run a fleet under generated load")
    fleet_parser.add_argument("--nodes", type=int, default=3)
    fleet_parser.add_argument("--requests", type=int, default=120,
                              help="total requests across the fleet")
    fleet_parser.add_argument("--workers", type=int, default=2,
                              help="server worker threads per node")
    fleet_parser.add_argument("--seed", type=int, default=1)
    fleet_parser.add_argument("--mean-gap", type=int, default=300,
                              help="mean cycles between request arrivals")
    fleet_parser.add_argument("--burst-percent", type=int, default=25,
                              help="chance an arrival starts a burst")
    fleet_parser.add_argument("--fanout", default="roundrobin",
                              choices=["roundrobin", "random"],
                              help="how requests spread across nodes")
    fleet_parser.add_argument("--link-latency", type=int, default=40)
    fleet_parser.add_argument("--link-jitter", type=int, default=0)
    fleet_parser.add_argument("--link-drop-permille", type=int, default=0,
                              help="per-1000 datagram drop rate")
    fleet_parser.add_argument("--protected", action="store_true",
                              help="attach the RSE with DDT + recovery "
                                   "on every node")
    fleet_parser.add_argument("--checkpoint-interval", type=int,
                              default=50_000,
                              help="cycles between failover checkpoints")
    fleet_parser.add_argument("--restore-cost", type=int, default=20_000,
                              help="modelled downtime of a failover")
    fleet_parser.add_argument("--max-cycles", type=int, default=20_000_000)
    fleet_parser.add_argument(
        "--inject", action="append", default=[], metavar="MODEL@NODE:CYCLE",
        help="strike NODE with fault MODEL (reg-flip / mem-flip) at "
             "CYCLE; repeatable, optional :SEED suffix")
    fleet_parser.add_argument(
        "--kill", action="append", default=[], metavar="NODE:CYCLE",
        help="SIGKILL-style node death at CYCLE (checkpoint failover); "
             "repeatable")
    fleet_parser.add_argument("--out", default=None, metavar="PATH",
                              help="also write the JSON fleet report "
                                   "to PATH")
    add_json_flag(fleet_parser)
    fleet_parser.set_defaults(func_impl=_cmd_fleet)

    difftest_parser = sub.add_parser(
        "difftest", help="differential fuzz of the three execution engines")
    difftest_parser.add_argument("--seed", type=int, default=1234)
    difftest_parser.add_argument("--count", type=int, default=100,
                                 help="number of generated programs")
    difftest_parser.add_argument(
        "--mode", default="all", choices=["basic", "check", "smc", "all"],
        help="instruction mix: basic ISA, +CHECKs, +self-modifying code")
    difftest_parser.add_argument("--max-steps", type=int, default=None,
                                 help="per-engine retired-instruction "
                                      "budget per program")
    difftest_parser.add_argument("--store", default=None,
                                 help="JSONL progress store; an existing "
                                      "store resumes the run")
    difftest_parser.add_argument("--corpus", default=None, metavar="DIR",
                                 help="write shrunk diverging programs "
                                      "as .s files under DIR")
    difftest_parser.add_argument("--jit", dest="jit", action="store_true",
                                 help="run the trace-JIT funcsim as a "
                                      "fourth engine in the oracle")
    difftest_parser.add_argument("--no-jit", dest="jit",
                                 action="store_false",
                                 help="three-engine oracle (the default)")
    difftest_parser.set_defaults(jit=False)
    difftest_parser.add_argument("--no-shrink", action="store_true",
                                 help="report divergences without "
                                      "minimizing them")
    difftest_parser.add_argument("--out", default=None, metavar="PATH",
                                 help="also write the JSON report to PATH")
    add_assert_flags(difftest_parser)
    add_json_flag(difftest_parser)
    difftest_parser.set_defaults(func_impl=_cmd_difftest)

    assertions_parser = sub.add_parser(
        "assertions", help="the portable microarchitectural invariant "
                           "catalog")
    assertions_parser.add_argument(
        "action", choices=["list"],
        help="list: show every property, its invariant and the engines "
             "it runs on")
    add_json_flag(assertions_parser)
    assertions_parser.set_defaults(func_impl=_cmd_assertions)

    attack_root = sub.add_parser(
        "attack", help="exploit demos and the generated attack corpus")
    attack_sub = attack_root.add_subparsers(dest="attack_cmd",
                                            required=True)
    engine_choices = ["pipeline", "interp", "predecode", "jit"]
    for kind in ("stack", "got"):
        demo_parser = attack_sub.add_parser(
            kind, help="hand-written %s exploit demo"
            % ("stack-smash" if kind == "stack" else "GOT-hijack"))
        demo_parser.add_argument("--defense", default="none",
                                 choices=["none", "trr", "mlr"])
        demo_parser.add_argument("--seed", type=int, default=1234)
        demo_parser.add_argument("--engine", default="pipeline",
                                 choices=engine_choices,
                                 help="execution engine; classification "
                                      "is engine-independent")
        add_json_flag(demo_parser)
        demo_parser.set_defaults(func_impl=_cmd_attack)
    attack_run = attack_sub.add_parser(
        "run", help="generate and run one attack variant")
    attack_run.add_argument("--class", dest="attack_class",
                            default="stack-smash",
                            help="attack class (stack-smash, got-hijack, "
                                 "smc-patch, thread-smash, race-got)")
    attack_run.add_argument("--config", default="none",
                            help="RSE module configuration, '+'-joined "
                                 "(e.g. none, trr, mlr+icm)")
    attack_run.add_argument("--seed", type=int, default=1234,
                            help="variant seed (same seed = same attack)")
    attack_run.add_argument("--engine", default="pipeline",
                            choices=engine_choices)
    attack_run.add_argument("--max-cycles", type=int, default=300_000)
    add_json_flag(attack_run)
    attack_run.set_defaults(func_impl=_cmd_attack)
    attack_matrix_parser = attack_sub.add_parser(
        "matrix", help="module x attack-class detection-coverage matrix")
    attack_matrix_parser.add_argument(
        "--classes", default=None,
        help="comma-separated attack classes (default: all)")
    attack_matrix_parser.add_argument(
        "--configs", default=None,
        help="comma-separated module configs (default: none,trr,icm,mlr,"
             "cfc,mlr+icm)")
    attack_matrix_parser.add_argument("--variants", type=int, default=40,
                                      help="corpus size per cell")
    attack_matrix_parser.add_argument("--seed", type=int, default=2004)
    attack_matrix_parser.add_argument("--max-cycles", type=int,
                                      default=300_000)
    attack_matrix_parser.add_argument("--workers", type=int, default=1)
    attack_matrix_parser.add_argument(
        "--shards", type=int, default=0,
        help="route each cell through the sharded campaign service")
    attack_matrix_parser.add_argument(
        "--store", default=None,
        help="directory of per-cell resumable result stores")
    add_json_flag(attack_matrix_parser)
    attack_matrix_parser.set_defaults(func_impl=_cmd_attack)

    disasm_parser = sub.add_parser("disasm",
                                   help="disassemble an assembled program")
    disasm_parser.add_argument("file")
    disasm_parser.set_defaults(func_impl=_cmd_disasm)

    trace_parser = sub.add_parser(
        "trace", help="functional instruction trace of a program")
    trace_parser.add_argument("file")
    trace_parser.add_argument("--max-steps", type=int, default=200)
    trace_parser.set_defaults(func_impl=_cmd_trace)

    report_parser = sub.add_parser(
        "report", help="collect benchmark result tables into one report")
    report_parser.add_argument("--results-dir",
                               default=os.path.join("benchmarks", "results"))
    report_parser.add_argument("--output", default=None)
    add_json_flag(report_parser)
    report_parser.set_defaults(func_impl=_cmd_report)

    stats_parser = sub.add_parser(
        "stats", help="pretty-print or diff telemetry files")
    stats_parser.add_argument(
        "file", help="a 'repro run --stats-json' snapshot or a campaign "
                     "JSONL store")
    stats_parser.add_argument("--diff", default=None, metavar="OTHER",
                              help="second snapshot to compare against")
    add_json_flag(stats_parser)
    stats_parser.set_defaults(func_impl=_cmd_stats)

    info_parser = sub.add_parser("info", help="machine configuration")
    add_json_flag(info_parser)
    info_parser.set_defaults(func_impl=_cmd_info)

    args = parser.parse_args(_normalize_argv(argv))
    return args.func_impl(args)


def _normalize_argv(argv):
    """Map the pre-redesign ``repro campaign <flags>`` onto ``campaign run``.

    ``campaign`` grew subcommands (``run``, ``serve``); every historical
    invocation — scripts, CI jobs, the README's own examples — spelled
    the run implicitly (``repro campaign --model reg-flip``).  Inserting
    ``run`` when the token after ``campaign`` is not a subcommand keeps
    all of them working verbatim.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        index = argv.index("campaign")
    except ValueError:
        return argv
    if any(not token.startswith("-") for token in argv[:index]):
        return argv              # "campaign" is an operand, not the command
    following = argv[index + 1] if index + 1 < len(argv) else None
    if following not in ("run", "serve", "-h", "--help"):
        argv.insert(index + 1, "run")
    return argv


if __name__ == "__main__":
    sys.exit(main())
