"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run FILE``
    Assemble and execute an assembly file on the full machine (kernel +
    out-of-order pipeline), printing the exit reason and pipeline/cache
    statistics.  ``--func`` uses the functional simulator instead;
    ``--icm`` attaches the RSE with the ICM checking all control flow.

``experiment {table4,table5,fig9,ablations}``
    Run an experiment harness and print its paper-style table
    (``--quick`` for the reduced configuration).

``attack {stack,got}``
    Run a layout-dependent exploit against the vulnerable service under
    a chosen ``--defense``.

``info``
    Print the simulated machine configuration and the Section 3.1
    hardware-cost estimates.
"""

import argparse
import os
import sys

from repro.analysis.hardware_cost import framework_input_cost, \
    mlr_hardware_cost
from repro.analysis.tables import format_table


def _cmd_run(args):
    from repro.funcsim import FuncSim
    from repro.memory.mainmem import MainMemory
    from repro.program.layout import MemoryLayout
    from repro.rse.check import MODULE_ICM
    from repro.rse.modules.icm import build_checker_memory, make_icm_injector
    from repro.system import build_machine
    from repro.workloads.asmlib import build_workload_image, std_constants

    with open(args.file) as handle:
        source = handle.read()

    if args.func:
        from repro.isa.assembler import assemble

        asm = assemble(source, constants=std_constants())
        memory = MainMemory()
        memory.store_bytes(asm.text_base, asm.text)
        memory.store_bytes(asm.data_base, asm.data)
        sim = FuncSim(memory, entry=asm.entry, sp=0x7FFF0000)
        result = sim.run(max_steps=args.max_cycles)
        print("functional run: %s after %d instructions"
              % (result.value, sim.instret))
        if sim.fault:
            print("fault: pc=0x%08x %s" % sim.fault)
        return 0

    machine = build_machine(with_rse=args.icm,
                            modules=("icm",) if args.icm else ())
    image, asm = build_workload_image(source, MemoryLayout())
    machine.kernel.load_process(image)
    if args.icm:
        icm = machine.module(MODULE_ICM)
        text = image.segment(".text")
        checker_map = build_checker_memory(machine.memory, text.base,
                                           len(text.data))
        icm.configure(checker_map)
        machine.rse.enable_module(MODULE_ICM)
        machine.pipeline.check_injector = make_icm_injector(checker_map)
    result = machine.kernel.run(max_cycles=args.max_cycles)
    stats = machine.pipeline.stats
    print("run ended: %s" % result.reason)
    print("cycles: %d   instructions: %d   IPC: %.2f"
          % (stats.cycles, stats.instret, stats.ipc))
    print("branches: %d   mispredicts: %d   loads: %d   stores: %d"
          % (stats.branches, stats.mispredicts, stats.loads, stats.stores))
    hier = machine.hierarchy.stats()
    print("il1 miss: %.2f%%   dl1 miss: %.2f%%"
          % (100 * hier["il1"]["miss_rate"], 100 * hier["dl1"]["miss_rate"]))
    for kind, value in machine.kernel.output:
        print("guest output: %s" % value)
    if args.icm:
        icm = machine.module(MODULE_ICM)
        print("ICM: %d checks, %d mismatches, %.1f%% cache hit rate"
              % (icm.checks_completed, icm.mismatches,
                 100 * icm.cache_hit_rate))
    return 0 if result.reason in ("halt", "all_exited") else 1


def _cmd_experiment(args):
    from repro.experiments import ablations, fig9, table4, table5

    if args.name == "table4":
        results = table4.run_table4(quick=args.quick)
        print(table4.format_table4(results))
        fw, icm = table4.average_overheads(results)
        print("\naverage overheads: framework %.2f%%  framework+ICM %.2f%%"
              % (fw, icm))
    elif args.name == "table5":
        results = table5.run_table5(quick=args.quick)
        print(table5.format_table5(results))
        print("\nposition-independent penalty: %d cycles (paper: 56)"
              % table5.measure_pi_rand_penalty())
    elif args.name == "fig9":
        results = fig9.run_fig9(quick=args.quick)
        print(fig9.format_fig9(results))
        print()
        print(fig9.chart_fig9(results))
    else:
        print(ablations.format_arbiter_placement(
            ablations.run_arbiter_placement(quick=args.quick)))
        print()
        sizes = (32, 256) if args.quick else (32, 64, 128, 256, 512)
        print(ablations.format_icm_cache_sweep(
            ablations.run_icm_cache_sweep(sizes=sizes, quick=args.quick)))
        print()
        print(ablations.format_ddt_lag(ablations.run_ddt_lag()))
    return 0


def _cmd_attack(args):
    from repro.security.attacks import run_got_hijack, run_stack_smash

    if args.kind == "stack":
        result = run_stack_smash(defense=args.defense, seed=args.seed)
    else:
        if args.defense == "trr":
            print("the GOT hijack demo supports defenses: none, mlr")
            return 2
        result = run_got_hijack(defense=args.defense)
    print("attack: %s   defense: %s   outcome: %s (run ended: %s)"
          % (args.kind, args.defense, result.outcome.value,
             result.result.reason))
    return 0


def _cmd_campaign(args):
    from repro.campaign import (DEMO_WORKLOAD, CampaignSpec, MODELS,
                                ResultStore, format_campaign_report,
                                format_comparison, replay, resume_spec,
                                run_campaign)

    if args.file:
        with open(args.file) as handle:
            source = handle.read()
    else:
        source = DEMO_WORKLOAD

    model_options = {}
    if args.bits is not None:
        if args.model not in ("instr-flip", "cf-corrupt"):
            print("--bits only applies to instr-flip / cf-corrupt")
            return 2
        model_options["bits"] = args.bits

    spec = CampaignSpec(source=source, model=args.model,
                        model_options=model_options,
                        protected=not args.unprotected,
                        injections=args.injections, seed=args.seed,
                        max_cycles=args.max_cycles)

    if args.replay is not None:
        if args.store and os.path.exists(args.store):
            spec = resume_spec(args.store)
            stored = ResultStore(args.store).record_for(args.replay)
            if stored is not None:
                print("stored record: %s" % stored)
        record = replay(spec, args.replay)
        print("replayed:      %s" % record)
        return 0

    def progress(done, total):
        stream = sys.stdout
        stream.write("\r  %d/%d injections" % (done, total))
        if done >= total:
            stream.write("\n")
        stream.flush()

    if args.compare:
        runs = {}
        for protected in (True, False):
            side = CampaignSpec(source=source, model=args.model,
                                model_options=model_options,
                                protected=protected,
                                injections=args.injections, seed=args.seed,
                                max_cycles=args.max_cycles)
            print("%s campaign (%s, %d injections):"
                  % ("protected" if protected else "unprotected",
                     args.model, args.injections))
            runs[protected] = run_campaign(side, workers=args.workers,
                                           chunk_size=args.chunk,
                                           progress=progress)
        print()
        print(format_comparison(runs[True].records, runs[False].records,
                                title="%s campaign" % args.model))
        return 0

    print("campaign: model=%s injections=%d workers=%d %s"
          % (args.model, args.injections, args.workers,
             "protected" if spec.protected else "unprotected"))
    run = run_campaign(spec, workers=args.workers, chunk_size=args.chunk,
                       store_path=args.store, progress=progress)
    print()
    print(format_campaign_report(
        run.records, title="%s campaign (seed %d)" % (args.model, args.seed)))
    if args.store:
        print()
        print("results stored in %s (resume by re-running the same "
              "command)" % args.store)
    return 0


def _cmd_report(args):
    """Concatenate the benchmark result tables into one report."""
    import glob

    results_dir = args.results_dir
    paths = sorted(glob.glob(os.path.join(results_dir, "*.txt")))
    if not paths:
        print("no results in %s - run: pytest benchmarks/ --benchmark-only"
              % results_dir)
        return 1
    sections = []
    for path in paths:
        with open(path) as handle:
            sections.append(handle.read().rstrip())
    report = ("# Reproduction results\n\n"
              + "\n\n".join("```\n%s\n```" % text for text in sections)
              + "\n")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print("wrote %s (%d sections)" % (args.output, len(sections)))
    else:
        print(report)
    return 0


def _cmd_disasm(args):
    from repro.isa.disasm import disassemble_image
    from repro.program.layout import MemoryLayout
    from repro.workloads.asmlib import build_workload_image

    with open(args.file) as handle:
        source = handle.read()
    image, __ = build_workload_image(source, MemoryLayout())
    print(disassemble_image(image))
    return 0


def _cmd_trace(args):
    from repro.analysis.tracing import trace_functional
    from repro.isa.assembler import assemble
    from repro.memory.mainmem import MainMemory
    from repro.workloads.asmlib import std_constants

    with open(args.file) as handle:
        source = handle.read()
    asm = assemble(source, constants=std_constants())
    memory = MainMemory()
    memory.store_bytes(asm.text_base, asm.text)
    memory.store_bytes(asm.data_base, asm.data)
    entries, sim = trace_functional(memory, asm.entry,
                                    max_steps=args.max_steps)
    for entry in entries:
        print(entry.render())
    if sim.fault:
        print("fault: pc=0x%08x %s" % sim.fault)
    return 0


def _cmd_info(args):
    from repro.pipeline.config import PipelineConfig

    config = PipelineConfig()
    rows = [
        ["fetch/dispatch/issue width", "%d / %d / %d" % (
            config.fetch_width, config.dispatch_width, config.issue_width)],
        ["ROB (RUU) / LSQ entries", "%d / %d" % (config.rob_entries,
                                                 config.lsq_entries)],
        ["il1 / dl1", "8 KB 1-way / 8 KB 1-way"],
        ["il2 / dl2", "64 KB 2-way / 128 KB 2-way"],
        ["memory timing (baseline)", "18 + 2/chunk"],
        ["memory timing (with RSE)", "19 + 3/chunk"],
    ]
    print(format_table(["Parameter", "Value"], rows,
                       title="Simulated machine (paper Figure 1)"))
    print()
    cost = framework_input_cost()
    print("RSE input interface: %d flip-flops, %d gates (Section 3.1)"
          % (cost["flip_flops"], cost["gates"]))
    mlr = mlr_hardware_cost()
    print("MLR module: %d registers, %d adders, %d KB of buffers"
          % (mlr["total_registers"], mlr["total_adders"],
             mlr["total_buffer_bytes"] // 1024))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the DSN 2004 Reliability and "
                    "Security Engine")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="assemble and run a program")
    run_parser.add_argument("file")
    run_parser.add_argument("--func", action="store_true",
                            help="use the functional simulator")
    run_parser.add_argument("--icm", action="store_true",
                            help="attach the RSE with the ICM enabled")
    run_parser.add_argument("--max-cycles", type=int, default=50_000_000)
    run_parser.set_defaults(func_impl=_cmd_run)

    exp_parser = sub.add_parser("experiment", help="run a paper experiment")
    exp_parser.add_argument("name", choices=["table4", "table5", "fig9",
                                             "ablations"])
    exp_parser.add_argument("--quick", action="store_true")
    exp_parser.set_defaults(func_impl=_cmd_experiment)

    campaign_parser = sub.add_parser(
        "campaign", help="run a fault-injection campaign")
    campaign_parser.add_argument(
        "file", nargs="?", default=None,
        help="assembly workload (default: built-in demo loop)")
    campaign_parser.add_argument(
        "--model", default="instr-flip",
        choices=["instr-flip", "reg-flip", "mem-flip", "cf-corrupt"],
        help="fault model to inject")
    campaign_parser.add_argument("--injections", type=int, default=200,
                                 help="number of injections in the space")
    campaign_parser.add_argument("--workers", type=int, default=1,
                                 help="worker processes (>1 = parallel)")
    campaign_parser.add_argument("--chunk", type=int, default=16,
                                 help="injections per worker dispatch")
    campaign_parser.add_argument("--seed", type=int, default=99)
    campaign_parser.add_argument("--max-cycles", type=int, default=200_000,
                                 help="per-run cycle budget (hang timeout)")
    campaign_parser.add_argument("--bits", type=int, default=None,
                                 help="bits flipped per injection "
                                      "(instr-flip / cf-corrupt)")
    campaign_parser.add_argument("--store", default=None,
                                 help="JSONL result store; an existing "
                                      "store resumes the campaign")
    campaign_parser.add_argument("--unprotected", action="store_true",
                                 help="run without the RSE/ICM (baseline)")
    campaign_parser.add_argument("--compare", action="store_true",
                                 help="run protected AND unprotected, "
                                      "print the comparison")
    campaign_parser.add_argument("--replay", type=int, default=None,
                                 metavar="ID",
                                 help="re-execute one injection by id")
    campaign_parser.set_defaults(func_impl=_cmd_campaign)

    attack_parser = sub.add_parser("attack", help="run an exploit demo")
    attack_parser.add_argument("kind", choices=["stack", "got"])
    attack_parser.add_argument("--defense", default="none",
                               choices=["none", "trr", "mlr"])
    attack_parser.add_argument("--seed", type=int, default=1234)
    attack_parser.set_defaults(func_impl=_cmd_attack)

    disasm_parser = sub.add_parser("disasm",
                                   help="disassemble an assembled program")
    disasm_parser.add_argument("file")
    disasm_parser.set_defaults(func_impl=_cmd_disasm)

    trace_parser = sub.add_parser(
        "trace", help="functional instruction trace of a program")
    trace_parser.add_argument("file")
    trace_parser.add_argument("--max-steps", type=int, default=200)
    trace_parser.set_defaults(func_impl=_cmd_trace)

    report_parser = sub.add_parser(
        "report", help="collect benchmark result tables into one report")
    report_parser.add_argument("--results-dir",
                               default=os.path.join("benchmarks", "results"))
    report_parser.add_argument("--output", default=None)
    report_parser.set_defaults(func_impl=_cmd_report)

    info_parser = sub.add_parser("info", help="machine configuration")
    info_parser.set_defaults(func_impl=_cmd_info)

    args = parser.parse_args(argv)
    return args.func_impl(args)


if __name__ == "__main__":
    sys.exit(main())
