"""Cross-engine differential fuzzing (Section: validating the simulator stack).

The paper's coverage numbers are only as trustworthy as the simulators
that produced them, and this repo has three ways to execute a program:
the reference interpreter (:class:`~repro.funcsim.FuncSim` with
``predecode_enabled=False``), the predecode closure engine, and the
out-of-order pipeline's commit stream.  :mod:`repro.difftest` keeps the
three honest the way sim-safe kept sim-outorder honest in SimpleScalar:

* :mod:`repro.difftest.generator` — seeded, constrained random programs
  over the full ISA, guaranteed to terminate, built from atomic *idioms*
  the shrinker can delete wholesale.
* :mod:`repro.difftest.oracle` — runs one program through all three
  engines in lockstep and compares retired-instruction streams, final
  registers, dirtied memory and stop/fault state; the first mismatch
  becomes a :class:`~repro.difftest.oracle.Divergence` with a
  disassembled window around the offending pc.
* :mod:`repro.difftest.shrink` — ddmin over the program's idioms,
  minimising a diverging program to a near-minimal repro.
* :mod:`repro.difftest.runner` — the fuzz loop: resumable, JSON
  reporting, corpus persistence (``repro difftest`` on the CLI).
"""

from repro.difftest.generator import MODES, GeneratedProgram, generate
from repro.difftest.oracle import Divergence, OracleResult, run_source
from repro.difftest.runner import FuzzReport, fuzz
from repro.difftest.shrink import shrink

__all__ = [
    "MODES", "GeneratedProgram", "generate",
    "Divergence", "OracleResult", "run_source",
    "FuzzReport", "fuzz", "shrink",
]
