"""The fuzz loop: generate, run the oracle, shrink, persist, report.

Program *i* of a run is generated from ``derive_seed(seed, i)``, so a
run is reproducible from ``(seed, mode, count)`` alone and any single
diverging index can be replayed in isolation.  Progress optionally
streams to a JSONL store (header line + one line per program), which a
rerun with the same store resumes instead of repeating — the same
discipline :mod:`repro.campaign` uses for fault-injection campaigns.
"""

import json
import os

from repro.difftest.generator import generate
from repro.difftest.oracle import DEFAULT_MAX_STEPS, run_source
from repro.difftest.shrink import shrink

STORE_VERSION = 1


def derive_seed(seed, index):
    """Per-program seed: decorrelated from neighbours, reproducible."""
    return (seed * 1_000_003 + index * 7_919 + 0x9E3779B9) & 0x7FFFFFFF


class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    def __init__(self, seed, count, mode, assertions=False, jit=False):
        self.seed = seed
        self.count = count
        self.mode = mode
        self.assertions = assertions
        self.jit = jit
        self.executed = 0
        self.resumed = 0          # programs skipped via the store
        self.limited = 0          # every engine hit its step limit
        self.divergences = []     # dicts: index, seed, divergence, ...
        self.violations = []      # dicts: index, seed, engine violations
                                  # (only populated when assertions ran)

    @property
    def ok(self):
        return not self.divergences and not self.violations

    def to_dict(self):
        doc = {
            "seed": self.seed, "count": self.count, "mode": self.mode,
            "executed": self.executed, "resumed": self.resumed,
            "limited": self.limited, "ok": self.ok,
            "divergences": self.divergences,
        }
        if self.assertions:
            doc["assertions"] = True
            doc["violations"] = self.violations
        if self.jit:
            doc["jit"] = True
        return doc


def _check_for(mode, max_steps, assertions=False, jit=False):
    """A shrinker predicate: rerun the oracle on a candidate program."""
    def check(program):
        return run_source(program.source, max_steps=max_steps,
                          assertions=assertions, jit=jit).divergence
    return check


def _store_header(seed, count, mode, assertions=False, jit=False):
    header = {"kind": "difftest", "version": STORE_VERSION,
              "seed": seed, "mode": mode, "count": count}
    if assertions:
        # Only stamped when on, so pre-existing stores stay resumable
        # for assertion-less runs (and are rejected for monitored ones,
        # which check more than they did).
        header["assertions"] = True
    if jit:
        # Same rationale: jit runs compare a fourth engine, so they
        # can't resume a three-engine store (and vice versa).
        header["jit"] = True
    return header


def _load_store(path, header):
    """Indexes already completed in a compatible store, or None."""
    if not path or not os.path.exists(path):
        return None
    done = set()
    with open(path) as handle:
        first = handle.readline()
        if not first.strip():
            return None
        existing = json.loads(first)
        for key in ("kind", "seed", "mode", "assertions", "jit"):
            if existing.get(key) != header.get(key):
                raise ValueError(
                    "difftest store %s was written by a different run "
                    "(%s=%r, expected %r)" % (path, key,
                                              existing.get(key),
                                              header[key]))
        for line in handle:
            line = line.strip()
            if line:
                done.add(json.loads(line)["index"])
    return done


def _corpus_path(corpus_dir, seed, index):
    return os.path.join(corpus_dir, "div_seed%d_i%d.s" % (seed, index))


def _persist_repro(corpus_dir, seed, index, result):
    """Write the shrunk diverging program as a commented .s corpus file."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = _corpus_path(corpus_dir, seed, index)
    divergence = result.divergence
    header = ["# difftest repro: seed=%d index=%d" % (seed, index)]
    if divergence is not None:
        for line in divergence.report().splitlines():
            header.append("# " + line)
    with open(path, "w") as handle:
        handle.write("\n".join(header) + "\n")
        handle.write(result.program.source)
    return path


def fuzz(seed=1234, count=100, mode="all", max_steps=DEFAULT_MAX_STEPS,
         shrink_diverging=True, corpus_dir=None, store=None,
         progress=None, assertions=False, jit=False):
    """Run *count* generated programs through the oracle.

    Returns a :class:`FuzzReport`.  With *store*, completed indexes are
    journalled to a JSONL file and skipped on rerun; with *corpus_dir*,
    every diverging program is shrunk and persisted as a ``.s`` repro.
    With *assertions*, every engine runs under the invariant suite:
    asymmetric firings become ``assertion`` divergences and symmetric
    ones are reported per program in ``report.violations`` (either
    fails the run).  With *jit*, the trace-JIT funcsim runs as a
    fourth engine and is compared against the interpreter too.
    """
    report = FuzzReport(seed, count, mode, assertions=assertions, jit=jit)
    header = _store_header(seed, count, mode, assertions=assertions,
                           jit=jit)
    done = _load_store(store, header)
    handle = None
    if store:
        if done is None:
            done = set()
            handle = open(store, "w")
            handle.write(json.dumps(header) + "\n")
            handle.flush()
        else:
            handle = open(store, "a")
    try:
        for index in range(count):
            if done and index in done:
                report.resumed += 1
                continue
            program = generate(derive_seed(seed, index), mode=mode)
            result = run_source(program.source, max_steps=max_steps,
                                assertions=assertions, jit=jit)
            report.executed += 1
            if result.limited:
                report.limited += 1
            record = {"index": index, "seed": program.seed,
                      "ok": result.ok}
            if not result.ok:
                entry = {"index": index, "seed": program.seed,
                         "divergence": result.divergence.to_dict()}
                if shrink_diverging:
                    shrunk = shrink(program, _check_for(
                        mode, max_steps, assertions=assertions, jit=jit))
                    entry["shrunk_idioms"] = len(shrunk.program.idioms)
                    entry["shrunk_source"] = shrunk.program.source
                    if corpus_dir:
                        entry["corpus_file"] = _persist_repro(
                            corpus_dir, seed, index, shrunk)
                report.divergences.append(entry)
                record["divergence"] = entry["divergence"]
            elif assertions and result.violations:
                # No asymmetry, but the suite fired (identically) on
                # some engine(s): the invariant itself is broken.
                entry = {"index": index, "seed": program.seed,
                         "violations": result.violations}
                report.violations.append(entry)
                record["violations"] = entry["violations"]
            if handle is not None:
                handle.write(json.dumps(record) + "\n")
                handle.flush()
            if progress is not None:
                progress(index, count, result)
    finally:
        if handle is not None:
            handle.close()
    return report
