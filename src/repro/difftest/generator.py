"""Constrained random program generator for differential fuzzing.

Programs are built from *idioms*: self-contained groups of instructions
with locally unique labels, so any subset of idioms still assembles and
still terminates.  That property is what makes ddmin shrinking
(:mod:`repro.difftest.shrink`) trivial — the shrinker deletes idioms,
never individual lines.

Structural guarantees, regardless of seed:

* **Termination.**  The only backward branches are the fixed outer loop
  (counted down in ``$s7``) and the checksum fold (counted in ``$t9``);
  every idiom-level branch is strictly forward, every ``jal`` helper
  returns, and self-modifying patches only ever write straight-line ALU
  instructions.
* **Memory discipline.**  Loads and stores hit a private scratch array
  addressed off ``$gp``, pre-seeded with a deterministic pattern, and
  the epilogue xor-folds the whole array into ``$s6`` so a wrong store
  byte becomes a wrong register even if a comparison misses the page.
* **Register discipline.**  Destinations come from ``$t0-$t7 $s0-$s5``;
  ``$v1 $t8 $t9`` are idiom/epilogue temporaries, ``$at`` belongs to the
  assembler, ``$s6 $s7`` to the harness, ``$ra`` to ``jal`` idioms.

Modes widen the instruction mix: ``basic`` is ALU/branch/memory only,
``check`` adds CHECK instructions, ``smc`` adds self-modifying-code
patches, and ``all`` is everything.
"""

import random

MODES = ("basic", "check", "smc", "all")

#: Registers idioms may write.  $v1/$t8/$t9 are reserved as temporaries,
#: $s6/$s7 for the harness checksum and loop counter.
WORK_REGS = ("$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
             "$s0", "$s1", "$s2", "$s3", "$s4", "$s5")

SCRATCH_WORDS = 32          # private load/store arena, 128 bytes

#: Values register initialisation draws from — edge values first, so
#: INT_MIN/INT_MAX/-1 show up in arithmetic often.
EDGE_VALUES = (0, 1, 2, 0xFFFFFFFF, 0x80000000, 0x7FFFFFFF, 0xFFFF8000,
               0x00008000, 0x0000FFFF, 0xAAAAAAAA, 0x55555555)


class Idiom:
    """One atomic unit of generated program text.

    *body* lines run inside the outer loop; *tail* lines are emitted
    after ``halt`` (jal helpers, SMC donor instructions); *data* lines
    go to the ``.data`` section.  Deleting an idiom deletes all three.
    """

    __slots__ = ("kind", "body", "tail", "data")

    def __init__(self, kind, body, tail=(), data=()):
        self.kind = kind
        self.body = list(body)
        self.tail = list(tail)
        self.data = list(data)


class GeneratedProgram:
    """A generated program plus the structure the shrinker needs."""

    def __init__(self, seed, mode, loops, reg_inits, scratch, idioms):
        self.seed = seed
        self.mode = mode
        self.loops = loops
        self.reg_inits = reg_inits          # [(reg, value)]
        self.scratch = scratch              # [word, ...]
        self.idioms = list(idioms)

    def replace(self, idioms=None, loops=None):
        """A copy with a different idiom subset (shrinker hook)."""
        return GeneratedProgram(
            self.seed, self.mode,
            self.loops if loops is None else loops,
            self.reg_inits, self.scratch,
            self.idioms if idioms is None else idioms)

    @property
    def source(self):
        lines = ["# difftest seed=%d mode=%s idioms=%d loops=%d" % (
                     self.seed, self.mode, len(self.idioms), self.loops),
                 "    .text", "main:",
                 "    la $gp, scratch",
                 "    li $s6, 0"]
        for reg, value in self.reg_inits:
            lines.append("    li %s, 0x%08x" % (reg, value))
        lines.append("    li $s7, %d" % self.loops)
        lines.append("loop_top:")
        for idiom in self.idioms:
            lines.extend("    " + text for text in idiom.body)
        lines.append("    addi $s7, $s7, -1")
        lines.append("    bgtz $s7, loop_top")
        # Epilogue: xor-fold the scratch arena into $s6.
        lines.extend(["    la $t8, scratch",
                      "    li $t9, %d" % SCRATCH_WORDS,
                      "fold:",
                      "    lw $v1, 0($t8)",
                      "    xor $s6, $s6, $v1",
                      "    addi $t8, $t8, 4",
                      "    addi $t9, $t9, -1",
                      "    bgtz $t9, fold",
                      "    halt"])
        for idiom in self.idioms:
            lines.extend(idiom.tail)
        lines.append("    .data")
        lines.append("scratch:")
        lines.extend("    .word 0x%08x" % word for word in self.scratch)
        for idiom in self.idioms:
            lines.extend(idiom.data)
        return "\n".join(lines) + "\n"


# --------------------------------------------------------------- idiom makers
#
# Each maker takes (rng, uid) and returns an Idiom.  *uid* is globally
# unique within the program, so labels never collide no matter which
# subset of idioms survives shrinking.

def _reg(rng):
    return rng.choice(WORK_REGS)


def _src(rng):
    return rng.choice(WORK_REGS + ("$zero", "$s6"))


def _alu3(rng, uid):
    op = rng.choice(("add", "sub", "and", "or", "xor", "nor", "slt",
                     "sltu", "sllv", "srlv", "srav", "mul"))
    return Idiom("alu3", ["%s %s, %s, %s" % (op, _reg(rng), _src(rng),
                                             _src(rng))])


def _alui(rng, uid):
    op = rng.choice(("addi", "slti", "sltiu", "andi", "ori", "xori"))
    if op in ("andi", "ori", "xori"):
        imm = rng.randrange(0, 0x10000)
    else:
        imm = rng.randrange(-0x8000, 0x8000)
    return Idiom("alui", ["%s %s, %s, %d" % (op, _reg(rng), _src(rng), imm)])


def _shift(rng, uid):
    op = rng.choice(("sll", "srl", "sra"))
    return Idiom("shift", ["%s %s, %s, %d" % (op, _reg(rng), _src(rng),
                                              rng.randrange(0, 32))])


def _lui(rng, uid):
    return Idiom("lui", ["lui %s, 0x%04x" % (_reg(rng),
                                             rng.randrange(0, 0x10000))])


def _safe_div(rng, uid):
    # ori .., 1 makes the divisor odd, hence nonzero: never faults.
    op = rng.choice(("div", "rem", "divu", "remu"))
    return Idiom("safe_div", [
        "ori $v1, %s, 1" % _src(rng),
        "%s %s, %s, $v1" % (op, _reg(rng), _src(rng))])


def _intmin_div(rng, uid):
    # INT_MIN / -1: quotient overflows; must wrap to 0x80000000 / 0
    # identically in every engine (satellite 1 regression).
    op = rng.choice(("div", "rem"))
    return Idiom("intmin_div", [
        "lui $v1, 0x8000",
        "addi $t9, $zero, -1",
        "%s %s, $v1, $t9" % (op, _reg(rng))])


def _maybe_fault_div(rng, uid):
    # The divisor can be zero: all three engines must fault at the same
    # pc with the same cause class, or agree it is nonzero.
    op = rng.choice(("div", "divu", "rem", "remu"))
    return Idiom("maybe_fault_div", [
        "andi $v1, %s, 7" % _src(rng),
        "%s %s, %s, $v1" % (op, _reg(rng), _src(rng))])


def _load(rng, uid):
    op = rng.choice(("lw", "lh", "lhu", "lb", "lbu"))
    size = {"lw": 4, "lh": 2, "lhu": 2, "lb": 1, "lbu": 1}[op]
    offset = rng.randrange(0, SCRATCH_WORDS * 4 // size) * size
    return Idiom("load", ["%s %s, %d($gp)" % (op, _reg(rng), offset)])


def _store(rng, uid):
    op = rng.choice(("sw", "sh", "sb"))
    size = {"sw": 4, "sh": 2, "sb": 1}[op]
    offset = rng.randrange(0, SCRATCH_WORDS * 4 // size) * size
    return Idiom("store", ["%s %s, %d($gp)" % (op, _src(rng), offset)])


def _store_load_forward(rng, uid):
    # Store immediately followed by an overlapping load: stresses LSQ
    # store-to-load forwarding (containment) and the stall path
    # (partial overlap) against the in-order reference.
    word = rng.randrange(0, SCRATCH_WORDS) * 4
    st = rng.choice(("sw", "sh", "sb"))
    st_size = {"sw": 4, "sh": 2, "sb": 1}[st]
    st_off = word + rng.randrange(0, 4 // st_size) * st_size
    ld = rng.choice(("lw", "lh", "lhu", "lb", "lbu"))
    ld_size = {"lw": 4, "lh": 2, "lhu": 2, "lb": 1, "lbu": 1}[ld]
    ld_off = word + rng.randrange(0, 4 // ld_size) * ld_size
    return Idiom("st_ld_fwd", [
        "%s %s, %d($gp)" % (st, _src(rng), st_off),
        "%s %s, %d($gp)" % (ld, _reg(rng), ld_off)])


def _branch_skip(rng, uid):
    label = "skip_%d" % uid
    kind = rng.choice(("beq", "bne", "blez", "bgtz", "bltz", "bgez",
                       "blt", "bgt", "ble", "bge"))
    if kind in ("beq", "bne", "blt", "bgt", "ble", "bge"):
        branch = "%s %s, %s, %s" % (kind, _src(rng), _src(rng), label)
    else:
        branch = "%s %s, %s" % (kind, _src(rng), label)
    body = [branch]
    for __ in range(rng.randrange(1, 3)):
        body.append("addi %s, %s, %d" % (_reg(rng), _src(rng),
                                         rng.randrange(-64, 64)))
    body.append("%s:" % label)
    return Idiom("branch_skip", body)


def _jal_helper(rng, uid):
    label = "helper_%d" % uid
    tail = ["%s:" % label]
    for __ in range(rng.randrange(1, 4)):
        tail.append("    xor %s, %s, %s" % (_reg(rng), _src(rng),
                                            _src(rng)))
    tail.append("    jr $ra")
    return Idiom("jal_helper", ["jal %s" % label], tail=tail)


def _jr_table(rng, uid):
    label = "jcont_%d" % uid
    return Idiom("jr_table", [
        "la $t9, %s" % label,
        "jr $t9",
        "addi %s, %s, 99" % (_reg(rng), _reg(rng)),    # skipped
        "%s:" % label])


def _jalr_self(rng, uid):
    # jalr rd==rs: the link value must be written before the target
    # register is read, so control falls through to the next line.
    label = "jnext_%d" % uid
    marked = _reg(rng)
    return Idiom("jalr_self", [
        "la $t9, %s" % label,
        "jalr $t9, $t9",
        "addi %s, %s, %d" % (marked, marked, rng.randrange(1, 100)),
        "%s:" % label])


def _chk(rng, uid):
    module = rng.randrange(0, 16)
    blocking = rng.choice(("BLK", "NBLK"))
    op = rng.randrange(0, 32)
    param = rng.randrange(0, 0x10000)
    return Idiom("chk", ["chk %d, %s, %d, 0x%04x" % (module, blocking,
                                                     op, param)])


def _smc_patch(rng, uid):
    # Overwrite an instruction inside the loop with a donor word taken
    # from past-the-halt text.  Both the donor and the original are
    # straight-line ALU ops, so the program terminates either way; the
    # engines must agree on *which* instruction executed.
    patch = "patch_%d" % uid
    donor = "donor_%d" % uid
    reg = _reg(rng)
    return Idiom(
        "smc_patch",
        ["la $t9, %s" % patch,
         "lw $v1, %s" % donor,
         "sw $v1, 0($t9)",
         "%s:" % patch,
         "addi %s, %s, 1" % (reg, reg)],
        tail=["%s:" % donor,
              "    addi %s, %s, %d" % (reg, reg, rng.randrange(2, 64))])


_BASIC_MIX = (
    (_alu3, 18), (_alui, 14), (_shift, 8), (_lui, 4),
    (_safe_div, 6), (_intmin_div, 2), (_maybe_fault_div, 1),
    (_load, 10), (_store, 10), (_store_load_forward, 8),
    (_branch_skip, 12), (_jal_helper, 4), (_jr_table, 3), (_jalr_self, 2),
)

_MODE_MIX = {
    "basic": _BASIC_MIX,
    "check": _BASIC_MIX + ((_chk, 8),),
    "smc": _BASIC_MIX + ((_smc_patch, 5),),
    "all": _BASIC_MIX + ((_chk, 6), (_smc_patch, 4)),
}


def generate(seed, mode="all", size=None):
    """Generate one program deterministically from *seed* and *mode*."""
    if mode not in MODES:
        raise ValueError("unknown difftest mode %r (choose from %s)"
                         % (mode, ", ".join(MODES)))
    rng = random.Random(seed)
    makers, weights = zip(*_MODE_MIX[mode])
    count = size if size is not None else rng.randrange(8, 29)
    loops = rng.randrange(1, 5)
    reg_inits = []
    for reg in WORK_REGS:
        if rng.random() < 0.5:
            value = rng.choice(EDGE_VALUES)
        else:
            value = rng.getrandbits(32)
        reg_inits.append((reg, value))
    scratch = [rng.getrandbits(32) for __ in range(SCRATCH_WORDS)]
    idioms = [rng.choices(makers, weights)[0](rng, uid)
              for uid in range(count)]
    return GeneratedProgram(seed, mode, loops, reg_inits, scratch, idioms)
