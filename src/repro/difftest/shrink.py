"""Minimise a diverging program: ddmin over idioms, then loop count.

The generator's idioms are self-contained (locally unique labels, no
cross-idiom dataflow other than through registers), so any subset of
them still assembles and still terminates.  That turns shrinking into
textbook delta debugging: drop idiom chunks as long as the oracle still
reports a divergence of the same kind.
"""


class ShrinkResult:
    """Outcome of shrinking one diverging program."""

    __slots__ = ("program", "divergence", "oracle_runs")

    def __init__(self, program, divergence, oracle_runs):
        self.program = program
        self.divergence = divergence
        self.oracle_runs = oracle_runs


def shrink(program, check, max_oracle_runs=200):
    """Minimise *program* while *check* still reports a divergence.

    *check* takes a :class:`~repro.difftest.generator.GeneratedProgram`
    and returns a :class:`~repro.difftest.oracle.Divergence` or None.
    Returns a :class:`ShrinkResult` whose program is 1-minimal at idiom
    granularity (removing any single remaining idiom loses the bug), up
    to the *max_oracle_runs* budget.
    """
    runs = 0

    def still_fails(candidate):
        nonlocal runs, best_divergence
        if runs >= max_oracle_runs:
            return False
        runs += 1
        divergence = check(candidate)
        if divergence is not None:
            best_divergence = divergence
            return True
        return False

    best = program
    best_divergence = None

    # Cheapest reduction first: one trip round the outer loop.
    if best.loops > 1:
        candidate = best.replace(loops=1)
        if still_fails(candidate):
            best = candidate

    # ddmin over idioms: try dropping chunks, halving granularity when
    # nothing at the current size can be dropped.
    chunk = max(1, len(best.idioms) // 2)
    while chunk >= 1 and len(best.idioms) > 1:
        shrunk_this_pass = False
        start = 0
        while start < len(best.idioms):
            idioms = best.idioms[:start] + best.idioms[start + chunk:]
            if not idioms:
                start += chunk
                continue
            candidate = best.replace(idioms=idioms)
            if still_fails(candidate):
                best = candidate
                shrunk_this_pass = True
                # Re-test the same start: the next chunk slid into place.
            else:
                start += chunk
        if shrunk_this_pass:
            continue          # another pass at the same granularity
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)

    # The caller's divergence might predate shrinking; make sure the
    # reported one matches the final program.
    if best_divergence is None:
        best_divergence = check(best)
    return ShrinkResult(best, best_divergence, runs)
