"""Lockstep oracle: one program, up to four engines, first divergence wins.

The engines are:

* ``interp`` — :class:`~repro.funcsim.FuncSim` with
  ``predecode_enabled=False``: the fetch/decode/dispatch reference.
* ``predecode`` — the same simulator through the closure cache.
* ``jit`` (opt-in via ``jit=True``) — the simulator with the superblock
  trace compiler (:mod:`repro.isa.traces`) on top of the closure cache;
  its retired-pc stream comes from the JIT run loop's ``retire_log``,
  so compiled traces (including their logging variants) are what is
  actually under test.
* ``pipeline`` — the out-of-order core; its architectural story is the
  in-order commit stream.

Comparison points, in order of diagnostic value:

0. with ``assertions=True``, the set of invariant properties that
   fired (:mod:`repro.assertions`): an assertion firing on one engine
   but not another is itself a divergence — compared first because a
   property violation localises a bug far better than the downstream
   state drift it causes.  Only properties both engines support are
   compared; symmetric firings are not a divergence but still surface
   through ``OracleResult.violations``,
1. the retired-instruction pc stream (first mismatching index),
2. stop state: halt vs fault vs step/cycle limit, and for faults the
   faulting pc plus a normalised cause class (the engines word their
   messages differently — "unaligned word load at 0x.." vs "unaligned
   fetch" — but must agree on *where* and *what kind*),
3. final registers ``r1..r31``,
4. retired-instruction count,
5. every memory page any engine dirtied.

The first mismatch becomes a :class:`Divergence` carrying a disassembled
window around the offending pc, rendered from the reference engine's
memory so self-modifying programs show what was actually executed.
"""

from repro.assertions import attach_funcsim, attach_pipeline
from repro.assertions.properties import shared_properties
from repro.funcsim import FuncSim, StepResult
from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble_segment
from repro.memory.mainmem import PAGE_SHIFT, PAGE_SIZE, MainMemory
from repro.memory.bus import BASELINE_TIMING
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline import Pipeline, PipelineConfig
from repro.pipeline.core import EventKind

STACK_TOP = 0x7FFF0000
ENGINES = ("interp", "predecode", "pipeline")

DEFAULT_MAX_STEPS = 400_000
#: The OoO core retires one instruction in a handful of cycles at worst
#: (mispredict + refetch); 16x steps is a generous ceiling.
CYCLES_PER_STEP = 16


class CommitRecorder:
    """A no-op RSE whose only job is recording the pipeline commit stream."""

    def __init__(self):
        self.stream = []

    def on_commit(self, uop, cycle):
        self.stream.append(uop.pc)

    # The pipeline consults these hooks when an RSE is attached; return
    # the "proceed" answer for each so behaviour matches rse=None.
    def on_dispatch(self, uop, cycle):
        pass

    def on_operands(self, uop, cycle, values):
        pass

    def on_execute(self, uop, cycle):
        pass

    def on_mem_load(self, uop, cycle, value):
        pass

    def on_squash(self, uops, cycle):
        pass

    def step(self, cycle):
        pass

    def ioq_gate(self, uop, cycle):
        return None

    def pre_commit_store(self, uop, cycle):
        return 0

    def check_blocks_loads(self, instr):
        return False


class EngineRun:
    """Outcome of one engine executing one program."""

    __slots__ = ("engine", "stream", "regs", "instret", "stop",
                 "fault_pc", "fault_cause", "memory", "violations")

    def __init__(self, engine, stream, regs, instret, stop,
                 fault_pc, fault_cause, memory, violations=None):
        self.engine = engine
        self.stream = stream            # retired pcs, in order
        self.regs = regs                # final r0..r31
        self.instret = instret
        self.stop = stop                # "halt" | "fault" | "limit"
        self.fault_pc = fault_pc
        self.fault_cause = fault_cause  # normalised class, None unless fault
        self.memory = memory
        self.violations = violations    # Violation list, None if not watched

    def violated(self):
        """Property ids that fired on this run (empty when unwatched)."""
        if not self.violations:
            return set()
        return {violation.property_id for violation in self.violations}


def classify_cause(cause):
    """Collapse an engine-specific fault message to a comparable class."""
    if cause is None:
        return None
    text = str(cause).lower()
    if "divide" in text:
        return "arith"
    if "unaligned" in text:
        return "unaligned"
    if "decode" in text or "illegal" in text or "unknown" in text:
        return "decode"
    return "other"


class Divergence:
    """First observed disagreement between two engines."""

    def __init__(self, kind, engines, detail, pc=None, index=None,
                 window=""):
        self.kind = kind                # stream|stop|regs|instret|mem
        self.engines = engines          # (reference_name, other_name)
        self.detail = detail
        self.pc = pc
        self.index = index
        self.window = window

    def report(self):
        lines = ["DIVERGENCE [%s] %s vs %s: %s" % (
            self.kind, self.engines[0], self.engines[1], self.detail)]
        if self.pc is not None:
            lines.append("  at pc=0x%08x" % self.pc)
        if self.index is not None:
            lines.append("  retire index %d" % self.index)
        if self.window:
            lines.append(self.window)
        return "\n".join(lines)

    def to_dict(self):
        return {"kind": self.kind, "engines": list(self.engines),
                "detail": self.detail,
                "pc": None if self.pc is None else "0x%08x" % self.pc,
                "index": self.index, "window": self.window}

    def __repr__(self):
        return "Divergence(%s, %s, %r)" % (self.kind, self.engines,
                                           self.detail)


class OracleResult:
    """Outcome of running one program through all three engines."""

    def __init__(self, divergence, runs, limited=False):
        self.divergence = divergence
        self.runs = runs                # engine name -> EngineRun
        self.limited = limited          # every engine hit its step limit

    @property
    def ok(self):
        return self.divergence is None

    @property
    def violations(self):
        """engine name -> violation dicts, for engines that fired any."""
        doc = {}
        for name, run in self.runs.items():
            if run.violations:
                doc[name] = [v.to_dict() for v in run.violations]
        return doc


# ------------------------------------------------------------------- running

def _fresh_memory(asm):
    mem = MainMemory()
    mem.store_bytes(asm.text_base, asm.text)
    mem.store_bytes(asm.data_base, asm.data)
    return mem


def _run_funcsim(engine, asm, max_steps, assertions=False):
    mem = _fresh_memory(asm)
    sim = FuncSim(mem, entry=asm.entry, sp=STACK_TOP,
                  predecode_enabled=(engine != "interp"),
                  jit_enabled=(engine == "jit"))
    adapter = attach_funcsim(sim) if assertions else None
    stream = []
    stop = "limit"
    if engine == "jit" and adapter is None:
        # Run through the trace-JIT dispatch loop so compiled traces
        # (and their retire-logging variants) are what is under test;
        # the step loop below would bypass them entirely.  With the
        # monitor attached the adapter overrides run() with a step
        # loop anyway — the documented deopt path.
        sim.retire_log = stream
        result = sim.run(max_steps)
        if result is StepResult.HALTED:
            stop = "halt"
        elif result is StepResult.FAULT:
            stop = "fault"
        elif result is StepResult.SYSCALL:
            stop = "syscall"
    else:
        for __ in range(max_steps):
            pc = sim.pc
            result = sim.step()
            if result is StepResult.OK:
                stream.append(pc)
                continue
            if result is StepResult.HALTED:
                stream.append(pc)
                stop = "halt"
            elif result is StepResult.FAULT:
                stop = "fault"
            else:          # syscall: the generator never emits one
                stop = "syscall"
            break
    violations = None
    if adapter is not None:
        adapter.detach()          # runs the end-of-run sweeps
        violations = adapter.monitor.violations
    fault_pc, cause = sim.fault if sim.fault else (None, None)
    return EngineRun(engine, stream, list(sim.regs), sim.instret, stop,
                     fault_pc, classify_cause(cause), mem,
                     violations=violations)


def _run_pipeline(asm, max_steps, assertions=False):
    mem = _fresh_memory(asm)
    recorder = CommitRecorder()
    pipeline = Pipeline(mem, MemoryHierarchy(BASELINE_TIMING),
                        config=PipelineConfig(), rse=recorder)
    adapter = attach_pipeline(pipeline) if assertions else None
    pipeline.reset_at(asm.entry)
    pipeline.regs[29] = STACK_TOP
    event = pipeline.run(max_cycles=max_steps * CYCLES_PER_STEP)
    violations = None
    if adapter is not None:
        adapter.detach()
        violations = adapter.monitor.violations
    kind = event.kind
    if kind is EventKind.HALT:
        stop = "halt"
    elif kind is EventKind.FAULT:
        stop = "fault"
    elif kind is EventKind.MAX_CYCLES:
        stop = "limit"
    else:
        stop = kind.value
    fault_pc = event.pc if stop == "fault" else None
    cause = event.cause if stop == "fault" else None
    return EngineRun("pipeline", recorder.stream, list(pipeline.regs),
                     pipeline.stats.instret, stop, fault_pc,
                     classify_cause(cause), mem, violations=violations)


# ----------------------------------------------------------------- comparing

def _disasm_window(asm, ref_mem, pc, radius=4):
    """Disassemble ``radius`` instructions either side of *pc*.

    Rendered from the reference engine's final memory, so a program
    that rewrote its own text shows the word that actually executed.
    """
    if pc is None:
        return ""
    base = max(asm.text_base, (pc - radius * 4) & ~3)
    length = (2 * radius + 1) * 4
    try:
        lines = disassemble_segment(ref_mem, base, length,
                                    symbols=asm.symbols)
    except Exception:          # window fell off mapped memory
        return ""
    rendered = []
    for line in lines:
        marker = ">>" if line.pc == pc else "  "
        rendered.append("  %s %08x:  %08x    %s" % (marker, line.pc,
                                                    line.word, line.text))
    return "\n".join(rendered)


def _compare(asm, ref, other):
    """First divergence between *ref* and *other*, or None."""
    pair = (ref.engine, other.engine)
    window = lambda pc: _disasm_window(asm, ref.memory, pc)

    # 0. Assertion asymmetry (only when both runs were monitored): the
    # same invariant suite watched both engines, so a property firing
    # on one side only is a divergence in its own right — and a far
    # sharper one than the state drift it eventually causes.  Restrict
    # to properties both engines host; compare fired-property *sets*
    # (counts differ legitimately, e.g. retire cascades).
    if ref.violations is not None and other.violations is not None:
        comparable = shared_properties(ref.engine, other.engine)
        ref_fired = ref.violated() & comparable
        other_fired = other.violated() & comparable
        if ref_fired != other_fired:
            asym = sorted(ref_fired ^ other_fired)
            fired_on = ref if asym[0] in ref_fired else other
            first = next(v for v in fired_on.violations
                         if v.property_id == asym[0])
            return Divergence(
                "assertion", pair,
                "property %r fired on %s but not %s: %s"
                % (asym[0], fired_on.engine,
                   (other if fired_on is ref else ref).engine,
                   first.detail),
                pc=first.pc, window=window(first.pc))

    # 1. Retired pc streams.
    for index, (a, b) in enumerate(zip(ref.stream, other.stream)):
        if a != b:
            return Divergence(
                "stream", pair,
                "%s retired pc=0x%08x, %s retired pc=0x%08x"
                % (ref.engine, a, other.engine, b),
                pc=a, index=index, window=window(a))
    if len(ref.stream) != len(other.stream):
        longer = ref if len(ref.stream) > len(other.stream) else other
        index = min(len(ref.stream), len(other.stream))
        pc = longer.stream[index]
        return Divergence(
            "stream", pair,
            "retired %d vs %d instructions; first extra pc=0x%08x in %s"
            % (len(ref.stream), len(other.stream), pc, longer.engine),
            pc=pc, index=index, window=window(pc))

    # 2. Stop state.
    if ref.stop != other.stop:
        return Divergence(
            "stop", pair, "%s stopped with %s, %s with %s"
            % (ref.engine, ref.stop, other.engine, other.stop),
            pc=ref.fault_pc or other.fault_pc,
            window=window(ref.fault_pc or other.fault_pc))
    if ref.stop == "fault":
        if (ref.fault_pc, ref.fault_cause) != (other.fault_pc,
                                               other.fault_cause):
            return Divergence(
                "stop", pair,
                "%s faulted at pc=%s (%s), %s at pc=%s (%s)"
                % (ref.engine, _hex(ref.fault_pc), ref.fault_cause,
                   other.engine, _hex(other.fault_pc), other.fault_cause),
                pc=ref.fault_pc, window=window(ref.fault_pc))

    # 3. Registers (r0 is hardwired; include $at — both engines run the
    # same expanded instructions, so even scratch must agree).
    for reg in range(1, 32):
        if ref.regs[reg] != other.regs[reg]:
            return Divergence(
                "regs", pair,
                "r%d: %s=0x%08x %s=0x%08x"
                % (reg, ref.engine, ref.regs[reg], other.engine,
                   other.regs[reg]))

    # 4. Retired counts.
    if ref.instret != other.instret:
        return Divergence(
            "instret", pair, "%s retired %d, %s retired %d"
            % (ref.engine, ref.instret, other.engine, other.instret))

    # 5. Dirtied memory, page by page.
    pages = sorted(set(ref.memory.write_versions)
                   | set(other.memory.write_versions))
    for page in pages:
        base = page << PAGE_SHIFT
        a = ref.memory.load_bytes(base, PAGE_SIZE)
        b = other.memory.load_bytes(base, PAGE_SIZE)
        if a != b:
            offset = next(i for i in range(PAGE_SIZE) if a[i] != b[i])
            addr = base + offset
            return Divergence(
                "mem", pair,
                "byte at 0x%08x: %s=0x%02x %s=0x%02x"
                % (addr, ref.engine, a[offset], other.engine, b[offset]))
    return None


def _hex(value):
    return "None" if value is None else "0x%08x" % value


def run_source(source, max_steps=DEFAULT_MAX_STEPS, constants=None,
               engines=ENGINES, assertions=False, jit=False):
    """Run *source* through the engines and compare against ``interp``.

    Returns an :class:`OracleResult`; ``result.divergence`` is the first
    mismatch found (predecode first, then jit, then pipeline), or None.
    With *assertions*, every engine runs under the invariant suite and
    asymmetric property firings are a fourth divergence class.  With
    *jit*, the trace-JIT functional simulator joins as a fourth engine
    so trace-compilation bugs surface as first-divergence reports.
    """
    asm = assemble(source, constants=constants)
    if jit and "jit" not in engines:
        engines = tuple(engines) + ("jit",)
    runs = {"interp": _run_funcsim("interp", asm, max_steps,
                                   assertions=assertions)}
    if "predecode" in engines:
        runs["predecode"] = _run_funcsim("predecode", asm, max_steps,
                                         assertions=assertions)
    if "jit" in engines:
        runs["jit"] = _run_funcsim("jit", asm, max_steps,
                                   assertions=assertions)
    if "pipeline" in engines:
        runs["pipeline"] = _run_pipeline(asm, max_steps,
                                         assertions=assertions)
    limited = all(run.stop == "limit" for run in runs.values())
    divergence = None
    for name in ("predecode", "jit", "pipeline"):
        if name in runs:
            divergence = _compare(asm, runs["interp"], runs[name])
            if divergence is not None:
                break
    return OracleResult(divergence, runs, limited=limited)
