"""``Machine.assertions`` — the per-machine assertion hub.

Mirrors ``Machine.obs``: strictly opt-in, attach-time method shadowing,
zero residual cost when never attached.  Attaching instruments the
machine's pipeline (and RSE, when present) with a pipeline-engine
:class:`~repro.assertions.monitor.AssertionMonitor`, mirrors
per-property counters into the obs metrics registry
(``assertions.<id>``), and contributes an ``assertions`` section to
``Machine.snapshot()`` carrying the violation records.

Checkpoint interplay: the whole-machine checkpoint layer learns each
class's field names from the first instance it captures
(:data:`repro.checkpoint._FIELD_NAMES`), so capturing a pipeline that
carries shadow wrappers would teach it the wrappers as machine state —
and deepcopying their closures would drag the live monitor into the
checkpoint.  The hub therefore shadows ``machine.checkpoint`` to
*suspend* the engine-level shadows around the capture (the captured
state is exactly what a bare machine would capture) and emits the
``checkpoint``/``restore`` events the MAU-quiesce and page-version
properties consume.
"""

from repro.assertions.adapters import PipelineAdapter, ShadowSet
from repro.assertions.monitor import AssertionMonitor
from repro.checkpoint import CheckpointError, _pending_requests


def _pending_callbacks(rse):
    """Does the MAU hold requests that only a Python callback can finish?"""
    if rse is None:
        return False
    return any(request.callback is not None
               for request in _pending_requests(rse.mau))


class AssertionHub:
    """Attach/detach assertion monitoring on one :class:`Machine`."""

    def __init__(self, machine):
        self.machine = machine
        self.monitor = None          # survives detach: snapshot keeps results
        self._adapter = None
        self._machine_shadows = None

    # -------------------------------------------------------------- attach

    def is_attached(self):
        return self._adapter is not None

    def attach(self, properties=None):
        """Start monitoring; returns the :class:`AssertionMonitor`."""
        if self._adapter is not None:
            raise RuntimeError("assertions already attached; detach() first")
        machine = self.machine
        monitor = AssertionMonitor("pipeline", properties,
                                   metrics=machine.obs.metrics)
        adapter = PipelineAdapter(machine.pipeline, monitor)
        adapter.attach()
        shadows = ShadowSet()
        checkpoint_handlers = monitor.handlers("checkpoint")
        restore_handlers = monitor.handlers("restore")
        redirect_handlers = monitor.handlers("redirect")

        orig_checkpoint = machine.checkpoint
        orig_restore = machine.restore

        def checkpoint():
            pending = _pending_callbacks(machine.rse)
            adapter.suspend()
            try:
                captured = orig_checkpoint()
            except CheckpointError:
                for handler in checkpoint_handlers:
                    handler(False, pending)
                raise
            finally:
                adapter.resume_shadows()
            for handler in checkpoint_handlers:
                handler(True, pending)
            return captured

        def restore(captured):
            pre_versions = dict(machine.memory.write_versions)
            result = orig_restore(captured)
            for handler in restore_handlers:
                handler(machine.memory, captured, pre_versions)
            for handler in redirect_handlers:
                handler(machine.pipeline.fetch_pc)
            return result

        shadows.shadow(machine, "checkpoint", checkpoint)
        shadows.shadow(machine, "restore", restore)

        self.monitor = monitor
        self._adapter = adapter
        self._machine_shadows = shadows
        return monitor

    def detach(self):
        """Stop monitoring (runs the final sweeps); results stay readable."""
        if self._adapter is None:
            return
        self._machine_shadows.remove()
        self._machine_shadows = None
        adapter, self._adapter = self._adapter, None
        adapter.detach()

    # ------------------------------------------------------------- results

    def violation_count(self):
        return 0 if self.monitor is None else self.monitor.violation_count()

    def violations(self):
        return [] if self.monitor is None else list(self.monitor.violations)

    def snapshot(self):
        """The hub's section of the machine snapshot document."""
        doc = {"attached": self.is_attached()}
        if self.monitor is None:
            doc.update(properties=[], counts={}, violations=[])
        else:
            sub = self.monitor.snapshot()
            doc.update(properties=sub["properties"], counts=sub["counts"],
                       violations=sub["violations"])
        return doc
