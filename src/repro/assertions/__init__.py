"""repro.assertions — portable microarchitectural invariants.

One declarative property catalog (:mod:`repro.assertions.properties`),
written against engine-neutral events, compiled by per-engine adapters
(:mod:`repro.assertions.adapters`) onto the same attach-time
method-shadowing probe points ``repro.obs`` uses — so the identical
assertion runs on the reference interpreter, the predecode engine and
the out-of-order pipeline.  Entry points:

* ``Machine.assertions`` — the per-machine hub
  (:class:`~repro.assertions.hub.AssertionHub`);
* :func:`attach_funcsim` / :func:`attach_pipeline` — bare-engine
  attachment (the difftest oracle uses these);
* :func:`catalog` — ``(id, description, engines)`` for the CLI.
"""

from repro.assertions.adapters import attach_funcsim, attach_pipeline
from repro.assertions.hub import AssertionHub
from repro.assertions.monitor import AssertionMonitor, Violation
from repro.assertions.properties import (PROPERTIES, catalog,
                                         shared_properties)

__all__ = [
    "PROPERTIES", "AssertionHub", "AssertionMonitor", "Violation",
    "attach_funcsim", "attach_pipeline", "catalog", "shared_properties",
]
