"""Engine adapters: compile the neutral events onto each engine.

The pipeline adapter uses the same attach-time method shadowing as
:mod:`repro.obs.probes` — an instance attribute wins the lookup over
the class method, so a detached machine runs the bare class methods
with literally zero residual dispatch cost.  Unlike obs probes, an
adapter's :class:`ShadowSet` also remembers what it displaced, so
shadows *chain* over an already-instrumented method (e.g. an obs RSE
probe) and can be temporarily **suspended**: the whole-machine
checkpoint layer learns per-class field names from instance
``__dict__``s, and capturing a shadowed pipeline would teach it
wrapper closures as machine state (see
:meth:`repro.assertions.hub.AssertionHub`).

The funcsim adapter deliberately does NOT shadow — see
:class:`FuncSimAdapter` for why the interpreter's instance dict must
keep its key-sharing layout.
"""

from repro.funcsim.interp import StepResult
from repro.isa import semantics
from repro.isa.encoding import DecodeError, decode
from repro.isa.instructions import InstrClass
from repro.memory.mainmem import PAGE_SHIFT, MemoryFault
from repro.pipeline.core import S_WAIT

MASK32 = 0xFFFFFFFF


class ShadowSet:
    """Instance-attribute shadows that chain, suspend and restore."""

    def __init__(self):
        self._records = []          # (obj, attr, wrapper, had, displaced)
        self._suspended = False

    def shadow(self, obj, attr, wrapper):
        had = attr in obj.__dict__
        displaced = obj.__dict__.get(attr)
        self._records.append((obj, attr, wrapper, had, displaced))
        setattr(obj, attr, wrapper)

    def suspend(self):
        """Put every displaced value back (keep the records for resume)."""
        if self._suspended:
            return
        for obj, attr, wrapper, had, displaced in reversed(self._records):
            if had:
                setattr(obj, attr, displaced)
            else:
                delattr(obj, attr)
        self._suspended = True

    def resume(self):
        if not self._suspended:
            return
        for obj, attr, wrapper, __, ___ in self._records:
            setattr(obj, attr, wrapper)
        self._suspended = False

    def remove(self):
        self.suspend()
        self._records.clear()
        self._suspended = False


# ---------------------------------------------------------------- funcsim

class FuncSimAdapter:
    """Feed a monitor from a :class:`~repro.funcsim.FuncSim`.

    The ``step`` override peeks the instruction about to execute,
    precomputes an *independent* next-pc from the semantics tables
    (``derived_next``) plus the jump operands, runs the bare step, and
    emits retire/store/jump events only when the instruction actually
    retired.  ``run`` is overridden with a plain step loop so the hot
    closure-cache path goes through the instrumented ``step``.  Stores
    are observed through the existing ``trace_mem`` hook, which both
    the reference ``_execute`` path and the predecode closures call —
    the adapter chains it, preserving any user hook.

    Unlike the pipeline adapter, this one must NOT install a
    :class:`ShadowSet`: adding (and later deleting) keys on the sim's
    ``__dict__`` converts CPython's key-sharing instance dict into a
    combined one, and every ``self.x`` load in the interpreter hot loop
    then pays for it *forever* — ~10% on kMeans even after detach
    (``benchmarks/test_perf_assertions.py`` gates this at 2%; swapping
    ``sim.__class__`` materialises the dict just the same).  All three
    attachment points — ``step``, ``run``, ``trace_mem`` — are
    predeclared as instance attributes in ``FuncSim.__init__``, so
    attach and detach are plain value assignments that never change
    the dict's key set, leaving a detached sim bit-identical to one
    never instrumented.
    """

    def __init__(self, sim, monitor):
        self.sim = sim
        self.monitor = monitor
        self._saved = None             # (step, run, trace_mem) originals
        self._pending_stores = []
        monitor.clock = lambda: sim.instret

    def attach(self):
        sim = self.sim
        monitor = self.monitor
        pending = self._pending_stores
        retire_handlers = monitor.handlers("retire")
        store_handlers = monitor.handlers("store")
        jump_handlers = monitor.handlers("jump")

        prev_trace = sim.trace_mem

        def trace_mem(tsim, instr, addr, is_store):
            if is_store:
                pending.append((addr, semantics.access_size(instr),
                                tsim.regs[instr.rt]))
            if prev_trace is not None:
                prev_trace(tsim, instr, addr, is_store)

        orig_step = sim.step

        def step():
            if sim.halted:
                return orig_step()
            pc = sim.pc
            instr = self._peek(pc)
            if instr is None:          # fetch/decode fault: nothing retires
                return orig_step()
            iclass = instr.iclass
            serializing = instr.serializing
            derived = None
            jump_info = None
            regs = sim.regs
            if iclass is InstrClass.BRANCH:
                derived = semantics.control_target(
                    instr, pc, regs[instr.rs], regs[instr.rt])
            elif iclass is InstrClass.JUMP:
                rs_before = regs[instr.rs]
                link = (pc + 4) & MASK32
                rs_for_target = (link if instr.dest and instr.dest == instr.rs
                                 else rs_before)
                derived = semantics.jump_target(instr, pc, rs_for_target)
                jump_info = (instr.dest, instr.rs, link, rs_before,
                             instr.name in ("jr", "jalr"))
            elif not serializing:
                derived = (pc + 4) & MASK32
            del pending[:]
            result = orig_step()
            if result is StepResult.FAULT:
                del pending[:]
                return result
            observed = None if serializing else sim.pc
            for handler in retire_handlers:
                handler(pc, observed, derived, serializing, False)
            if pending:
                memory = sim.memory
                for addr, size, value in pending:
                    for handler in store_handlers:
                        handler(pc, addr, size, value, memory)
                del pending[:]
            if jump_info is not None:
                dest, rs, link, rs_before, register_jump = jump_info
                written = regs[dest] if dest else None
                for handler in jump_handlers:
                    handler(pc, dest, rs, link, rs_before, sim.pc,
                            register_jump, written)
            return result

        def run(max_steps=10_000_000):
            if sim.halted:
                return StepResult.HALTED
            for __ in range(max_steps):
                result = sim.step()
                if result is not StepResult.OK:
                    return result
            return StepResult.OK

        # Value assignments only — the keys are predeclared in
        # FuncSim.__init__, so the instance dict keeps its shared layout.
        self._saved = (orig_step, sim.run, prev_trace)
        sim.trace_mem = trace_mem
        sim.step = step
        sim.run = run

    def _peek(self, pc):
        """The instruction about to execute at *pc*, or None on a fault."""
        sim = self.sim
        cache = sim._cache
        try:
            if cache is None:
                return decode(sim.memory.load_word(pc))
            entry = cache.entries.get(pc)
            if (entry is None or
                    sim.memory.write_versions.get(pc >> PAGE_SHIFT, 0)
                    != entry[0]):
                entry = cache.refill(pc)
            return entry[3]
        except (MemoryFault, DecodeError):
            return None

    def detach(self):
        if self._saved is not None:
            sim = self.sim
            sim.step, sim.run, sim.trace_mem = self._saved
            self._saved = None
        self.monitor.finish(self.sim.memory)


def attach_funcsim(sim, properties=None, metrics=None, monitor=None):
    """Attach an assertion monitor to *sim*; returns the adapter."""
    if monitor is None:
        from repro.assertions.monitor import AssertionMonitor
        engine = "predecode" if sim.predecode_enabled else "interp"
        monitor = AssertionMonitor(engine, properties, metrics)
    adapter = FuncSimAdapter(sim, monitor)
    adapter.attach()
    return adapter


# --------------------------------------------------------------- pipeline

class _NullTap:
    """A do-nothing RSE stand-in for bare pipelines.

    Installing it lets the adapter shadow the dispatch/commit attachment
    points on machines built without the framework; every hook answers
    exactly as ``rse=None`` behaves (gate passes, no stalls, no
    barriers), so it is architecturally invisible.
    """

    def on_dispatch(self, uop, cycle):
        pass

    def on_operands(self, uop, cycle, values):
        pass

    def on_execute(self, uop, cycle):
        pass

    def on_mem_load(self, uop, cycle, value):
        pass

    def on_commit(self, uop, cycle):
        pass

    def on_squash(self, uops, cycle):
        pass

    def step(self, cycle):
        pass

    def ioq_gate(self, uop, cycle):
        return None

    def pre_commit_store(self, uop, cycle):
        return 0

    def check_blocks_loads(self, instr):
        return False


class PipelineAdapter:
    """Feed a monitor from the out-of-order core's commit stream.

    Events come from the RSE attachment points (retirement order is the
    architectural story): ``on_commit`` yields retire/store/jump,
    ``on_dispatch``/``ioq_gate`` yield the IOQ lifecycle, and the load
    issue path yields disambiguation decisions.  ``resume``/``reset_at``
    are platform redirects (kernel context switches, fault handling).
    """

    def __init__(self, pipeline, monitor):
        self.pipeline = pipeline
        self.monitor = monitor
        self.shadows = ShadowSet()
        self._owns_tap = False
        monitor.clock = lambda: pipeline.cycle

    def attach(self):
        pipeline = self.pipeline
        monitor = self.monitor
        shadows = self.shadows
        retire_handlers = monitor.handlers("retire")
        store_handlers = monitor.handlers("store")
        jump_handlers = monitor.handlers("jump")
        forward_handlers = monitor.handlers("forward")
        redirect_handlers = monitor.handlers("redirect")
        alloc_handlers = monitor.handlers("ioq_alloc")
        gate_handlers = monitor.handlers("ioq_gate")

        if pipeline.rse is None:
            shadows.shadow(pipeline, "rse", _NullTap())
            self._owns_tap = True
        rse = pipeline.rse
        memory = pipeline.memory

        orig_commit = rse.on_commit

        def on_commit(uop, cycle):
            orig_commit(uop, cycle)
            instr = uop.instr
            pc = uop.pc
            if instr.serializing:
                observed = None
            elif uop.injected:
                observed = pc          # the checked instr follows at pc
            elif uop.actual_next is not None:
                observed = uop.actual_next
            else:
                observed = (pc + 4) & MASK32
            for handler in retire_handlers:
                handler(pc, observed, None, instr.serializing, uop.injected)
            if instr.is_store:
                for handler in store_handlers:
                    handler(pc, uop.eff_addr, uop.mem_size, uop.store_value,
                            memory)
            if instr.iclass is InstrClass.JUMP:
                written = uop.value if instr.dest else None
                for handler in jump_handlers:
                    handler(pc, instr.dest, instr.rs, (pc + 4) & MASK32,
                            None, uop.actual_next,
                            instr.name in ("jr", "jalr"), written)

        shadows.shadow(rse, "on_commit", on_commit)

        if forward_handlers:
            orig_load = pipeline._try_issue_load

            def try_issue_load(uop, index, cycle):
                issued = orig_load(uop, index, cycle)
                if issued and uop.fault is None:
                    stores = [(older.eff_addr, older.mem_size)
                              for older in pipeline.rob[:index]
                              if older.instr.is_store
                              and older.state != S_WAIT
                              and older.eff_addr is not None]
                    for handler in forward_handlers:
                        handler(uop.pc, uop.eff_addr, uop.mem_size,
                                uop.forwarded, stores)
                return issued

            shadows.shadow(pipeline, "_try_issue_load", try_issue_load)

        if redirect_handlers:
            orig_resume = pipeline.resume
            orig_reset = pipeline.reset_at

            def resume(pc):
                orig_resume(pc)
                for handler in redirect_handlers:
                    handler(pc & MASK32)

            def reset_at(pc, regs=None):
                orig_reset(pc, regs)
                for handler in redirect_handlers:
                    handler(pc & MASK32)

            shadows.shadow(pipeline, "resume", resume)
            shadows.shadow(pipeline, "reset_at", reset_at)

        ioq = getattr(rse, "ioq", None)
        if ioq is not None and (alloc_handlers or gate_handlers):
            if alloc_handlers:
                orig_dispatch = rse.on_dispatch

                def on_dispatch(uop, cycle):
                    orig_dispatch(uop, cycle)
                    entry = ioq.get(uop.seq)
                    if entry is not None:
                        for handler in alloc_handlers:
                            handler(entry, uop.instr.is_check)

                shadows.shadow(rse, "on_dispatch", on_dispatch)
            if gate_handlers:
                orig_gate = rse.ioq_gate

                def ioq_gate(uop, cycle):
                    verdict = orig_gate(uop, cycle)
                    entry = ioq.get(uop.seq)
                    for handler in gate_handlers:
                        handler(entry, verdict, rse.safe_mode)
                    return verdict

                shadows.shadow(rse, "ioq_gate", ioq_gate)

    def suspend(self):
        self.shadows.suspend()

    def resume_shadows(self):
        self.shadows.resume()

    def detach(self):
        self.shadows.remove()
        self._owns_tap = False
        self.monitor.finish(self.pipeline.memory)


def attach_pipeline(pipeline, properties=None, metrics=None, monitor=None):
    """Attach an assertion monitor to *pipeline*; returns the adapter."""
    if monitor is None:
        from repro.assertions.monitor import AssertionMonitor
        monitor = AssertionMonitor("pipeline", properties, metrics)
    adapter = PipelineAdapter(pipeline, monitor)
    adapter.attach()
    return adapter
