"""AssertionMonitor: per-run host for property checkers.

One monitor watches one engine run.  Adapters translate engine
internals into the neutral event vocabulary and feed
``monitor.handlers(event)``; checkers call back into
``monitor.violation`` which records a bounded list of
:class:`Violation` records, bumps per-property counters and mirrors
them into a metrics registry (``assertions.<property-id>``) when one
is supplied.
"""

from repro.assertions.properties import select

#: events a checker may subscribe to via an ``on_<event>`` method.
EVENTS = ("retire", "store", "jump", "forward", "redirect", "ioq_alloc",
          "ioq_gate", "checkpoint", "restore", "finish")

DEFAULT_VIOLATION_LIMIT = 100


class Violation:
    """One assertion firing: what, where, when, on which engine."""

    __slots__ = ("property_id", "engine", "pc", "cycle", "detail",
                 "operands")

    def __init__(self, property_id, engine, pc, cycle, detail, operands):
        self.property_id = property_id
        self.engine = engine
        self.pc = pc
        self.cycle = cycle
        self.detail = detail
        self.operands = operands

    def to_dict(self):
        return {
            "property": self.property_id,
            "engine": self.engine,
            "pc": self.pc,
            "cycle": self.cycle,
            "detail": self.detail,
            "operands": self.operands,
        }

    def __repr__(self):
        where = "" if self.pc is None else " pc=0x%08x" % self.pc
        return "<Violation %s engine=%s%s %s>" % (
            self.property_id, self.engine, where, self.detail)


class AssertionMonitor:
    """Hosts one checker instance per property supported by *engine*."""

    def __init__(self, engine, properties=None, metrics=None,
                 violation_limit=DEFAULT_VIOLATION_LIMIT):
        self.engine = engine
        self.metrics = metrics
        self.violation_limit = violation_limit
        self.violations = []
        self.counts = {}
        self.clock = None          # adapters point this at cycle/instret
        self.checkers = [cls(self) for cls in select(engine, properties)]
        self._handlers = {}
        for event in EVENTS:
            bound = tuple(getattr(checker, "on_" + event)
                          for checker in self.checkers
                          if hasattr(checker, "on_" + event))
            if bound:
                self._handlers[event] = bound
        self._finished = False

    @property
    def property_ids(self):
        return [checker.id for checker in self.checkers]

    def handlers(self, event):
        """Handler tuple for *event* (empty when no checker subscribes)."""
        return self._handlers.get(event, ())

    def violation(self, property_id, detail, pc=None, operands=None):
        self.counts[property_id] = self.counts.get(property_id, 0) + 1
        if self.metrics is not None:
            self.metrics.counter("assertions." + property_id).inc()
        if len(self.violations) < self.violation_limit:
            cycle = self.clock() if self.clock is not None else None
            self.violations.append(Violation(
                property_id, self.engine, pc, cycle, detail,
                dict(operands) if operands else {}))

    def violation_count(self):
        return sum(self.counts.values())

    def finish(self, memory):
        """Run end-of-monitoring sweeps (idempotent)."""
        if self._finished:
            return
        self._finished = True
        for handler in self.handlers("finish"):
            handler(memory)

    def violated_properties(self):
        """Set of property ids that fired at least once."""
        return {pid for pid, count in self.counts.items() if count}

    def snapshot(self):
        return {
            "engine": self.engine,
            "properties": self.property_ids,
            "counts": dict(self.counts),
            "violations": [v.to_dict() for v in self.violations],
        }
