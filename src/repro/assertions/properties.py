"""The property catalog: microarchitectural invariants, written once.

Every property is a small state machine over **engine-neutral events**
(see :mod:`repro.assertions.adapters` for how each engine produces
them), so the same invariant text runs unchanged on the reference
interpreter, the predecode closure engine and the out-of-order
pipeline.  The event vocabulary:

=============  =========================================================
event          payload
=============  =========================================================
retire         ``pc``, ``observed_next`` (where the engine says control
               goes next; None for serializing instructions),
               ``derived_next`` (an independent recomputation from the
               ISA semantics tables, when the engine can afford one),
               ``serializing``, ``injected`` (runtime-inserted CHECK)
store          ``pc``, ``addr``, ``size``, ``value``, ``memory`` —
               emitted when a store takes architectural effect
jump           ``pc``, ``dest``, ``rs``, ``link``, ``rs_before`` (source
               register value before execution, None when the engine
               cannot observe it), ``target``, ``register_jump``,
               ``link_written`` (value left in the link register)
forward        ``pc``, ``addr``, ``size``, ``forwarded``, ``stores``
               (older in-window stores as ``(addr, size)`` pairs) —
               pipeline load-issue disambiguation decision
redirect       ``pc`` — a platform-sanctioned control discontinuity
               (context switch, fault handling, restore); resets any
               cross-retire expectations
ioq_alloc      ``entry``, ``is_check`` — IOQ entry allocated
ioq_gate       ``entry``, ``verdict``, ``safe_mode`` — Table 1 commit
               gate consulted for a CHECK
checkpoint     ``ok``, ``pending_callbacks`` — whole-machine capture
restore        ``memory``, ``checkpoint``, ``pre_versions``
finish         ``memory`` — end of monitoring (final sweeps)
=============  =========================================================

A property declares which engines can host it (``engines``); the
monitor instantiates one checker per supported property per run.
Properties observe *architectural* IOQ bits, never the stuck-at
effective bits: injected stuck-at faults are Table 2 territory and
belong to the self-checking watchdog, so a checker seeing a stuck-at
override on an entry stands down rather than double-reporting.
"""

from repro.memory.mainmem import PAGE_SHIFT, PAGE_SIZE

MASK32 = 0xFFFFFFFF

ALL_ENGINES = ("interp", "predecode", "pipeline")

#: property id -> checker class, in catalog order.
PROPERTIES = {}


def register(cls):
    if cls.id in PROPERTIES:
        raise ValueError("duplicate property id %r" % cls.id)
    PROPERTIES[cls.id] = cls
    return cls


def catalog():
    """``[(id, description, engines)]`` for every registered property."""
    return [(cls.id, cls.description, cls.engines)
            for cls in PROPERTIES.values()]


def select(engine, properties=None):
    """Checker classes for *engine*, optionally restricted to ids."""
    if properties is None:
        wanted = list(PROPERTIES)
    else:
        wanted = list(properties)
        unknown = [pid for pid in wanted if pid not in PROPERTIES]
        if unknown:
            raise KeyError("unknown assertion propert%s %s (available: %s)"
                           % ("y" if len(unknown) == 1 else "ies",
                              ", ".join(unknown), ", ".join(PROPERTIES)))
    return [PROPERTIES[pid] for pid in wanted
            if engine in PROPERTIES[pid].engines]


#: Monitored engines run the JIT funcsim deopted onto the predecode
#: closure path (per-instruction observation forces it), so its
#: property support is exactly the predecode engine's.
_ENGINE_ALIASES = {"jit": "predecode"}


def shared_properties(engine_a, engine_b):
    """Ids of properties both engines support (difftest comparability)."""
    engine_a = _ENGINE_ALIASES.get(engine_a, engine_a)
    engine_b = _ENGINE_ALIASES.get(engine_b, engine_b)
    return {pid for pid, cls in PROPERTIES.items()
            if engine_a in cls.engines and engine_b in cls.engines}


class PropertyChecker:
    """Base class: one instance per property per monitored run."""

    id = None
    description = ""
    engines = ALL_ENGINES

    def __init__(self, monitor):
        self.monitor = monitor

    def violate(self, detail, pc=None, operands=None):
        self.monitor.violation(self.id, detail, pc=pc, operands=operands)


def _store_mask(size):
    return (1 << (8 * size)) - 1


@register
class StoreReachesMemory(PropertyChecker):
    """Every committed store's bytes must be readable back from memory."""

    id = "store-reaches-memory"
    description = ("a store that takes architectural effect leaves "
                   "exactly its bytes in memory")
    engines = ALL_ENGINES

    def on_store(self, pc, addr, size, value, memory):
        expected = value & _store_mask(size)
        try:
            actual = int.from_bytes(memory.load_bytes(addr, size), "little")
        except Exception as exc:
            self.violate("store at 0x%08x unreadable after commit: %s"
                         % (addr, exc), pc=pc,
                         operands={"addr": addr, "size": size})
            return
        if actual != expected:
            self.violate(
                "store of 0x%x to 0x%08x reads back 0x%x"
                % (expected, addr, actual), pc=pc,
                operands={"addr": addr, "size": size,
                          "expected": expected, "actual": actual})


@register
class NoPartialForward(PropertyChecker):
    """A load may only forward from a fully containing older store."""

    id = "load-no-partial-forward"
    description = ("a load never issues past — and never forwards from — "
                   "an older store that only partially overlaps it")
    engines = ("pipeline",)

    def on_forward(self, pc, addr, size, forwarded, stores):
        lo, hi = addr, addr + size
        contained = False
        for store_addr, store_size in stores:
            s_lo, s_hi = store_addr, store_addr + store_size
            if s_lo < hi and lo < s_hi:          # any overlap
                if s_lo <= lo and hi <= s_hi:
                    contained = True
                else:
                    self.violate(
                        "load [0x%08x,+%d) issued past partial-overlap "
                        "store [0x%08x,+%d)" % (addr, size, store_addr,
                                                store_size),
                        pc=pc, operands={"load_addr": addr,
                                         "load_size": size,
                                         "store_addr": store_addr,
                                         "store_size": store_size})
                    return
        if forwarded and not contained:
            self.violate("load at 0x%08x forwarded with no containing "
                         "older store" % addr, pc=pc,
                         operands={"load_addr": addr, "load_size": size})


@register
class LinkBeforeTarget(PropertyChecker):
    """jal/jalr write the link register before the target is read."""

    id = "jalr-link-before-target"
    description = ("linking jumps write pc+4 to the link register before "
                   "reading the jump target (visible when rd == rs)")
    engines = ALL_ENGINES

    def on_jump(self, pc, dest, rs, link, rs_before, target, register_jump,
                link_written):
        if dest and link_written is not None and link_written != link:
            self.violate(
                "link register r%d holds 0x%08x, expected 0x%08x"
                % (dest, link_written, link), pc=pc,
                operands={"dest": dest, "link": link,
                          "written": link_written})
        if not register_jump or target is None:
            return
        if dest and dest == rs:
            expected = link          # the freshly written link value
        elif rs_before is not None:
            expected = rs_before
        else:
            return
        if target != expected:
            self.violate(
                "register jump went to 0x%08x, expected 0x%08x"
                % (target, expected), pc=pc,
                operands={"rs": rs, "dest": dest, "target": target,
                          "expected": expected})


@register
class RetireAlignment(PropertyChecker):
    """Only 4-aligned pcs — decoded instruction boundaries — retire."""

    id = "retire-alignment"
    description = "every retired instruction sits on a 4-byte boundary"
    engines = ALL_ENGINES

    def on_retire(self, pc, observed_next, derived_next, serializing,
                  injected):
        if pc & 3:
            self.violate("retired pc 0x%08x is not 4-aligned" % pc, pc=pc,
                         operands={"pc": pc})


@register
class RetireContiguity(PropertyChecker):
    """Control flow only lands where the previous retire said it would."""

    id = "retire-contiguity"
    description = ("each retired pc equals the previous instruction's "
                   "next-pc; engine-reported targets match an independent "
                   "recomputation from the ISA semantics when available")

    engines = ALL_ENGINES

    def __init__(self, monitor):
        super().__init__(monitor)
        self.expected = None

    def on_redirect(self, pc):
        self.expected = None

    def on_retire(self, pc, observed_next, derived_next, serializing,
                  injected):
        if self.expected is not None and pc != self.expected:
            self.violate(
                "control landed at 0x%08x, previous instruction "
                "retired toward 0x%08x" % (pc, self.expected), pc=pc,
                operands={"pc": pc, "expected": self.expected})
        if (derived_next is not None and observed_next is not None
                and observed_next != derived_next):
            self.violate(
                "engine says next pc 0x%08x, ISA semantics say 0x%08x"
                % (observed_next, derived_next), pc=pc,
                operands={"observed": observed_next,
                          "derived": derived_next})
        self.expected = observed_next


def _stuck(entry):
    return (entry.stuck_check_valid is not None
            or entry.stuck_check is not None)


@register
class IOQAllocEncoding(PropertyChecker):
    """Table 1 initial encodings: CHECK entries '00', all others '10'."""

    id = "ioq-alloc-encoding"
    description = ("IOQ entries allocate in the Table 1 initial state: "
                   "checkValid/check = 00 for CHECKs, 10 otherwise")
    engines = ("pipeline",)

    def on_ioq_alloc(self, entry, is_check):
        if _stuck(entry):
            return          # injected stuck-at: the watchdog's to report
        expected_valid = 0 if is_check else 1
        if entry.check_valid != expected_valid or entry.check != 0:
            self.violate(
                "entry seq=%d allocated as %d%d, expected %d0"
                % (entry.seq, entry.check_valid, entry.check,
                   expected_valid),
                pc=entry.uop.pc,
                operands={"seq": entry.seq, "is_check": is_check,
                          "check_valid": entry.check_valid,
                          "check": entry.check})


@register
class IOQValidBeforeConsume(PropertyChecker):
    """Commit stalls on '00': checkValid is set before commit consumes it."""

    id = "ioq-valid-before-consume"
    description = ("the commit gate only answers ok/error once the "
                   "module wrote checkValid — a CHECK stalls until its "
                   "module answers (or the framework is decoupled)")
    engines = ("pipeline",)

    def on_ioq_gate(self, entry, verdict, safe_mode):
        if verdict not in ("ok", "error"):
            return
        if safe_mode or entry is None or _stuck(entry):
            return          # decoupled / squashed / watchdog territory
        if entry.check_valid != 1:
            self.violate(
                "commit consumed CHECK seq=%d with checkValid=%d "
                "(module never answered)" % (entry.seq, entry.check_valid),
                pc=entry.uop.pc,
                operands={"seq": entry.seq, "verdict": verdict,
                          "check_valid": entry.check_valid})
        elif entry.check == 1 and verdict != "error":
            self.violate(
                "CHECK seq=%d carries check=1 but the gate answered %r"
                % (entry.seq, verdict), pc=entry.uop.pc,
                operands={"seq": entry.seq, "verdict": verdict})


@register
class MAUQuiesceCheckpoint(PropertyChecker):
    """MAU requests complete — or refuse the capture — before checkpoint."""

    id = "mau-quiesce-before-checkpoint"
    description = ("a whole-machine checkpoint never captures a pending "
                   "MAU request that cannot be restored (bare-callback "
                   "requests must make the capture refuse)")
    engines = ("pipeline",)

    def on_checkpoint(self, ok, pending_callbacks):
        if ok and pending_callbacks:
            self.violate("checkpoint captured while the MAU held "
                         "non-checkpointable callback requests",
                         operands={"pending_callbacks": True})


@register
class PageVersionMonotonic(PropertyChecker):
    """Restore never rolls a page's write version backwards."""

    id = "page-version-monotonic"
    description = ("page write versions never decrease across a restore, "
                   "and restored pages read back the checkpoint's bytes")
    engines = ("pipeline",)

    def on_restore(self, memory, checkpoint, pre_versions):
        versions = memory.write_versions
        for page, old in pre_versions.items():
            new = versions.get(page, 0)
            if new < old:
                self.violate(
                    "page %d write version went %d -> %d across restore"
                    % (page, old, new),
                    operands={"page": page, "before": old, "after": new})
                return
        for page, payload in checkpoint.pages.items():
            base = page << PAGE_SHIFT
            actual = memory.load_bytes(base, PAGE_SIZE)
            if bytes(actual) != bytes(payload):
                offset = next(i for i in range(PAGE_SIZE)
                              if actual[i] != payload[i])
                self.violate(
                    "restored page %d differs from checkpoint at 0x%08x"
                    % (page, base + offset),
                    operands={"page": page, "offset": offset})
                return


@register
class PredecodeCoherence(PropertyChecker):
    """A cached closure whose version matches must match memory's word."""

    id = "predecode-coherence"
    description = ("a predecode cache entry that revalidates by version "
                   "equality decodes the word memory actually holds "
                   "(no false revalidation, e.g. after restore)")
    engines = ("predecode", "pipeline")

    def on_restore(self, memory, checkpoint, pre_versions):
        self._sweep(memory)

    def on_finish(self, memory):
        self._sweep(memory)

    def _sweep(self, memory):
        cache = getattr(memory, "predecode_cache", None)
        if cache is None:
            return
        versions = memory.write_versions
        for pc, entry in cache.entries.items():
            if versions.get(pc >> PAGE_SHIFT, 0) != entry[0]:
                continue          # stale by version: will refill, fine
            try:
                word = memory.load_word(pc)
            except Exception:
                continue          # page vanished: entry cannot revalidate
            if word != entry[2]:
                self.violate(
                    "cache entry at pc=0x%08x revalidates against "
                    "word 0x%08x but memory holds 0x%08x"
                    % (pc, entry[2], word), pc=pc,
                    operands={"pc": pc, "cached": entry[2], "memory": word})
                return
