"""Thread-crash recovery built on DDT tracking (Section 4.2).

The DDT module collects dependency and checkpoint information but "does
not perform the actual recovery operations.  System software performs
recovery by retrieving information stored in PST and DDM" — that system
software is this package.
"""

from repro.recovery.recovery import RecoveryManager, RecoveryReport

__all__ = ["RecoveryManager", "RecoveryReport"]
