"""The recovery algorithm (Section 4.2.2 and the Figure 8 scenario).

On a thread crash:

1. query the DDM for the transitive closure of threads data-dependent on
   the faulty thread — these, plus the faulty thread, form the kill set
   ("we identify and terminate all threads that are data-dependent on
   tf");
2. undo the memory updates of the kill set: every page whose checkpoint
   history shows a kill-set thread becoming write-owner is restored to
   the pre-image captured just before that first contaminating store
   ("the memory updates due to tf and its dependent threads are undone
   so that they do not impact the future execution of the healthy
   threads");
3. surviving threads "continue executing ... from where they are last
   suspended by the scheduler" — no execution rollback, because a
   healthy thread by definition consumed no kill-set data;
4. if a needed snapshot was garbage-collected, the whole process is
   terminated (:class:`~repro.kernel.checkpoints.RecoveryImpossible`
   propagates to the kernel).

The paper defers algorithmic details to the first author's thesis [38];
step 2's "earliest contaminating snapshot" rule is our concrete
realisation and is documented as such in DESIGN.md.
"""


class RecoveryReport:
    """What one recovery pass did."""

    def __init__(self, faulty_tid, kill_set, pages_restored, survivors,
                 cycle):
        self.faulty_tid = faulty_tid
        self.kill_set = set(kill_set)
        self.pages_restored = list(pages_restored)
        self.survivors = set(survivors)
        self.cycle = cycle

    def __repr__(self):
        return ("RecoveryReport(faulty=%d, killed=%s, pages=%d, "
                "survivors=%s)" % (self.faulty_tid, sorted(self.kill_set),
                                   len(self.pages_restored),
                                   sorted(self.survivors)))


class RecoveryManager:
    """System-software recovery driver over DDT + checkpoint state."""

    def __init__(self, kernel, ddt):
        self.kernel = kernel
        self.ddt = ddt

    def recover(self, faulty_tid, cycle):
        """Run recovery for a crash of *faulty_tid*; returns a report.

        Raises :class:`RecoveryImpossible` when required snapshots were
        garbage-collected, in which case the kernel must kill the whole
        process.
        """
        kill_set = {faulty_tid} | self.ddt.dependents_of(faulty_tid)
        checkpoints = self.kernel.checkpoints
        memory = self.kernel.memory

        # Determine the rollback set *before* mutating anything, so a
        # RecoveryImpossible leaves memory untouched for the kill-all path.
        to_restore = []
        for page in checkpoints.pages_touched():
            snapshot = checkpoints.rollback_snapshot(page, kill_set)
            if snapshot is not None:
                to_restore.append(snapshot)

        for snapshot in to_restore:
            memory.restore_page(snapshot.page, snapshot.data)

        for tid in kill_set:
            thread = self.kernel.threads.get(tid)
            if thread is not None and thread.alive:
                self.kernel.terminate_thread(tid, by_recovery=True)
            self.ddt.forget_thread(tid)

        survivors = {t.tid for t in self.kernel.alive_threads()}
        return RecoveryReport(faulty_tid, kill_set,
                              [s.page for s in to_restore], survivors, cycle)
