"""Virtual memory layout of a simulated process.

This is precisely the structure the paper's Memory Layout Randomization
module exists to randomize (Section 4.1): the bases of the
position-independent regions (stack, heap, shared libraries) plus the
position-dependent Global Offset Table / Procedure Linkage Table pair.

The layout object is pure description — the loader materialises it and
the MLR/TRR implementations perturb it.
"""

PAGE_SIZE = 4096

#: Conventional (un-randomized) bases, loosely modelled on 32-bit Linux.
DEFAULT_LAYOUT_BASES = {
    "text": 0x00400000,
    "data": 0x10000000,
    "heap": 0x10800000,
    "shlib": 0x30000000,
    "stack_top": 0x7FFF0000,      # stack grows down from here
    "header": 0x0FFF0000,         # the MLR "special header" staging area
}

#: Size of the mapped stack region, bytes.
DEFAULT_STACK_BYTES = 256 * 1024

#: Offsets (from the header base) of the predefined memory locations the
#: MLR module writes its randomized base addresses to (Figure 3(B)).
MLR_RESULT_SHLIB = 0x100
MLR_RESULT_STACK = 0x104
MLR_RESULT_HEAP = 0x108


class MemoryLayout:
    """Concrete address-space layout for one process.

    Attributes mirror the fields of the executable header the MLR module
    parses.  ``randomize`` returns a *new* layout with offsets applied to
    the position-independent regions — the host-side equivalent of what
    TRR/MLR do inside the simulation (used by the loader when a test or
    example wants a pre-randomized process without running the guest
    loader code).
    """

    def __init__(self, text_base=None, data_base=None, heap_base=None,
                 shlib_base=None, stack_top=None, header_base=None,
                 stack_bytes=DEFAULT_STACK_BYTES):
        bases = DEFAULT_LAYOUT_BASES
        self.text_base = text_base if text_base is not None else bases["text"]
        self.data_base = data_base if data_base is not None else bases["data"]
        self.heap_base = heap_base if heap_base is not None else bases["heap"]
        self.shlib_base = (shlib_base if shlib_base is not None
                           else bases["shlib"])
        self.stack_top = (stack_top if stack_top is not None
                          else bases["stack_top"])
        self.header_base = (header_base if header_base is not None
                            else bases["header"])
        self.stack_bytes = stack_bytes

    @property
    def stack_base(self):
        """Lowest mapped stack address."""
        return self.stack_top - self.stack_bytes

    def randomize(self, rng, max_offset_pages=2048):
        """Return a copy with randomized position-independent bases.

        Offsets are page-aligned and drawn from *rng* (a
        ``random.Random``), mirroring TRR's page-granularity relocation.
        The position-dependent regions (text/data, and with them the
        GOT/PLT's *old* location) stay put — relocating the GOT is the
        MLR module's separate, explicit job.
        """
        def offset():
            return rng.randrange(1, max_offset_pages) * PAGE_SIZE

        return MemoryLayout(
            text_base=self.text_base,
            data_base=self.data_base,
            heap_base=self.heap_base + offset(),
            shlib_base=self.shlib_base + offset(),
            stack_top=self.stack_top - offset(),
            header_base=self.header_base,
            stack_bytes=self.stack_bytes,
        )

    def as_dict(self):
        return {
            "text_base": self.text_base,
            "data_base": self.data_base,
            "heap_base": self.heap_base,
            "shlib_base": self.shlib_base,
            "stack_top": self.stack_top,
            "stack_base": self.stack_base,
            "header_base": self.header_base,
        }

    def __repr__(self):
        return ("MemoryLayout(text=0x%08x, data=0x%08x, heap=0x%08x, "
                "shlib=0x%08x, stack_top=0x%08x)" % (
                    self.text_base, self.data_base, self.heap_base,
                    self.shlib_base, self.stack_top))
