"""Process images and loading.

* :mod:`repro.program.layout` — the virtual memory layout of a process
  (the structure the MLR module randomizes).
* :mod:`repro.program.image` — executable images: segments, the "special
  header" consumed by the MLR module, and GOT/PLT construction.
* :mod:`repro.program.loader` — places an image into simulated memory,
  sets up the stack and registers page permissions.
"""

from repro.program.layout import MemoryLayout, DEFAULT_LAYOUT_BASES
from repro.program.image import (
    ExecutableHeader,
    Segment,
    ProcessImage,
    build_image,
    build_plt_entry,
    PLT_ENTRY_WORDS,
)
from repro.program.loader import Loader, LoadedProcess

__all__ = [
    "MemoryLayout",
    "DEFAULT_LAYOUT_BASES",
    "ExecutableHeader",
    "Segment",
    "ProcessImage",
    "build_image",
    "build_plt_entry",
    "PLT_ENTRY_WORDS",
    "Loader",
    "LoadedProcess",
]
